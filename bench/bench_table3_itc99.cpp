// bench_table3_itc99 — regenerates Table 3, the paper's headline experiment:
// all 15 ITC99-style benchmarks synthesized to Phased Logic with and without
// Early Evaluation, simulated with 100 random input vectors each.
//
// Columns match the paper: PL gate count (no EE), EE gate count, average
// input-stable -> output-stable delay without and with EE, the delay
// difference, % area increase (EE gates / PL gates) and % delay decrease.
// The paper's published numbers are printed alongside for a side-by-side
// shape comparison (absolute ns differ: our substrate is an event-driven
// simulator with a nominal delay model, not the authors' qhsim testbed).
//
// Set PLEE_VECTORS to override the number of random vectors (default 100).
// `--json <path>` additionally writes every row (and the suite averages) as
// BENCH_itc99.json for cross-PR perf tracking.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_circuits/itc99.hpp"
#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/table.hpp"

using namespace plee;

namespace {

struct paper_row {
    const char* id;
    int pl_gates;
    int ee_gates;
    int delay_no_ee;
    int delay_ee;
    int area_pct;
    int delay_pct;
};

// Table 3 of the paper, for reference printing.
constexpr paper_row k_paper[] = {
    {"b01", 25, 9, 49, 43, 36, 12},     {"b02", 4, 0, 18, 18, 0, 0},
    {"b03", 78, 25, 49, 50, 32, -2},    {"b04", 274, 102, 84, 85, 37, -1},
    {"b05", 322, 136, 98, 88, 42, 10},  {"b06", 10, 1, 26, 27, 10, -3},
    {"b07", 240, 95, 87, 67, 40, 23},   {"b08", 82, 24, 66, 52, 29, 21},
    {"b09", 74, 23, 46, 45, 31, 2},     {"b10", 126, 49, 63, 59, 39, 6},
    {"b11", 275, 112, 132, 93, 41, 30}, {"b12", 635, 263, 80, 73, 41, 9},
    {"b13", 141, 44, 56, 51, 31, 9},    {"b14", 3360, 1565, 332, 207, 47, 38},
    {"b15", 5648, 2611, 336, 184, 46, 45},
};

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
            return 2;
        }
    }

    std::size_t vectors = 100;
    if (const char* env = std::getenv("PLEE_VECTORS")) {
        vectors = static_cast<std::size_t>(std::atoi(env));
    }

    std::printf("Table 3. Experimental Results Comparing the Use of EE in PL "
                "Synthesis\n(%zu random vectors per circuit; paper reference "
                "values in brackets)\n\n",
                vectors);

    report::text_table t({"Description", "PL Gates", "EE Gates", "Avg Delay (ns)",
                          "Avg Delay EE (ns)", "Delay Diff", "% Area Incr.",
                          "% Delay Decr."});

    double speedup_sum = 0.0;
    double area_sum = 0.0;
    int counted = 0;
    report::json json_rows = report::json::array();

    for (std::size_t i = 0; i < bench::itc99_suite().size(); ++i) {
        const bench::benchmark_info& info = bench::itc99_suite()[i];
        const paper_row& ref = k_paper[i];

        report::experiment_options opts;
        opts.measure.num_vectors = vectors;
        const report::experiment_row row =
            report::run_ee_experiment(info.description, info.build(), opts);

        t.add_row({info.id + (" " + info.description),
                   std::to_string(row.pl_gates) + " [" + std::to_string(ref.pl_gates) + "]",
                   std::to_string(row.ee_gates) + " [" + std::to_string(ref.ee_gates) + "]",
                   report::fmt(row.delay_no_ee, 1) + " [" + std::to_string(ref.delay_no_ee) + "]",
                   report::fmt(row.delay_ee, 1) + " [" + std::to_string(ref.delay_ee) + "]",
                   report::fmt(row.delay_diff, 1),
                   report::fmt(row.area_increase_pct, 0) + "% [" +
                       std::to_string(ref.area_pct) + "%]",
                   report::fmt(row.delay_decrease_pct, 0) + "% [" +
                       std::to_string(ref.delay_pct) + "%]"});

        speedup_sum += row.delay_decrease_pct;
        area_sum += row.area_increase_pct;
        ++counted;

        report::json jrow = report::to_json(row);
        jrow.set("id", report::json::str(info.id));
        json_rows.push(std::move(jrow));
        std::fflush(stdout);
    }

    std::printf("%s\n", t.to_string().c_str());
    std::printf("Suite averages: %.1f%% delay decrease (paper: >13%%), "
                "%.1f%% area increase (paper: ~33%%).\n",
                speedup_sum / counted, area_sum / counted);

    if (!json_path.empty()) {
        report::json root = report::json::object();
        root.set("bench", report::json::str("itc99"));
        root.set("vectors", report::json::number(vectors));
        root.set("rows", std::move(json_rows));
        report::json averages = report::json::object();
        averages.set("delay_decrease_pct", report::json::number(speedup_sum / counted));
        averages.set("area_increase_pct", report::json::number(area_sum / counted));
        root.set("suite_averages", std::move(averages));
        try {
            root.write_file(json_path);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench_table3_itc99: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}
