// bench_table3_itc99 — regenerates Table 3, the paper's headline experiment:
// all 15 ITC99-style benchmarks synthesized to Phased Logic with and without
// Early Evaluation, simulated with 100 random input vectors each.
//
// Columns match the paper: PL gate count (no EE), EE gate count, average
// input-stable -> output-stable delay without and with EE, the delay
// difference, % area increase (EE gates / PL gates) and % delay decrease.
// The paper's published numbers are printed alongside for a side-by-side
// shape comparison (absolute ns differ: our substrate is an event-driven
// simulator with a nominal delay model, not the authors' qhsim testbed).
//
// The suite runs through the sharded fleet runner: circuits are fanned over
// a worker pool sharing one concurrent NPN trigger cache.  Every reported
// number is bit-identical to the serial pipeline at any thread count (the
// runner's determinism contract, enforced in tests/test_runner.cpp); only
// the wall time changes.
//
// Set PLEE_VECTORS to override the number of random vectors (default 100).
// `--threads N` sizes the worker pool (default: one per hardware thread);
// `--seed S` overrides the stimulus seed (default: the fixed seed every
// prior PR used, so runs stay reproducible).  `--json <path>` additionally
// writes every row, the suite averages and the fleet summary as
// BENCH_itc99.json for cross-PR perf tracking.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_circuits/itc99.hpp"
#include "report/experiment.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "runner/runner.hpp"

using namespace plee;

namespace {

struct paper_row {
    const char* id;
    int pl_gates;
    int ee_gates;
    int delay_no_ee;
    int delay_ee;
    int area_pct;
    int delay_pct;
};

// Table 3 of the paper, for reference printing.
constexpr paper_row k_paper[] = {
    {"b01", 25, 9, 49, 43, 36, 12},     {"b02", 4, 0, 18, 18, 0, 0},
    {"b03", 78, 25, 49, 50, 32, -2},    {"b04", 274, 102, 84, 85, 37, -1},
    {"b05", 322, 136, 98, 88, 42, 10},  {"b06", 10, 1, 26, 27, 10, -3},
    {"b07", 240, 95, 87, 67, 40, 23},   {"b08", 82, 24, 66, 52, 29, 21},
    {"b09", 74, 23, 46, 45, 31, 2},     {"b10", 126, 49, 63, 59, 39, 6},
    {"b11", 275, 112, 132, 93, 41, 30}, {"b12", 635, 263, 80, 73, 41, 9},
    {"b13", 141, 44, 56, 51, 31, 9},    {"b14", 3360, 1565, 332, 207, 47, 38},
    {"b15", 5648, 2611, 336, 184, 46, 45},
};

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    unsigned threads = 0;  // 0 = hardware_concurrency
    sim::measure_options default_measure;
    std::uint64_t seed = default_measure.seed;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] [--threads N] [--seed S]\n",
                         argv[0]);
            return 2;
        }
    }

    std::size_t vectors = 100;
    if (const char* env = std::getenv("PLEE_VECTORS")) {
        vectors = static_cast<std::size_t>(std::atoi(env));
    }

    std::printf("Table 3. Experimental Results Comparing the Use of EE in PL "
                "Synthesis\n(%zu random vectors per circuit; paper reference "
                "values in brackets)\n\n",
                vectors);
    std::fflush(stdout);

    std::vector<runner::fleet_job> jobs;
    for (const bench::benchmark_info& info : bench::itc99_suite()) {
        runner::fleet_job job;
        job.id = info.id;
        job.description = info.description;
        job.netlist = info.build();
        jobs.push_back(std::move(job));
    }

    runner::fleet_options fleet_opts;
    fleet_opts.num_threads = threads;
    fleet_opts.experiment.measure.num_vectors = vectors;
    fleet_opts.experiment.measure.seed = seed;
    const runner::fleet_result fleet = runner::run_fleet(jobs, fleet_opts);

    report::text_table t({"Description", "PL Gates", "EE Gates", "Avg Delay (ns)",
                          "Avg Delay EE (ns)", "Delay Diff", "% Area Incr.",
                          "% Delay Decr."});

    double speedup_sum = 0.0;
    double area_sum = 0.0;
    int counted = 0;
    report::json json_rows = report::json::array();

    for (std::size_t i = 0; i < fleet.results.size(); ++i) {
        const runner::job_result& result = fleet.results[i];
        const report::experiment_row& row = result.row;
        const paper_row& ref = k_paper[i];

        t.add_row({result.id + (" " + row.description),
                   std::to_string(row.pl_gates) + " [" + std::to_string(ref.pl_gates) + "]",
                   std::to_string(row.ee_gates) + " [" + std::to_string(ref.ee_gates) + "]",
                   report::fmt(row.delay_no_ee, 1) + " [" + std::to_string(ref.delay_no_ee) + "]",
                   report::fmt(row.delay_ee, 1) + " [" + std::to_string(ref.delay_ee) + "]",
                   report::fmt(row.delay_diff, 1),
                   report::fmt(row.area_increase_pct, 0) + "% [" +
                       std::to_string(ref.area_pct) + "%]",
                   report::fmt(row.delay_decrease_pct, 0) + "% [" +
                       std::to_string(ref.delay_pct) + "%]"});

        speedup_sum += row.delay_decrease_pct;
        area_sum += row.area_increase_pct;
        ++counted;

        // The suite shares one fleet cache, so per-row cache counters would
        // be fake zeros — the real totals live in the "fleet" block below.
        report::json jrow = report::to_json(row, /*include_cache_counters=*/false);
        jrow.set("id", report::json::str(result.id));
        jrow.set("wall_ms", report::json::number(result.wall_ms));
        json_rows.push(std::move(jrow));
    }

    std::printf("%s\n", t.to_string().c_str());
    std::printf("Suite averages: %.1f%% delay decrease (paper: >13%%), "
                "%.1f%% area increase (paper: ~33%%).\n",
                speedup_sum / counted, area_sum / counted);
    std::printf("Fleet: %u threads, %.0f ms wall, %.2f netlists/s, %.0f "
                "sweeps/s, shared trigger cache %.1f%% hit rate (%zu entries).\n",
                fleet.threads, fleet.wall_ms, fleet.netlists_per_s(),
                fleet.sweeps_per_s(), 100.0 * fleet.cache_hit_rate(),
                fleet.cache_entries);

    if (!json_path.empty()) {
        report::json root = report::json::object();
        root.set("schema_version",
                 report::json::number(report::k_bench_schema_version));
        root.set("bench", report::json::str("itc99"));
        root.set("vectors", report::json::number(vectors));
        root.set("seed", report::json::number(static_cast<std::int64_t>(seed)));
        root.set("rows", std::move(json_rows));
        report::json averages = report::json::object();
        averages.set("delay_decrease_pct", report::json::number(speedup_sum / counted));
        averages.set("area_increase_pct", report::json::number(area_sum / counted));
        root.set("suite_averages", std::move(averages));
        // The per-row data already lives in "rows" above; embed the summary.
        root.set("fleet", runner::to_json(fleet, /*include_rows=*/false));
        try {
            root.write_file(json_path);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench_table3_itc99: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}
