// bench_fleet_scaling — fleet throughput of the sharded runner on synthetic
// workloads, the ROADMAP's netlist-scale benchmark beyond ITC99 sizes.
//
// A batch of generated circuits (all four scenario presets round-robin by
// default) runs through the full synth -> PL-map -> EE -> simulate pipeline
// at 1, 2 and hardware_concurrency() worker threads, sharing one concurrent
// NPN trigger cache per fleet.  Reported per thread level: wall time,
// netlists/s, trigger-search sweeps/s, and the shared-cache hit rate.  The
// per-circuit results are bit-identical across the levels (asserted here),
// so the scaling numbers measure the runner, not noise.
//
//   --circuits N   netlists in the fleet                    (default 12)
//   --gates G      LUTs per netlist                         (default 150)
//   --scenario S   datapath-like | control-fsm | wide-adder | random-dag |
//                  mixed                                    (default mixed)
//   --seed S       generator base seed                      (default 1)
//   --vectors V    random vectors per measurement           (default 10)
//   --json PATH    write BENCH_fleet.json for cross-PR perf tracking

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "persist/snapshot.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "runner/runner.hpp"
#include "workload/workload.hpp"

using namespace plee;

int main(int argc, char** argv) {
    std::size_t circuits = 12;
    std::size_t gates = 150;
    std::string scenario_name = "mixed";
    std::uint64_t seed = 1;
    std::size_t vectors = 10;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (std::strcmp(argv[i], "--circuits") == 0) {
            if (const char* v = next()) circuits = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--gates") == 0) {
            if (const char* v = next()) gates = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--scenario") == 0) {
            if (const char* v = next()) scenario_name = v;
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            if (const char* v = next()) seed = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--vectors") == 0) {
            if (const char* v = next()) vectors = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (const char* v = next()) json_path = v;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--circuits N] [--gates G] [--scenario S] "
                         "[--seed S] [--vectors V] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    try {
        std::vector<runner::fleet_job> jobs;
        for (std::size_t i = 0; i < circuits; ++i) {
            const wl::scenario kind =
                scenario_name == "mixed"
                    ? wl::all_scenarios()[i % wl::all_scenarios().size()]
                    : wl::scenario_from_string(scenario_name);
            const wl::workload_params params =
                wl::scenario_params(kind, gates, seed + i);
            runner::fleet_job job;
            job.id = std::string(wl::to_string(kind)) + "/" + std::to_string(i);
            job.description = job.id;
            job.netlist = wl::generate(params);
            jobs.push_back(std::move(job));
        }

        unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0) hw = 1;
        // Always record 1 and 2 workers (the 2-thread level checks the
        // sharded path even on a single core), plus the full machine.
        std::vector<unsigned> levels = {1, 2};
        if (hw > 2) levels.push_back(hw);

        std::printf("fleet scaling: %zu circuits x %zu gates (%s), %zu vectors\n\n",
                    circuits, gates, scenario_name.c_str(), vectors);
        report::text_table t({"Threads", "Wall (ms)", "Netlists/s", "Sweeps/s",
                              "Cache Hit Rate", "Speedup"});
        report::json scaling = report::json::array();
        double base_wall = 0.0;
        std::vector<runner::fleet_result> fleets;
        for (unsigned threads : levels) {
            runner::fleet_options opts;
            opts.num_threads = threads;
            opts.experiment.measure.num_vectors = vectors;
            runner::fleet_result fleet = runner::run_fleet(jobs, opts);
            if (threads == 1) base_wall = fleet.wall_ms;
            t.add_row({std::to_string(fleet.threads),
                       report::fmt(fleet.wall_ms, 0),
                       report::fmt(fleet.netlists_per_s(), 2),
                       report::fmt(fleet.sweeps_per_s(), 0),
                       report::fmt(100.0 * fleet.cache_hit_rate(), 1) + "%",
                       report::fmt(fleet.wall_ms > 0.0 ? base_wall / fleet.wall_ms
                                                       : 0.0,
                                   2) + "x"});
            scaling.push(runner::to_json(fleet, /*include_rows=*/false));
            fleets.push_back(std::move(fleet));
            std::fflush(stdout);
        }
        std::printf("%s\n", t.to_string().c_str());

        // Determinism gate across levels: every circuit's full result — gate
        // counts, both measured delays, sweep count, and the exact list of
        // applied triggers (master, trigger, support, function) — must agree
        // between thread counts.
        const auto rows_identical = [](const report::experiment_row& a,
                                       const report::experiment_row& b) {
            if (a.pl_gates != b.pl_gates || a.ee_gates != b.ee_gates ||
                a.delay_no_ee != b.delay_no_ee || a.delay_ee != b.delay_ee ||
                a.ee_detail.triggers_added != b.ee_detail.triggers_added ||
                a.ee_detail.masters_considered != b.ee_detail.masters_considered ||
                a.ee_detail.applied.size() != b.ee_detail.applied.size()) {
                return false;
            }
            for (std::size_t k = 0; k < a.ee_detail.applied.size(); ++k) {
                const ee::applied_trigger& x = a.ee_detail.applied[k];
                const ee::applied_trigger& y = b.ee_detail.applied[k];
                if (x.master != y.master || x.trigger != y.trigger ||
                    x.candidate.support != y.candidate.support ||
                    x.candidate.function != y.candidate.function) {
                    return false;
                }
            }
            return true;
        };
        for (std::size_t level = 1; level < fleets.size(); ++level) {
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (!rows_identical(fleets[0].results[i].row,
                                    fleets[level].results[i].row)) {
                    std::fprintf(stderr,
                                 "DETERMINISM VIOLATION on %s between thread "
                                 "levels %u and %u\n",
                                 fleets[0].results[i].id.c_str(),
                                 fleets[0].threads, fleets[level].threads);
                    return 1;
                }
            }
        }
        std::printf("per-circuit results bit-identical across all %zu thread "
                    "levels.\n",
                    fleets.size());

        // Instrumentation overhead A/B: interleaved telemetry-on / telemetry-
        // off rounds at the top thread level.  The off arm runs the identical
        // pipeline with every span/recorder/histogram hook compiled in but
        // unwired, so the wall-time delta isolates the cost of *live*
        // instrumentation (budget: <= 2%, see src/obs/README.md).
        // Interleaving the arms round-robin cancels thermal / frequency drift
        // that a run-all-of-A-then-all-of-B shape would fold into the delta.
        const unsigned ab_threads = levels.back();
        constexpr int k_ab_rounds = 3;
        double wall_on = 0.0;
        double wall_off = 0.0;
        for (int round = 0; round < k_ab_rounds; ++round) {
            for (int arm = 0; arm < 2; ++arm) {
                runner::fleet_options opts;
                opts.num_threads = ab_threads;
                opts.experiment.measure.num_vectors = vectors;
                opts.telemetry = arm == 0;
                const runner::fleet_result fleet = runner::run_fleet(jobs, opts);
                (arm == 0 ? wall_on : wall_off) += fleet.wall_ms;
            }
        }
        const double obs_overhead_pct =
            wall_off > 0.0 ? 100.0 * (wall_on - wall_off) / wall_off : 0.0;
        std::printf("instrumentation overhead (%d interleaved rounds, %u "
                    "threads): %+.2f%% wall (telemetry on %.0f ms vs off "
                    "%.0f ms)\n",
                    k_ab_rounds, ab_threads, obs_overhead_pct,
                    wall_on / k_ab_rounds, wall_off / k_ab_rounds);

        // Warm-restart phase: a cold fleet saves its trigger-cache snapshot,
        // an identical fleet reloads it.  The warm run must reproduce every
        // row bit-for-bit (the snapshot can shift *which* lookup pays each
        // miss, never a result) and its miss count collapses to ~0 — the
        // durable-cache payoff as a measured number rather than a claim.
        const std::string snap_path =
            (std::filesystem::temp_directory_path() / "bench_fleet_cache.snap")
                .string();
        std::filesystem::remove(snap_path);
        runner::fleet_result cold_fleet;
        runner::fleet_result warm_fleet;
        for (int arm = 0; arm < 2; ++arm) {
            runner::fleet_options opts;
            opts.num_threads = levels.back();
            opts.experiment.measure.num_vectors = vectors;
            if (arm == 0) {
                opts.cache_save_path = snap_path;
            } else {
                opts.cache_load_path = snap_path;
            }
            (arm == 0 ? cold_fleet : warm_fleet) = runner::run_fleet(jobs, opts);
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (!rows_identical(cold_fleet.results[i].row,
                                warm_fleet.results[i].row)) {
                std::fprintf(stderr,
                             "WARM-RESTART DETERMINISM VIOLATION on %s\n",
                             cold_fleet.results[i].id.c_str());
                return 1;
            }
        }
        std::printf(
            "warm restart: load %s, %llu records loaded, hit rate %.1f%% -> "
            "%.1f%% (misses %llu -> %llu), rows bit-identical\n",
            warm_fleet.cache_load_outcome.c_str(),
            static_cast<unsigned long long>(warm_fleet.cache_loaded),
            100.0 * cold_fleet.cache_hit_rate(),
            100.0 * warm_fleet.cache_hit_rate(),
            static_cast<unsigned long long>(cold_fleet.cache_misses),
            static_cast<unsigned long long>(warm_fleet.cache_misses));
        std::filesystem::remove(snap_path);

        if (!json_path.empty()) {
            report::json root = report::json::object();
            root.set("schema_version",
                     report::json::number(runner::k_fleet_schema_version));
            root.set("bench", report::json::str("fleet_scaling"));
            root.set("circuits", report::json::number(circuits));
            root.set("gates", report::json::number(gates));
            root.set("scenario", report::json::str(scenario_name));
            root.set("seed", report::json::number(static_cast<std::int64_t>(seed)));
            root.set("vectors", report::json::number(vectors));
            root.set("obs_overhead_pct", report::json::number(obs_overhead_pct));
            report::json warm = report::json::object();
            warm.set("load_outcome",
                     report::json::str(warm_fleet.cache_load_outcome));
            warm.set("records_loaded",
                     report::json::number(warm_fleet.cache_loaded));
            warm.set("cold_misses", report::json::number(cold_fleet.cache_misses));
            warm.set("warm_misses", report::json::number(warm_fleet.cache_misses));
            warm.set("cold_hit_rate",
                     report::json::number(cold_fleet.cache_hit_rate()));
            warm.set("warm_hit_rate",
                     report::json::number(warm_fleet.cache_hit_rate()));
            warm.set("cold_wall_ms", report::json::number(cold_fleet.wall_ms));
            warm.set("warm_wall_ms", report::json::number(warm_fleet.wall_ms));
            root.set("warm_restart", std::move(warm));
            root.set("scaling", std::move(scaling));
            root.write_file(json_path);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_fleet_scaling: %s\n", e.what());
        return 1;
    }
}
