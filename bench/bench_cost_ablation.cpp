// bench_cost_ablation — ablation of the Equation 1 design choices.
//
// The paper motivates two ingredients of the candidate score:
//  (a) arrival weighting — "a large coverage of a potential trigger function
//      may depend on slowly arriving signals and thus not be as effective";
//  (b) the cube-list derivation of triggers (Table 2), which we generalize
//      with an exact cofactor method.
//
// This bench compares four selection policies on the arithmetic-heavy
// benchmarks where EE matters:
//   equation1        — coverage x Mmax/Tmax, exact triggers (the default)
//   coverage-only    — drop the arrival weighting from the score
//   cube-list        — the paper's literal Table 2 derivation
//   no-gain-filter   — also implement triggers with Tmax >= Mmax

#include <cstdio>
#include <cstdlib>

#include "bench_circuits/itc99.hpp"
#include "report/experiment.hpp"
#include "report/table.hpp"

using namespace plee;

namespace {

struct policy {
    const char* name;
    ee::search_options search;
};

}  // namespace

int main() {
    std::size_t vectors = 100;
    if (const char* env = std::getenv("PLEE_VECTORS")) {
        vectors = static_cast<std::size_t>(std::atoi(env));
    }

    policy policies[4];
    policies[0].name = "equation1";
    policies[1].name = "coverage-only";
    policies[1].search.weight_by_arrival = false;
    policies[2].name = "cube-list";
    policies[2].search.method = ee::trigger_method::cube_list;
    policies[3].name = "no-gain-filter";
    policies[3].search.require_arrival_gain = false;

    for (const char* id : {"b07", "b11", "b12", "b14"}) {
        const nl::netlist n = bench::build_benchmark(id);
        std::printf("Cost-function ablation on %s (%zu vectors)\n", id, vectors);
        report::text_table t({"Policy", "EE Gates", "% Area Incr.",
                              "Avg Delay EE (ns)", "% Delay Decr."});
        for (const policy& p : policies) {
            report::experiment_options opts;
            opts.measure.num_vectors = vectors;
            opts.ee.search = p.search;
            const report::experiment_row row = report::run_ee_experiment(id, n, opts);
            t.add_row({p.name, std::to_string(row.ee_gates),
                       report::fmt(row.area_increase_pct, 0) + "%",
                       report::fmt(row.delay_ee, 1),
                       report::fmt(row.delay_decrease_pct, 1) + "%"});
            std::fflush(stdout);
        }
        std::printf("%s\n", t.to_string().c_str());
    }
    std::printf("Expected shape: equation1 matches or beats coverage-only;\n"
                "cube-list tracks equation1 closely (it loses only when the SOP\n"
                "cover is weaker than the cofactor test); dropping the arrival\n"
                "gain filter adds EE gates that cannot win and pays the extra\n"
                "Muller-C penalty for them.\n");
    return 0;
}
