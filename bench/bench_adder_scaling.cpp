// bench_adder_scaling — the known-good case the paper builds on: "Early
// evaluation for addition circuits is well known ... for addition circuits
// this case is particularly advantageous since carry-in signals are the
// latest in arriving among the three inputs."
//
// Ripple-carry adders of growing width are pushed through the full pipeline;
// EE's relative win must grow with the carry-chain depth, because the
// generate/kill triggers cut the expected carry propagation from O(n) to the
// longest propagate run (O(log n) on random inputs).

#include <cstdio>
#include <cstdlib>

#include "report/experiment.hpp"
#include "report/table.hpp"
#include "synth/rtl.hpp"

using namespace plee;

namespace {

nl::netlist make_adder(int width) {
    syn::module_builder m("adder" + std::to_string(width));
    const syn::bus a = m.input_bus("a", width);
    const syn::bus b = m.input_bus("b", width);
    const auto r = m.add(a, b);
    m.output_bus("sum", r.sum);
    m.output("cout", r.carry);
    return m.build();
}

}  // namespace

int main() {
    std::size_t vectors = 100;
    if (const char* env = std::getenv("PLEE_VECTORS")) {
        vectors = static_cast<std::size_t>(std::atoi(env));
    }

    std::printf("Ripple-carry adder scaling (%zu random vectors per width)\n\n",
                vectors);
    report::text_table t({"Width", "PL Gates", "EE Gates", "Avg Delay (ns)",
                          "Avg Delay EE (ns)", "% Delay Decr.", "EE hit rate"});

    for (int width : {4, 8, 12, 16, 24, 32}) {
        report::experiment_options opts;
        opts.measure.num_vectors = vectors;
        const report::experiment_row row =
            report::run_ee_experiment("adder", make_adder(width), opts);
        const double hits = static_cast<double>(row.stats_ee.ee_hits);
        const double total =
            hits + static_cast<double>(row.stats_ee.ee_misses);
        t.add_row({std::to_string(width), std::to_string(row.pl_gates),
                   std::to_string(row.ee_gates), report::fmt(row.delay_no_ee, 1),
                   report::fmt(row.delay_ee, 1),
                   report::fmt(row.delay_decrease_pct, 1) + "%",
                   total > 0 ? report::fmt(100.0 * hits / total, 0) + "%" : "-"});
        std::fflush(stdout);
    }
    std::printf("%s\n", t.to_string().c_str());
    std::printf("Expected shape: the no-EE delay grows linearly with width while\n"
                "the EE delay grows roughly with the longest propagate run, so\n"
                "the %% delay decrease climbs with width.\n");
    return 0;
}
