// bench_sim_queue — events/s of the two pl_simulator event-queue engines.
//
// The measure phase is the dominant per-circuit cost of a fleet job, so this
// bench times the simulator alone: a fleet mix of generated circuits (all
// four scenario presets round-robin) is mapped, EE-transformed, and then
// simulated repeatedly under both queue engines with identical stimulus.
// Before any timing, every circuit is cross-checked — wave records, stats
// and traces must be bit-identical between the engines (non-zero exit
// otherwise), so the throughput numbers compare two implementations of the
// same computation.
//
// Reported per scenario and for the whole mix: events/s under the heap and
// calendar engines and the speedup.  The mix row can fan circuits across
// worker threads (--threads) to mirror how the fleet runner drives shards.
//
// The `lanes` row measures the lane-parallel mode on the same mix.  Before
// timing, run_lanes under the default vector policy is cross-checked
// against 64 serial per-vector runs on every circuit (bit-identical
// outputs, times, delays and EE counters, non-zero exit on mismatch), and
// the three divergence policies — vector, fork-at-split, and the
// replay-from-t0 baseline (policy=replay, grouping off) — are cross-checked
// against each other the same way.  Then an interleaved A/B times the
// synchronous measure path — the lanes=1 golden loop (set/eval/read/latch
// per vector) against the 64-lane word-parallel loop — plus the PL event
// engine serial vs run_lanes under all three policies, reporting vectors/s
// each way and the fork arm's achieved lockstep fraction (the vector
// policy's is 1.0 by construction: it never splits a pass).
//
//   --circuits N       netlists in the mix                   (default 12)
//   --gates G          LUTs per netlist                      (default 150)
//   --vectors V        random vectors per run                (default 60)
//   --lane-vectors LV  vectors for the sync lanes A/B        (default 8192)
//   --seed S           generator + stimulus seed             (default 1)
//   --repeat R         timed repetitions per engine          (default 3)
//   --threads T        worker threads for the fleet-mix row  (default 1)
//   --json PATH        write BENCH_sim.json for cross-PR perf tracking

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "obs/histogram.hpp"
#include "obs/sink.hpp"
#include "plogic/pl_mapper.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "sim/measure.hpp"
#include "rt/wall_timer.hpp"
#include "sim/pl_sim.hpp"
#include "sim/stimulus.hpp"
#include "workload/workload.hpp"

using namespace plee;

namespace {

struct circuit {
    std::string scenario;
    nl::netlist sync;  ///< the synchronous source, for the golden-path A/B
    pl::pl_netlist pl;
    std::vector<std::vector<bool>> vectors;
    std::vector<sim::stimulus_block> blocks;  ///< same stimulus, lane-packed
};

struct engine_output {
    std::vector<sim::wave_record> waves;
    sim::sim_run_stats stats;
    std::vector<sim::trace_event> trace;
};

engine_output run_once(const circuit& c, sim::queue_kind queue,
                       bool collect_trace) {
    sim::sim_options opts;
    opts.queue = queue;
    opts.collect_trace = collect_trace;
    sim::pl_simulator simulator(c.pl, opts);
    engine_output out;
    out.waves = simulator.run(c.vectors);
    out.stats = simulator.stats();
    out.trace = simulator.trace();
    return out;
}

bool outputs_identical(const engine_output& a, const engine_output& b) {
    if (a.waves.size() != b.waves.size()) return false;
    for (std::size_t i = 0; i < a.waves.size(); ++i) {
        const sim::wave_record& x = a.waves[i];
        const sim::wave_record& y = b.waves[i];
        if (x.outputs != y.outputs || x.release_time != y.release_time ||
            x.input_stable != y.input_stable ||
            x.output_stable != y.output_stable) {
            return false;
        }
    }
    if (a.stats.events != b.stats.events || a.stats.firings != b.stats.firings ||
        a.stats.ee_hits != b.stats.ee_hits ||
        a.stats.ee_misses != b.stats.ee_misses ||
        a.stats.ee_wins != b.stats.ee_wins) {
        return false;
    }
    if (a.trace.size() != b.trace.size()) return false;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        if (a.trace[i].time != b.trace[i].time ||
            a.trace[i].edge != b.trace[i].edge ||
            a.trace[i].value != b.trace[i].value) {
            return false;
        }
    }
    return true;
}

/// Wall ms of the simulation runs themselves for every circuit in `group`,
/// fanned over `threads` workers (atomic work queue, same scheme as the
/// fleet runner).  Simulator construction (the per-netlist CSR/descriptor
/// build) happens outside the clock — this is the same cut
/// measure_average_delay uses for sim_wall_ms, so events/s here and the
/// fleet's sim_events_per_s measure the same thing.
double timed_pass(const std::vector<const circuit*>& group,
                  sim::queue_kind queue, unsigned threads,
                  std::uint64_t* events_out) {
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::int64_t> wall_ns{0};
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= group.size()) return;
            const circuit& c = *group[i];
            sim::sim_options opts;
            opts.queue = queue;
            sim::pl_simulator simulator(c.pl, opts);
            const wall_timer timer;
            simulator.run(c.vectors);
            events.fetch_add(simulator.stats().events);
            wall_ns.fetch_add(
                static_cast<std::int64_t>(std::llround(timer.elapsed_ms() * 1e6)));
        }
    };
    std::vector<std::thread> pool;
    if (threads <= 1) {
        worker();
    } else {
        for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
    }
    *events_out = events.load();
    // Summed per-run wall time: with T workers this is T x the elapsed time,
    // so events / wall stays per-core throughput at any thread count.
    return static_cast<double>(wall_ns.load()) * 1e-6;
}

/// Best-of-R events/s for one engine over a circuit group.
double best_events_per_s(const std::vector<const circuit*>& group,
                         sim::queue_kind queue, unsigned threads, int repeat,
                         std::uint64_t* events_out) {
    double best = 0.0;
    for (int r = 0; r < repeat; ++r) {
        std::uint64_t events = 0;
        const double ms = timed_pass(group, queue, threads, &events);
        if (ms > 0.0) best = std::max(best, 1000.0 * static_cast<double>(events) / ms);
        *events_out = events;
    }
    return best;
}

// --- Lane-parallel section ----------------------------------------------

struct lane_check {
    bool ok = true;
    std::uint64_t lane_vectors = 0;
    std::uint64_t lane_blocks = 0;
    std::uint64_t lane_runs = 0;
    std::uint64_t lane_splits = 0;
    std::uint64_t lane_forks = 0;

    /// Run-merging achieved vs possible, passes = from-t0 runs + fork
    /// resumes (mirrors measure_lanes' definition, aggregated).
    double lockstep_fraction() const {
        const std::uint64_t passes =
            std::min(lane_vectors, lane_runs + lane_forks);
        return lane_vectors > lane_blocks
                   ? static_cast<double>(lane_vectors - passes) /
                         static_cast<double>(lane_vectors - lane_blocks)
                   : 1.0;
    }
};

/// The replay-from-t0 baseline configuration: divergence handling exactly as
/// before fork-at-split landed (every minority branch replays, no
/// trigger-aware grouping).
sim::sim_options replay_baseline_options() {
    sim::sim_options opts;
    opts.lane_policy = sim::lane_split_policy::replay;
    opts.lane_group = false;
    return opts;
}

/// Fork-at-split with trigger-aware grouping: the scalar divergence
/// machinery the vector default replaced, kept as an explicit A/B arm.
sim::sim_options fork_options() {
    sim::sim_options opts;
    opts.lane_policy = sim::lane_split_policy::fork;
    return opts;
}

/// Lane engine golden gate: run_lanes over every block of `c` must match 64
/// serial single-vector runs bit for bit — sink values, per-vector stable
/// times — and the summed EE counters must be equal.
lane_check check_lanes_vs_serial(const circuit& c) {
    lane_check out;
    sim::pl_simulator lane_sim(c.pl, sim::sim_options{});
    sim::pl_simulator ref(c.pl, sim::sim_options{});
    sim::sim_run_stats lane_total{};
    sim::sim_run_stats ref_total{};
    std::vector<std::vector<bool>> one(1);
    for (const sim::stimulus_block& block : c.blocks) {
        const sim::lane_block_result lr = lane_sim.run_lanes(block);
        const sim::sim_run_stats& ls = lane_sim.stats();
        lane_total.ee_hits += ls.ee_hits;
        lane_total.ee_misses += ls.ee_misses;
        lane_total.ee_wins += ls.ee_wins;
        out.lane_vectors += ls.lane_vectors;
        out.lane_blocks += ls.lane_blocks;
        out.lane_runs += ls.lane_runs;
        out.lane_splits += ls.lane_splits;
        out.lane_forks += ls.lane_forks;
        for (std::size_t lane = 0; lane < block.num_vectors; ++lane) {
            block.extract(lane, one[0]);
            const std::vector<sim::wave_record> waves = ref.run(one);
            const sim::sim_run_stats& rs = ref.stats();
            ref_total.ee_hits += rs.ee_hits;
            ref_total.ee_misses += rs.ee_misses;
            ref_total.ee_wins += rs.ee_wins;
            const sim::wave_record& w = waves.front();
            if (w.input_stable != lr.input_stable[lane] ||
                w.output_stable != lr.output_stable[lane] ||
                w.delay() != lr.delay(lane)) {
                out.ok = false;
                return out;
            }
            for (std::size_t j = 0; j < w.outputs.size(); ++j) {
                if (w.outputs[j] != (((lr.outputs[j] >> lane) & 1u) != 0)) {
                    out.ok = false;
                    return out;
                }
            }
        }
    }
    out.ok = lane_total.ee_hits == ref_total.ee_hits &&
             lane_total.ee_misses == ref_total.ee_misses &&
             lane_total.ee_wins == ref_total.ee_wins;
    return out;
}

/// One timed pass of the lanes=1 golden loop (set/eval/read/latch per
/// vector, the measure_serial hot loop) over a circuit's stimulus.
double sync_scalar_pass(const circuit& c,
                        const std::vector<std::vector<bool>>& vecs,
                        std::size_t* sink) {
    nl::sync_simulator gold(c.sync);
    const std::vector<bool> expected(c.sync.outputs().size(), false);
    const wall_timer timer;
    for (const std::vector<bool>& v : vecs) {
        gold.set_inputs(v);
        gold.eval();
        *sink += gold.outputs_equal(expected) ? 1u : 0u;
        gold.latch();
    }
    return timer.elapsed_ms();
}

/// One timed pass of the lanes=64 golden loop (reset/set/eval/read per
/// block, the measure_lanes hot loop) over the same stimulus, packed.
double sync_lane_pass(const circuit& c,
                      const std::vector<sim::stimulus_block>& blocks,
                      std::uint64_t* sink) {
    nl::sync_lane_simulator gold(c.sync);
    std::vector<std::uint64_t> out(c.sync.outputs().size());
    const wall_timer timer;
    for (const sim::stimulus_block& b : blocks) {
        gold.reset();
        gold.set_inputs(b.words.data(), b.width);
        gold.eval();
        gold.output_values(out.data());
        for (const std::uint64_t w : out) *sink ^= w;
    }
    return timer.elapsed_ms();
}

/// One timed pass of the PL event engine, one single-vector run per vector
/// (the serial reference the lane engine is checked against).
double pl_serial_pass(const circuit& c) {
    sim::pl_simulator simulator(c.pl, sim::sim_options{});
    std::vector<std::vector<bool>> one(1);
    const wall_timer timer;
    for (const std::vector<bool>& v : c.vectors) {
        one[0] = v;
        simulator.run(one);
    }
    return timer.elapsed_ms();
}

/// One timed pass of the PL lane engine, run_lanes per block, under the
/// given options (vector default vs fork-at-split vs the replay baseline).
double pl_lane_pass(const circuit& c, const sim::sim_options& opts) {
    sim::pl_simulator simulator(c.pl, opts);
    const wall_timer timer;
    for (const sim::stimulus_block& b : c.blocks) simulator.run_lanes(b);
    return timer.elapsed_ms();
}

/// Three-policy agreement gate: vector (the default), fork-at-split, and
/// the replay-from-t0 baseline over the same blocks must agree on every
/// per-lane output bit, stable time and delay, and on the summed EE
/// counters.  Also accumulates the fork arm's pass accounting (for its
/// lockstep fraction, which characterizes the mix's divergence) and each
/// scalar policy's from-t0 run count so the report can show the replays
/// forking avoided.
bool check_policies_agree(const circuit& c, lane_check* fork_check,
                          std::uint64_t* replay_runs) {
    sim::pl_simulator vec_sim(c.pl, sim::sim_options{});
    sim::pl_simulator fork_sim(c.pl, fork_options());
    sim::pl_simulator replay_sim(c.pl, replay_baseline_options());
    sim::sim_run_stats vec_total{};
    sim::sim_run_stats fork_total{};
    sim::sim_run_stats replay_total{};
    for (const sim::stimulus_block& block : c.blocks) {
        const sim::lane_block_result vr = vec_sim.run_lanes(block);
        const sim::lane_block_result fr = fork_sim.run_lanes(block);
        const sim::lane_block_result rr = replay_sim.run_lanes(block);
        const sim::sim_run_stats& vs = vec_sim.stats();
        const sim::sim_run_stats& fs = fork_sim.stats();
        const sim::sim_run_stats& rs = replay_sim.stats();
        vec_total.ee_hits += vs.ee_hits;
        vec_total.ee_misses += vs.ee_misses;
        vec_total.ee_wins += vs.ee_wins;
        fork_total.ee_hits += fs.ee_hits;
        fork_total.ee_misses += fs.ee_misses;
        fork_total.ee_wins += fs.ee_wins;
        replay_total.ee_hits += rs.ee_hits;
        replay_total.ee_misses += rs.ee_misses;
        replay_total.ee_wins += rs.ee_wins;
        fork_check->lane_vectors += fs.lane_vectors;
        fork_check->lane_blocks += fs.lane_blocks;
        fork_check->lane_runs += fs.lane_runs;
        fork_check->lane_splits += fs.lane_splits;
        fork_check->lane_forks += fs.lane_forks;
        *replay_runs += rs.lane_runs;
        if (fr.outputs != rr.outputs || vr.outputs != fr.outputs) return false;
        for (std::size_t lane = 0; lane < block.num_vectors; ++lane) {
            if (fr.input_stable[lane] != rr.input_stable[lane] ||
                fr.output_stable[lane] != rr.output_stable[lane] ||
                fr.delay(lane) != rr.delay(lane) ||
                vr.input_stable[lane] != fr.input_stable[lane] ||
                vr.output_stable[lane] != fr.output_stable[lane] ||
                vr.delay(lane) != fr.delay(lane)) {
                return false;
            }
        }
    }
    return vec_total.ee_hits == fork_total.ee_hits &&
           vec_total.ee_misses == fork_total.ee_misses &&
           vec_total.ee_wins == fork_total.ee_wins &&
           fork_total.ee_hits == replay_total.ee_hits &&
           fork_total.ee_misses == replay_total.ee_misses &&
           fork_total.ee_wins == replay_total.ee_wins;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t circuits = 12;
    std::size_t gates = 150;
    std::size_t vectors = 60;
    std::size_t lane_vectors = 8192;
    std::uint64_t seed = 1;
    int repeat = 3;
    unsigned threads = 1;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (std::strcmp(argv[i], "--circuits") == 0) {
            if (const char* v = next()) circuits = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--gates") == 0) {
            if (const char* v = next()) gates = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--vectors") == 0) {
            if (const char* v = next()) vectors = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--lane-vectors") == 0) {
            if (const char* v = next()) lane_vectors = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            if (const char* v = next()) seed = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--repeat") == 0) {
            if (const char* v = next()) repeat = std::atoi(v);
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            if (const char* v = next())
                threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (const char* v = next()) json_path = v;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--circuits N] [--gates G] [--vectors V] "
                         "[--lane-vectors LV] [--seed S] [--repeat R] "
                         "[--threads T] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());

    try {
        // Fleet mix: the four presets round-robin, EE applied, shared stimulus
        // seed — the same shape the fleet runner simulates per shard.
        std::vector<circuit> mix;
        for (std::size_t i = 0; i < circuits; ++i) {
            const wl::scenario kind =
                wl::all_scenarios()[i % wl::all_scenarios().size()];
            circuit c;
            c.scenario = wl::to_string(kind);
            c.sync = wl::generate(wl::scenario_params(kind, gates, seed + i));
            pl::map_result mapped = pl::map_to_phased_logic(c.sync);
            ee::apply_early_evaluation(mapped.pl);
            c.pl = std::move(mapped.pl);
            c.blocks = sim::make_stimulus(vectors, c.pl.sources().size(),
                                          seed ^ (i * 0x9e3779b97f4a7c15ull));
            c.vectors = sim::random_vectors(vectors, c.pl.sources().size(),
                                            seed ^ (i * 0x9e3779b97f4a7c15ull));
            mix.push_back(std::move(c));
        }

        // Golden gate before any timing: both engines, bit-identical
        // everything (trace collection on, so trace contents are covered).
        for (const circuit& c : mix) {
            const engine_output heap =
                run_once(c, sim::queue_kind::binary_heap, true);
            const engine_output cal = run_once(c, sim::queue_kind::calendar, true);
            if (!outputs_identical(heap, cal)) {
                std::fprintf(stderr,
                             "FAIL: engines disagree on %s (gates=%zu seed=%llu)\n",
                             c.scenario.c_str(), gates,
                             static_cast<unsigned long long>(seed));
                return 1;
            }
        }
        std::printf("cross-check: %zu circuits bit-identical across engines\n\n",
                    mix.size());

        std::map<std::string, std::vector<const circuit*>> by_scenario;
        std::vector<const circuit*> all;
        for (const circuit& c : mix) {
            by_scenario[c.scenario].push_back(&c);
            all.push_back(&c);
        }

        report::text_table t(
            {"Workload", "Heap ev/s", "Calendar ev/s", "Speedup"});
        report::json rows = report::json::array();
        const auto add_row = [&](const std::string& name,
                                 const std::vector<const circuit*>& group,
                                 unsigned row_threads) {
            std::uint64_t events = 0;
            const double heap = best_events_per_s(
                group, sim::queue_kind::binary_heap, row_threads, repeat, &events);
            const double cal = best_events_per_s(
                group, sim::queue_kind::calendar, row_threads, repeat, &events);
            const double speedup = heap > 0.0 ? cal / heap : 0.0;
            t.add_row({name, report::fmt(heap, 0), report::fmt(cal, 0),
                       report::fmt(speedup, 2) + "x"});
            report::json j = report::json::object();
            j.set("workload", report::json::str(name));
            j.set("threads",
                  report::json::number(static_cast<std::int64_t>(row_threads)));
            j.set("events_per_run",
                  report::json::number(static_cast<std::int64_t>(events)));
            j.set("heap_events_per_s", report::json::number(heap));
            j.set("calendar_events_per_s", report::json::number(cal));
            j.set("speedup", report::json::number(speedup));
            rows.push(std::move(j));
            return speedup;
        };

        for (const auto& [name, group] : by_scenario) {
            add_row(name, group, /*row_threads=*/1);
        }
        const double mix_speedup =
            add_row("fleet-mix", all, threads);
        std::printf("%zu circuits x %zu gates, %zu vectors, best of %d "
                    "(fleet-mix at %u threads)\n\n%s\n",
                    circuits, gates, vectors, repeat, threads,
                    t.to_string().c_str());

        // --- Lanes row: 64-vector word-parallel mode on the same mix -----

        // Golden gate: run_lanes vs 64 serial per-vector runs, bit for bit.
        lane_check lanes{};
        for (const circuit& c : mix) {
            const lane_check lc = check_lanes_vs_serial(c);
            if (!lc.ok) {
                std::fprintf(stderr,
                             "FAIL: lane engine diverges from serial runs on "
                             "%s (gates=%zu seed=%llu)\n",
                             c.scenario.c_str(), gates,
                             static_cast<unsigned long long>(seed));
                return 1;
            }
            lanes.lane_vectors += lc.lane_vectors;
            lanes.lane_blocks += lc.lane_blocks;
            lanes.lane_runs += lc.lane_runs;
            lanes.lane_splits += lc.lane_splits;
            lanes.lane_forks += lc.lane_forks;
        }
        std::printf("cross-check: lane engine (vector policy) bit-identical "
                    "to serial runs on %zu circuits (%llu divergent words "
                    "widened)\n",
                    mix.size(),
                    static_cast<unsigned long long>(lanes.lane_splits));

        // Agreement gate: the vector default, fork-at-split, and the
        // replay-from-t0 baseline must produce identical per-lane results
        // (non-zero exit otherwise).
        lane_check fork_arm{};
        std::uint64_t replay_runs = 0;
        for (const circuit& c : mix) {
            if (!check_policies_agree(c, &fork_arm, &replay_runs)) {
                std::fprintf(stderr,
                             "FAIL: lane divergence policies disagree on "
                             "%s (gates=%zu seed=%llu)\n",
                             c.scenario.c_str(), gates,
                             static_cast<unsigned long long>(seed));
                return 1;
            }
        }
        std::printf("cross-check: vector == fork == replay per-lane on %zu "
                    "circuits (fork: %llu runs + %llu resumes, lockstep "
                    "%.3f; replay: %llu runs)\n",
                    mix.size(),
                    static_cast<unsigned long long>(fork_arm.lane_runs),
                    static_cast<unsigned long long>(fork_arm.lane_forks),
                    fork_arm.lockstep_fraction(),
                    static_cast<unsigned long long>(replay_runs));

        // Interleaved A/B: within every repetition each circuit runs the
        // scalar pass immediately followed by the lane pass, so frequency
        // drift hits both sides alike; best-of-R on the summed ms.
        double sync_scalar_ms = 1e300;
        double sync_lane_ms = 1e300;
        double pl_serial_ms = 1e300;
        double pl_lane_ms = 1e300;
        double pl_fork_ms = 1e300;
        double pl_replay_ms = 1e300;
        std::size_t scalar_sink = 0;
        std::uint64_t lane_sink = 0;
        std::vector<std::vector<std::vector<bool>>> sync_vecs;
        std::vector<std::vector<sim::stimulus_block>> sync_blocks;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            const std::uint64_t s = seed ^ ((i + circuits) * 0x9e3779b97f4a7c15ull);
            sync_vecs.push_back(sim::random_vectors(
                lane_vectors, mix[i].pl.sources().size(), s));
            sync_blocks.push_back(sim::make_stimulus(
                lane_vectors, mix[i].pl.sources().size(), s));
        }
        for (int r = 0; r < repeat; ++r) {
            double sc = 0.0, sl = 0.0, es = 0.0, el = 0.0, ef = 0.0, er = 0.0;
            for (std::size_t i = 0; i < mix.size(); ++i) {
                sc += sync_scalar_pass(mix[i], sync_vecs[i], &scalar_sink);
                sl += sync_lane_pass(mix[i], sync_blocks[i], &lane_sink);
                es += pl_serial_pass(mix[i]);
                el += pl_lane_pass(mix[i], sim::sim_options{});
                ef += pl_lane_pass(mix[i], fork_options());
                er += pl_lane_pass(mix[i], replay_baseline_options());
            }
            sync_scalar_ms = std::min(sync_scalar_ms, sc);
            sync_lane_ms = std::min(sync_lane_ms, sl);
            pl_serial_ms = std::min(pl_serial_ms, es);
            pl_lane_ms = std::min(pl_lane_ms, el);
            pl_fork_ms = std::min(pl_fork_ms, ef);
            pl_replay_ms = std::min(pl_replay_ms, er);
        }
        // Keep the per-vector output reads observable so the timed passes
        // cannot be optimized away.
        if (scalar_sink == static_cast<std::size_t>(-1) && lane_sink == 1) {
            std::printf("\n");
        }
        const double total_sync_vectors =
            static_cast<double>(lane_vectors * mix.size());
        const double total_pl_vectors =
            static_cast<double>(vectors * mix.size());
        const auto vps = [](double count, double ms) {
            return ms > 0.0 ? 1000.0 * count / ms : 0.0;
        };
        const double sync_scalar_vps = vps(total_sync_vectors, sync_scalar_ms);
        const double sync_lane_vps = vps(total_sync_vectors, sync_lane_ms);
        const double pl_serial_vps = vps(total_pl_vectors, pl_serial_ms);
        const double pl_lane_vps = vps(total_pl_vectors, pl_lane_ms);
        const double pl_fork_vps = vps(total_pl_vectors, pl_fork_ms);
        const double pl_replay_vps = vps(total_pl_vectors, pl_replay_ms);
        const double sync_speedup =
            sync_scalar_vps > 0.0 ? sync_lane_vps / sync_scalar_vps : 0.0;
        const double pl_speedup =
            pl_serial_vps > 0.0 ? pl_lane_vps / pl_serial_vps : 0.0;
        const double pl_fork_speedup =
            pl_serial_vps > 0.0 ? pl_fork_vps / pl_serial_vps : 0.0;
        const double pl_replay_speedup =
            pl_serial_vps > 0.0 ? pl_replay_vps / pl_serial_vps : 0.0;
        std::printf("\nlanes row (%zu lanes, %zu vectors/circuit on the sync "
                    "path, best of %d):\n",
                    sim::k_lanes, lane_vectors, repeat);
        std::printf("  sync golden path: scalar %.0f vec/s, lane %.0f vec/s "
                    "= %.1fx\n",
                    sync_scalar_vps, sync_lane_vps, sync_speedup);
        std::printf("  pl event engine : serial %.0f vec/s, vector %.0f "
                    "vec/s = %.1fx, fork %.0f vec/s = %.1fx, replay %.0f "
                    "vec/s = %.1fx, lockstep(fork) %.3f\n\n",
                    pl_serial_vps, pl_lane_vps, pl_speedup, pl_fork_vps,
                    pl_fork_speedup, pl_replay_vps, pl_replay_speedup,
                    fork_arm.lockstep_fraction());
        {
            report::json j = report::json::object();
            j.set("workload", report::json::str("lanes"));
            j.set("lanes", report::json::number(
                               static_cast<std::int64_t>(sim::k_lanes)));
            j.set("lane_vectors", report::json::number(
                                      static_cast<std::int64_t>(lane_vectors)));
            j.set("sync_scalar_vectors_per_s",
                  report::json::number(sync_scalar_vps));
            j.set("sync_lane_vectors_per_s",
                  report::json::number(sync_lane_vps));
            j.set("sync_speedup", report::json::number(sync_speedup));
            j.set("pl_serial_vectors_per_s",
                  report::json::number(pl_serial_vps));
            j.set("pl_lane_vectors_per_s", report::json::number(pl_lane_vps));
            j.set("pl_speedup", report::json::number(pl_speedup));
            j.set("pl_lane_fork_vectors_per_s",
                  report::json::number(pl_fork_vps));
            j.set("pl_fork_speedup", report::json::number(pl_fork_speedup));
            j.set("pl_lane_replay_vectors_per_s",
                  report::json::number(pl_replay_vps));
            j.set("pl_replay_speedup",
                  report::json::number(pl_replay_speedup));
            j.set("lane_splits",
                  report::json::number(
                      static_cast<std::int64_t>(lanes.lane_splits)));
            j.set("lane_forks",
                  report::json::number(
                      static_cast<std::int64_t>(fork_arm.lane_forks)));
            j.set("lane_runs_fork",
                  report::json::number(
                      static_cast<std::int64_t>(fork_arm.lane_runs)));
            j.set("lane_runs_replay",
                  report::json::number(
                      static_cast<std::int64_t>(replay_runs)));
            j.set("lockstep_fraction_fork",
                  report::json::number(fork_arm.lockstep_fraction()));
            rows.push(std::move(j));
        }

        // --- Completion-time distributions: plain PL vs EE ----------------
        // The paper's comparison is distributional — EE shifts the shape of
        // the per-vector completion-time distribution, not just its mean.
        // Measure the same mix both ways (fresh plain mapping vs the
        // EE-applied netlists above, identical stimulus seeds) and merge the
        // per-vector histograms fleet-wide.  Recorded in integer ps, printed
        // and emitted in ns.
        obs::hist_snapshot delay_plain;
        obs::hist_snapshot delay_ee;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            sim::measure_options mopts;
            mopts.num_vectors = vectors;
            mopts.seed = seed ^ (i * 0x9e3779b97f4a7c15ull);
            pl::map_result plain = pl::map_to_phased_logic(mix[i].sync);
            const sim::measure_result base =
                sim::measure_average_delay(plain.pl, &mix[i].sync, mopts);
            const sim::measure_result with_ee =
                sim::measure_average_delay(mix[i].pl, &mix[i].sync, mopts);
            delay_plain.merge(base.delay_hist);
            delay_ee.merge(with_ee.delay_hist);
        }
        const auto pctl = [](const obs::hist_snapshot& h, double p) {
            return static_cast<double>(h.value_at_percentile(p)) / 1e3;
        };
        std::printf("completion time p50/p90/p99/max (ns): plain "
                    "%.1f/%.1f/%.1f/%.1f -> ee %.1f/%.1f/%.1f/%.1f\n",
                    pctl(delay_plain, 50.0), pctl(delay_plain, 90.0),
                    pctl(delay_plain, 99.0),
                    static_cast<double>(delay_plain.max) / 1e3,
                    pctl(delay_ee, 50.0), pctl(delay_ee, 90.0),
                    pctl(delay_ee, 99.0),
                    static_cast<double>(delay_ee.max) / 1e3);

        if (!json_path.empty()) {
            report::json doc = report::json::object();
            doc.set("schema_version",
                    report::json::number(report::k_bench_schema_version));
            doc.set("benchmark", report::json::str("bench_sim_queue"));
            doc.set("circuits", report::json::number(circuits));
            doc.set("gates", report::json::number(gates));
            doc.set("vectors", report::json::number(vectors));
            doc.set("seed",
                    report::json::number(static_cast<std::int64_t>(seed)));
            doc.set("rows", std::move(rows));
            doc.set("fleet_mix_speedup", report::json::number(mix_speedup));
            doc.set("lanes", report::json::number(
                                 static_cast<std::int64_t>(sim::k_lanes)));
            doc.set("sync_lane_speedup", report::json::number(sync_speedup));
            doc.set("lockstep_fraction",
                    report::json::number(lanes.lockstep_fraction()));
            // Full bucket dumps so cross-PR tooling can diff the whole
            // distributions, not just the summary quantiles.
            doc.set("delay_hist_no_ee_ns",
                    obs::hist_to_json(delay_plain, 1e3, /*with_buckets=*/true));
            doc.set("delay_hist_ee_ns",
                    obs::hist_to_json(delay_ee, 1e3, /*with_buckets=*/true));
            doc.write_file(json_path);
            std::printf("wrote %s\n", json_path.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
