// bench_sim_queue — events/s of the two pl_simulator event-queue engines.
//
// The measure phase is the dominant per-circuit cost of a fleet job, so this
// bench times the simulator alone: a fleet mix of generated circuits (all
// four scenario presets round-robin) is mapped, EE-transformed, and then
// simulated repeatedly under both queue engines with identical stimulus.
// Before any timing, every circuit is cross-checked — wave records, stats
// and traces must be bit-identical between the engines (non-zero exit
// otherwise), so the throughput numbers compare two implementations of the
// same computation.
//
// Reported per scenario and for the whole mix: events/s under the heap and
// calendar engines and the speedup.  The mix row can fan circuits across
// worker threads (--threads) to mirror how the fleet runner drives shards.
//
//   --circuits N   netlists in the mix                       (default 12)
//   --gates G      LUTs per netlist                          (default 150)
//   --vectors V    random vectors per run                    (default 60)
//   --seed S       generator + stimulus seed                 (default 1)
//   --repeat R     timed repetitions per engine              (default 3)
//   --threads T    worker threads for the fleet-mix row      (default 1)
//   --json PATH    write BENCH_sim.json for cross-PR perf tracking

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ee/ee_transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "sim/measure.hpp"
#include "sim/pl_sim.hpp"
#include "workload/workload.hpp"

using namespace plee;

namespace {

struct circuit {
    std::string scenario;
    pl::pl_netlist pl;
    std::vector<std::vector<bool>> vectors;
};

struct engine_output {
    std::vector<sim::wave_record> waves;
    sim::sim_run_stats stats;
    std::vector<sim::trace_event> trace;
};

engine_output run_once(const circuit& c, sim::queue_kind queue,
                       bool collect_trace) {
    sim::sim_options opts;
    opts.queue = queue;
    opts.collect_trace = collect_trace;
    sim::pl_simulator simulator(c.pl, opts);
    engine_output out;
    out.waves = simulator.run(c.vectors);
    out.stats = simulator.stats();
    out.trace = simulator.trace();
    return out;
}

bool outputs_identical(const engine_output& a, const engine_output& b) {
    if (a.waves.size() != b.waves.size()) return false;
    for (std::size_t i = 0; i < a.waves.size(); ++i) {
        const sim::wave_record& x = a.waves[i];
        const sim::wave_record& y = b.waves[i];
        if (x.outputs != y.outputs || x.release_time != y.release_time ||
            x.input_stable != y.input_stable ||
            x.output_stable != y.output_stable) {
            return false;
        }
    }
    if (a.stats.events != b.stats.events || a.stats.firings != b.stats.firings ||
        a.stats.ee_hits != b.stats.ee_hits ||
        a.stats.ee_misses != b.stats.ee_misses ||
        a.stats.ee_wins != b.stats.ee_wins) {
        return false;
    }
    if (a.trace.size() != b.trace.size()) return false;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        if (a.trace[i].time != b.trace[i].time ||
            a.trace[i].edge != b.trace[i].edge ||
            a.trace[i].value != b.trace[i].value) {
            return false;
        }
    }
    return true;
}

/// Wall ms of the simulation runs themselves for every circuit in `group`,
/// fanned over `threads` workers (atomic work queue, same scheme as the
/// fleet runner).  Simulator construction (the per-netlist CSR/descriptor
/// build) happens outside the clock — this is the same cut
/// measure_average_delay uses for sim_wall_ms, so events/s here and the
/// fleet's sim_events_per_s measure the same thing.
double timed_pass(const std::vector<const circuit*>& group,
                  sim::queue_kind queue, unsigned threads,
                  std::uint64_t* events_out) {
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::int64_t> wall_ns{0};
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= group.size()) return;
            const circuit& c = *group[i];
            sim::sim_options opts;
            opts.queue = queue;
            sim::pl_simulator simulator(c.pl, opts);
            const auto start = std::chrono::steady_clock::now();
            simulator.run(c.vectors);
            const auto end = std::chrono::steady_clock::now();
            events.fetch_add(simulator.stats().events);
            wall_ns.fetch_add(
                std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                    .count());
        }
    };
    std::vector<std::thread> pool;
    if (threads <= 1) {
        worker();
    } else {
        for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
    }
    *events_out = events.load();
    // Summed per-run wall time: with T workers this is T x the elapsed time,
    // so events / wall stays per-core throughput at any thread count.
    return static_cast<double>(wall_ns.load()) * 1e-6;
}

/// Best-of-R events/s for one engine over a circuit group.
double best_events_per_s(const std::vector<const circuit*>& group,
                         sim::queue_kind queue, unsigned threads, int repeat,
                         std::uint64_t* events_out) {
    double best = 0.0;
    for (int r = 0; r < repeat; ++r) {
        std::uint64_t events = 0;
        const double ms = timed_pass(group, queue, threads, &events);
        if (ms > 0.0) best = std::max(best, 1000.0 * static_cast<double>(events) / ms);
        *events_out = events;
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t circuits = 12;
    std::size_t gates = 150;
    std::size_t vectors = 60;
    std::uint64_t seed = 1;
    int repeat = 3;
    unsigned threads = 1;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (std::strcmp(argv[i], "--circuits") == 0) {
            if (const char* v = next()) circuits = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--gates") == 0) {
            if (const char* v = next()) gates = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--vectors") == 0) {
            if (const char* v = next()) vectors = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            if (const char* v = next()) seed = std::strtoull(v, nullptr, 10);
        } else if (std::strcmp(argv[i], "--repeat") == 0) {
            if (const char* v = next()) repeat = std::atoi(v);
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            if (const char* v = next())
                threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (const char* v = next()) json_path = v;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--circuits N] [--gates G] [--vectors V] "
                         "[--seed S] [--repeat R] [--threads T] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());

    try {
        // Fleet mix: the four presets round-robin, EE applied, shared stimulus
        // seed — the same shape the fleet runner simulates per shard.
        std::vector<circuit> mix;
        for (std::size_t i = 0; i < circuits; ++i) {
            const wl::scenario kind =
                wl::all_scenarios()[i % wl::all_scenarios().size()];
            circuit c;
            c.scenario = wl::to_string(kind);
            pl::map_result mapped = pl::map_to_phased_logic(
                wl::generate(wl::scenario_params(kind, gates, seed + i)));
            ee::apply_early_evaluation(mapped.pl);
            c.pl = std::move(mapped.pl);
            c.vectors = sim::random_vectors(vectors, c.pl.sources().size(),
                                            seed ^ (i * 0x9e3779b97f4a7c15ull));
            mix.push_back(std::move(c));
        }

        // Golden gate before any timing: both engines, bit-identical
        // everything (trace collection on, so trace contents are covered).
        for (const circuit& c : mix) {
            const engine_output heap =
                run_once(c, sim::queue_kind::binary_heap, true);
            const engine_output cal = run_once(c, sim::queue_kind::calendar, true);
            if (!outputs_identical(heap, cal)) {
                std::fprintf(stderr,
                             "FAIL: engines disagree on %s (gates=%zu seed=%llu)\n",
                             c.scenario.c_str(), gates,
                             static_cast<unsigned long long>(seed));
                return 1;
            }
        }
        std::printf("cross-check: %zu circuits bit-identical across engines\n\n",
                    mix.size());

        std::map<std::string, std::vector<const circuit*>> by_scenario;
        std::vector<const circuit*> all;
        for (const circuit& c : mix) {
            by_scenario[c.scenario].push_back(&c);
            all.push_back(&c);
        }

        report::text_table t(
            {"Workload", "Heap ev/s", "Calendar ev/s", "Speedup"});
        report::json rows = report::json::array();
        const auto add_row = [&](const std::string& name,
                                 const std::vector<const circuit*>& group,
                                 unsigned row_threads) {
            std::uint64_t events = 0;
            const double heap = best_events_per_s(
                group, sim::queue_kind::binary_heap, row_threads, repeat, &events);
            const double cal = best_events_per_s(
                group, sim::queue_kind::calendar, row_threads, repeat, &events);
            const double speedup = heap > 0.0 ? cal / heap : 0.0;
            t.add_row({name, report::fmt(heap, 0), report::fmt(cal, 0),
                       report::fmt(speedup, 2) + "x"});
            report::json j = report::json::object();
            j.set("workload", report::json::str(name));
            j.set("threads",
                  report::json::number(static_cast<std::int64_t>(row_threads)));
            j.set("events_per_run",
                  report::json::number(static_cast<std::int64_t>(events)));
            j.set("heap_events_per_s", report::json::number(heap));
            j.set("calendar_events_per_s", report::json::number(cal));
            j.set("speedup", report::json::number(speedup));
            rows.push(std::move(j));
            return speedup;
        };

        for (const auto& [name, group] : by_scenario) {
            add_row(name, group, /*row_threads=*/1);
        }
        const double mix_speedup =
            add_row("fleet-mix", all, threads);
        std::printf("%zu circuits x %zu gates, %zu vectors, best of %d "
                    "(fleet-mix at %u threads)\n\n%s\n",
                    circuits, gates, vectors, repeat, threads,
                    t.to_string().c_str());

        if (!json_path.empty()) {
            report::json doc = report::json::object();
            doc.set("benchmark", report::json::str("bench_sim_queue"));
            doc.set("circuits", report::json::number(circuits));
            doc.set("gates", report::json::number(gates));
            doc.set("vectors", report::json::number(vectors));
            doc.set("seed",
                    report::json::number(static_cast<std::int64_t>(seed)));
            doc.set("rows", std::move(rows));
            doc.set("fleet_mix_speedup", report::json::number(mix_speedup));
            doc.write_file(json_path);
            std::printf("wrote %s\n", json_path.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
