// bench_micro — google-benchmark microbenchmarks for the algorithmic
// building blocks: trigger search throughput (the 14-support-set sweep the
// paper calls "practical" thanks to the LUT4 restriction), Quine–McCluskey
// covering, marked-graph verification, PL mapping, and event-simulation
// throughput.

#include <benchmark/benchmark.h>

#include "bench_circuits/itc99.hpp"
#include "bool/cube_list.hpp"
#include "ee/ee_transform.hpp"
#include "ee/trigger_cache.hpp"
#include "ee/trigger_search.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"

using namespace plee;

namespace {

std::uint64_t mix(std::uint64_t x) {
    return x * 6364136223846793005ull + 1442695040888963407ull;
}

void bm_trigger_search_lut4(benchmark::State& state) {
    std::uint64_t seed = 1;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table master(4, seed & 0xffff);
        if (master.support_size() < 2) continue;
        benchmark::DoNotOptimize(ee::find_best_trigger(master, {0, 1, 2, 3}));
    }
}
BENCHMARK(bm_trigger_search_lut4);

void bm_trigger_search_lut4_cached(benchmark::State& state) {
    // Netlists reuse functions heavily; model that with a small rotating set.
    std::vector<bf::truth_table> masters;
    std::uint64_t seed = 1;
    while (masters.size() < 32) {
        seed = mix(seed);
        const bf::truth_table f(4, seed & 0xffff);
        if (f.support_size() >= 2) masters.push_back(f);
    }
    ee::trigger_cache cache;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ee::find_best_trigger(masters[i++ % masters.size()], {0, 1, 2, 3},
                                  {}, &cache));
    }
    state.counters["hit%"] = cache.hits() + cache.misses() == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(cache.hits()) /
                                       static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(bm_trigger_search_lut4_cached);

void bm_trigger_search_cube_list(benchmark::State& state) {
    std::uint64_t seed = 1;
    ee::search_options opts;
    opts.method = ee::trigger_method::cube_list;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table master(4, seed & 0xffff);
        if (master.support_size() < 2) continue;
        benchmark::DoNotOptimize(ee::find_best_trigger(master, {0, 1, 2, 3}, opts));
    }
}
BENCHMARK(bm_trigger_search_cube_list);

void bm_isop_cover(benchmark::State& state) {
    std::uint64_t seed = 7;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table f(static_cast<int>(state.range(0)),
                                seed & ((1ull << (1 << state.range(0))) - 1));
        benchmark::DoNotOptimize(bf::isop_cover(f));
    }
}
BENCHMARK(bm_isop_cover)->Arg(4)->Arg(5);

void bm_map_to_pl(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b05");
    for (auto _ : state) {
        benchmark::DoNotOptimize(pl::map_to_phased_logic(n));
    }
}
BENCHMARK(bm_map_to_pl);

void bm_marked_graph_verify(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b05");
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapped.pl.verify());
    }
}
BENCHMARK(bm_marked_graph_verify);

void bm_apply_ee(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b05");
    for (auto _ : state) {
        state.PauseTiming();
        pl::map_result mapped = pl::map_to_phased_logic(n);
        state.ResumeTiming();
        benchmark::DoNotOptimize(ee::apply_early_evaluation(mapped.pl));
    }
}
BENCHMARK(bm_apply_ee);

void bm_event_sim_b07(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b07");
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    const auto vectors = sim::random_vectors(20, mapped.pl.sources().size(), 3);
    std::uint64_t events = 0;
    for (auto _ : state) {
        sim::pl_simulator simulator(mapped.pl);
        benchmark::DoNotOptimize(simulator.run(vectors));
        events += simulator.stats().events;
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(bm_event_sim_b07);

}  // namespace

BENCHMARK_MAIN();
