// bench_micro — google-benchmark microbenchmarks for the algorithmic
// building blocks: trigger search throughput (the 14-support-set sweep the
// paper calls "practical" thanks to the LUT4 restriction) in both the
// word-parallel and retained-scalar variants, Quine–McCluskey covering,
// marked-graph verification, PL mapping, and event-simulation throughput.
//
// `--json <path>` additionally writes the captured timings — and the
// word-vs-scalar speedups derived from them — as BENCH_trigger.json so the
// perf trajectory stays machine-readable across PRs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench_circuits/itc99.hpp"
#include "bool/cube_list.hpp"
#include "ee/ee_transform.hpp"
#include "ee/trigger_cache.hpp"
#include "ee/trigger_search.hpp"
#include "plogic/pl_mapper.hpp"
#include "report/json.hpp"
#include "sim/measure.hpp"

using namespace plee;

namespace {

std::uint64_t mix(std::uint64_t x) {
    return x * 6364136223846793005ull + 1442695040888963407ull;
}

void bm_trigger_search_lut4(benchmark::State& state) {
    std::uint64_t seed = 1;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table master(4, seed & 0xffff);
        if (master.support_size() < 2) continue;
        benchmark::DoNotOptimize(ee::find_best_trigger(master, {0, 1, 2, 3}));
    }
}
BENCHMARK(bm_trigger_search_lut4);

void bm_trigger_search_lut4_scalar(benchmark::State& state) {
    // The retained per-minterm reference kernels on the identical master
    // stream: the baseline the word-parallel speedup is measured against.
    std::uint64_t seed = 1;
    ee::search_options opts;
    opts.use_scalar_kernels = true;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table master(4, seed & 0xffff);
        if (master.support_size() < 2) continue;
        benchmark::DoNotOptimize(ee::find_best_trigger(master, {0, 1, 2, 3}, opts));
    }
}
BENCHMARK(bm_trigger_search_lut4_scalar);

void bm_trigger_search_lut4_cached(benchmark::State& state) {
    // Netlists reuse functions heavily; model that with a small rotating set.
    std::vector<bf::truth_table> masters;
    std::uint64_t seed = 1;
    while (masters.size() < 32) {
        seed = mix(seed);
        const bf::truth_table f(4, seed & 0xffff);
        if (f.support_size() >= 2) masters.push_back(f);
    }
    ee::trigger_cache cache;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ee::find_best_trigger(masters[i++ % masters.size()], {0, 1, 2, 3},
                                  {}, &cache));
    }
    state.counters["hit%"] = cache.hits() + cache.misses() == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(cache.hits()) /
                                       static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(bm_trigger_search_lut4_cached);

void bm_trigger_search_cube_list(benchmark::State& state) {
    std::uint64_t seed = 1;
    ee::search_options opts;
    opts.method = ee::trigger_method::cube_list;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table master(4, seed & 0xffff);
        if (master.support_size() < 2) continue;
        benchmark::DoNotOptimize(ee::find_best_trigger(master, {0, 1, 2, 3}, opts));
    }
}
BENCHMARK(bm_trigger_search_cube_list);

void bm_trigger_search_cube_list_scalar(benchmark::State& state) {
    std::uint64_t seed = 1;
    ee::search_options opts;
    opts.method = ee::trigger_method::cube_list;
    opts.use_scalar_kernels = true;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table master(4, seed & 0xffff);
        if (master.support_size() < 2) continue;
        benchmark::DoNotOptimize(ee::find_best_trigger(master, {0, 1, 2, 3}, opts));
    }
}
BENCHMARK(bm_trigger_search_cube_list_scalar);

void bm_exact_trigger_kernel(benchmark::State& state) {
    // The single-support word kernel in isolation: two conjunctive folds and
    // a shrink per call.
    std::uint64_t seed = 5;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table master(4, seed & 0xffff);
        benchmark::DoNotOptimize(ee::exact_trigger_function(master, 0b0111));
    }
}
BENCHMARK(bm_exact_trigger_kernel);

bf::truth_table random_wide_table(int n, std::uint64_t& seed) {
    bf::tt_words words{};
    for (int w = 0; w < bf::words_for(n); ++w) words[w] = (seed = mix(seed));
    return bf::truth_table(n, words);
}

void bm_trigger_search_lut7(benchmark::State& state) {
    // The multiword path end-to-end: 7-variable masters sweep all 63+ wide
    // support subsets through the two-word kernels.
    std::uint64_t seed = 9;
    const std::vector<int> arrivals = {0, 1, 2, 3, 4, 5, 6};
    for (auto _ : state) {
        const bf::truth_table master = random_wide_table(7, seed);
        if (master.support_size() < 2) continue;
        benchmark::DoNotOptimize(ee::find_best_trigger(master, arrivals));
    }
}
BENCHMARK(bm_trigger_search_lut7);

void bm_exact_trigger_kernel_lut8(benchmark::State& state) {
    // The widest kernel: four-word folds and shrink on an 8-variable master.
    std::uint64_t seed = 10;
    for (auto _ : state) {
        const bf::truth_table master = random_wide_table(8, seed);
        benchmark::DoNotOptimize(ee::exact_trigger_function(master, 0b10100001));
    }
}
BENCHMARK(bm_exact_trigger_kernel_lut8);

void bm_apply_ee_parallel(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b05");
    ee::ee_options opts;
    opts.num_threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        pl::map_result mapped = pl::map_to_phased_logic(n);
        state.ResumeTiming();
        benchmark::DoNotOptimize(ee::apply_early_evaluation(mapped.pl, opts));
    }
}
BENCHMARK(bm_apply_ee_parallel)->Arg(1)->Arg(2)->Arg(4);

void bm_isop_cover(benchmark::State& state) {
    std::uint64_t seed = 7;
    for (auto _ : state) {
        seed = mix(seed);
        const bf::truth_table f(static_cast<int>(state.range(0)),
                                seed & ((1ull << (1 << state.range(0))) - 1));
        benchmark::DoNotOptimize(bf::isop_cover(f));
    }
}
BENCHMARK(bm_isop_cover)->Arg(4)->Arg(5);

void bm_map_to_pl(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b05");
    for (auto _ : state) {
        benchmark::DoNotOptimize(pl::map_to_phased_logic(n));
    }
}
BENCHMARK(bm_map_to_pl);

void bm_marked_graph_verify(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b05");
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapped.pl.verify());
    }
}
BENCHMARK(bm_marked_graph_verify);

void bm_apply_ee(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b05");
    for (auto _ : state) {
        state.PauseTiming();
        pl::map_result mapped = pl::map_to_phased_logic(n);
        state.ResumeTiming();
        benchmark::DoNotOptimize(ee::apply_early_evaluation(mapped.pl));
    }
}
BENCHMARK(bm_apply_ee);

void bm_event_sim_b07(benchmark::State& state) {
    const nl::netlist n = bench::build_benchmark("b07");
    const pl::map_result mapped = pl::map_to_phased_logic(n);
    const auto vectors = sim::random_vectors(20, mapped.pl.sources().size(), 3);
    std::uint64_t events = 0;
    for (auto _ : state) {
        sim::pl_simulator simulator(mapped.pl);
        benchmark::DoNotOptimize(simulator.run(vectors));
        events += simulator.stats().events;
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(bm_event_sim_b07);

/// The normal console reporter, additionally capturing every run so --json
/// can re-emit it (plus derived speedups) through the repository's own
/// serializer.
class json_collector : public benchmark::ConsoleReporter {
public:
    struct row {
        std::string name;
        double real_ns = 0.0;
        double cpu_ns = 0.0;
    };

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& r : runs) {
            rows.push_back({r.benchmark_name(), r.GetAdjustedRealTime(),
                            r.GetAdjustedCPUTime()});
        }
        ConsoleReporter::ReportRuns(runs);
    }

    double real_ns_of(const std::string& name) const {
        for (const row& r : rows) {
            if (r.name == name) return r.real_ns;
        }
        return 0.0;
    }

    std::vector<row> rows;
};

void write_json(const json_collector& collected, const std::string& path) {
    report::json benches = report::json::array();
    for (const json_collector::row& r : collected.rows) {
        report::json b = report::json::object();
        b.set("name", report::json::str(r.name));
        b.set("real_ns_per_op", report::json::number(r.real_ns));
        b.set("cpu_ns_per_op", report::json::number(r.cpu_ns));
        benches.push(std::move(b));
    }

    report::json derived = report::json::object();
    const double word = collected.real_ns_of("bm_trigger_search_lut4");
    const double scalar = collected.real_ns_of("bm_trigger_search_lut4_scalar");
    if (word > 0.0 && scalar > 0.0) {
        derived.set("exact_search_speedup_vs_scalar",
                    report::json::number(scalar / word));
    }
    const double cword = collected.real_ns_of("bm_trigger_search_cube_list");
    const double cscalar =
        collected.real_ns_of("bm_trigger_search_cube_list_scalar");
    if (cword > 0.0 && cscalar > 0.0) {
        derived.set("cube_list_search_speedup_vs_scalar",
                    report::json::number(cscalar / cword));
    }

    // Fast-path regression row for the multiword truth-table refactor: the
    // LUT4 exact sweep at the last single-word commit against the current
    // multiword build.  The baseline is only meaningful when this run uses
    // the same machine and flags it was measured with, so the row is gated
    // on the caller supplying it: PLEE_LUT4_BASELINE_NS=<ns> (e.g. 662, the
    // pre-refactor number behind the committed BENCH_trigger.json).  A
    // ratio near (or below) 1.0 is the proof the <= 6 variable path still
    // runs the PR 1 register kernels; CI smoke runs (tiny min_time, other
    // hardware) leave the variable unset and get no bogus row.
    const char* baseline_env = std::getenv("PLEE_LUT4_BASELINE_NS");
    const double baseline_ns = baseline_env != nullptr ? std::atof(baseline_env) : 0.0;
    if (word > 0.0 && baseline_ns > 0.0) {
        report::json fast_path = report::json::object();
        fast_path.set("lut4_exact_ns_before_multiword",
                      report::json::number(baseline_ns));
        fast_path.set("lut4_exact_ns_after_multiword", report::json::number(word));
        fast_path.set("after_over_before",
                      report::json::number(word / baseline_ns));
        derived.set("multiword_fast_path", std::move(fast_path));
    }

    report::json root = report::json::object();
    root.set("schema_version",
             report::json::number(report::k_bench_schema_version));
    root.set("bench", report::json::str("trigger"));
    root.set("benchmarks", std::move(benches));
    root.set("derived", std::move(derived));
    root.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            args.push_back(argv[i]);
        }
    }
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
        return 1;
    }

    json_collector collected;
    benchmark::RunSpecifiedBenchmarks(&collected);
    benchmark::Shutdown();

    if (!json_path.empty()) {
        try {
            write_json(collected, json_path);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench_micro: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}
