// bench_threshold_sweep — the area/delay trade-off the paper describes in
// Sections 4-5: "It is also possible to reduce the increase in area by
// requiring a candidate trigger function to have a cost value that exceeds
// some threshold.  Thresholding the cost function allows for a tradeoff in
// area versus delay of a PL circuit."
//
// For three representative circuits (the cipher b11, the line-counter b07
// and the Viper CPU subset b14) the cost threshold is swept from 0 (EE
// everywhere profitable — the Table 3 configuration) to infinity (no EE);
// each point reports the EE gate count, the area increase and the delay
// decrease relative to the no-EE baseline.

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "bench_circuits/itc99.hpp"
#include "report/experiment.hpp"
#include "report/table.hpp"

using namespace plee;

int main() {
    std::size_t vectors = 100;
    if (const char* env = std::getenv("PLEE_VECTORS")) {
        vectors = static_cast<std::size_t>(std::atoi(env));
    }

    const double thresholds[] = {0.0, 60.0, 120.0, 240.0, 480.0, 960.0,
                                 std::numeric_limits<double>::infinity()};

    for (const char* id : {"b07", "b11", "b14"}) {
        const nl::netlist n = bench::build_benchmark(id);
        std::printf("Cost-threshold sweep on %s (%zu vectors)\n", id, vectors);
        report::text_table t({"Threshold", "EE Gates", "% Area Incr.",
                              "Avg Delay (ns)", "% Delay Decr."});

        double baseline_delay = 0.0;
        for (double threshold : thresholds) {
            report::experiment_options opts;
            opts.measure.num_vectors = vectors;
            opts.ee.search.cost_threshold = threshold;
            const report::experiment_row row =
                report::run_ee_experiment(id, n, opts);
            if (baseline_delay == 0.0) baseline_delay = row.delay_no_ee;

            t.add_row({threshold == std::numeric_limits<double>::infinity()
                           ? "inf (no EE)"
                           : report::fmt(threshold, 0),
                       std::to_string(row.ee_gates),
                       report::fmt(row.area_increase_pct, 0) + "%",
                       report::fmt(row.delay_ee, 1),
                       report::fmt(row.delay_decrease_pct, 1) + "%"});
            std::fflush(stdout);
        }
        std::printf("%s\n", t.to_string().c_str());
    }
    std::printf("Expected shape: EE gates and area fall monotonically with the\n"
                "threshold while the delay saving decays toward zero — the\n"
                "paper's area-versus-delay dial.\n");
    return 0;
}
