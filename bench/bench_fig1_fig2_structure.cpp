// bench_fig1_fig2_structure — regenerates the structural content of the
// paper's Figure 1 (the PL gate) and Figure 2 (the EE master/trigger pair).
//
// Figure 1 is demonstrated behaviourally: a LUT4 PL gate with LEDR-encoded
// inputs, its Muller-C completion detector, the output latches, and the
// producer/consumer feedback signals, traced over two firing waves.
//
// Figure 2 is demonstrated structurally: the paper's running example — a
// full-adder carry master F = C(A+B) + AB paired with the trigger
// F = AB + A'B' — is built as a real PL netlist and dumped both as a wiring
// report and as Graphviz (written to fig2_ee_pair.dot).

#include <cstdio>
#include <fstream>
#include <vector>

#include "bool/support.hpp"
#include "ee/ee_transform.hpp"
#include "plogic/ledr.hpp"
#include "plogic/pl_mapper.hpp"
#include "synth/rtl.hpp"

using namespace plee;

namespace {

void figure1_behavioural_trace() {
    std::printf("Figure 1. Phased Logic Gate Structure (behavioural trace)\n");
    std::printf("  components: input-phase completion detection (equivalence\n");
    std::printf("  gates + Muller-C), LUT4 function circuit, v/t output latches,\n");
    std::printf("  feedbacks fi (to producers) and fo (to consumers).\n\n");

    // A 4-input AND gate receiving one token per input per wave.
    pl::muller_c gate_phase(false);
    std::vector<pl::ledr_signal> inputs(4);
    pl::ledr_signal output;

    const bool wave_values[2][4] = {{true, true, false, true},
                                    {true, true, true, true}};
    for (int wave = 0; wave < 2; ++wave) {
        std::printf("wave %d:\n", wave + 1);
        std::vector<bool> phases;
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            inputs[i] = inputs[i].next_token(wave_values[wave][i]);
            std::printf("  input %zu token %s\n", i, inputs[i].to_string().c_str());
        }
        for (const auto& s : inputs) {
            phases.push_back(s.signal_phase() == pl::phase::odd);
        }
        const bool before = gate_phase.output();
        const bool after = gate_phase.update(phases);
        const bool fired = before != after;
        std::printf("  Muller-C saw matching input phases -> gate %s\n",
                    fired ? "FIRES" : "holds");
        if (fired) {
            bool lut_out = true;
            for (const auto& s : inputs) lut_out = lut_out && s.v;  // AND4
            output = output.next_token(lut_out);
            std::printf("  LUT4(AND) latched: output token %s\n",
                        output.to_string().c_str());
            std::printf("  fi (ack to producers) toggles to %d, fo (to consumers) "
                        "toggles to %d\n",
                        static_cast<int>(!after), static_cast<int>(output.signal_phase() ==
                                                                   pl::phase::even));
        }
    }
    std::printf("\n");
}

void figure2_structural_dump() {
    std::printf("Figure 2. Early Evaluation PL Gate Pair (structural dump)\n");
    std::printf("  master:  F = C(A+B) + AB   (full-adder carry)\n");
    std::printf("  trigger: F = AB + A'B'     (efire into the master)\n\n");

    // Build a - b - cin -> carry as real logic and apply the EE pass.  The
    // carry-in is given extra logic depth so the {A,B} trigger wins, as in
    // the paper's ripple-adder motivation.
    syn::module_builder m("fig2");
    auto& ar = m.arena();
    const syn::expr_id a = m.input("A");
    const syn::expr_id b = m.input("B");
    const syn::bus c_lo = m.input_bus("Clo", 2);
    const syn::bus c_hi = m.input_bus("Chi", 2);
    // carry-in = deep comparison logic (arrival depth > A, B).
    const syn::expr_id cin = m.eq(c_lo, c_hi);
    const syn::expr_id carry =
        ar.or_(ar.and_(cin, ar.or_(a, b)), ar.and_(a, b));
    m.output("COUT", carry);

    pl::map_result mapped = pl::map_to_phased_logic(m.build());
    const ee::ee_stats stats = ee::apply_early_evaluation(mapped.pl);

    std::printf("EE pairs created: %zu\n", stats.triggers_added);
    for (const ee::applied_trigger& at : stats.applied) {
        const pl::pl_gate& master = mapped.pl.gate(at.master);
        const pl::pl_gate& trig = mapped.pl.gate(at.trigger);
        std::printf("  master gate %u '%s' (LUT %s)\n", at.master,
                    master.name.c_str(), master.function.to_string().c_str());
        std::printf("    trigger gate %u over master pins {", at.trigger);
        bool first = true;
        for (int p : bf::support_members(at.candidate.support)) {
            std::printf("%s%d", first ? "" : ",", p);
            first = false;
        }
        std::printf("} trigger LUT %s\n", trig.function.to_string().c_str());
        std::printf("    coverage %.0f%%, Mmax %d, Tmax %d, cost %.1f\n",
                    at.candidate.coverage_percent, at.candidate.master_max_arrival,
                    at.candidate.trigger_max_arrival, at.candidate.cost);
        std::printf("    efire edge: trigger -> master (data), ack: master -> "
                    "trigger (the extra Muller-C pair)\n");
    }

    const pl::mg_report report = mapped.pl.verify();
    std::printf("\nmarked graph after EE: well-formed=%d live=%d safe=%d\n",
                report.well_formed, report.live, report.safe);

    std::ofstream dot("fig2_ee_pair.dot");
    dot << mapped.pl.to_dot("fig2_ee_pair");
    std::printf("Graphviz wiring written to fig2_ee_pair.dot (triggers drawn as "
                "diamonds, acks dashed, initial tokens starred).\n");
}

}  // namespace

int main() {
    figure1_behavioural_trace();
    figure2_structural_dump();
    return 0;
}
