// bench_pipeline_throughput — extension: Early Evaluation under token
// streaming.
//
// Table 3 uses the paper's vector-at-a-time protocol ("new values cannot be
// presented to the inputs until a stable output is generated").  PL circuits
// also run *pipelined*, with the environment injecting tokens as fast as the
// acknowledge feedbacks allow — the self-timed iterative-ring operation of
// the related work ([9], [12]).  This bench measures both protocols on the
// arithmetic benchmarks.  Pipelined throughput is set by the slowest token
// loop (register -> logic -> register); Early Evaluation shortens the
// forward path inside those loops, so the loop period shrinks and the
// throughput gain can even exceed the vector-at-a-time latency gain.

#include <cstdio>
#include <cstdlib>

#include "bench_circuits/itc99.hpp"
#include "ee/ee_transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "report/table.hpp"
#include "sim/measure.hpp"

using namespace plee;

namespace {

struct mode_result {
    double latency = 0.0;     ///< avg per-wave delay (non-pipelined)
    double throughput = 0.0;  ///< waves per microsecond (pipelined)
};

mode_result run_modes(const pl::pl_netlist& pl, std::size_t vectors,
                      std::uint64_t seed) {
    mode_result r;
    const auto stimulus = sim::random_vectors(vectors, pl.sources().size(), seed);
    {
        sim::sim_options opts;
        opts.non_pipelined = true;
        sim::pl_simulator simulator(pl, opts);
        const auto waves = simulator.run(stimulus);
        double sum = 0;
        for (const auto& w : waves) sum += w.delay();
        r.latency = sum / static_cast<double>(waves.size());
    }
    {
        sim::sim_options opts;
        opts.non_pipelined = false;
        sim::pl_simulator simulator(pl, opts);
        const auto waves = simulator.run(stimulus);
        const double makespan = waves.back().output_stable;
        r.throughput = makespan > 0 ? 1000.0 * static_cast<double>(waves.size()) /
                                          makespan
                                    : 0.0;
    }
    return r;
}

}  // namespace

int main() {
    std::size_t vectors = 100;
    if (const char* env = std::getenv("PLEE_VECTORS")) {
        vectors = static_cast<std::size_t>(std::atoi(env));
    }

    std::printf("Vector-at-a-time latency vs pipelined throughput "
                "(%zu vectors)\n\n", vectors);
    report::text_table t({"Circuit", "Latency (ns)", "Latency EE (ns)",
                          "Latency gain", "Thru (waves/us)", "Thru EE",
                          "Thru gain"});

    for (const char* id : {"b05", "b11", "b14"}) {
        const nl::netlist n = bench::build_benchmark(id);
        pl::map_result base = pl::map_to_phased_logic(n);
        pl::map_result eed = pl::map_to_phased_logic(n);
        ee::apply_early_evaluation(eed.pl);

        const mode_result mb = run_modes(base.pl, vectors, 77);
        const mode_result me = run_modes(eed.pl, vectors, 77);

        t.add_row({id, report::fmt(mb.latency, 1), report::fmt(me.latency, 1),
                   report::fmt_pct(100.0 * (mb.latency - me.latency) / mb.latency, 0),
                   report::fmt(mb.throughput, 1), report::fmt(me.throughput, 1),
                   report::fmt_pct(100.0 * (me.throughput - mb.throughput) /
                                       mb.throughput, 0)});
        std::fflush(stdout);
    }
    std::printf("%s\n", t.to_string().c_str());
    std::printf("Expected shape: both protocols gain; the deeper the logic\n"
                "inside the register-to-register token loops, the more the\n"
                "pipelined loop period shrinks — on the CPU subset the\n"
                "throughput gain exceeds the latency gain.\n");
    return 0;
}
