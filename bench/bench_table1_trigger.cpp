// bench_table1_trigger — regenerates Tables 1 and 2 of the paper.
//
// Table 1: truth tables of the full-adder carry-out master c(a+b) + ab and
// the trigger ab + a'b' over support {a, b}.
// Table 2: derivation of candidate trigger functions from the master's
// ON/OFF cube lists, with the per-cube {a,b} coverage column.
//
// The program then runs the full 6-support-set search with the paper's
// arrival assumption (carry-in arrives last) and reports the winning
// candidate, demonstrating Equation 1 end to end.

#include <cstdio>

#include "bool/cube_list.hpp"
#include "bool/support.hpp"
#include "ee/trigger_search.hpp"
#include "report/table.hpp"

using namespace plee;

namespace {

bf::truth_table carry_master() {
    const bf::truth_table a = bf::truth_table::variable(3, 0);
    const bf::truth_table b = bf::truth_table::variable(3, 1);
    const bf::truth_table c = bf::truth_table::variable(3, 2);
    return (c & (a | b)) | (a & b);
}

std::string support_name(std::uint32_t support) {
    static const char* names = "abc";
    std::string s = "{";
    for (int v : bf::support_members(support)) {
        if (s.size() > 1) s += ",";
        s += names[v];
    }
    return s + "}";
}

}  // namespace

int main() {
    const bf::truth_table master = carry_master();
    const bf::truth_table trigger = ee::exact_trigger_function(master, 0b011);

    std::printf("Table 1. Truth Tables for Master and Trigger Functions\n");
    std::printf("  master  = c(a+b) + ab   (full-adder carry-out)\n");
    std::printf("  trigger = ab + a'b'     (support {a,b})\n\n");
    {
        report::text_table t({"a b c", "Master", "Trigger"});
        for (std::uint32_t m = 0; m < 8; ++m) {
            // Paper's row order: a b c counting upward with a as the MSB.
            const bool av = (m >> 2) & 1u, bv = (m >> 1) & 1u, cv = m & 1u;
            const std::uint32_t minterm = (av ? 1u : 0u) | (bv ? 2u : 0u) | (cv ? 4u : 0u);
            const std::uint32_t packed = (av ? 1u : 0u) | (bv ? 2u : 0u);
            t.add_row({std::string(1, '0' + av) + " " + std::string(1, '0' + bv) +
                           " " + std::string(1, '0' + cv),
                       master.eval(minterm) ? "1" : "0",
                       trigger.eval(packed) ? "1" : "0"});
        }
        std::printf("%s\n", t.to_string().c_str());
    }

    std::printf("Table 2. Determination of Candidate Trigger Functions\n");
    const bf::on_off_cover cover = bf::make_on_off_cover(master);
    {
        report::text_table t(
            {"Master Cube", "Master Outputs", "{a,b} Coverage", "Trigger Function"});
        auto emit = [&](const bf::cube_list& cubes, const char* output) {
            for (const bf::cube& c : cubes.cubes()) {
                const bool confined = c.within_support(0b011);
                t.add_row({c.to_string(3), output,
                           confined ? std::to_string(c.num_minterms(3)) : "0",
                           confined ? "1" : "0"});
            }
        };
        emit(cover.off, "0");
        emit(cover.on, "1");
        std::printf("%s\n", t.to_string().c_str());
    }
    std::printf("f_ON(trig) cube list over {a,b}: ON %s, OFF %s  "
                "-> coverage 4/8 = 50%%\n\n",
                cover.on.restricted_to_support(0b011).to_string().c_str(),
                cover.off.restricted_to_support(0b011).to_string().c_str());

    std::printf("Full candidate search (paper Section 3): all support sets of\n"
                "3 or fewer variables, arrival depths a=0, b=0, c=2 (carry-in\n"
                "arrives last, as in a ripple chain):\n\n");
    {
        ee::search_options opts;
        opts.require_arrival_gain = false;  // show every candidate's score
        const ee::search_result r =
            ee::find_best_trigger(master, {0, 0, 2}, opts);
        report::text_table t({"Support", "Trigger", "Coverage", "Mmax", "Tmax", "Cost"});
        for (const ee::trigger_candidate& c : r.all) {
            t.add_row({support_name(c.support), c.function.to_string(),
                       report::fmt(c.coverage_percent, 0) + "%",
                       std::to_string(c.master_max_arrival),
                       std::to_string(c.trigger_max_arrival),
                       report::fmt(c.cost, 1)});
        }
        std::printf("%s\n", t.to_string().c_str());
        if (r.best) {
            std::printf("Best candidate: support %s, trigger %s, coverage %.0f%% "
                        "(the paper's ab + a'b' generate/kill detector).\n",
                        support_name(r.best->support).c_str(),
                        r.best->function.to_string().c_str(),
                        r.best->coverage_percent);
        }
    }
    return 0;
}
