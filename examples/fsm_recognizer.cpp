// fsm_recognizer — a control-dominated circuit through the whole flow.
//
// Takes the b02 BCD recognizer (an FSM fed one bit per wave), maps it to
// Phased Logic and streams two nibbles through the self-timed circuit,
// printing the token values wave by wave next to the synchronous golden
// model.  Also reports what Early Evaluation can and cannot do for a small
// FSM — the paper's Table 3 shows b02 gaining nothing, and this example
// shows why (no arrival skew to exploit).

#include <cstdio>

#include "bench_circuits/itc99.hpp"
#include "ee/ee_transform.hpp"
#include "netlist/sync_sim.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/pl_sim.hpp"

using namespace plee;

int main() {
    const nl::netlist netlist = bench::make_b02();
    std::printf("b02 'FSM that recognizes BCD numbers': %zu LUTs, %zu DFFs\n",
                netlist.num_luts(), netlist.dffs().size());

    pl::map_result mapped = pl::map_to_phased_logic(netlist);
    std::printf("PL mapping: %zu PL gates, %zu ack edges, %zu saved by "
                "feedback sharing\n",
                mapped.pl.num_pl_gates(), mapped.pl.num_ack_edges(),
                mapped.stats.acks_saved_by_natural_cycles +
                    mapped.stats.acks_saved_by_sharing);

    // Stream the nibbles 9 (1001, a BCD digit) and 12 (1100, not BCD),
    // MSB first, through the self-timed circuit.
    std::vector<std::vector<bool>> stream;
    for (unsigned nibble : {9u, 12u}) {
        for (int pos = 3; pos >= 0; --pos) {
            stream.push_back({((nibble >> pos) & 1u) != 0});
        }
    }

    sim::pl_simulator simulator(mapped.pl);
    const auto waves = simulator.run(stream);
    nl::sync_simulator gold(netlist);

    std::printf("\nwave | bit | valid last_bit | golden | input->output delay\n");
    for (std::size_t w = 0; w < waves.size(); ++w) {
        const auto expected = gold.cycle(stream[w]);
        std::printf("  %2zu |  %d  |   %d      %d     |  %d %d   | %.2f ns%s\n", w,
                    static_cast<int>(stream[w][0]),
                    static_cast<int>(waves[w].outputs[0]),
                    static_cast<int>(waves[w].outputs[1]),
                    static_cast<int>(expected[0]), static_cast<int>(expected[1]),
                    waves[w].delay(),
                    waves[w].outputs == expected ? "" : "  << MISMATCH");
    }
    std::printf("\nwave 3 asserts `valid` while the last bit of 1001 (=9)\n"
                "streams in; wave 7 stays low for 1100 (=12).\n");

    // Early Evaluation on a flat FSM: nothing to gain.
    pl::map_result ee_mapped = pl::map_to_phased_logic(netlist);
    const ee::ee_stats stats = ee::apply_early_evaluation(ee_mapped.pl);
    std::printf("\nEE pass on b02: %zu of %zu masters got a trigger — with a\n"
                "single serial input every signal arrives together, so no\n"
                "support subset is faster (Tmax < Mmax fails), matching the\n"
                "paper's 0-EE-gate row for this benchmark class.\n",
                stats.triggers_added, stats.masters_considered);
    return 0;
}
