// quickstart — the paper's running example, end to end, in ~60 lines of API.
//
// Builds a full adder, maps it to Phased Logic, lets the Early Evaluation
// pass discover the carry trigger ab + a'b' (Table 1), and measures the
// delay with and without EE on random stimulus.
//
//   $ ./quickstart

#include <cstdio>

#include "ee/ee_transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "report/experiment.hpp"
#include "synth/rtl.hpp"

using namespace plee;

int main() {
    // 1. Describe the circuit with the RTL builder: an 8-bit ripple adder, so
    //    the carry chain gives the later stages genuinely late carry-ins.
    syn::module_builder m("quickstart");
    const syn::bus a = m.input_bus("a", 8);
    const syn::bus b = m.input_bus("b", 8);
    const auto sum = m.add(a, b);
    m.output_bus("sum", sum.sum);
    m.output("carry", sum.carry);

    // 2. Synthesize to a LUT4+DFF netlist (the mapper enforces the paper's
    //    LUT4 fanin budget).
    const nl::netlist netlist = m.build();
    std::printf("synthesized: %zu LUT4 cells, %zu registers\n",
                netlist.num_luts(), netlist.dffs().size());

    // 3. Map to Phased Logic.  Every signal is closed into a live and safe
    //    marked-graph circuit by acknowledge feedbacks.
    pl::map_result mapped = pl::map_to_phased_logic(netlist);
    const pl::mg_report health = mapped.pl.verify();
    std::printf("phased logic: %zu PL gates, %zu ack edges "
                "(well-formed=%d live=%d safe=%d)\n",
                mapped.pl.num_pl_gates(), mapped.pl.num_ack_edges(),
                health.well_formed, health.live, health.safe);

    // 4. Apply generalized Early Evaluation (Section 3 of the paper).
    const ee::ee_stats stats = ee::apply_early_evaluation(mapped.pl);
    std::printf("early evaluation: %zu trigger gates attached\n",
                stats.triggers_added);
    for (const ee::applied_trigger& at : stats.applied) {
        std::printf("  master '%s': trigger %s, coverage %.0f%%, cost %.1f\n",
                    mapped.pl.gate(at.master).name.c_str(),
                    at.candidate.function.to_string().c_str(),
                    at.candidate.coverage_percent, at.candidate.cost);
    }

    // 5. Measure with the paper's protocol: 100 random vectors, average
    //    input-stable -> output-stable delay, outputs checked against the
    //    synchronous golden simulation on every wave.
    report::experiment_options opts;
    opts.measure.num_vectors = 100;
    const report::experiment_row row =
        report::run_ee_experiment("quickstart adder", netlist, opts);
    std::printf("\navg delay without EE: %.2f ns\n", row.delay_no_ee);
    std::printf("avg delay with EE:    %.2f ns\n", row.delay_ee);
    std::printf("speedup: %.1f%% for %.0f%% more gates\n",
                row.delay_decrease_pct, row.area_increase_pct);
    return 0;
}
