// ripple_adder_ee — a close look at Early Evaluation on the carry chain.
//
// Builds an 8-bit ripple-carry adder, prints the arrival-depth profile of
// the carry chain, the trigger chosen for every EE master, and a per-wave
// delay histogram with and without EE — making the "carry-in arrives last"
// mechanism of the paper visible.

#include <cstdio>
#include <map>

#include "bool/support.hpp"
#include "ee/ee_transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "sim/measure.hpp"
#include "synth/rtl.hpp"

using namespace plee;

namespace {

void print_histogram(const char* label, const std::vector<double>& delays) {
    std::map<int, int> buckets;
    for (double d : delays) ++buckets[static_cast<int>(d)];
    std::printf("%s\n", label);
    for (const auto& [bucket, count] : buckets) {
        std::printf("  %2d-%2d ns | %s (%d)\n", bucket, bucket + 1,
                    std::string(static_cast<std::size_t>(count), '#').c_str(),
                    count);
    }
}

}  // namespace

int main() {
    syn::module_builder m("adder8");
    const syn::bus a = m.input_bus("a", 8);
    const syn::bus b = m.input_bus("b", 8);
    const auto sum = m.add(a, b);
    m.output_bus("sum", sum.sum);
    m.output("cout", sum.carry);
    const nl::netlist netlist = m.build();

    pl::map_result base = pl::map_to_phased_logic(netlist);
    pl::map_result with_ee = pl::map_to_phased_logic(netlist);
    const ee::ee_stats stats = ee::apply_early_evaluation(with_ee.pl);

    // Arrival-depth profile: how late each gate's inputs get.
    const std::vector<int> depth = base.pl.arrival_depth();
    int max_depth = 0;
    for (pl::gate_id g = 0; g < base.pl.num_gates(); ++g) {
        max_depth = std::max(max_depth, depth[g]);
    }
    std::printf("8-bit ripple adder: %zu PL gates, carry chain depth %d\n",
                base.pl.num_pl_gates(), max_depth);

    std::printf("\nEE masters (%zu):\n", stats.triggers_added);
    for (const ee::applied_trigger& at : stats.applied) {
        std::printf("  depth %d: trigger over pins {",
                    at.candidate.master_max_arrival);
        bool first = true;
        for (int p : bf::support_members(at.candidate.support)) {
            std::printf("%s%d", first ? "" : ",", p);
            first = false;
        }
        std::printf("} coverage %.0f%% cost %.1f\n",
                    at.candidate.coverage_percent, at.candidate.cost);
    }

    sim::measure_options opts;
    opts.num_vectors = 200;
    const sim::measure_result r_base =
        sim::measure_average_delay(base.pl, &netlist, opts);
    const sim::measure_result r_ee =
        sim::measure_average_delay(with_ee.pl, &netlist, opts);

    std::printf("\nwithout EE: avg %.2f ns (min %.2f, max %.2f, stddev %.2f)\n",
                r_base.avg_delay, r_base.min_delay, r_base.max_delay,
                r_base.stddev);
    std::printf("with EE:    avg %.2f ns (min %.2f, max %.2f, stddev %.2f)\n",
                r_ee.avg_delay, r_ee.min_delay, r_ee.max_delay, r_ee.stddev);
    std::printf("EE hit rate: %.0f%% of master firings (%llu wins where the "
                "efire path was strictly faster)\n\n",
                100.0 * static_cast<double>(r_ee.stats.ee_hits) /
                    static_cast<double>(r_ee.stats.ee_hits + r_ee.stats.ee_misses),
                static_cast<unsigned long long>(r_ee.stats.ee_wins));

    print_histogram("delay histogram without EE:", r_base.delays);
    print_histogram("delay histogram with EE:", r_ee.delays);

    std::printf("\nNote the long no-EE tail: every wave pays the full carry\n"
                "ripple, while EE's delay tracks the longest propagate run of\n"
                "the actual operands (the average-case-vs-worst-case argument\n"
                "of the paper's introduction).\n");
    return 0;
}
