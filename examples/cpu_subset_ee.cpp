// cpu_subset_ee — Early Evaluation on a processor datapath (the b14 "Viper
// subset" benchmark), the circuit class where the paper reports its largest
// wins (38-45%).
//
// Prints the mapping statistics, where in the logic depth the EE triggers
// land, the distribution of trigger coverage, and the final Table 3-style
// row for this circuit.

#include <cstdio>
#include <map>

#include "bench_circuits/itc99.hpp"
#include "ee/ee_transform.hpp"
#include "plogic/pl_mapper.hpp"
#include "report/experiment.hpp"

using namespace plee;

int main() {
    const nl::netlist netlist = bench::make_b14();
    std::printf("b14 'Viper processor (subset)': %zu LUTs, %zu DFFs, "
                "%zu inputs, %zu outputs\n",
                netlist.num_luts(), netlist.dffs().size(),
                netlist.inputs().size(), netlist.outputs().size());

    pl::map_result mapped = pl::map_to_phased_logic(netlist);
    std::printf("PL mapping: %zu PL gates, %zu edges (%zu acks; %zu saved by "
                "natural cycles, %zu by sibling sharing)\n",
                mapped.pl.num_pl_gates(), mapped.pl.num_edges(),
                mapped.pl.num_ack_edges(),
                mapped.stats.acks_saved_by_natural_cycles,
                mapped.stats.acks_saved_by_sharing);

    const ee::ee_stats stats = ee::apply_early_evaluation(mapped.pl);
    std::printf("EE: %zu triggers on %zu candidate masters\n\n",
                stats.triggers_added, stats.masters_considered);

    // Where do the triggers live (master arrival depth) and how much do they
    // cover?
    std::map<int, int> by_depth;
    std::map<int, int> by_coverage;
    for (const ee::applied_trigger& at : stats.applied) {
        ++by_depth[at.candidate.master_max_arrival];
        ++by_coverage[static_cast<int>(at.candidate.coverage_percent) / 25 * 25];
    }
    std::printf("EE masters by input arrival depth (deeper = later inputs, "
                "more to win):\n");
    for (const auto& [depth, count] : by_depth) {
        std::printf("  depth %2d | %s (%d)\n", depth,
                    std::string(static_cast<std::size_t>(count * 60 / static_cast<int>(stats.triggers_added)) + 1, '#')
                        .c_str(),
                    count);
    }
    std::printf("\ntrigger coverage distribution:\n");
    for (const auto& [bucket, count] : by_coverage) {
        std::printf("  %2d-%2d%%   | %s (%d)\n", bucket, bucket + 24,
                    std::string(static_cast<std::size_t>(count * 60 / static_cast<int>(stats.triggers_added)) + 1, '#')
                        .c_str(),
                    count);
    }

    report::experiment_options opts;
    opts.measure.num_vectors = 50;
    const report::experiment_row row =
        report::run_ee_experiment("b14", netlist, opts);
    std::printf("\nTable 3-style row (50 vectors):\n");
    std::printf("  PL gates %zu | EE gates %zu | delay %.1f -> %.1f ns | "
                "area +%.0f%% | delay -%.0f%%\n",
                row.pl_gates, row.ee_gates, row.delay_no_ee, row.delay_ee,
                row.area_increase_pct, row.delay_decrease_pct);
    std::printf("  (paper: 3360 PL gates, 1565 EE gates, 332 -> 207 ns, "
                "+47%% area, -38%% delay)\n");
    return 0;
}
