// plee_flow — command-line driver for the whole Phased Logic / Early
// Evaluation pipeline.
//
//   plee_flow --bench b11                  run a built-in ITC99-style circuit
//   plee_flow --blif design.blif           run an imported BLIF netlist
//
// Options:
//   --vectors N        random vectors to simulate           (default 100)
//   --threshold X      EE cost threshold (Equation 1 units) (default 0)
//   --method M         trigger derivation: exact | cube     (default exact)
//   --no-ee            skip Early Evaluation (baseline only)
//   --threads N        EE trigger-search worker threads
//                      (default 0 = hardware_concurrency; bit-identical
//                      results at any count)
//   --seed S           stimulus seed                        (default fixed)
//   --queue Q          simulator event queue: calendar | heap
//                      (default calendar; results are bit-identical)
//   --lanes L          stimulus lanes per engine pass: 1 | 64
//                      (default 1 = the paper's sequential protocol; 64 =
//                      independent vectors, lane-parallel; see sim/README.md)
//   --lane-policy P    lane divergence handling: vector | fork | replay (default vector)
//   --delays D         delay model: default | tie (all components 1.0, the
//                      split-storm stressor)
//   --no-check         skip the per-firing EE invariant check
//   --dot FILE         write the PL netlist (post-EE) as Graphviz
//   --vcd FILE         write a token waveform of the measured run
//   --blif-out FILE    re-export the synchronous netlist as BLIF
//   --report           per-trigger detail (support, coverage, cost)
//   --metrics-out FILE write the process metrics registry as Prometheus
//                      text exposition (see src/obs/README.md)
//   --trace-out FILE   write a JSONL telemetry stream: the run's stage-span
//                      breakdown plus a registry snapshot (docs/schemas.md)
//   --cache-load FILE  merge a trigger-cache snapshot (src/persist/) into
//                      this run's cache before the EE search; corrupt or
//                      missing snapshots degrade to salvage/cold, never fail
//   --cache-save FILE  atomically save the warmed cache afterwards
//   --cache-verify M   oracle re-check of loaded triggers:
//                      off | sampled | full (default full)
//
// Exit status: 0 = ok, 1 = verification failure / bad arguments / fatal
// error, 2 = interrupted (SIGINT/SIGTERM: the first signal cancels the
// run cooperatively and still flushes --metrics-out/--trace-out/
// --cache-save through the atomic-rename path; a second signal hard-exits).

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "bench_circuits/itc99.hpp"
#include "bool/support.hpp"
#include "ee/concurrent_cache.hpp"
#include "ee/ee_transform.hpp"
#include "netlist/blif.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "persist/snapshot.hpp"
#include "plogic/pl_mapper.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "rt/cancel.hpp"
#include "sim/measure.hpp"
#include "sim/vcd.hpp"

using namespace plee;

namespace {

struct cli_options {
    std::string bench;
    std::string blif_in;
    std::size_t vectors = 100;
    double threshold = 0.0;
    ee::trigger_method method = ee::trigger_method::exact;
    bool apply_ee = true;
    unsigned threads = 0;  // 0 = hardware_concurrency
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    sim::queue_kind queue = sim::sim_options{}.queue;
    sim::lane_split_policy lane_policy = sim::sim_options{}.lane_policy;
    bool tie_delays = false;
    std::size_t lanes = 1;
    bool check_early_value = true;
    std::string dot_out;
    std::string vcd_out;
    std::string blif_out;
    bool per_trigger_report = false;
    std::string metrics_out;
    std::string trace_out;
    std::string cache_load;
    std::string cache_save;
    persist::verify_mode cache_verify = persist::verify_mode::full;
};

void usage() {
    std::fprintf(stderr,
                 "usage: plee_flow (--bench bXX | --blif FILE) [--vectors N] "
                 "[--threshold X]\n                 [--method exact|cube] [--no-ee] "
                 "[--threads N] [--seed S]\n                 [--queue calendar|heap] "
                 "[--lanes 1|64] [--lane-policy vector|fork|replay]\n"
                 "                 [--delays default|tie] [--no-check] [--dot FILE] "
                 "[--vcd FILE] [--blif-out FILE] [--report]\n"
                 "                 [--metrics-out FILE] [--trace-out FILE]\n"
                 "                 [--cache-load FILE] [--cache-save FILE] "
                 "[--cache-verify off|sampled|full]\n");
}

std::optional<cli_options> parse(int argc, char** argv) {
    cli_options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--bench") {
            if (const char* v = next()) o.bench = v; else return std::nullopt;
        } else if (arg == "--blif") {
            if (const char* v = next()) o.blif_in = v; else return std::nullopt;
        } else if (arg == "--vectors") {
            if (const char* v = next()) o.vectors = std::strtoull(v, nullptr, 10);
            else return std::nullopt;
        } else if (arg == "--threshold") {
            if (const char* v = next()) o.threshold = std::strtod(v, nullptr);
            else return std::nullopt;
        } else if (arg == "--method") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            if (std::strcmp(v, "exact") == 0) o.method = ee::trigger_method::exact;
            else if (std::strcmp(v, "cube") == 0) o.method = ee::trigger_method::cube_list;
            else return std::nullopt;
        } else if (arg == "--no-ee") {
            o.apply_ee = false;
        } else if (arg == "--threads") {
            if (const char* v = next()) {
                o.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            } else {
                return std::nullopt;
            }
        } else if (arg == "--seed") {
            if (const char* v = next()) o.seed = std::strtoull(v, nullptr, 10);
            else return std::nullopt;
        } else if (arg == "--queue") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            try {
                o.queue = sim::queue_kind_from_string(v);
            } catch (const std::invalid_argument&) {
                return std::nullopt;
            }
        } else if (arg == "--lanes") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            o.lanes = std::strtoull(v, nullptr, 10);
            if (o.lanes != 1 && o.lanes != sim::k_lanes) return std::nullopt;
        } else if (arg == "--lane-policy") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            try {
                o.lane_policy = sim::lane_split_policy_from_string(v);
            } catch (const std::invalid_argument&) {
                return std::nullopt;
            }
        } else if (arg == "--delays") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            if (std::string(v) == "tie") o.tie_delays = true;
            else if (std::string(v) != "default") return std::nullopt;
        } else if (arg == "--no-check") {
            o.check_early_value = false;
        } else if (arg == "--dot") {
            if (const char* v = next()) o.dot_out = v; else return std::nullopt;
        } else if (arg == "--vcd") {
            if (const char* v = next()) o.vcd_out = v; else return std::nullopt;
        } else if (arg == "--blif-out") {
            if (const char* v = next()) o.blif_out = v; else return std::nullopt;
        } else if (arg == "--report") {
            o.per_trigger_report = true;
        } else if (arg == "--metrics-out") {
            if (const char* v = next()) o.metrics_out = v; else return std::nullopt;
        } else if (arg == "--trace-out") {
            if (const char* v = next()) o.trace_out = v; else return std::nullopt;
        } else if (arg == "--cache-load") {
            if (const char* v = next()) o.cache_load = v; else return std::nullopt;
        } else if (arg == "--cache-save") {
            if (const char* v = next()) o.cache_save = v; else return std::nullopt;
        } else if (arg == "--cache-verify") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            try {
                o.cache_verify = persist::parse_verify_mode(v);
            } catch (const std::invalid_argument&) {
                return std::nullopt;
            }
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return std::nullopt;
        }
    }
    if (o.bench.empty() == o.blif_in.empty()) return std::nullopt;  // exactly one
    return o;
}

/// All sinks go through the atomic temp+fsync+rename path, so an interrupt
/// never leaves a half-written artifact.
void write_text_file(const std::string& path, const std::string& text) {
    persist::atomic_write_text(path, text);
}

/// First SIGINT/SIGTERM cancels the run cooperatively (one atomic store —
/// async-signal-safe); a second hard-exits.
cancel_token g_interrupt;
std::atomic<int> g_signal_count{0};

extern "C" void on_signal(int) {
    if (g_signal_count.fetch_add(1, std::memory_order_relaxed) == 0) {
        g_interrupt.cancel();
    } else {
        ::_exit(130);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const std::optional<cli_options> parsed = parse(argc, argv);
    if (!parsed) {
        usage();
        return 1;
    }
    const cli_options& o = *parsed;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    // One trace + flight recorder for the whole flow: stage spans mirror the
    // fleet pipeline's, so a plee_flow --trace-out record reads like one
    // fleet job's.
    obs::trace trace;
    obs::flight_recorder recorder;
    const obs::recorder_scope ambient_recorder(&recorder);

    // The run's trigger cache when snapshots are in play.  Without either
    // cache flag the EE pass keeps its private per-pass caches, reproducing
    // the standalone counters exactly.
    ee::concurrent_trigger_cache cache;
    const bool use_cache = !o.cache_load.empty() || !o.cache_save.empty();

    // Sink flushing is shared between the normal exit and the interrupt
    // path, so a cancelled run still lands complete, atomically-renamed
    // artifacts.
    const auto flush_sinks = [&]() {
        if (!o.cache_save.empty()) {
            const obs::scoped_span span(&trace, "cache.save");
            persist::save_snapshot(o.cache_save, cache.export_image());
            std::printf("wrote %s (%zu cache entries)\n", o.cache_save.c_str(),
                        cache.size() + cache.canonicalized_masters());
        }
        if (!o.metrics_out.empty()) {
            write_text_file(o.metrics_out, obs::to_prometheus(
                                               obs::registry::global().snapshot()));
            std::printf("wrote %s\n", o.metrics_out.c_str());
        }
        if (!o.trace_out.empty()) {
            report::json flow = report::json::object();
            flow.set("type", report::json::str("flow"));
            flow.set("id", report::json::str(o.bench.empty() ? o.blif_in
                                                             : o.bench));
            flow.set("spans", obs::spans_to_json(trace.spans()));
            report::json metrics = report::json::object();
            metrics.set("type", report::json::str("metrics"));
            metrics.set("metrics",
                        obs::metrics_to_json(obs::registry::global().snapshot()));
            write_text_file(o.trace_out, flow.dump_compact() + "\n" +
                                             metrics.dump_compact() + "\n");
            std::printf("wrote %s\n", o.trace_out.c_str());
        }
    };

    try {
        // --- Front end -------------------------------------------------------
        nl::netlist netlist = [&] {
            if (!o.bench.empty()) return bench::build_benchmark(o.bench);
            std::ifstream in(o.blif_in);
            if (!in) throw std::runtime_error("cannot open " + o.blif_in);
            return nl::from_blif(in);
        }();
        std::printf("netlist: %zu LUTs, %zu DFFs, %zu inputs, %zu outputs\n",
                    netlist.num_luts(), netlist.dffs().size(),
                    netlist.inputs().size(), netlist.outputs().size());
        if (!o.blif_out.empty()) {
            std::ofstream out(o.blif_out);
            out << nl::to_blif(netlist, o.bench.empty() ? "imported" : o.bench);
            std::printf("wrote %s\n", o.blif_out.c_str());
        }

        // --- Phased Logic mapping --------------------------------------------
        pl::map_result mapped = [&] {
            const obs::scoped_span span(&trace, "map_to_pl");
            return pl::map_to_phased_logic(netlist);
        }();
        const pl::mg_report health = mapped.pl.verify();
        std::printf("phased logic: %zu PL gates, %zu acks (+%zu saved), "
                    "well-formed=%d live=%d safe=%d\n",
                    mapped.pl.num_pl_gates(), mapped.pl.num_ack_edges(),
                    mapped.stats.acks_saved_by_natural_cycles +
                        mapped.stats.acks_saved_by_sharing,
                    health.well_formed, health.live, health.safe);
        if (!health.ok()) return 1;

        // --- Early Evaluation ---------------------------------------------------
        if (use_cache && !o.cache_load.empty()) {
            const obs::scoped_span span(&trace, "cache.load");
            persist::load_options lo;
            lo.verify = o.cache_verify;
            lo.expected_mode = cache.mode();
            const persist::load_result loaded =
                persist::load_snapshot(o.cache_load, lo);
            if (loaded.loaded() > 0) cache.merge_from_snapshot(loaded.image);
            std::printf("cache snapshot load (%s): %llu loaded, %llu "
                        "rejected%s%s\n",
                        persist::to_string(loaded.outcome),
                        static_cast<unsigned long long>(loaded.loaded()),
                        static_cast<unsigned long long>(loaded.rejected),
                        loaded.detail.empty() ? "" : " — ",
                        loaded.detail.c_str());
        }
        if (o.apply_ee) {
            ee::ee_options opts;
            opts.search.cost_threshold = o.threshold;
            opts.search.method = o.method;
            opts.num_threads = o.threads;
            opts.recorder = &recorder;
            opts.cancel = &g_interrupt;
            if (use_cache) opts.shared_cache = &cache;
            const ee::ee_stats stats = [&] {
                const obs::scoped_span span(&trace, "ee.search");
                return ee::apply_early_evaluation(mapped.pl, opts);
            }();
            std::printf("early evaluation: %zu triggers on %zu masters "
                        "(+%.0f%% area)\n",
                        stats.triggers_added, stats.masters_considered,
                        mapped.pl.num_pl_gates() == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(stats.triggers_added) /
                                  static_cast<double>(mapped.pl.num_pl_gates()));
            if (o.per_trigger_report) {
                report::text_table t({"master", "support pins", "trigger",
                                      "coverage", "Mmax", "Tmax", "cost"});
                for (const ee::applied_trigger& at : stats.applied) {
                    std::string pins;
                    for (int p : bf::support_members(at.candidate.support)) {
                        if (!pins.empty()) pins += ",";
                        pins += std::to_string(p);
                    }
                    t.add_row({mapped.pl.gate(at.master).name.empty()
                                   ? "g" + std::to_string(at.master)
                                   : mapped.pl.gate(at.master).name,
                               pins, at.candidate.function.to_string(),
                               report::fmt(at.candidate.coverage_percent, 0) + "%",
                               std::to_string(at.candidate.master_max_arrival),
                               std::to_string(at.candidate.trigger_max_arrival),
                               report::fmt(at.candidate.cost, 1)});
                }
                std::printf("%s", t.to_string().c_str());
            }
        }
        if (!o.dot_out.empty()) {
            std::ofstream out(o.dot_out);
            out << mapped.pl.to_dot("plee_flow");
            std::printf("wrote %s\n", o.dot_out.c_str());
        }

        // --- Measurement ----------------------------------------------------------
        sim::measure_options mopts;
        mopts.num_vectors = o.vectors;
        mopts.seed = o.seed;
        mopts.lanes = o.lanes;
        // Lane tokens carry no single trace value; the VCD path below runs
        // its own scalar tracer, so the measured run stays trace-free.
        mopts.sim.collect_trace = !o.vcd_out.empty() && o.lanes == 1;
        mopts.sim.queue = o.queue;
        mopts.sim.lane_policy = o.lane_policy;
        if (o.tie_delays) {
            // Every delay component equal: all EE races tie, maximizing
            // mixed efire words (and thus lane splits).
            mopts.sim.delays = {1.0, 1.0, 1.0, 1.0, 1.0};
        }
        mopts.sim.check_early_value = o.check_early_value;
        mopts.sim.recorder = &recorder;
        mopts.sim.cancel = &g_interrupt;
        mopts.trace = &trace;

        const sim::measure_result r = [&] {
            const obs::scoped_span span(&trace, "measure");
            return sim::measure_average_delay(mapped.pl, &netlist, mopts);
        }();
        std::printf("simulated %zu vectors: avg delay %.2f ns (min %.2f, max "
                    "%.2f, stddev %.2f), outputs match golden model\n",
                    o.vectors, r.avg_delay, r.min_delay, r.max_delay, r.stddev);
        std::printf("simulator (%s queue, %zu lanes): %llu events in %.1f ms "
                    "= %.0f events/s, %.0f vectors/s\n",
                    sim::to_string(o.queue), o.lanes,
                    static_cast<unsigned long long>(r.stats.events),
                    r.sim_wall_ms,
                    r.sim_wall_ms > 0.0
                        ? 1000.0 * static_cast<double>(r.stats.events) / r.sim_wall_ms
                        : 0.0,
                    r.vectors_per_s());
        if (o.lanes > 1) {
            std::printf("lane engine (%s policy): %llu runs + %llu forks over "
                        "%llu blocks (%llu groups, %llu splits, %llu replays), "
                        "lockstep fraction %.3f, fork peak %llu B\n",
                        sim::to_string(o.lane_policy),
                        static_cast<unsigned long long>(r.stats.lane_runs),
                        static_cast<unsigned long long>(r.stats.lane_forks),
                        static_cast<unsigned long long>(r.stats.lane_blocks),
                        static_cast<unsigned long long>(r.stats.lane_groups),
                        static_cast<unsigned long long>(r.stats.lane_splits),
                        static_cast<unsigned long long>(r.stats.lane_replays),
                        r.lockstep_fraction,
                        static_cast<unsigned long long>(
                            r.stats.lane_fork_bytes_peak));
        }
        if (r.stats.ee_hits + r.stats.ee_misses > 0) {
            std::printf("EE firings: %llu hits / %llu misses (%llu strictly "
                        "early outputs)\n",
                        static_cast<unsigned long long>(r.stats.ee_hits),
                        static_cast<unsigned long long>(r.stats.ee_misses),
                        static_cast<unsigned long long>(r.stats.ee_wins));
        }
        if (!r.delay_hist.empty()) {
            // Recorded as integer picoseconds; print as ns to match avg delay.
            const obs::hist_snapshot& h = r.delay_hist;
            std::printf("delay percentiles (ns): p50 %.2f  p90 %.2f  p99 %.2f  "
                        "max %.2f\n",
                        static_cast<double>(h.value_at_percentile(50.0)) / 1e3,
                        static_cast<double>(h.value_at_percentile(90.0)) / 1e3,
                        static_cast<double>(h.value_at_percentile(99.0)) / 1e3,
                        static_cast<double>(h.max) / 1e3);
        }

        if (!o.vcd_out.empty()) {
            // Re-run with tracing (measure_average_delay constructs its own
            // simulator; a short dedicated run keeps the file readable).
            sim::sim_options sopts;
            sopts.collect_trace = true;
            sopts.queue = o.queue;
            sopts.check_early_value = o.check_early_value;
            sim::pl_simulator tracer(mapped.pl, sopts);
            tracer.run(sim::random_vectors(std::min<std::size_t>(o.vectors, 10),
                                           mapped.pl.sources().size(), o.seed));
            std::ofstream out(o.vcd_out);
            out << sim::to_vcd(mapped.pl, tracer.trace());
            std::printf("wrote %s (first %zu vectors)\n", o.vcd_out.c_str(),
                        std::min<std::size_t>(o.vectors, 10));
        }

        // --- Sinks (cache snapshot + telemetry) ------------------------------
        flush_sinks();
        return 0;
    } catch (const job_timeout& e) {
        // Interrupt or deadline: partial run, but every requested sink still
        // lands complete via the atomic-rename path.
        std::fprintf(stderr, "plee_flow: interrupted: %s\n", e.what());
        try {
            flush_sinks();
        } catch (const std::exception& flush_err) {
            std::fprintf(stderr, "plee_flow: sink flush failed: %s\n",
                         flush_err.what());
        }
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
