// plee_fleet — command-line driver for the sharded multi-netlist runner.
//
//   plee_fleet --circuits 8 --scenario datapath-like   synthetic fleet
//   plee_fleet --circuits itc99                        the full Table 3 suite
//   plee_fleet --circuits b05,b07,b10                  selected benchmarks
//
// Options:
//   --circuits X   fleet contents: a count (synthetic workloads), "itc99",
//                  or a comma-separated list of benchmark ids  (default 8)
//   --scenario S   synthetic scenario preset: random-dag | datapath-like |
//                  control-fsm | wide-adder | lut6-dag | lut8-datapath |
//                  mixed                                      (default mixed)
//   --gates G      LUTs per synthetic netlist                 (default 150)
//   --seed S       generator + stimulus seed                  (default fixed)
//   --threads N    worker pool size, 0 = hardware_concurrency (default 0)
//   --vectors V    random vectors per measurement             (default 20)
//   --queue Q      simulator event queue: calendar | heap     (default calendar)
//   --lanes L      stimulus lanes per engine pass: 1 | 64     (default 1)
//   --lane-policy P lane divergence handling: vector|fork|replay (default vector)
//   --delays D     delay model: default | tie (all components 1.0 — the
//                  split-storm stressor: every EE race is a tie)
//   --no-check     skip the per-firing EE invariant check in the simulator
//   --no-share     per-circuit private trigger caches instead of the
//                  fleet-shared concurrent cache
//   --json PATH    write the fleet result (summary + rows) as JSON
//
// Fault tolerance (see src/runner/README.md for the full semantics):
//   --job-deadline-ms MS   per-job wall-clock deadline (0 = none)
//   --max-retries N        retries for transient-classified failures
//   --fail-fast            abort the fleet on the first job failure
//   --inject SPEC          arm the deterministic fault injector, e.g.
//                          'seed=42;ee.search=0.5;sim.fire=1:delay=5'.
//                          Points: synth.map | ee.search | sim.fire |
//                          cache.lookup | cache.save | cache.load.  Fates:
//                          PROB (throw transient), :transient, :permanent,
//                          :delay=MS, and :torn (cache.save/cache.load only:
//                          truncate the snapshot I/O at a seeded offset).
//                          An unknown point name is a usage error (exit 1).
//
// Cache persistence (see src/persist/snapshot.hpp and docs/schemas.md):
//   --cache-load PATH      merge a trigger-cache snapshot into the shared
//                          cache before fan-out; corrupt/missing snapshots
//                          degrade to salvage or cold start, never an error
//   --cache-save PATH      atomically save the shared cache after the join
//   --cache-verify MODE    oracle re-check of loaded triggers:
//                          off | sampled | full              (default full)
//
// Telemetry (see src/obs/README.md and docs/schemas.md):
//   --metrics-out PATH     write the process metrics registry as Prometheus
//                          text exposition after the fleet completes
//   --trace-out PATH       write a JSONL telemetry stream: one record per
//                          job (stage spans; flight-recorder dump for non-ok
//                          jobs) plus one final registry-snapshot record
//   --no-telemetry         run with telemetry compiled in but unwired (the
//                          baseline arm of the overhead A/B)
//
// Every circuit runs the full synth -> PL-map -> EE -> simulate pipeline
// with golden-model verification.  Exit status: 0 = every job ok,
// 2 = fleet completed but some jobs failed/timed out (partial results) or
// the run was interrupted, 1 = fatal (bad arguments, fail-fast abort,
// internal error).
//
// SIGINT/SIGTERM: the first signal trips a fleet-wide cancel token —
// in-flight jobs stop at their next cooperative poll, queued jobs never
// start — and the partial results plus every requested sink (--json,
// --metrics-out, --trace-out, --cache-save) are still flushed through the
// atomic-rename path before exiting 2.  A second signal hard-exits
// immediately (status 130).

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_circuits/itc99.hpp"
#include "fault/injector.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "persist/snapshot.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "rt/cancel.hpp"
#include "runner/runner.hpp"
#include "sim/measure.hpp"
#include "workload/workload.hpp"

using namespace plee;

namespace {

void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--circuits N|itc99|bXX,bYY] [--scenario S|mixed]\n"
        "       [--gates G] [--seed S] [--threads N] [--vectors V]\n"
        "       [--queue calendar|heap] [--lanes 1|64] "
        "[--lane-policy vector|fork|replay]\n"
        "       [--delays default|tie] [--no-check] [--no-share]\n"
        "       [--job-deadline-ms MS] [--max-retries N] [--fail-fast]\n"
        "       [--inject SPEC] [--json PATH]\n"
        "       [--cache-load PATH] [--cache-save PATH] "
        "[--cache-verify off|sampled|full]\n"
        "       [--metrics-out PATH] [--trace-out PATH] [--no-telemetry]\n"
        "\n"
        "  --inject points: synth.map ee.search sim.fire cache.lookup "
        "cache.save cache.load\n"
        "  --inject fates:  PROB | PROB:transient | PROB:permanent |\n"
        "                   PROB:delay=MS | PROB:torn (cache.save/cache.load "
        "only)\n",
        argv0);
}

/// Fleet-wide interrupt: the first SIGINT/SIGTERM trips the cancel token
/// (one atomic store — async-signal-safe) and the main path finishes with
/// partial results + flushed sinks; a second signal hard-exits.
cancel_token g_interrupt;
std::atomic<int> g_signal_count{0};

extern "C" void on_signal(int) {
    if (g_signal_count.fetch_add(1, std::memory_order_relaxed) == 0) {
        g_interrupt.cancel();
    } else {
        ::_exit(130);
    }
}

bool interrupted() {
    return g_signal_count.load(std::memory_order_relaxed) > 0;
}

/// Every sink goes through the atomic temp+fsync+rename path so an
/// interrupt (or crash) never leaves a half-written artifact.
void write_text_file(const std::string& path, const std::string& text) {
    persist::atomic_write_text(path, text);
}

/// The --trace-out JSONL stream: one "job" record per job, one trailing
/// "metrics" record with the registry snapshot.
std::string trace_jsonl(const runner::fleet_result& fleet) {
    std::string out;
    for (const runner::job_result& r : fleet.results) {
        report::json rec = report::json::object();
        rec.set("type", report::json::str("job"));
        rec.set("id", report::json::str(r.id));
        rec.set("status", report::json::str(runner::to_string(r.status)));
        rec.set("attempts",
                report::json::number(static_cast<std::int64_t>(r.attempts)));
        rec.set("wall_ms", report::json::number(r.wall_ms));
        if (!r.error.empty()) rec.set("error", report::json::str(r.error));
        rec.set("spans", obs::spans_to_json(r.spans));
        if (!r.flight.empty()) {
            rec.set("flight_recorder", obs::flight_to_json(r.flight));
        }
        out += rec.dump_compact();
        out += '\n';
    }
    report::json rec = report::json::object();
    rec.set("type", report::json::str("metrics"));
    rec.set("metrics",
            obs::metrics_to_json(obs::registry::global().snapshot()));
    out += rec.dump_compact();
    out += '\n';
    return out;
}

std::vector<std::string> split_ids(const std::string& list) {
    std::vector<std::string> ids;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) ids.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return ids;
}

}  // namespace

int main(int argc, char** argv) {
    std::string circuits = "8";
    std::string scenario_name = "mixed";
    std::size_t gates = 150;
    std::uint64_t seed = sim::measure_options{}.seed;
    bool seed_given = false;
    unsigned threads = 0;
    std::size_t vectors = 20;
    bool share = true;
    sim::queue_kind queue = sim::sim_options{}.queue;
    sim::lane_split_policy lane_policy = sim::sim_options{}.lane_policy;
    bool tie_delays = false;
    std::size_t lanes = 1;
    bool check_early_value = true;
    std::string json_path;
    std::string metrics_path;
    std::string trace_path;
    bool telemetry = true;
    double job_deadline_ms = 0.0;
    unsigned max_retries = 0;
    bool fail_fast = false;
    std::string inject_spec;
    std::string cache_load_path;
    std::string cache_save_path;
    persist::verify_mode cache_verify = persist::verify_mode::full;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (std::strcmp(argv[i], "--circuits") == 0) {
            if (const char* v = next()) circuits = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--scenario") == 0) {
            if (const char* v = next()) scenario_name = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--gates") == 0) {
            if (const char* v = next()) gates = std::strtoull(v, nullptr, 10);
            else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            if (const char* v = next()) { seed = std::strtoull(v, nullptr, 10); seed_given = true; }
            else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            if (const char* v = next()) threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--vectors") == 0) {
            if (const char* v = next()) vectors = std::strtoull(v, nullptr, 10);
            else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--queue") == 0) {
            const char* v = next();
            if (v == nullptr) { usage(argv[0]); return 1; }
            try {
                queue = sim::queue_kind_from_string(v);
            } catch (const std::invalid_argument&) {
                usage(argv[0]);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--lanes") == 0) {
            const char* v = next();
            if (v == nullptr) { usage(argv[0]); return 1; }
            lanes = std::strtoull(v, nullptr, 10);
            if (lanes != 1 && lanes != sim::k_lanes) { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--lane-policy") == 0) {
            const char* v = next();
            if (v == nullptr) { usage(argv[0]); return 1; }
            try {
                lane_policy = sim::lane_split_policy_from_string(v);
            } catch (const std::invalid_argument&) {
                usage(argv[0]);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--delays") == 0) {
            const char* v = next();
            if (v == nullptr) { usage(argv[0]); return 1; }
            if (std::strcmp(v, "tie") == 0) tie_delays = true;
            else if (std::strcmp(v, "default") != 0) { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--no-check") == 0) {
            check_early_value = false;
        } else if (std::strcmp(argv[i], "--no-share") == 0) {
            share = false;
        } else if (std::strcmp(argv[i], "--job-deadline-ms") == 0) {
            if (const char* v = next()) job_deadline_ms = std::strtod(v, nullptr);
            else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--max-retries") == 0) {
            if (const char* v = next()) max_retries = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--fail-fast") == 0) {
            fail_fast = true;
        } else if (std::strcmp(argv[i], "--inject") == 0) {
            if (const char* v = next()) inject_spec = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--cache-load") == 0) {
            if (const char* v = next()) cache_load_path = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--cache-save") == 0) {
            if (const char* v = next()) cache_save_path = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--cache-verify") == 0) {
            const char* v = next();
            if (v == nullptr) { usage(argv[0]); return 1; }
            try {
                cache_verify = persist::parse_verify_mode(v);
            } catch (const std::invalid_argument&) {
                usage(argv[0]);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (const char* v = next()) json_path = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
            if (const char* v = next()) metrics_path = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            if (const char* v = next()) trace_path = v; else { usage(argv[0]); return 1; }
        } else if (std::strcmp(argv[i], "--no-telemetry") == 0) {
            telemetry = false;
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    if (!inject_spec.empty()) {
        try {
            fault::injector::instance().configure(inject_spec);
        } catch (const std::invalid_argument& e) {
            // Unknown point names and malformed specs are usage errors, not
            // silently-inert configuration.
            std::fprintf(stderr, "plee_fleet: %s\n", e.what());
            usage(argv[0]);
            return 1;
        }
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    try {
        std::vector<runner::fleet_job> jobs;
        const bool synthetic =
            !circuits.empty() &&
            circuits.find_first_not_of("0123456789") == std::string::npos;
        if (synthetic) {
            const std::size_t count = std::strtoull(circuits.c_str(), nullptr, 10);
            if (count == 0) {
                std::fprintf(stderr, "plee_fleet: --circuits must be > 0\n");
                return 1;
            }
            // The generator seed defaults to a small fixed value; the large
            // fixed stimulus seed stays on the measurement side.
            const std::uint64_t gen_seed = seed_given ? seed : 1;
            for (std::size_t i = 0; i < count; ++i) {
                const wl::scenario kind =
                    scenario_name == "mixed"
                        ? wl::all_scenarios()[i % wl::all_scenarios().size()]
                        : wl::scenario_from_string(scenario_name);
                runner::fleet_job job;
                job.id = std::string(wl::to_string(kind)) + "/" + std::to_string(i);
                job.description = job.id;
                job.netlist =
                    wl::generate(wl::scenario_params(kind, gates, gen_seed + i));
                jobs.push_back(std::move(job));
            }
        } else {
            std::vector<std::string> ids;
            if (circuits == "itc99") {
                for (const bench::benchmark_info& info : bench::itc99_suite()) {
                    ids.push_back(info.id);
                }
            } else {
                ids = split_ids(circuits);
            }
            for (const std::string& id : ids) {
                runner::fleet_job job;
                job.id = id;
                job.description = id;
                job.netlist = bench::build_benchmark(id);
                jobs.push_back(std::move(job));
            }
        }

        runner::fleet_options opts;
        opts.num_threads = threads;
        opts.share_trigger_cache = share;
        opts.job_deadline_ms = job_deadline_ms;
        opts.max_retries = max_retries;
        opts.fail_fast = fail_fast;
        opts.experiment.measure.num_vectors = vectors;
        opts.experiment.measure.lanes = lanes;
        opts.experiment.measure.sim.queue = queue;
        opts.experiment.measure.sim.lane_policy = lane_policy;
        if (tie_delays) {
            // Every delay component equal: all EE races tie, so mixed efire
            // words (and thus splits) are as frequent as the stimulus allows.
            opts.experiment.measure.sim.delays = {1.0, 1.0, 1.0, 1.0, 1.0};
        }
        opts.experiment.measure.sim.check_early_value = check_early_value;
        opts.telemetry = telemetry;
        if (seed_given) opts.experiment.measure.seed = seed;
        opts.cache_load_path = cache_load_path;
        opts.cache_save_path = cache_save_path;
        opts.cache_verify = cache_verify;
        opts.fleet_cancel = &g_interrupt;
        const runner::fleet_result fleet = runner::run_fleet(jobs, opts);

        report::text_table t({"Circuit", "Status", "PL Gates", "EE Gates",
                              "Delay (ns)", "Delay EE (ns)", "% Delay Decr.",
                              "Wall (ms)"});
        for (const runner::job_result& r : fleet.results) {
            t.add_row({r.id, runner::to_string(r.status),
                       std::to_string(r.row.pl_gates),
                       std::to_string(r.row.ee_gates),
                       report::fmt(r.row.delay_no_ee, 1),
                       report::fmt(r.row.delay_ee, 1),
                       report::fmt(r.row.delay_decrease_pct, 0) + "%",
                       report::fmt(r.wall_ms, 1)});
            if (!r.error.empty()) {
                std::fprintf(stderr, "plee_fleet: %s (attempt %u): %s\n",
                             r.id.c_str(), r.attempts, r.error.c_str());
            }
        }
        std::printf("%s\n", t.to_string().c_str());
        std::printf("fleet: %zu netlists, %u threads, %.0f ms wall, %.2f "
                    "netlists/s, %.0f sweeps/s\n",
                    fleet.results.size(), fleet.threads, fleet.wall_ms,
                    fleet.netlists_per_s(), fleet.sweeps_per_s());
        std::printf("status: %zu ok, %zu failed, %zu timed out, %zu budget "
                    "exhausted, %zu retried\n",
                    fleet.jobs_ok, fleet.jobs_failed, fleet.jobs_timed_out,
                    fleet.jobs_budget_exhausted, fleet.jobs_retried);
        std::printf("simulator (%s queue, %zu lanes): %llu events in %.0f ms "
                    "of summed shard time = %.0f events/s per core, %.0f "
                    "vectors/s\n",
                    sim::to_string(queue), lanes,
                    static_cast<unsigned long long>(fleet.total_sim_events),
                    fleet.total_sim_wall_ms, fleet.sim_events_per_s(),
                    fleet.vectors_per_s());
        if (lanes > 1) {
            std::printf("lane engine: lockstep fraction %.3f across the "
                        "fleet's measurements\n",
                        fleet.lockstep_fraction);
        }
        std::printf("trigger cache (%s): %.1f%% hit rate, %llu hits / %llu "
                    "misses, %zu entries\n",
                    share ? "fleet-shared" : "per-circuit",
                    100.0 * fleet.cache_hit_rate(),
                    static_cast<unsigned long long>(fleet.cache_hits),
                    static_cast<unsigned long long>(fleet.cache_misses),
                    fleet.cache_entries);
        if (!fleet.cache_load_outcome.empty()) {
            std::printf("cache snapshot load (%s): %llu loaded (%llu from "
                        "salvage), %llu rejected\n",
                        fleet.cache_load_outcome.c_str(),
                        static_cast<unsigned long long>(fleet.cache_loaded),
                        static_cast<unsigned long long>(fleet.cache_salvaged),
                        static_cast<unsigned long long>(fleet.cache_rejected));
        }
        if (!fleet.cache_save_error.empty()) {
            std::fprintf(stderr, "plee_fleet: cache save failed: %s\n",
                         fleet.cache_save_error.c_str());
        }

        if (!fleet.delay_hist_no_ee.empty() && !fleet.delay_hist_ee.empty()) {
            // The paper's comparison as a distribution, not a mean: fleet-wide
            // per-vector completion-time percentiles, ns (recorded in ps).
            const obs::hist_snapshot& h0 = fleet.delay_hist_no_ee;
            const obs::hist_snapshot& h1 = fleet.delay_hist_ee;
            std::printf("delay p50/p90/p99/max (ns): plain %.1f/%.1f/%.1f/%.1f"
                        " -> ee %.1f/%.1f/%.1f/%.1f\n",
                        h0.value_at_percentile(50) / 1e3,
                        h0.value_at_percentile(90) / 1e3,
                        h0.value_at_percentile(99) / 1e3, h0.max / 1e3,
                        h1.value_at_percentile(50) / 1e3,
                        h1.value_at_percentile(90) / 1e3,
                        h1.value_at_percentile(99) / 1e3, h1.max / 1e3);
        }

        if (!json_path.empty()) {
            report::json root = runner::to_json(fleet);
            root.set("bench", report::json::str("plee_fleet"));
            write_text_file(json_path, root.dump());
            std::printf("wrote %s\n", json_path.c_str());
        }
        if (!metrics_path.empty()) {
            write_text_file(
                metrics_path,
                obs::to_prometheus(obs::registry::global().snapshot()));
            std::printf("wrote %s\n", metrics_path.c_str());
        }
        if (!trace_path.empty()) {
            write_text_file(trace_path, trace_jsonl(fleet));
            std::printf("wrote %s\n", trace_path.c_str());
        }
        if (interrupted()) {
            std::fprintf(stderr,
                         "plee_fleet: interrupted — partial results and all "
                         "sinks flushed\n");
            return 2;
        }
        return fleet.all_ok() ? 0 : 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "plee_fleet: %s\n", e.what());
        return 1;
    }
}
