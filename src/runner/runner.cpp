#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "report/json.hpp"

namespace plee::runner {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Pulls job indices from the shared counter and runs the full pipeline on
/// each.  Results are slot-addressed by job index, so any interleaving
/// produces the same fleet_result.
void fleet_worker(const std::vector<fleet_job>& jobs,
                  const report::experiment_options& experiment,
                  std::atomic<std::size_t>& next,
                  std::vector<job_result>& results,
                  std::vector<std::exception_ptr>& errors) {
    for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        const auto start = std::chrono::steady_clock::now();
        try {
            results[i].id = jobs[i].id;
            results[i].row = report::run_ee_experiment(jobs[i].description,
                                                       jobs[i].netlist, experiment);
        } catch (...) {
            errors[i] = std::current_exception();
        }
        results[i].wall_ms = ms_between(start, std::chrono::steady_clock::now());
    }
}

}  // namespace

fleet_result run_fleet(const std::vector<fleet_job>& jobs,
                       const fleet_options& options) {
    fleet_result fleet;
    unsigned threads = options.num_threads != 0 ? options.num_threads
                                                : std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(jobs.size(), 1)));
    fleet.threads = threads;
    fleet.shared_cache = options.share_trigger_cache;
    fleet.results.resize(jobs.size());
    if (jobs.empty()) return fleet;

    ee::concurrent_trigger_cache shared_cache;
    report::experiment_options experiment = options.experiment;
    experiment.ee.num_threads = std::max(options.ee_threads_per_job, 1u);
    experiment.ee.shared_cache =
        options.share_trigger_cache ? &shared_cache : nullptr;

    std::vector<std::exception_ptr> errors(jobs.size());
    std::atomic<std::size_t> next{0};
    const auto start = std::chrono::steady_clock::now();
    if (threads <= 1) {
        fleet_worker(jobs, experiment, next, fleet.results, errors);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads - 1);
        for (unsigned t = 1; t < threads; ++t) {
            pool.emplace_back([&] {
                fleet_worker(jobs, experiment, next, fleet.results, errors);
            });
        }
        fleet_worker(jobs, experiment, next, fleet.results, errors);
        for (std::thread& t : pool) t.join();
    }
    fleet.wall_ms = ms_between(start, std::chrono::steady_clock::now());

    for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
    }

    for (const job_result& r : fleet.results) {
        fleet.total_pl_gates += r.row.pl_gates;
        fleet.total_ee_gates += r.row.ee_gates;
        fleet.total_triggers += r.row.ee_detail.triggers_added;
        fleet.total_sweeps += r.row.ee_detail.masters_considered;
        fleet.total_sim_events +=
            r.row.stats_no_ee.events + r.row.stats_ee.events;
        fleet.total_sim_wall_ms += r.row.sim_wall_ms;
        fleet.cache_hits += r.row.ee_detail.cache_hits;
        fleet.cache_misses += r.row.ee_detail.cache_misses;
        fleet.cache_entries += r.row.ee_detail.cache_entries;
    }
    if (options.share_trigger_cache) {
        // Per-job counters read zero under a shared memo; the fleet totals
        // live in the concurrent cache.
        fleet.cache_hits = shared_cache.hits();
        fleet.cache_misses = shared_cache.misses();
        fleet.cache_entries = shared_cache.size();
    }
    return fleet;
}

report::json to_json(const fleet_result& fleet, bool include_rows) {
    report::json j = report::json::object();
    j.set("threads", report::json::number(static_cast<std::int64_t>(fleet.threads)));
    j.set("shared_cache", report::json::boolean(fleet.shared_cache));
    j.set("netlists", report::json::number(fleet.results.size()));
    j.set("wall_ms", report::json::number(fleet.wall_ms));
    j.set("netlists_per_s", report::json::number(fleet.netlists_per_s()));
    j.set("sweeps_per_s", report::json::number(fleet.sweeps_per_s()));
    j.set("total_pl_gates", report::json::number(fleet.total_pl_gates));
    j.set("total_ee_gates", report::json::number(fleet.total_ee_gates));
    j.set("total_triggers", report::json::number(fleet.total_triggers));
    j.set("total_sweeps", report::json::number(fleet.total_sweeps));
    j.set("total_sim_events", report::json::number(
                                  static_cast<std::int64_t>(fleet.total_sim_events)));
    j.set("total_sim_wall_ms", report::json::number(fleet.total_sim_wall_ms));
    j.set("sim_events_per_s", report::json::number(fleet.sim_events_per_s()));
    j.set("cache_hits", report::json::number(static_cast<std::int64_t>(fleet.cache_hits)));
    j.set("cache_misses",
          report::json::number(static_cast<std::int64_t>(fleet.cache_misses)));
    j.set("cache_entries", report::json::number(fleet.cache_entries));
    j.set("cache_hit_rate", report::json::number(fleet.cache_hit_rate()));
    if (include_rows) {
        report::json rows = report::json::array();
        for (const job_result& r : fleet.results) {
            // Per-row cache counters are only meaningful without the shared
            // memo; the fleet-level counters above are authoritative.
            report::json row = report::to_json(r.row, !fleet.shared_cache);
            row.set("id", report::json::str(r.id));
            row.set("wall_ms", report::json::number(r.wall_ms));
            rows.push(std::move(row));
        }
        j.set("rows", std::move(rows));
    }
    return j;
}

}  // namespace plee::runner
