#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "bool/splitmix64.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "report/json.hpp"
#include "rt/errors.hpp"
#include "rt/wall_timer.hpp"
#include "sim/errors.hpp"

namespace plee::runner {

namespace {

std::uint64_t fnv1a(const std::string& s) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/// Runs one job to its terminal status: at most 1 + max_retries pipeline
/// attempts, each under a fresh deadline-armed cancel token.  Fills the
/// slot's row/status/error/attempts; stores the final failure for
/// fail_fast.  Never throws.
void run_job(const fleet_job& job, const report::experiment_options& experiment,
             const fleet_options& options, job_result& out,
             std::exception_ptr& error) {
    const unsigned max_attempts = options.max_retries + 1;
    const wall_timer timer;
    out.id = job.id;
    // Telemetry state for the whole job: the trace restarts per attempt (the
    // report carries the final attempt's breakdown), the recorder persists
    // across attempts so a post-mortem shows the retry history too.
    obs::trace trace;
    obs::flight_recorder recorder;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        out.attempts = attempt;
        cancel_token token;
        if (options.job_deadline_ms > 0.0) {
            token.set_deadline_after_ms(options.job_deadline_ms);
        }
        // Chain under the fleet-wide interrupt token: a SIGINT cancels this
        // attempt at its next cooperative poll, same path as a deadline.
        token.set_parent(options.fleet_cancel);
        report::experiment_options opts = experiment;
        opts.cancel = &token;
        opts.fault_context = job.id + "#" + std::to_string(attempt);
        if (job.max_events != 0) opts.measure.sim.max_events = job.max_events;
        if (job.lanes != 0) opts.measure.lanes = job.lanes;
        opts.telemetry = options.telemetry;
        if (options.telemetry) {
            trace.clear();
            opts.trace = &trace;
            opts.recorder = &recorder;
            recorder.record("job.attempt", attempt, max_attempts);
        }
        try {
            out.row =
                report::run_ee_experiment(job.description, job.netlist, opts);
            out.status = attempt > 1 ? job_status::retried_ok : job_status::ok;
            out.error.clear();
            error = nullptr;
            break;
        } catch (const job_timeout& e) {
            // Permanent by policy: the pipeline is deterministic and a retry
            // would multiply the wall time the deadline exists to bound.
            out.status = job_status::timed_out;
            out.error = e.what();
            error = std::current_exception();
            if (options.telemetry) {
                recorder.record_note("job.timeout", out.error, attempt);
            }
            break;
        } catch (const sim::budget_exhausted& e) {
            out.status = job_status::budget_exhausted;
            out.error = e.what();
            error = std::current_exception();
            if (options.telemetry) {
                recorder.record_note("job.budget_exhausted", out.error, attempt);
            }
            break;
        } catch (const std::exception& e) {
            out.status = job_status::failed;
            out.error = e.what();
            error = std::current_exception();
            if (options.telemetry) {
                recorder.record_note("job.error", out.error, attempt);
            }
            if (classify_exception(error) == failure_class::transient &&
                attempt < max_attempts) {
                const double backoff_ms = retry_backoff_ms(
                    job.id, attempt, options.retry_backoff_base_ms);
                if (options.telemetry) {
                    recorder.record("job.retry", attempt + 1,
                                    static_cast<std::uint64_t>(backoff_ms));
                }
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(backoff_ms));
                continue;
            }
            break;
        }
    }
    out.wall_ms = timer.elapsed_ms();
    // scoped_span closes during unwind, so the trace is well-formed even
    // when the final attempt threw — a failed job still reports how far it
    // got and where the time went.
    out.spans = trace.spans();
    if (!job_succeeded(out.status)) out.flight = recorder.dump();
}

/// Pulls job indices from the shared counter and runs each to its terminal
/// status.  Results are slot-addressed by job index, so any interleaving
/// produces the same fleet_result.
void fleet_worker(const std::vector<fleet_job>& jobs,
                  const report::experiment_options& experiment,
                  const fleet_options& options, std::atomic<std::size_t>& next,
                  std::vector<job_result>& results,
                  std::vector<std::exception_ptr>& errors) {
    for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        if (options.fleet_cancel != nullptr && options.fleet_cancel->expired()) {
            // Interrupted fleet: don't even start the remaining jobs; give
            // them the same terminal status an in-flight cancel produces.
            results[i].id = jobs[i].id;
            results[i].status = job_status::timed_out;
            results[i].error = "fleet interrupted before job started";
            results[i].attempts = 0;
            continue;
        }
        run_job(jobs[i], experiment, options, results[i], errors[i]);
    }
}

}  // namespace

const char* to_string(job_status status) {
    switch (status) {
        case job_status::ok: return "ok";
        case job_status::retried_ok: return "retried_ok";
        case job_status::failed: return "failed";
        case job_status::timed_out: return "timed_out";
        case job_status::budget_exhausted: return "budget_exhausted";
    }
    return "?";
}

double retry_backoff_ms(const std::string& job_id, unsigned attempt,
                        double base_ms) {
    if (base_ms <= 0.0) return 0.0;
    const unsigned shift = std::min(attempt > 0 ? attempt - 1 : 0u, 20u);
    const double expo = base_ms * static_cast<double>(std::uint64_t{1} << shift);
    const std::uint64_t mixed = bf::splitmix64(fnv1a(job_id) ^ attempt);
    const double jitter =
        base_ms * (static_cast<double>(mixed >> 11) *
                   (1.0 / 9007199254740992.0));  // uniform in [0, base)
    return expo + jitter;
}

fleet_result run_fleet(const std::vector<fleet_job>& jobs,
                       const fleet_options& options) {
    fleet_result fleet;
    unsigned threads = options.num_threads != 0 ? options.num_threads
                                                : std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(jobs.size(), 1)));
    fleet.threads = threads;
    fleet.shared_cache = options.share_trigger_cache;
    fleet.results.resize(jobs.size());
    if (!options.share_trigger_cache &&
        (!options.cache_load_path.empty() || !options.cache_save_path.empty())) {
        throw std::invalid_argument(
            "run_fleet: cache_load_path/cache_save_path require "
            "share_trigger_cache (private per-job memos have no fleet-wide "
            "cache to persist)");
    }
    if (jobs.empty()) return fleet;

    ee::concurrent_trigger_cache shared_cache;
    // Warm restart: merge a prior snapshot into the shared memo before any
    // worker starts.  Every degradation (missing file, torn record, flipped
    // bit, future version) is a smaller-or-empty merge, never a failure.
    if (!options.cache_load_path.empty()) {
        persist::load_options lo;
        lo.verify = options.cache_verify;
        lo.expected_mode = shared_cache.mode();
        const persist::load_result loaded =
            persist::load_snapshot(options.cache_load_path, lo);
        fleet.cache_loaded = loaded.loaded();
        fleet.cache_rejected = loaded.rejected;
        fleet.cache_salvaged = loaded.outcome == persist::load_outcome::salvaged
                                   ? loaded.loaded()
                                   : 0;
        fleet.cache_load_outcome = persist::to_string(loaded.outcome);
        if (loaded.loaded() > 0) shared_cache.merge_from_snapshot(loaded.image);
    }
    report::experiment_options experiment = options.experiment;
    experiment.ee.num_threads = std::max(options.ee_threads_per_job, 1u);
    experiment.ee.shared_cache =
        options.share_trigger_cache ? &shared_cache : nullptr;

    std::vector<std::exception_ptr> errors(jobs.size());
    std::atomic<std::size_t> next{0};
    const wall_timer timer;
    if (threads <= 1) {
        fleet_worker(jobs, experiment, options, next, fleet.results, errors);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads - 1);
        for (unsigned t = 1; t < threads; ++t) {
            pool.emplace_back([&] {
                fleet_worker(jobs, experiment, options, next, fleet.results,
                             errors);
            });
        }
        fleet_worker(jobs, experiment, options, next, fleet.results, errors);
        for (std::thread& t : pool) t.join();
    }
    fleet.wall_ms = timer.elapsed_ms();

    // Persist the warmed memo after the join — also on interrupted or
    // partially-failed fleets (the cache holds only verified pure-function
    // entries regardless of job outcomes).  Atomic rename means a crash or
    // failure here never clobbers the previous snapshot; the error is
    // reported, not thrown, because the fleet's results are already in hand.
    if (!options.cache_save_path.empty()) {
        try {
            persist::save_snapshot(options.cache_save_path,
                                   shared_cache.export_image());
        } catch (const std::exception& e) {
            fleet.cache_save_error = e.what();
        }
    }

    if (options.fail_fast) {
        for (const std::exception_ptr& e : errors) {
            if (e) std::rethrow_exception(e);
        }
    }

    for (const job_result& r : fleet.results) {
        if (r.attempts > 1) ++fleet.jobs_retried;
        switch (r.status) {
            case job_status::ok:
            case job_status::retried_ok: ++fleet.jobs_ok; break;
            case job_status::failed: ++fleet.jobs_failed; break;
            case job_status::timed_out: ++fleet.jobs_timed_out; break;
            case job_status::budget_exhausted:
                ++fleet.jobs_budget_exhausted;
                break;
        }
        // Aggregates take succeeded rows only: a failed job's row is
        // default-initialized (possibly half a pipeline) and must not skew
        // fleet gate/event/delay figures.
        if (options.telemetry) {
            fleet.job_wall_hist_us.record(
                r.wall_ms <= 0.0 ? 0
                                 : static_cast<std::uint64_t>(
                                       std::llround(r.wall_ms * 1e3)));
        }
        if (!job_succeeded(r.status)) continue;
        fleet.delay_hist_no_ee.merge(r.row.delay_hist_no_ee);
        fleet.delay_hist_ee.merge(r.row.delay_hist_ee);
        fleet.total_pl_gates += r.row.pl_gates;
        fleet.total_ee_gates += r.row.ee_gates;
        fleet.total_triggers += r.row.ee_detail.triggers_added;
        fleet.total_sweeps += r.row.ee_detail.masters_considered;
        fleet.total_sim_events +=
            r.row.stats_no_ee.events + r.row.stats_ee.events;
        fleet.total_vectors += r.row.vectors_measured;
        fleet.total_sim_wall_ms += r.row.sim_wall_ms;
        fleet.cache_hits += r.row.ee_detail.cache_hits;
        fleet.cache_misses += r.row.ee_detail.cache_misses;
        // Private per-job memos overlap entry-for-entry on similar circuits;
        // the fleet figure keeps the largest memo instead of a
        // double-counting sum (see fleet_result::cache_entries).
        fleet.cache_entries =
            std::max(fleet.cache_entries, r.row.ee_detail.cache_entries);
    }
    // Vector-weighted lockstep fraction over the lane-mode jobs.
    double lane_vectors = 0.0;
    double lockstep_weighted = 0.0;
    for (const job_result& r : fleet.results) {
        if (!job_succeeded(r.status) || r.row.lanes <= 1) continue;
        const double v = static_cast<double>(r.row.vectors_measured);
        lane_vectors += v;
        lockstep_weighted += r.row.lockstep_fraction * v;
    }
    if (lane_vectors > 0.0) {
        fleet.lockstep_fraction = lockstep_weighted / lane_vectors;
    }
    if (options.share_trigger_cache) {
        // Per-job counters read zero under a shared memo; the fleet totals
        // live in the concurrent cache.
        fleet.cache_hits = shared_cache.hits();
        fleet.cache_misses = shared_cache.misses();
        fleet.cache_entries = shared_cache.size();
    }
    if (options.telemetry) {
        // One registry flush per fleet — the census the sinks export.
        obs::registry& reg = obs::registry::global();
        reg.get_counter("fleet.jobs_ok").add(fleet.jobs_ok);
        reg.get_counter("fleet.jobs_failed").add(fleet.jobs_failed);
        reg.get_counter("fleet.jobs_timed_out").add(fleet.jobs_timed_out);
        reg.get_counter("fleet.jobs_budget_exhausted")
            .add(fleet.jobs_budget_exhausted);
        reg.get_counter("fleet.jobs_retried").add(fleet.jobs_retried);
        reg.get_gauge("fleet.threads").set(static_cast<std::int64_t>(threads));
        reg.get_histogram("fleet.job_wall_us").merge(fleet.job_wall_hist_us);
    }
    return fleet;
}

report::json to_json(const fleet_result& fleet, bool include_rows) {
    report::json j = report::json::object();
    j.set("schema_version", report::json::number(k_fleet_schema_version));
    j.set("threads", report::json::number(static_cast<std::int64_t>(fleet.threads)));
    j.set("shared_cache", report::json::boolean(fleet.shared_cache));
    j.set("netlists", report::json::number(fleet.results.size()));
    j.set("jobs_ok", report::json::number(fleet.jobs_ok));
    j.set("jobs_failed", report::json::number(fleet.jobs_failed));
    j.set("jobs_timed_out", report::json::number(fleet.jobs_timed_out));
    j.set("jobs_budget_exhausted",
          report::json::number(fleet.jobs_budget_exhausted));
    j.set("jobs_retried", report::json::number(fleet.jobs_retried));
    j.set("wall_ms", report::json::number(fleet.wall_ms));
    j.set("netlists_per_s", report::json::number(fleet.netlists_per_s()));
    j.set("sweeps_per_s", report::json::number(fleet.sweeps_per_s()));
    j.set("total_pl_gates", report::json::number(fleet.total_pl_gates));
    j.set("total_ee_gates", report::json::number(fleet.total_ee_gates));
    j.set("total_triggers", report::json::number(fleet.total_triggers));
    j.set("total_sweeps", report::json::number(fleet.total_sweeps));
    j.set("total_sim_events", report::json::number(
                                  static_cast<std::int64_t>(fleet.total_sim_events)));
    j.set("total_sim_wall_ms", report::json::number(fleet.total_sim_wall_ms));
    j.set("sim_events_per_s", report::json::number(fleet.sim_events_per_s()));
    j.set("total_vectors", report::json::number(fleet.total_vectors));
    j.set("vectors_per_s", report::json::number(fleet.vectors_per_s()));
    j.set("lockstep_fraction", report::json::number(fleet.lockstep_fraction));
    j.set("cache_hits", report::json::number(static_cast<std::int64_t>(fleet.cache_hits)));
    j.set("cache_misses",
          report::json::number(static_cast<std::int64_t>(fleet.cache_misses)));
    j.set("cache_entries", report::json::number(fleet.cache_entries));
    j.set("cache_hit_rate", report::json::number(fleet.cache_hit_rate()));
    // Warm-restart accounting (additive fields — no schema bump; all zero
    // when no snapshot load ran).
    j.set("cache_loaded",
          report::json::number(static_cast<std::int64_t>(fleet.cache_loaded)));
    j.set("cache_salvaged",
          report::json::number(static_cast<std::int64_t>(fleet.cache_salvaged)));
    j.set("cache_rejected",
          report::json::number(static_cast<std::int64_t>(fleet.cache_rejected)));
    if (!fleet.cache_load_outcome.empty()) {
        j.set("cache_load_outcome", report::json::str(fleet.cache_load_outcome));
    }
    if (!fleet.cache_save_error.empty()) {
        j.set("cache_save_error", report::json::str(fleet.cache_save_error));
    }
    if (!fleet.delay_hist_no_ee.empty()) {
        j.set("delay_hist_no_ee_ns",
              obs::hist_to_json(fleet.delay_hist_no_ee, 1e3));
    }
    if (!fleet.delay_hist_ee.empty()) {
        j.set("delay_hist_ee_ns", obs::hist_to_json(fleet.delay_hist_ee, 1e3));
    }
    if (!fleet.job_wall_hist_us.empty()) {
        j.set("job_wall_ms_hist", obs::hist_to_json(fleet.job_wall_hist_us, 1e3));
    }
    if (include_rows) {
        report::json rows = report::json::array();
        for (const job_result& r : fleet.results) {
            // Per-row cache counters are only meaningful without the shared
            // memo; the fleet-level counters above are authoritative.
            report::json row = report::to_json(r.row, !fleet.shared_cache);
            row.set("id", report::json::str(r.id));
            row.set("status", report::json::str(to_string(r.status)));
            row.set("attempts",
                    report::json::number(static_cast<std::int64_t>(r.attempts)));
            if (!r.error.empty()) row.set("error", report::json::str(r.error));
            row.set("wall_ms", report::json::number(r.wall_ms));
            if (!r.spans.empty()) {
                row.set("spans", obs::spans_to_json(r.spans));
            }
            if (!r.flight.empty()) {
                row.set("flight_recorder", obs::flight_to_json(r.flight));
            }
            rows.push(std::move(row));
        }
        j.set("rows", std::move(rows));
    }
    return j;
}

}  // namespace plee::runner
