// runner.hpp — the sharded multi-netlist experiment runner.
//
// The Table 3 driver ran its 15 circuits one after another; the fleet
// runner generalizes that into the repository's scaling seam: a batch of
// netlists (ITC99 reproductions, synthetic workloads, imported BLIF — any
// nl::netlist) is fanned across a worker pool, each worker running the full
// synth -> PL-map -> EE-transform -> simulate pipeline on its shard, with
// one concurrent NPN-canonical trigger cache shared by every circuit.  The
// cache is keyed on function classes, not netlist context, so every
// circuit's lookups warm the memo for all the others.
//
// Determinism contract: per-circuit results are written to slots addressed
// by job index and each pipeline run is pure given its options, so the
// fleet result — including every experiment row — is bit-identical for any
// thread count and any work interleaving.  Only the wall-clock figures and
// (with a shared cache) which circuit pays each canonical miss vary.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ee/concurrent_cache.hpp"
#include "netlist/netlist.hpp"
#include "report/experiment.hpp"

namespace plee::runner {

/// One circuit to push through the pipeline.
struct fleet_job {
    std::string id;           ///< short label ("b05", "datapath-like/3", ...)
    std::string description;  ///< free-form, lands in the experiment row
    nl::netlist netlist;
};

struct fleet_options {
    /// Worker threads sharding the job list.  0 = one per hardware thread.
    unsigned num_threads = 0;
    /// Per-circuit pipeline knobs (mapping, EE search, measurement).  The
    /// runner owns ee.shared_cache and ee.num_threads; values set there are
    /// overridden per job.
    report::experiment_options experiment{};
    /// Share one concurrent NPN trigger cache across all jobs (the fleet's
    /// raison d'être).  Off = every job keeps the private per-pass caches,
    /// reproducing the standalone pipeline exactly, counters included.
    bool share_trigger_cache = true;
    /// Inner EE-search threads per job.  The outer job shards already
    /// saturate the machine, so the default keeps each pass sequential.
    unsigned ee_threads_per_job = 1;
};

struct job_result {
    std::string id;
    report::experiment_row row;
    double wall_ms = 0.0;  ///< this job's pipeline wall time
};

struct fleet_result {
    std::vector<job_result> results;  ///< in job submission order
    unsigned threads = 1;
    bool shared_cache = true;  ///< whether one fleet-wide trigger memo ran
    double wall_ms = 0.0;      ///< whole-fleet wall time

    // Aggregates over all jobs.
    std::size_t total_pl_gates = 0;
    std::size_t total_ee_gates = 0;
    std::size_t total_triggers = 0;
    /// Trigger-search sweeps = masters considered (one full support sweep
    /// each) summed over the fleet — the engine-throughput unit.
    std::size_t total_sweeps = 0;
    std::uint64_t total_sim_events = 0;
    /// Summed per-job event-simulation wall time (ms).  Unlike wall_ms this
    /// excludes synthesis/mapping/EE-search, so events/s measures the
    /// simulator engine itself.
    double total_sim_wall_ms = 0.0;
    /// Trigger-cache counters: the shared concurrent cache's totals when
    /// sharing, the summed per-job counters otherwise.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::size_t cache_entries = 0;

    double cache_hit_rate() const {
        const std::uint64_t total = cache_hits + cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(total);
    }
    double netlists_per_s() const {
        return wall_ms <= 0.0 ? 0.0
                              : 1000.0 * static_cast<double>(results.size()) /
                                    wall_ms;
    }
    double sweeps_per_s() const {
        return wall_ms <= 0.0 ? 0.0
                              : 1000.0 * static_cast<double>(total_sweeps) /
                                    wall_ms;
    }
    /// Simulator throughput: processed events per second of simulation wall
    /// time, summed over every measurement in the fleet.
    double sim_events_per_s() const {
        return total_sim_wall_ms <= 0.0
                   ? 0.0
                   : 1000.0 * static_cast<double>(total_sim_events) /
                         total_sim_wall_ms;
    }
};

/// Runs every job through the pipeline across the worker pool.  Propagates
/// the first job exception after all workers join.
fleet_result run_fleet(const std::vector<fleet_job>& jobs,
                       const fleet_options& options = {});

/// Fleet-level summary + per-job rows as a JSON object (the schema of
/// BENCH_fleet.json).  `include_rows = false` emits the summary only, for
/// embedding next to an existing row dump.
report::json to_json(const fleet_result& fleet, bool include_rows = true);

}  // namespace plee::runner
