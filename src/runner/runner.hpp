// runner.hpp — the sharded multi-netlist experiment runner.
//
// The Table 3 driver ran its 15 circuits one after another; the fleet
// runner generalizes that into the repository's scaling seam: a batch of
// netlists (ITC99 reproductions, synthetic workloads, imported BLIF — any
// nl::netlist) is fanned across a worker pool, each worker running the full
// synth -> PL-map -> EE-transform -> simulate pipeline on its shard, with
// one concurrent NPN-canonical trigger cache shared by every circuit.  The
// cache is keyed on function classes, not netlist context, so every
// circuit's lookups warm the memo for all the others.
//
// Determinism contract: per-circuit results are written to slots addressed
// by job index and each pipeline run is pure given its options, so the
// fleet result — including every experiment row — is bit-identical for any
// thread count and any work interleaving.  Only the wall-clock figures and
// (with a shared cache) which circuit pays each canonical miss vary.
//
// Failure contract (graceful degradation): one pathological job must not
// discard the rest of the fleet.  Each job runs under its own cancel token
// (deadline = fleet_options::job_deadline_ms) and lands in one of the
// job_status states; failed/timed-out/budget-exhausted jobs keep their
// error text and are skipped by every fleet aggregate, and the fleet
// completes with partial results.  Transient-classified failures (see
// rt/errors.hpp; in practice injected faults and future external
// resources) are retried up to max_retries times with deterministic
// exponential backoff.  fail_fast restores the old throw-after-join
// behavior.  See src/runner/README.md for the full semantics.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ee/concurrent_cache.hpp"
#include "netlist/netlist.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "persist/snapshot.hpp"
#include "report/experiment.hpp"
#include "rt/cancel.hpp"

namespace plee::runner {

/// Version stamp emitted as "schema_version" by fleet_result::to_json (and
/// hence BENCH_fleet.json).  Artifacts without the field predate versioning
/// (read them as version 0); bump this on any breaking shape change.  See
/// docs/schemas.md.
inline constexpr int k_fleet_schema_version = 1;

/// One circuit to push through the pipeline.
struct fleet_job {
    std::string id;           ///< short label ("b05", "datapath-like/3", ...)
    std::string description;  ///< free-form, lands in the experiment row
    nl::netlist netlist;
    /// Per-job override of the simulator event budget (0 = inherit
    /// experiment.measure.sim.max_events).  Lets one suspect job carry a
    /// tight budget without constraining the whole fleet.
    std::uint64_t max_events = 0;
    /// Per-job override of the measurement lane count (0 = inherit
    /// experiment.measure.lanes; otherwise 1 or 64).
    std::size_t lanes = 0;
};

/// Terminal state of one job after all its attempts.
enum class job_status : std::uint8_t {
    ok,                ///< first attempt succeeded
    retried_ok,        ///< succeeded after >= 1 transient-failure retries
    failed,            ///< permanent failure (or retries exhausted)
    timed_out,         ///< job_deadline_ms expired (cooperative cancel)
    budget_exhausted,  ///< simulator event budget tripped
};

const char* to_string(job_status status);

/// ok and retried_ok are the states whose rows enter fleet aggregates.
inline bool job_succeeded(job_status status) {
    return status == job_status::ok || status == job_status::retried_ok;
}

/// Backoff before retrying `job_id` after failed attempt `attempt`
/// (1-based): base * 2^(attempt-1) plus a deterministic per-(job, attempt)
/// jitter in [0, base) — exponential, decorrelated across jobs, and
/// reproducible run-to-run (no RNG state).
double retry_backoff_ms(const std::string& job_id, unsigned attempt,
                        double base_ms);

struct fleet_options {
    /// Worker threads sharding the job list.  0 = one per hardware thread.
    unsigned num_threads = 0;
    /// Per-circuit pipeline knobs (mapping, EE search, measurement).  The
    /// runner owns ee.shared_cache and ee.num_threads; values set there are
    /// overridden per job.
    report::experiment_options experiment{};
    /// Share one concurrent NPN trigger cache across all jobs (the fleet's
    /// raison d'être).  Off = every job keeps the private per-pass caches,
    /// reproducing the standalone pipeline exactly, counters included.
    bool share_trigger_cache = true;
    /// Inner EE-search threads per job.  The outer job shards already
    /// saturate the machine, so the default keeps each pass sequential.
    unsigned ee_threads_per_job = 1;
    /// Per-job wall-clock deadline in ms (0 = none).  Each attempt gets a
    /// fresh cancel token armed with this deadline; the pipeline stages poll
    /// it cooperatively, so a hung job lands in timed_out within a bounded
    /// overshoot (one cancel-check interval) instead of hanging its worker.
    double job_deadline_ms = 0.0;
    /// Extra attempts granted to transient-classified failures (permanent
    /// failures, timeouts and budget exhaustion never retry).
    unsigned max_retries = 0;
    /// Base of the exponential retry backoff (see retry_backoff_ms).
    double retry_backoff_base_ms = 5.0;
    /// Restore the pre-robustness contract: after all workers join, rethrow
    /// the first failed job's exception instead of returning partial results.
    bool fail_fast = false;
    /// Telemetry master switch.  On (default): every job runs with a trace
    /// (stage spans land in job_result::spans), a flight recorder (dumped
    /// into job_result::flight for non-ok jobs), per-vector delay histograms,
    /// and a registry flush.  Off: the pipeline runs with all of it
    /// compiled in but unwired — the baseline arm of the instrumentation
    /// overhead A/B in bench_fleet_scaling.
    bool telemetry = true;
    /// Warm-restart persistence for the shared trigger cache (see
    /// src/persist/): load this snapshot into the cache before fan-out
    /// (missing/corrupt files degrade to salvage or cold start, never an
    /// error) ...
    std::string cache_load_path;
    /// ... and atomically save the cache here after the join (failures land
    /// in fleet_result::cache_save_error, not an exception).  Both require
    /// share_trigger_cache — run_fleet throws std::invalid_argument
    /// otherwise, since private per-job caches have no fleet-wide memo to
    /// persist.
    std::string cache_save_path;
    /// Oracle re-verification level for loaded trigger records.
    persist::verify_mode cache_verify = persist::verify_mode::full;
    /// Fleet-wide interrupt token (the tools' SIGINT/SIGTERM hook): chained
    /// as the parent of every per-attempt job token, and polled between
    /// jobs, so one cancel() stops the whole fleet at its next checks.
    /// Must outlive run_fleet.
    const cancel_token* fleet_cancel = nullptr;
};

struct job_result {
    std::string id;
    report::experiment_row row;  ///< default-initialized unless the job succeeded
    double wall_ms = 0.0;   ///< this job's wall time across all its attempts
    job_status status = job_status::ok;
    std::string error;      ///< what() of the final failure; empty on success
    unsigned attempts = 1;  ///< pipeline runs consumed (1 = no retries)
    /// Stage-span breakdown of the *final* attempt (partial but well-formed
    /// when that attempt died mid-stage).  Empty with telemetry off.
    std::vector<obs::span_record> spans;
    /// Flight-recorder dump — the job's last ~128 progress/fault/error
    /// events.  Populated only for non-ok jobs (the post-mortem payload);
    /// empty for succeeded jobs and with telemetry off.
    std::vector<obs::fr_event> flight;
};

struct fleet_result {
    std::vector<job_result> results;  ///< in job submission order
    unsigned threads = 1;
    bool shared_cache = true;  ///< whether one fleet-wide trigger memo ran
    double wall_ms = 0.0;      ///< whole-fleet wall time

    // Outcome census.  jobs_ok counts ok + retried_ok; jobs_retried counts
    // every job whose attempts > 1 (including ones that still failed).
    std::size_t jobs_ok = 0;
    std::size_t jobs_failed = 0;
    std::size_t jobs_timed_out = 0;
    std::size_t jobs_budget_exhausted = 0;
    std::size_t jobs_retried = 0;

    bool all_ok() const { return jobs_ok == results.size(); }

    // Aggregates over the *succeeded* jobs only — failed jobs contribute
    // neither gates nor events, so one bad netlist cannot skew the fleet
    // figures.
    std::size_t total_pl_gates = 0;
    std::size_t total_ee_gates = 0;
    std::size_t total_triggers = 0;
    /// Trigger-search sweeps = masters considered (one full support sweep
    /// each) summed over the fleet — the engine-throughput unit.
    std::size_t total_sweeps = 0;
    std::uint64_t total_sim_events = 0;
    /// Vectors measured across the succeeded jobs (both measurements each).
    std::size_t total_vectors = 0;
    /// Vector-weighted mean lockstep fraction over the succeeded lane-mode
    /// jobs (1.0 when no job ran lanes, or every block stayed lockstep).
    double lockstep_fraction = 1.0;
    /// Summed per-job event-simulation wall time (ms).  Unlike wall_ms this
    /// excludes synthesis/mapping/EE-search, so events/s measures the
    /// simulator engine itself.
    double total_sim_wall_ms = 0.0;
    /// Fleet-wide per-vector completion-time distributions (integer ps),
    /// merged bucket-exactly over the succeeded jobs — plain PL vs EE, the
    /// paper's comparison as distributions rather than means.  Empty with
    /// telemetry off.
    obs::hist_snapshot delay_hist_no_ee;
    obs::hist_snapshot delay_hist_ee;
    /// Per-job wall-time distribution in integer microseconds, over *all*
    /// jobs (failed ones burn wall time too).  Empty with telemetry off.
    obs::hist_snapshot job_wall_hist_us;
    /// Trigger-cache counters: the shared concurrent cache's totals when
    /// sharing, the summed per-job lookup counters otherwise.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// Distinct cached triggers.  Sharing: the concurrent cache's entry
    /// count.  Not sharing: the *largest* per-job memo — private caches
    /// warmed by similar circuits hold overlapping entries, so summing them
    /// would double-count every shared class; the max is an exact figure for
    /// identical jobs and a distinct-entry lower bound otherwise.
    std::size_t cache_entries = 0;
    /// Snapshot warm-restart accounting (all zero when no --cache-load ran):
    /// records admitted into the shared cache, records admitted from a
    /// *damaged* snapshot (== cache_loaded when the load salvaged, 0 on a
    /// clean load), and records dropped by checksums/bounds/oracle checks.
    std::uint64_t cache_loaded = 0;
    std::uint64_t cache_salvaged = 0;
    std::uint64_t cache_rejected = 0;
    /// "clean" / "salvaged" / "cold" when a load was requested; empty else.
    std::string cache_load_outcome;
    /// what() of a failed cache save; empty when the save succeeded or none
    /// was requested.  A failed save never fails the fleet.
    std::string cache_save_error;

    double cache_hit_rate() const {
        const std::uint64_t total = cache_hits + cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(cache_hits) /
                                static_cast<double>(total);
    }
    double netlists_per_s() const {
        return wall_ms <= 0.0 ? 0.0
                              : 1000.0 * static_cast<double>(jobs_ok) / wall_ms;
    }
    double sweeps_per_s() const {
        return wall_ms <= 0.0 ? 0.0
                              : 1000.0 * static_cast<double>(total_sweeps) /
                                    wall_ms;
    }
    /// Simulator throughput: processed events per second of simulation wall
    /// time, summed over every measurement in the fleet.
    double sim_events_per_s() const {
        return total_sim_wall_ms <= 0.0
                   ? 0.0
                   : 1000.0 * static_cast<double>(total_sim_events) /
                         total_sim_wall_ms;
    }
    /// Measurement throughput: vectors measured per second of simulation
    /// wall time, summed over every measurement in the fleet.
    double vectors_per_s() const {
        return total_sim_wall_ms <= 0.0
                   ? 0.0
                   : 1000.0 * static_cast<double>(total_vectors) /
                         total_sim_wall_ms;
    }
};

/// Runs every job through the pipeline across the worker pool.  Always
/// returns all jobs.size() results (graceful degradation — inspect
/// job_result::status); with options.fail_fast, rethrows the first failed
/// job's exception after all workers join instead.
fleet_result run_fleet(const std::vector<fleet_job>& jobs,
                       const fleet_options& options = {});

/// Fleet-level summary (status census included) + per-job rows as a JSON
/// object (the schema of BENCH_fleet.json).  `include_rows = false` emits
/// the summary only, for embedding next to an existing row dump.
report::json to_json(const fleet_result& fleet, bool include_rows = true);

}  // namespace plee::runner
