// measure.hpp — the paper's delay-measurement harness.
//
// Section 4: "These results are based upon the average statistics of 100
// simulations where the input vectors were randomly generated.  For each PL
// circuit, we determined the average delay time between the presence of a
// stable input vector and a stable output word."
//
// measure_average_delay drives a PL netlist with random vectors through the
// event simulator and aggregates the per-wave delays; when a golden
// synchronous netlist is supplied, every wave's primary outputs are checked
// against the synchronous simulation cycle-by-cycle, proving the PL mapping
// (and any Early Evaluation circuitry) functionally transparent.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "plogic/pl_netlist.hpp"
#include "sim/pl_sim.hpp"

namespace plee::sim {

struct measure_options {
    std::size_t num_vectors = 100;  ///< the paper's 100 random simulations
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    sim_options sim{};
    /// Throw std::logic_error if PL outputs diverge from the golden netlist.
    bool require_functional_match = true;
};

struct measure_result {
    double avg_delay = 0.0;
    double min_delay = 0.0;
    double max_delay = 0.0;
    double stddev = 0.0;
    std::vector<double> delays;  ///< per wave
    sim_run_stats stats;
    std::size_t mismatched_waves = 0;
    /// Wall time of the event-simulation run itself (excludes the golden
    /// comparison) — with stats.events this yields sim events/s.
    double sim_wall_ms = 0.0;
};

/// Deterministic pseudo-random stimulus, one vector per wave.
std::vector<std::vector<bool>> random_vectors(std::size_t count, std::size_t width,
                                              std::uint64_t seed);

/// Runs the measurement protocol.  `golden` may be null to skip the
/// functional comparison (e.g. for hand-built PL netlists).
measure_result measure_average_delay(const pl::pl_netlist& pl,
                                     const nl::netlist* golden,
                                     const measure_options& options = {});

}  // namespace plee::sim
