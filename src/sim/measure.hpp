// measure.hpp — the paper's delay-measurement harness.
//
// Section 4: "These results are based upon the average statistics of 100
// simulations where the input vectors were randomly generated.  For each PL
// circuit, we determined the average delay time between the presence of a
// stable input vector and a stable output word."
//
// measure_average_delay drives a PL netlist with random vectors through the
// event simulator and aggregates the per-vector delays; when a golden
// synchronous netlist is supplied, every vector's primary outputs are checked
// against the synchronous simulation, proving the PL mapping (and any Early
// Evaluation circuitry) functionally transparent.
//
// Two stimulus protocols, selected by measure_options::lanes:
//
//  * lanes == 1 (default) — the paper's sequential protocol: one simulator
//    run over num_vectors waves, vector k+1 released when vector k's outputs
//    are stable.  Delays include the self-timed hand-off between waves.
//  * lanes == 64 — the throughput protocol: each vector is an independent
//    single-vector simulation from reset, and 64 of them advance through one
//    lane-parallel event stream (pl_simulator::run_lanes).  Per-vector
//    results are bit-identical to running each vector alone; the golden
//    check runs through the 64-lane synchronous model.  This is the path the
//    BENCH_sim.json `lanes` row measures (~an order of magnitude more
//    vectors/s on the sync golden model, and run-merging on the PL side
//    whenever lanes stay in lockstep — see lockstep_fraction).
//
// The two protocols measure different quantities for sequential hand-off
// reasons (wave k's delay starts at wave k-1's stabilization in the
// sequential protocol, at t = 0 in the independent one), so `lanes` is an
// explicit experiment parameter, not a transparent optimization toggle.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "plogic/pl_netlist.hpp"
#include "sim/pl_sim.hpp"
#include "sim/stimulus.hpp"

namespace plee::sim {

struct measure_options {
    std::size_t num_vectors = 100;  ///< the paper's 100 random simulations
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    /// Stimulus lanes evaluated at once: 1 = the sequential-wave protocol,
    /// k_lanes (64) = lane-parallel independent vectors.  Anything else
    /// throws std::invalid_argument.
    std::size_t lanes = 1;
    sim_options sim{};
    /// Throw std::logic_error if PL outputs diverge from the golden netlist.
    bool require_functional_match = true;
    /// Per-job trace to hang "sim.run" / "sim.golden" spans on.  Not owned;
    /// null = untraced.
    obs::trace* trace = nullptr;
    /// When false, skips everything observable-only: the per-vector delay
    /// histogram and the registry flush.  This is the "compiled-in-but-idle"
    /// arm of the overhead A/B — the measurement itself is unchanged.
    bool telemetry = true;
};

struct measure_result {
    double avg_delay = 0.0;
    double min_delay = 0.0;
    double max_delay = 0.0;
    double stddev = 0.0;
    std::vector<double> delays;  ///< per vector
    sim_run_stats stats;
    std::size_t mismatched_waves = 0;
    /// Wall time of the event-simulation run itself (excludes the golden
    /// comparison) — with stats.events this yields sim events/s, with
    /// delays.size() vectors/s.
    double sim_wall_ms = 0.0;
    /// The lane count the measurement actually used.
    std::size_t lanes = 1;
    /// Per-vector completion-time distribution in integer picoseconds
    /// (delay_ns * 1000 rounded), so the histogram's <0.8% bucket error
    /// dominates quantization.  Empty when measure_options::telemetry is
    /// false.
    obs::hist_snapshot delay_hist;
    /// Lane mode: the fraction of possible run merging achieved, where an
    /// engine pass is a from-t0 run or a fork resume.  Computed as
    /// sum(vectors_b - passes_b) / sum(vectors_b - 1) over multi-vector
    /// blocks only — single-vector (degenerate) blocks can neither merge
    /// nor split and contribute to neither side.  1.0 is reserved for
    /// genuinely divergence-free workloads (zero splits, zero forks, one
    /// pass per block); 0.0 = every vector needed its own pass (also what
    /// the scalar heap fallback reports for multi-vector blocks).  1.0 when
    /// lanes == 1 vacuously.
    double lockstep_fraction = 1.0;
    /// Lane mode: fork_depth_counts[d] = checkpoints created at nesting
    /// depth d (index 0 unused — a fork's depth is >= 1).  Sized k_lanes + 1
    /// in lane mode, empty when lanes == 1.
    std::vector<std::uint64_t> fork_depth_counts;

    /// Measurement throughput (0 when the run was too fast to time).
    double vectors_per_s() const {
        return sim_wall_ms > 0.0
                   ? static_cast<double>(delays.size()) * 1e3 / sim_wall_ms
                   : 0.0;
    }
};

/// Deterministic pseudo-random stimulus, one vector per wave.  Unpacks
/// make_stimulus blocks, so lane L of block B == vector 64*B + L per seed.
std::vector<std::vector<bool>> random_vectors(std::size_t count, std::size_t width,
                                              std::uint64_t seed);

/// Runs the measurement protocol.  `golden` may be null to skip the
/// functional comparison (e.g. for hand-built PL netlists).
measure_result measure_average_delay(const pl::pl_netlist& pl,
                                     const nl::netlist* golden,
                                     const measure_options& options = {});

}  // namespace plee::sim
