// pl_sim.hpp — event-driven token-level simulator for Phased Logic netlists.
//
// Simulates the marked-graph semantics of a PL circuit with valued tokens and
// the delay model of delay_model.hpp.  A gate fires the moment a token is
// present on every input edge (the Muller-C completion rule); firing consumes
// one token per input edge and deposits tokens on every output edge at
// analytically computed times.  Early Evaluation masters fire their *output*
// early when the efire token carries 1, while handshaking (acknowledges,
// token consumption) still waits for full completion — exactly the decoupling
// of Figure 2.
//
// The measurement protocol matches Section 4: "we determined the average
// delay time between the presence of a stable input vector and a stable
// output word. In a PL circuit, new values cannot be presented to the inputs
// until a stable output is generated for the current input values."  In the
// default non-pipelined mode the environment releases input vector k+1 when
// all primary outputs of vector k have arrived.  A pipelined mode (tokens
// streamed as fast as the acknowledges allow) is provided as an extension.
//
// The simulator doubles as a dynamic checker of the marked-graph theory: a
// token deposited onto an occupied edge (safety violation) or a deadlock
// before the run completes (liveness violation) raises an error.
//
// ## Two event-queue engines
//
// The simulator is the dominant per-circuit cost of a fleet job (the measure
// phase dwarfs the EE phase), so the hot path exists twice behind
// sim_options::queue:
//
//  * queue_kind::calendar (default) — the throughput engine.  Pending
//    deposits live in a bucketed timing wheel (calendar_queue.hpp) keyed on
//    quantized delay-model ticks: O(1) schedule/pop instead of the heap's
//    O(log n), with 16-byte packed events ([seq|edge|value] in one key) on
//    an intrusive edge-indexed node pool — no allocation on the hot path.
//    Token state is structure-of-arrays — a packed presence bitset, a value
//    bitset and a flat time array — and gate adjacency comes from the CSR
//    arrays of pl::flat_topology, so a firing walks contiguous id ranges
//    instead of chasing per-gate std::vector headers.  Per-gate firing
//    metadata (kind, pin counts, CSR offsets, LUT bits, trigger pin-packing
//    map) is precomputed into one cache-line-aligned descriptor array.
//    Netlists beyond the packed-key range (2^24 edges / 2^38 events) fall
//    back to the heap engine transparently.
//
//  * queue_kind::binary_heap — the seed's std::push_heap engine over
//    array-of-structs token slots, kept as an independent reference
//    implementation for golden cross-checking.
//
// Both engines pop deposits in exactly increasing (time, seq) order, so wave
// records, stats and traces are bit-identical between them — asserted over
// the ITC99 suite and every workload preset by tests/test_sim_queue.cpp, and
// cross-checked at bench time by bench_sim_queue (~3x events/s on the fleet
// mix, BENCH_sim.json).
//
// ## Lane-parallel mode (run_lanes)
//
// run_lanes packs 64 independent single-vector simulations into one engine
// pass: every data token carries a 64-bit value word (bit L = lane L's
// value), LUT and trigger evaluation run through the mux-tree word kernel
// bf::truth_table::eval_word_lanes, and one calendar event serves all lanes.
// Token *values* are timing-independent in a marked graph (every gate fires
// exactly once per wave whatever the delays), so the value words are correct
// for all 64 lanes unconditionally; only the *times* can diverge, and the
// single place they can is an EE master whose efire token differs across
// lanes (early vs normal output path) with the early path actually faster.
// What happens at such a divergence is the lane_split_policy:
//
//  * vector (default) — never split: token times are themselves
//    order-independent in a marked graph (each is a max/min recurrence over
//    its input tokens' times), so the divergent cone simply carries one
//    time per lane (a 64-double slab entry per edge) while everything
//    upstream and reconverged keeps a shared scalar time.  All 64 lanes
//    finish in one pass whatever the stimulus.
//  * fork — the mask splits, the majority keeps the pass, and the minority
//    branch's state at the split point (pending calendar deposits, present
//    tokens, per-gate firing counts, per-pass EE counters) is checkpointed
//    into a bounded fork record and later *resumes from the split* instead
//    of replaying the shared prefix.  A configurable byte budget degrades
//    gracefully to replay under split storms.
//  * replay — the PR 7 baseline: the minority lanes restart from t = 0.
//
// Independently, trigger-aware grouping (sim_options::lane_group) runs an
// untimed value-only prepass over the packed stimulus before simulating,
// partitions the lanes by their predicted efire words at the first masters
// that disagree, and gives each predicted-coherent group its own pass — so
// most splits never happen at all.  Each retained lane's result is
// bit-identical to a serial run({vector}) of that lane under every policy
// combination (asserted by tests/test_lane_sim.cpp over every workload
// preset and ITC99 b01-b10).  Circuits without EE (or with unanimous
// triggers) never split: one pass serves all 64 lanes.  See
// src/sim/README.md for the full contract.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bool/truth_table.hpp"

#include "obs/flight_recorder.hpp"
#include "plogic/pl_flat.hpp"
#include "plogic/pl_netlist.hpp"
#include "rt/cancel.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/delay_model.hpp"
#include "sim/stimulus.hpp"

namespace plee::sim {

/// Which event-queue engine runs the simulation.  Results are bit-identical
/// either way; only throughput differs.
enum class queue_kind : std::uint8_t {
    binary_heap,  ///< reference engine: std::push_heap over deposit structs
    calendar,     ///< timing-wheel engine over the SoA/CSR hot path (default)
};

/// What run_lanes does when an EE master's mixed efire word makes lane
/// timing diverge.  Results are bit-identical under every policy; only the
/// work to produce them differs (vector widens token times in place, fork
/// resumes from the split point, replay restarts from t = 0).
enum class lane_split_policy : std::uint8_t {
    /// Never split: token times are widened to one time per lane on the
    /// divergent cone, so all 64 lanes finish in a single pass (default).
    /// Exact because marked-graph token times obey an order-independent
    /// max/min recurrence, just like token values.
    vector,
    fork,    ///< checkpoint at the split, resume the minority branch
    replay,  ///< defer the minority to its own from-t0 pass (PR 7 baseline)
};

struct sim_options {
    delay_model delays{};
    /// Environment mode: true = vector-at-a-time (the paper's measurement),
    /// false = streaming tokens limited only by the handshakes.
    bool non_pipelined = true;
    /// Verify the EE invariant on every early fire: the trigger value
    /// recomputed from the master's consumed inputs must match the efire
    /// token, and a 1 trigger implies the subset determines the output.
    /// Affordable by default: the per-master pin-packing map is precomputed,
    /// so the check is a handful of shifts per EE firing.
    bool check_early_value = true;
    /// Record every data-token arrival for waveform (VCD) export.
    bool collect_trace = false;
    /// Hard limit on processed events (runaway guard).  Tripping it raises
    /// sim::budget_exhausted (see sim/errors.hpp).
    std::uint64_t max_events = 100'000'000;
    /// Event-queue engine selection.
    queue_kind queue = queue_kind::calendar;
    /// Lane-engine divergence handling (see lane_split_policy).
    lane_split_policy lane_policy = lane_split_policy::vector;
    /// Trigger-aware lane grouping: before each run_lanes block, an untimed
    /// value-only prepass predicts every EE master's efire word and the
    /// block's lanes are partitioned into groups that agree on the first
    /// masters that disagree, each group getting its own pass.  Prediction
    /// only — a wrong or truncated grouping still splits/forks correctly.
    bool lane_group = true;
    /// Upper bound on the bytes held by pending fork records.  A split that
    /// would exceed it degrades to the replay policy for that branch, so
    /// split storms stay memory-bounded.  Ignored under lane_policy::replay.
    std::size_t lane_fork_budget_bytes = std::size_t{32} << 20;
    /// Circuit/job label embedded in every typed simulator failure, so fleet
    /// logs can attribute a throw to its job ("b05", "datapath-like/3#2").
    std::string label;
    /// Cooperative cancellation: both engines poll the token once per
    /// k_cancel_check_events processed events and raise plee::job_timeout
    /// (with a partial event-count snapshot) when it has expired.  Not
    /// owned; null = never cancelled.
    cancel_token* cancel = nullptr;
    /// Flight recorder for progress beats: both engines record a
    /// "sim.progress" event (events, waves-stable) at the same
    /// k_cancel_check_events cadence as the cancel poll, so a post-mortem of
    /// a dead job shows how far the simulation got.  Not owned; null = off.
    obs::flight_recorder* recorder = nullptr;
};

const char* to_string(queue_kind kind);
/// Accepts "heap" / "binary_heap" and "calendar"; throws
/// std::invalid_argument for anything else.
queue_kind queue_kind_from_string(const std::string& name);

const char* to_string(lane_split_policy policy);
/// Accepts "vector", "fork" and "replay"; throws std::invalid_argument
/// otherwise.
lane_split_policy lane_split_policy_from_string(const std::string& name);

/// One recorded token arrival (collect_trace mode).
struct trace_event {
    double time = 0.0;
    pl::edge_id edge = pl::k_invalid_edge;
    bool value = false;
};

struct wave_record {
    std::vector<bool> outputs;   ///< primary output values, sink order
    double release_time = 0.0;   ///< when the environment could present inputs
                                 ///< (= previous wave's output_stable)
    double input_stable = 0.0;   ///< last input token deposit for this wave
    double output_stable = 0.0;  ///< last primary output token arrival

    /// The paper's per-vector delay: "the presence of a stable input vector"
    /// (the environment may drive inputs the moment the previous outputs are
    /// stable) to "a stable output word".  For combinational circuits this
    /// is the settle time; for sequential circuits it is the self-timed
    /// cycle time, including the register-update wave.  Meaningful in
    /// non-pipelined mode (in pipelined mode release_time is 0 and this is
    /// the absolute stabilization time).
    double delay() const { return output_stable - release_time; }
};

struct sim_run_stats {
    /// events and firings count engine work (one word-firing serves up to 64
    /// lanes in lane mode); the ee_* counters count per-lane semantics (a
    /// lane-pass firing contributes once per lane the pass retains), so EE
    /// hit rates agree with the equivalent serial runs.
    std::uint64_t events = 0;
    std::uint64_t firings = 0;
    std::uint64_t ee_hits = 0;    ///< master firings with efire == 1
    std::uint64_t ee_misses = 0;  ///< master firings with efire == 0
    std::uint64_t ee_wins = 0;    ///< hits where the efire path strictly won
    // Lane-engine telemetry (zero for scalar runs).
    std::uint64_t lane_blocks = 0;   ///< stimulus blocks simulated
    std::uint64_t lane_vectors = 0;  ///< vectors (occupied lanes) simulated
    /// From-t0 engine passes: predicted groups plus replayed branches (1 =
    /// pure lockstep).  Fork resumes are *not* runs — they continue a pass.
    std::uint64_t lane_runs = 0;
    std::uint64_t lane_splits = 0;   ///< divergence events (mask partitions)
    /// Minority branches checkpointed at the split and resumed mid-stream
    /// (each one is a from-t0 replay avoided).
    std::uint64_t lane_forks = 0;
    /// Groups the trigger prepass predicted for this block (>= 1).
    std::uint64_t lane_groups = 0;
    /// Minority branches deferred to a from-t0 replay: policy::replay
    /// splits, plus fork-budget overflows.
    std::uint64_t lane_replays = 0;
    /// Deepest nesting of fork records reached (a fork of a fork = 2).
    std::uint64_t lane_fork_depth_max = 0;
    /// High-water mark of bytes held by pending fork records.
    std::uint64_t lane_fork_bytes_peak = 0;
};

/// Result of one lane-parallel block run: per-lane measurements plus the
/// primary output values in lane-packed form (bit L of outputs[j] = lane L's
/// value of sink j).  Lane L reproduces run({vector L}) bit for bit.
struct lane_block_result {
    std::size_t num_vectors = 0;  ///< occupied lanes (== block.num_vectors)
    std::vector<std::uint64_t> outputs;       ///< per sink, lane-packed
    std::array<double, k_lanes> input_stable{};   ///< per lane
    std::array<double, k_lanes> output_stable{};  ///< per lane
    /// Per-lane release time — when the environment could present the
    /// lane's inputs.  Every lane is an independent single-vector run from
    /// reset, so this is 0.0 today, but delay() subtracts it (mirroring
    /// wave_record::delay) rather than assuming it: a pass that resumes
    /// from a fork checkpoint keeps absolute times, and any future nonzero
    /// release epoch must not silently inflate the reported delay.
    std::array<double, k_lanes> release{};
    /// The paper's per-vector delay for lane L, measured exactly like the
    /// scalar wave_record::delay(): stable output minus release.
    double delay(std::size_t lane) const {
        return output_stable[lane] - release[lane];
    }
};

class pl_simulator {
public:
    explicit pl_simulator(const pl::pl_netlist& pl, sim_options options = {});

    /// Runs `vectors.size()` waves; vectors[k] holds the wave-k value of each
    /// primary input in pl.sources() order.  Throws the typed failures of
    /// sim/errors.hpp: deadlock_error, budget_exhausted,
    /// invariant_violation (safety / EE invariant), and plee::job_timeout
    /// when options.cancel expires mid-run.  Packs the vectors and delegates
    /// to run_packed.
    std::vector<wave_record> run(const std::vector<std::vector<bool>>& vectors);

    /// The same sequential-wave protocol over bit-packed stimulus: wave k is
    /// lane (k % 64) of blocks[k / 64].  Every block except the last must be
    /// full (64 vectors).  This is the allocation-light path measure uses.
    std::vector<wave_record> run_packed(const std::vector<stimulus_block>& blocks);

    /// Lane-parallel mode: simulates every occupied lane of `block` as an
    /// independent single-vector run from reset, all lanes advancing through
    /// one event stream while their schedules agree (see the header comment
    /// for the lockstep/divergence contract).  Lane L of the result is
    /// bit-identical to run({vector L}).  stats() afterwards covers the
    /// whole block: events/firings count engine work, ee_* count per-lane
    /// semantics, lane_runs tells how many passes the block needed.
    /// Requires options.collect_trace == false (throws std::invalid_argument
    /// — per-lane waveforms would need 64 scalar runs anyway).  Netlists
    /// that do not fit the calendar layout, and the binary_heap engine
    /// selection, fall back to 64 scalar runs internally.
    lane_block_result run_lanes(const stimulus_block& block);

    const sim_run_stats& stats() const { return stats_; }

    /// Resumed fork branches by divergence depth (index d = the d-th nested
    /// split of one pass; index 0 unused), accumulated across every
    /// run_lanes call since construction.  Feeds the sim.lane_fork_depth
    /// histogram in the measure telemetry flush.
    const std::array<std::uint64_t, k_lanes + 1>& fork_depth_counts() const {
        return fork_depth_counts_;
    }

    /// Token arrivals recorded by the last run (empty unless
    /// options.collect_trace); ordered by processing, not strictly by time.
    const std::vector<trace_event>& trace() const { return trace_; }

private:
    struct token_slot {
        bool present = false;
        bool value = false;
        double time = 0.0;
    };
    /// Precomputed per-gate firing metadata: everything try_fire needs,
    /// gathered from pl_gate / trigger gate / source-sink indices into one
    /// flat record so the hot path reads a single array.  Cache-line
    /// aligned: the scalar fields and the low function word share the first
    /// line; only >6-input gates (and wide triggers) reach into the second.
    struct alignas(64) gate_desc {
        pl::gate_kind kind = pl::gate_kind::compute;
        std::uint8_t num_data = 0;        ///< LUT operand count (<= 8)
        std::uint8_t trig_pin_count = 0;  ///< master: trigger support size
        bool const_value = false;
        std::uint32_t in_begin = 0, in_end = 0;    ///< topo_.in_flat range
        std::uint32_t data_begin = 0;              ///< topo_.data_flat offset
        std::uint32_t out_begin = 0, out_end = 0;  ///< topo_.out_flat range
        pl::edge_id efire_in = pl::k_invalid_edge;
        std::uint32_t env_slot = 0;  ///< position in sources() / sinks()
        /// Master: trigger pin i taps master data pin trig_pins[i] — the
        /// pin-packing map that replaces bf::support_members at fire time.
        std::uint8_t trig_pins[bf::k_max_vars] = {};
        /// LUT truth-table words; minterm m is bit (m & 63) of word (m >> 6).
        std::array<std::uint64_t, bf::k_num_words> fn_bits{};
        /// Master: trigger function words, same layout over the packed pins.
        std::array<std::uint64_t, bf::k_num_words> trig_fn_bits{};
    };

    void reset();
    std::string deadlock_diagnostic() const;

    // --- Reference engine (binary heap, AoS token slots) -------------------
    void run_heap();
    void schedule(pl::edge_id edge, bool value, double time);
    void place(pl::edge_id edge, bool value, double time);
    void try_fire(pl::gate_id g);
    void fire_source(pl::gate_id g);
    void record_sink(pl::gate_id g);

    // --- Throughput engine (calendar queue, SoA tokens, CSR adjacency) -----
    void run_calendar();
    void place_fast(pl::edge_id edge, bool value, double time);
    void try_fire_fast(pl::gate_id g);
    void fire_source_fast(pl::gate_id g);
    void record_sink_fast(pl::gate_id g);
    bool token_value(pl::edge_id e) const {
        return (tok_value_[e >> 6] >> (e & 63)) & 1u;
    }

    // --- Lane engine (calendar queue, 64-bit value words per token) --------
    /// One present token of a fork checkpoint (sparse over the presence
    /// bitset): timing state plus the value word — values are
    /// timing-independent, but copying the 8 bytes alongside keeps the
    /// record self-contained and restore allocation-free.
    struct lane_fork_token {
        pl::edge_id edge = pl::k_invalid_edge;
        std::uint64_t value = 0;
        double time = 0.0;
    };
    /// One pending calendar deposit of a fork checkpoint: the packed event
    /// plus its lane payload word (the cal_event key has no room for it).
    struct lane_fork_deposit {
        cal_event event;
        std::uint64_t word = 0;
    };
    /// Checkpoint of the minority branch of one mixed-efire split: enough
    /// pass state to resume simulating those lanes from the split point
    /// instead of t = 0.  Per-gate pending counters are not stored — they
    /// are re-derived from the present-token set (pending[g] ==
    /// in_count[g] - present in-edges, an engine invariant).
    struct lane_fork_record {
        std::uint64_t mask = 0;     ///< lanes this branch owns
        std::uint32_t depth = 0;    ///< nested splits since the pass started
        std::size_t footprint = 0;  ///< bytes charged to the fork budget
        std::uint64_t next_seq = 0;
        double input_stable = 0.0;
        double output_stable = 0.0;
        std::size_t sinks_pending = 0;
        std::uint64_t hits = 0, misses = 0, wins = 0;  ///< per-pass EE state
        /// Per-lane hit/miss counts from mixed-but-non-diverging efire words
        /// (early >= normal): those words never split, so their EE outcome
        /// differs per lane within one pass and can't ride the scalar
        /// counters above.
        std::array<std::uint32_t, k_lanes> mixed_hits{};
        std::array<std::uint32_t, k_lanes> mixed_misses{};
        std::vector<std::uint32_t> fired_waves;        ///< per gate
        std::vector<lane_fork_token> tokens;
        std::vector<lane_fork_deposit> deposits;
        /// The split master's own emission: its inputs are already consumed
        /// but its outputs are unscheduled, and t_out is the one quantity
        /// the branches disagree on (the minority is uniform by
        /// construction, so its output path is already decided here).
        pl::gate_id split_gate = pl::k_invalid_gate;
        std::uint64_t split_value = 0;
        double split_t_out = 0.0;
        double split_t_ack = 0.0;

        std::size_t bytes() const {
            return sizeof(lane_fork_record) +
                   fired_waves.capacity() * sizeof(std::uint32_t) +
                   tokens.capacity() * sizeof(lane_fork_token) +
                   deposits.capacity() * sizeof(lane_fork_deposit);
        }
    };

    void run_lane_pass(std::uint64_t mask, lane_block_result& result);
    void run_lane_fork(lane_block_result& result);
    void run_lane_events();
    void commit_lane_pass(lane_block_result& result);
    void defer_minority(pl::gate_id g, std::uint64_t minority,
                        std::uint64_t efire_word, std::uint64_t value,
                        double t_ready, double t_data, double efire_time);
    void plan_lane_groups(const stimulus_block& block);
    void schedule_lanes(std::uint64_t tick, double time, pl::edge_id edge,
                        std::uint64_t word);
    void place_lanes(pl::edge_id edge, double time);
    void try_fire_lanes(pl::gate_id g);
    template <bool Vec>
    void try_fire_lanes_impl(pl::gate_id g);
    void fire_source_lanes(pl::gate_id g);
    void record_sink_lanes(pl::gate_id g);
    // Vector-time variants (lane_split_policy::vector): same firing rules,
    // but a token's time is per-lane wherever the EE cone made it diverge.
    void try_fire_lanes_vec(pl::gate_id g);
    void record_sink_lanes_vec(pl::gate_id g);
    void schedule_lanes_vec(pl::edge_id edge, std::uint64_t word,
                            const double* times);
    void gather_times_vec(const pl::edge_id* edges, std::uint32_t begin,
                          std::uint32_t end, double* out) const;
    bool edge_time_varies(pl::edge_id e) const {
        return (lane_time_varies_[e >> 6] >> (e & 63)) & 1u;
    }

    /// Wave k's value of source slot `slot`: lane (k & 63) of block (k >> 6).
    bool stim_bit(std::size_t wave, std::uint32_t slot) const {
        return (stim_[wave >> 6].words[slot] >> (wave & 63)) & 1u;
    }

    const pl::pl_netlist& pl_;
    sim_options options_;
    sim_run_stats stats_;

    // Static structure (built once per netlist).
    pl::flat_topology topo_;
    std::vector<gate_desc> desc_;
    std::vector<std::uint32_t> in_count_;  ///< per gate: |in_edges|
    std::size_t num_masters_ = 0;          ///< gates with an efire input

    // Per-run state — reference engine.
    std::vector<token_slot> tokens_;  ///< per edge (AoS)
    std::vector<deposit> heap_;       ///< min-heap via std::push_heap

    // Per-run state — throughput engine.
    std::vector<std::uint64_t> tok_present_;  ///< presence bitset, per edge
    std::vector<std::uint64_t> tok_value_;    ///< value bitset, per edge
    std::vector<double> tok_time_;            ///< arrival time, per edge
    calendar_queue calendar_;

    // Per-run state — shared.
    bool trace_on_ = false;  ///< options_.collect_trace, hoisted for place_fast
    std::vector<std::uint32_t> pending_;      ///< per gate: inputs without tokens
    std::vector<std::uint32_t> fired_waves_;  ///< per gate: completed firings
    std::uint64_t next_seq_ = 0;

    // Per-run state — lane engine.
    std::vector<std::uint64_t> lane_value_;     ///< per edge: lane-packed value
    std::vector<std::uint64_t> lane_sched_;     ///< per edge: in-flight value word
    std::vector<std::uint64_t> lane_inflight_;  ///< bitset: deposit scheduled
    std::uint64_t lane_mask_ = 0;               ///< lanes this pass simulates
    std::vector<std::uint64_t> lane_deferred_;  ///< masks awaiting a t0 pass
    const stimulus_block* lane_block_ = nullptr;
    std::vector<std::uint64_t> lane_sink_words_;  ///< per sink, this pass
    std::uint64_t lane_hits_ = 0;    ///< per-pass EE counters, committed at
    std::uint64_t lane_misses_ = 0;  ///< pass end x the lanes the pass kept
    std::uint64_t lane_wins_ = 0;
    /// Per-lane EE counts from mixed non-diverging efire words (see
    /// lane_fork_record::mixed_hits) — committed per kept lane at pass end.
    std::array<std::uint32_t, k_lanes> lane_mixed_hits_{};
    std::array<std::uint32_t, k_lanes> lane_mixed_misses_{};
    std::uint32_t lane_depth_ = 0;   ///< fork depth of the current pass
    std::vector<lane_fork_record> lane_forks_;  ///< LIFO: branches to resume
    std::vector<lane_fork_record> lane_fork_pool_;  ///< retired records, for
                                                    ///< allocation-free reuse
    // Vector-time pass state (lane_split_policy::vector).
    bool lane_vec_ = false;          ///< current pass carries per-lane times
    std::vector<double> lane_time_;  ///< per edge x lane: divergent-cone times
    std::vector<std::uint64_t> lane_time_varies_;  ///< bitset: slab is live
    std::array<double, k_lanes> output_stable_lane_{};
    std::size_t lane_fork_bytes_ = 0;  ///< bytes held by lane_forks_
    std::vector<cal_event> cal_scratch_;  ///< snapshot/restore staging
    std::array<std::uint64_t, k_lanes + 1> fork_depth_counts_{};
    // Trigger-prepass scratch (value-only dataflow, no times, no queue).
    std::vector<std::uint64_t> pre_value_;      ///< per edge: value word
    std::vector<std::uint32_t> pre_pending_;    ///< per gate
    std::vector<std::uint32_t> pre_fired_;      ///< per gate
    std::vector<pl::gate_id> pre_worklist_;
    std::vector<std::uint64_t> group_masks_;    ///< planned per-group masks

    std::vector<trace_event> trace_;
    const stimulus_block* stim_ = nullptr;  ///< sequential-wave stimulus
    std::vector<stimulus_block> packed_stim_;  ///< run(vectors) pack buffer
    std::size_t num_waves_ = 0;
    std::size_t released_waves_ = 0;
    std::vector<double> release_time_;        ///< per wave
    std::vector<double> input_stable_;        ///< per wave
    std::vector<double> output_stable_;       ///< per wave
    std::vector<std::size_t> sinks_pending_;  ///< per wave: sinks not yet arrived
    std::size_t waves_stable_ = 0;
    std::vector<std::vector<bool>> wave_outputs_;
};

}  // namespace plee::sim
