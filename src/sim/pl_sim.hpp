// pl_sim.hpp — event-driven token-level simulator for Phased Logic netlists.
//
// Simulates the marked-graph semantics of a PL circuit with valued tokens and
// the delay model of delay_model.hpp.  A gate fires the moment a token is
// present on every input edge (the Muller-C completion rule); firing consumes
// one token per input edge and deposits tokens on every output edge at
// analytically computed times.  Early Evaluation masters fire their *output*
// early when the efire token carries 1, while handshaking (acknowledges,
// token consumption) still waits for full completion — exactly the decoupling
// of Figure 2.
//
// The measurement protocol matches Section 4: "we determined the average
// delay time between the presence of a stable input vector and a stable
// output word. In a PL circuit, new values cannot be presented to the inputs
// until a stable output is generated for the current input values."  In the
// default non-pipelined mode the environment releases input vector k+1 when
// all primary outputs of vector k have arrived.  A pipelined mode (tokens
// streamed as fast as the acknowledges allow) is provided as an extension.
//
// The simulator doubles as a dynamic checker of the marked-graph theory: a
// token deposited onto an occupied edge (safety violation) or a deadlock
// before the run completes (liveness violation) raises an error.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plogic/pl_netlist.hpp"
#include "sim/delay_model.hpp"

namespace plee::sim {

struct sim_options {
    delay_model delays{};
    /// Environment mode: true = vector-at-a-time (the paper's measurement),
    /// false = streaming tokens limited only by the handshakes.
    bool non_pipelined = true;
    /// Verify the EE invariant on every early fire: the trigger value
    /// recomputed from the master's consumed inputs must match the efire
    /// token, and a 1 trigger implies the subset determines the output.
    bool check_early_value = true;
    /// Record every data-token arrival for waveform (VCD) export.
    bool collect_trace = false;
    /// Hard limit on processed events (runaway guard).
    std::uint64_t max_events = 100'000'000;
};

/// One recorded token arrival (collect_trace mode).
struct trace_event {
    double time = 0.0;
    pl::edge_id edge = pl::k_invalid_edge;
    bool value = false;
};

struct wave_record {
    std::vector<bool> outputs;   ///< primary output values, sink order
    double release_time = 0.0;   ///< when the environment could present inputs
                                 ///< (= previous wave's output_stable)
    double input_stable = 0.0;   ///< last input token deposit for this wave
    double output_stable = 0.0;  ///< last primary output token arrival

    /// The paper's per-vector delay: "the presence of a stable input vector"
    /// (the environment may drive inputs the moment the previous outputs are
    /// stable) to "a stable output word".  For combinational circuits this
    /// is the settle time; for sequential circuits it is the self-timed
    /// cycle time, including the register-update wave.  Meaningful in
    /// non-pipelined mode (in pipelined mode release_time is 0 and this is
    /// the absolute stabilization time).
    double delay() const { return output_stable - release_time; }
};

struct sim_run_stats {
    std::uint64_t events = 0;
    std::uint64_t firings = 0;
    std::uint64_t ee_hits = 0;    ///< master firings with efire == 1
    std::uint64_t ee_misses = 0;  ///< master firings with efire == 0
    std::uint64_t ee_wins = 0;    ///< hits where the efire path strictly won
};

class pl_simulator {
public:
    explicit pl_simulator(const pl::pl_netlist& pl, sim_options options = {});

    /// Runs `vectors.size()` waves; vectors[k] holds the wave-k value of each
    /// primary input in pl.sources() order.  Throws on deadlock, safety
    /// violation or EE invariant failure.
    std::vector<wave_record> run(const std::vector<std::vector<bool>>& vectors);

    const sim_run_stats& stats() const { return stats_; }

    /// Token arrivals recorded by the last run (empty unless
    /// options.collect_trace); ordered by processing, not strictly by time.
    const std::vector<trace_event>& trace() const { return trace_; }

private:
    struct token_slot {
        bool present = false;
        bool value = false;
        double time = 0.0;
    };
    struct deposit {
        double time = 0.0;
        std::uint64_t seq = 0;
        pl::edge_id edge = pl::k_invalid_edge;
        bool value = false;
        bool operator>(const deposit& o) const {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    void reset();
    void schedule(pl::edge_id edge, bool value, double time);
    void place(pl::edge_id edge, bool value, double time);
    void try_fire(pl::gate_id g);
    void fire_source(pl::gate_id g);
    void record_sink(pl::gate_id g);
    std::string deadlock_diagnostic() const;

    const pl::pl_netlist& pl_;
    sim_options options_;
    sim_run_stats stats_;

    // Static structure.
    std::vector<std::size_t> source_index_;  ///< gate -> position in sources()
    std::vector<std::size_t> sink_index_;    ///< gate -> position in sinks()

    // Per-run state.
    std::vector<token_slot> tokens_;          ///< per edge
    std::vector<std::uint32_t> pending_;      ///< per gate: inputs without tokens
    std::vector<std::uint32_t> fired_waves_;  ///< per gate: completed firings
    std::vector<deposit> heap_;               ///< min-heap via std::push_heap
    std::uint64_t next_seq_ = 0;

    std::vector<trace_event> trace_;
    const std::vector<std::vector<bool>>* vectors_ = nullptr;
    std::size_t num_waves_ = 0;
    std::size_t released_waves_ = 0;
    std::vector<double> release_time_;        ///< per wave
    std::vector<double> input_stable_;        ///< per wave
    std::vector<double> output_stable_;       ///< per wave
    std::vector<std::size_t> sinks_pending_;  ///< per wave: sinks not yet arrived
    std::size_t waves_stable_ = 0;
    std::vector<std::vector<bool>> wave_outputs_;
};

}  // namespace plee::sim
