#include "sim/measure.hpp"

#include <chrono>
#include <cmath>
#include <random>
#include <stdexcept>

#include "netlist/sync_sim.hpp"
#include "rt/errors.hpp"

namespace plee::sim {

std::vector<std::vector<bool>> random_vectors(std::size_t count, std::size_t width,
                                              std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution bit(0.5);
    std::vector<std::vector<bool>> vectors(count, std::vector<bool>(width, false));
    for (auto& v : vectors) {
        for (std::size_t i = 0; i < width; ++i) v[i] = bit(rng);
    }
    return vectors;
}

measure_result measure_average_delay(const pl::pl_netlist& pl,
                                     const nl::netlist* golden,
                                     const measure_options& options) {
    const auto vectors =
        random_vectors(options.num_vectors, pl.sources().size(), options.seed);

    pl_simulator simulator(pl, options.sim);
    const auto sim_start = std::chrono::steady_clock::now();
    const std::vector<wave_record> waves = simulator.run(vectors);
    const auto sim_end = std::chrono::steady_clock::now();

    measure_result result;
    result.stats = simulator.stats();
    result.sim_wall_ms =
        std::chrono::duration<double, std::milli>(sim_end - sim_start).count();
    result.delays.reserve(waves.size());

    if (golden != nullptr) {
        nl::sync_simulator gold(*golden);
        for (std::size_t w = 0; w < waves.size(); ++w) {
            const std::vector<bool> expected = gold.cycle(vectors[w]);
            if (expected != waves[w].outputs) ++result.mismatched_waves;
        }
        if (result.mismatched_waves > 0 && options.require_functional_match) {
            throw plee_error(
                "measure_average_delay[" +
                    (options.sim.label.empty() ? "?" : options.sim.label) +
                    "]: PL outputs diverge from the synchronous golden model "
                    "on " +
                    std::to_string(result.mismatched_waves) + " of " +
                    std::to_string(waves.size()) + " waves",
                failure_class::permanent);
        }
    }

    double sum = 0.0;
    double sum_sq = 0.0;
    result.min_delay = waves.empty() ? 0.0 : waves.front().delay();
    result.max_delay = result.min_delay;
    for (const wave_record& w : waves) {
        const double d = w.delay();
        result.delays.push_back(d);
        sum += d;
        sum_sq += d * d;
        result.min_delay = std::min(result.min_delay, d);
        result.max_delay = std::max(result.max_delay, d);
    }
    if (!waves.empty()) {
        const double n = static_cast<double>(waves.size());
        result.avg_delay = sum / n;
        const double variance = std::max(0.0, sum_sq / n - result.avg_delay * result.avg_delay);
        result.stddev = std::sqrt(variance);
    }
    return result;
}

}  // namespace plee::sim
