#include "sim/measure.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "netlist/sync_sim.hpp"
#include "obs/registry.hpp"
#include "rt/errors.hpp"
#include "rt/wall_timer.hpp"

namespace plee::sim {

namespace {

[[noreturn]] void throw_mismatch(const measure_options& options,
                                 std::size_t mismatched, std::size_t total) {
    throw plee_error(
        "measure_average_delay[" +
            (options.sim.label.empty() ? "?" : options.sim.label) +
            "]: PL outputs diverge from the synchronous golden model on " +
            std::to_string(mismatched) + " of " + std::to_string(total) +
            " waves",
        failure_class::permanent);
}

/// Sequential-wave protocol: one run over all vectors, golden-checked
/// against the scalar synchronous model wave by wave.
void measure_serial(const pl::pl_netlist& pl, const nl::netlist* golden,
                    const measure_options& options,
                    const std::vector<stimulus_block>& blocks,
                    measure_result& result) {
    pl_simulator simulator(pl, options.sim);
    std::vector<wave_record> waves;
    {
        const obs::scoped_span span(options.trace, "sim.run");
        const wall_timer timer;
        waves = simulator.run_packed(blocks);
        result.sim_wall_ms = timer.elapsed_ms();
    }
    result.stats = simulator.stats();

    if (golden != nullptr) {
        const obs::scoped_span span(options.trace, "sim.golden");
        nl::sync_simulator gold(*golden);
        std::vector<bool> inputs;
        for (std::size_t w = 0; w < waves.size(); ++w) {
            blocks[w / k_lanes].extract(w % k_lanes, inputs);
            gold.set_inputs(inputs);
            gold.eval();
            if (!gold.outputs_equal(waves[w].outputs)) ++result.mismatched_waves;
            gold.latch();
        }
        if (result.mismatched_waves > 0 && options.require_functional_match) {
            throw_mismatch(options, result.mismatched_waves, waves.size());
        }
    }

    result.delays.reserve(waves.size());
    for (const wave_record& w : waves) result.delays.push_back(w.delay());
}

/// Lane-parallel protocol: 64 independent single-vector runs per block,
/// golden-checked against the 64-lane synchronous model word-wide.
void measure_lanes(const pl::pl_netlist& pl, const nl::netlist* golden,
                   const measure_options& options,
                   const std::vector<stimulus_block>& blocks,
                   measure_result& result) {
    pl_simulator simulator(pl, options.sim);
    std::vector<lane_block_result> lane_results;
    lane_results.reserve(blocks.size());
    sim_run_stats total{};
    result.fork_depth_counts.assign(k_lanes + 1, 0);
    std::uint64_t lockstep_num = 0;  ///< merged pass-slots actually saved
    std::uint64_t lockstep_den = 0;  ///< merged pass-slots possible
    {
        const obs::scoped_span span(options.trace, "sim.run");
        const wall_timer timer;
        for (const stimulus_block& block : blocks) {
            lane_results.push_back(simulator.run_lanes(block));
            const sim_run_stats& s = simulator.stats();
            total.events += s.events;
            total.firings += s.firings;
            total.ee_hits += s.ee_hits;
            total.ee_misses += s.ee_misses;
            total.ee_wins += s.ee_wins;
            total.lane_blocks += s.lane_blocks;
            total.lane_vectors += s.lane_vectors;
            total.lane_runs += s.lane_runs;
            total.lane_splits += s.lane_splits;
            total.lane_forks += s.lane_forks;
            total.lane_groups += s.lane_groups;
            total.lane_replays += s.lane_replays;
            total.lane_fork_depth_max =
                std::max(total.lane_fork_depth_max, s.lane_fork_depth_max);
            total.lane_fork_bytes_peak =
                std::max(total.lane_fork_bytes_peak, s.lane_fork_bytes_peak);
            const auto& depths = simulator.fork_depth_counts();
            for (std::size_t i = 0; i < depths.size(); ++i) {
                result.fork_depth_counts[i] += depths[i];
            }
            // Lockstep bookkeeping over splittable blocks only: a
            // single-vector block has no lanes to merge, so it contributes
            // nothing to either side (the old v==b shortcut reported such
            // workloads as "fully lockstep" even when their passes split).
            if (s.lane_vectors > 1) {
                lockstep_num +=
                    s.lane_vectors - std::min<std::uint64_t>(
                                         s.lane_vectors,
                                         s.lane_runs + s.lane_forks);
                lockstep_den += s.lane_vectors - 1;
            }
        }
        result.sim_wall_ms = timer.elapsed_ms();
    }
    result.stats = total;

    if (golden != nullptr) {
        const obs::scoped_span span(options.trace, "sim.golden");
        nl::sync_lane_simulator gold(*golden);
        std::vector<std::uint64_t> expected(golden->outputs().size());
        std::size_t mismatched = 0;
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            gold.reset();
            gold.set_inputs(blocks[b].words.data(), blocks[b].width);
            gold.eval();
            gold.output_values(expected.data());
            std::uint64_t diff = 0;
            const std::uint64_t mask = blocks[b].lane_mask();
            for (std::size_t j = 0; j < expected.size(); ++j) {
                diff |= (lane_results[b].outputs[j] ^ expected[j]) & mask;
            }
            mismatched += static_cast<std::size_t>(std::popcount(diff));
        }
        result.mismatched_waves = mismatched;
        if (mismatched > 0 && options.require_functional_match) {
            throw_mismatch(options, mismatched, options.num_vectors);
        }
    }

    result.delays.reserve(options.num_vectors);
    for (const lane_block_result& r : lane_results) {
        for (std::size_t lane = 0; lane < r.num_vectors; ++lane) {
            result.delays.push_back(r.delay(lane));
        }
    }
    // Run-merging achieved vs possible.  Passes = from-t0 runs + fork
    // resumes; every block needs >= 1 pass, every vector can cost at most
    // one.  1.0 is reserved for genuinely divergence-free workloads: no
    // split ever happened and every block finished in a single pass.
    // Otherwise the ratio is computed over splittable (multi-vector) blocks
    // only — degenerate single-vector blocks can neither merge nor split,
    // so they no longer drag the metric to a fake "fully lockstep".
    if (total.lane_splits == 0 && total.lane_forks == 0 &&
        total.lane_runs == total.lane_blocks) {
        result.lockstep_fraction = 1.0;
    } else {
        result.lockstep_fraction =
            lockstep_den > 0 ? static_cast<double>(lockstep_num) /
                                   static_cast<double>(lockstep_den)
                             : 0.0;
    }
}

}  // namespace

std::vector<std::vector<bool>> random_vectors(std::size_t count, std::size_t width,
                                              std::uint64_t seed) {
    const std::vector<stimulus_block> blocks = make_stimulus(count, width, seed);
    std::vector<std::vector<bool>> vectors(count);
    for (std::size_t v = 0; v < count; ++v) {
        blocks[v / k_lanes].extract(v % k_lanes, vectors[v]);
    }
    return vectors;
}

measure_result measure_average_delay(const pl::pl_netlist& pl,
                                     const nl::netlist* golden,
                                     const measure_options& options) {
    if (options.lanes != 1 && options.lanes != k_lanes) {
        throw std::invalid_argument(
            "measure_average_delay: lanes must be 1 or 64");
    }
    const std::vector<stimulus_block> blocks =
        make_stimulus(options.num_vectors, pl.sources().size(), options.seed);

    measure_result result;
    result.lanes = options.lanes;
    if (options.lanes == 1) {
        measure_serial(pl, golden, options, blocks, result);
    } else {
        measure_lanes(pl, golden, options, blocks, result);
    }

    double sum = 0.0;
    double sum_sq = 0.0;
    result.min_delay = result.delays.empty() ? 0.0 : result.delays.front();
    result.max_delay = result.min_delay;
    for (const double d : result.delays) {
        sum += d;
        sum_sq += d * d;
        result.min_delay = std::min(result.min_delay, d);
        result.max_delay = std::max(result.max_delay, d);
    }
    if (!result.delays.empty()) {
        const double n = static_cast<double>(result.delays.size());
        result.avg_delay = sum / n;
        const double variance =
            std::max(0.0, sum_sq / n - result.avg_delay * result.avg_delay);
        result.stddev = std::sqrt(variance);
    }

    if (options.telemetry) {
        // Distribution + registry flush happen once per measurement, off the
        // simulator's hot path: the per-event cost of telemetry is zero.
        for (const double d : result.delays) {
            result.delay_hist.record(
                d <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(d * 1e3)));
        }
        static obs::counter& events =
            obs::registry::global().get_counter("sim.events");
        static obs::counter& firings =
            obs::registry::global().get_counter("sim.firings");
        static obs::counter& vectors =
            obs::registry::global().get_counter("sim.vectors");
        static obs::counter& ee_hits =
            obs::registry::global().get_counter("sim.ee.hits");
        static obs::counter& ee_misses =
            obs::registry::global().get_counter("sim.ee.misses");
        static obs::counter& ee_wins =
            obs::registry::global().get_counter("sim.ee.wins");
        static obs::histogram& delay_hist =
            obs::registry::global().get_histogram("sim.vector_delay_ps");
        static obs::histogram& wall_hist =
            obs::registry::global().get_histogram("sim.measure_wall_us");
        static obs::counter& lane_forks =
            obs::registry::global().get_counter("sim.lane_forks");
        static obs::counter& replays_avoided =
            obs::registry::global().get_counter("sim.lane_replays_avoided");
        static obs::histogram& fork_depth_hist =
            obs::registry::global().get_histogram("sim.lane_fork_depth");
        events.add(result.stats.events);
        firings.add(result.stats.firings);
        vectors.add(result.delays.size());
        ee_hits.add(result.stats.ee_hits);
        ee_misses.add(result.stats.ee_misses);
        ee_wins.add(result.stats.ee_wins);
        // Every fork resume is exactly one from-t0 replay that did not
        // happen, so the two counters share a value by construction.
        lane_forks.add(result.stats.lane_forks);
        replays_avoided.add(result.stats.lane_forks);
        for (std::size_t d = 0; d < result.fork_depth_counts.size(); ++d) {
            if (result.fork_depth_counts[d] != 0) {
                fork_depth_hist.record_n(d, result.fork_depth_counts[d]);
            }
        }
        delay_hist.merge(result.delay_hist);
        wall_hist.record(result.sim_wall_ms <= 0.0
                             ? 0
                             : static_cast<std::uint64_t>(
                                   std::llround(result.sim_wall_ms * 1e3)));
    }
    return result;
}

}  // namespace plee::sim
