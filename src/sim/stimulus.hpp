// stimulus.hpp — bit-packed multi-vector stimulus.
//
// The measure phase drives every circuit with batches of random input
// vectors.  The lane-parallel simulators (sync_lane_simulator and
// pl_simulator::run_lanes) evaluate 64 vectors at once by packing one bit
// per vector into a 64-bit word per signal, so the stimulus is generated
// directly in that transposed layout: a stimulus_block holds up to 64
// vectors as `width` words, where bit L of word i is vector L's value of
// input i.
//
// Determinism contract: make_stimulus draws from the same mt19937_64 +
// bernoulli(1/2) stream, in the same vector-major order, as the historical
// random_vectors — so lane L of block B is byte-identical to vector
// 64*B + L of the unpacked representation for any seed.  random_vectors is
// now implemented by unpacking blocks, which makes the identity structural
// rather than coincidental.

#pragma once

#include <cstdint>
#include <vector>

namespace plee::sim {

/// Lanes per stimulus block: one bit per vector in a 64-bit word.
inline constexpr std::size_t k_lanes = 64;

/// Up to 64 input vectors in transposed (lane-packed) layout.
struct stimulus_block {
    std::size_t width = 0;        ///< inputs per vector
    std::size_t num_vectors = 0;  ///< occupied lanes, 1..64
    /// One word per input; bit L holds vector L's value of that input.
    /// Bits at and above num_vectors are zero.
    std::vector<std::uint64_t> words;

    /// Mask with the low num_vectors bits set — the block's occupied lanes.
    std::uint64_t lane_mask() const {
        return num_vectors >= k_lanes ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << num_vectors) - 1;
    }

    /// Value of input `input` in vector (lane) `vec`.
    bool bit(std::size_t vec, std::size_t input) const {
        return (words[input] >> vec) & 1u;
    }

    /// Unpacks one lane into a caller-owned reusable buffer (resized to
    /// width) — the only place a per-vector bool vector is materialized.
    void extract(std::size_t vec, std::vector<bool>& out) const;
};

/// Deterministic pseudo-random stimulus, packed: ceil(count / 64) blocks,
/// the last one partially filled.  Same bit stream as random_vectors.
std::vector<stimulus_block> make_stimulus(std::size_t count, std::size_t width,
                                          std::uint64_t seed);

}  // namespace plee::sim
