#include "sim/stimulus.hpp"

#include <random>

namespace plee::sim {

void stimulus_block::extract(std::size_t vec, std::vector<bool>& out) const {
    out.resize(width);
    for (std::size_t i = 0; i < width; ++i) out[i] = bit(vec, i);
}

std::vector<stimulus_block> make_stimulus(std::size_t count, std::size_t width,
                                          std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution bit(0.5);
    std::vector<stimulus_block> blocks((count + k_lanes - 1) / k_lanes);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        blocks[b].width = width;
        blocks[b].num_vectors = std::min(k_lanes, count - b * k_lanes);
        blocks[b].words.assign(width, 0);
    }
    // Vector-major draw order — the exact stream random_vectors always used,
    // so per-seed lane contents stay byte-identical to the unpacked form.
    for (std::size_t v = 0; v < count; ++v) {
        stimulus_block& block = blocks[v / k_lanes];
        const std::uint64_t lane_bit = std::uint64_t{1} << (v % k_lanes);
        for (std::size_t i = 0; i < width; ++i) {
            if (bit(rng)) block.words[i] |= lane_bit;
        }
    }
    return blocks;
}

}  // namespace plee::sim
