#include "sim/pl_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "fault/injector.hpp"
#include "sim/errors.hpp"

namespace plee::sim {

namespace {

/// Calendar bucket width: the smallest positive delay-model component, so
/// deposits separated by at least one delay land in distinct ticks and
/// same-time deposits share a bucket.  Falls back to 1.0 for an all-zero
/// (degenerate) model.
double bucket_width_for(const delay_model& d) {
    double width = 0.0;
    for (double v : {d.d_celem, d.d_lut, d.d_latch, d.d_ee_penalty, d.d_source}) {
        if (v > 0.0 && (width == 0.0 || v < width)) width = v;
    }
    return width > 0.0 ? width : 1.0;
}

/// Largest single-deposit look-ahead the model can produce (every scheduled
/// time is at most this far past the event that scheduled it) — sizes the
/// calendar's ring window.
double max_delay_for(const delay_model& d) {
    return std::max({d.d_source, d.gate_delay() + d.d_ee_penalty,
                     d.through_delay(), d.ack_delay(), d.efire_delay()});
}

}  // namespace

const char* to_string(queue_kind kind) {
    switch (kind) {
        case queue_kind::binary_heap: return "heap";
        case queue_kind::calendar: return "calendar";
    }
    return "?";
}

queue_kind queue_kind_from_string(const std::string& name) {
    if (name == "heap" || name == "binary_heap") return queue_kind::binary_heap;
    if (name == "calendar") return queue_kind::calendar;
    throw std::invalid_argument("unknown queue kind: '" + name +
                                "' (expected heap | binary_heap | calendar)");
}

pl_simulator::pl_simulator(const pl::pl_netlist& pl, sim_options options)
    : pl_(pl), options_(options), topo_(pl) {
    const std::size_t num_gates = pl.num_gates();
    desc_.resize(num_gates);
    in_count_.resize(num_gates);
    for (pl::gate_id g = 0; g < num_gates; ++g) {
        const pl::pl_gate& gate = pl.gate(g);
        gate_desc& d = desc_[g];
        d.kind = gate.kind;
        d.num_data = static_cast<std::uint8_t>(gate.data_in.size());
        d.const_value = gate.const_value;
        d.in_begin = topo_.in_off[g];
        d.in_end = topo_.in_off[g + 1];
        d.data_begin = topo_.data_off[g];
        d.out_begin = topo_.out_off[g];
        d.out_end = topo_.out_off[g + 1];
        d.efire_in = gate.efire_in;
        d.fn_bits = gate.function.words();
        in_count_[g] = d.in_end - d.in_begin;
        if (gate.trigger != pl::k_invalid_gate) {
            // Master of an EE pair: bake the trigger function and its
            // pin-packing map in, so neither engine allocates at fire time.
            const pl::pl_gate& trig = pl.gate(gate.trigger);
            d.trig_fn_bits = trig.function.words();
            std::uint8_t count = 0;
            for (std::uint8_t v = 0; v < 32; ++v) {
                if ((trig.trigger_support >> v) & 1u) {
                    if (count >= sizeof(d.trig_pins)) {
                        throw std::logic_error(
                            "pl_simulator: trigger support wider than the "
                            "LUT pin limit");
                    }
                    d.trig_pins[count++] = v;
                }
            }
            d.trig_pin_count = count;
        }
    }
    for (std::size_t i = 0; i < pl.sources().size(); ++i) {
        desc_[pl.sources()[i]].env_slot = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 0; i < pl.sinks().size(); ++i) {
        desc_[pl.sinks()[i]].env_slot = static_cast<std::uint32_t>(i);
    }
}

void pl_simulator::reset() {
    stats_ = {};
    trace_on_ = options_.collect_trace;
    trace_.clear();
    next_seq_ = 0;
    pending_ = in_count_;
    fired_waves_.assign(pl_.num_gates(), 0);
}

// ---------------------------------------------------------------------------
// Reference engine: binary heap over AoS token slots (the seed's hot path).
// ---------------------------------------------------------------------------

void pl_simulator::schedule(pl::edge_id edge, bool value, double time) {
    heap_.push_back({time, next_seq_++, edge, value});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void pl_simulator::place(pl::edge_id edge, bool value, double time) {
    token_slot& slot = tokens_[edge];
    if (slot.present) {
        throw invariant_violation(
            "token deposited onto an occupied edge " + std::to_string(edge) +
                " (marked-graph safety violation)",
            options_.label, stats_.events, "heap");
    }
    slot = {true, value, time};
    const pl::pl_edge& e = pl_.edge(edge);
    if (options_.collect_trace && e.kind == pl::edge_kind::data) {
        trace_.push_back({time, edge, value});
    }
    if (--pending_[e.to] == 0) try_fire(e.to);
}

void pl_simulator::fire_source(pl::gate_id g) {
    const pl::pl_gate& gate = pl_.gate(g);
    // A source with acknowledge inputs fires once per enabling; a source with
    // no feedback constraints (all its acks were shared away, or it is being
    // abused in a hand-built netlist) free-runs through every released wave —
    // which is exactly how an over-eager environment overruns an unsafe
    // design, and the dynamic safety check then reports it.
    while (pending_[g] == 0) {
        const std::size_t wave = fired_waves_[g];
        if (wave >= num_waves_ || wave >= released_waves_) return;

        double t_ready = release_time_[wave];
        for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);
        for (pl::edge_id e : gate.in_edges) {
            tokens_[e].present = false;
            ++pending_[g];
        }
        ++fired_waves_[g];
        ++stats_.firings;

        const bool value = stim_bit(wave, desc_[g].env_slot);
        const double t_out = t_ready + options_.delays.d_source;
        input_stable_[wave] = std::max(input_stable_[wave], t_out);
        for (pl::edge_id e : gate.out_edges) schedule(e, value, t_out);
    }
}

void pl_simulator::record_sink(pl::gate_id g) {
    const pl::pl_gate& gate = pl_.gate(g);
    const pl::edge_id data_edge = gate.data_in.front();
    const token_slot tok = tokens_[data_edge];
    const std::size_t wave = fired_waves_[g];

    for (pl::edge_id e : gate.in_edges) {
        tokens_[e].present = false;
        ++pending_[g];
    }
    ++fired_waves_[g];
    ++stats_.firings;

    double t_ready = tok.time;
    for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);
    for (pl::edge_id e : gate.out_edges) {
        schedule(e, false, t_ready + options_.delays.ack_delay());
    }

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    wave_outputs_[wave][desc_[g].env_slot] = tok.value;
    output_stable_[wave] = std::max(output_stable_[wave], tok.time);
    if (--sinks_pending_[wave] == 0) {
        ++waves_stable_;
        if (options_.non_pipelined && wave + 1 < num_waves_) {
            release_time_[wave + 1] = output_stable_[wave];
            ++released_waves_;
            for (pl::gate_id src : pl_.sources()) {
                if (pending_[src] == 0) fire_source(src);
            }
        }
    }
}

void pl_simulator::try_fire(pl::gate_id g) {
    if (pending_[g] != 0) return;
    const pl::pl_gate& gate = pl_.gate(g);

    switch (gate.kind) {
        case pl::gate_kind::source:
            fire_source(g);
            return;
        case pl::gate_kind::sink:
            record_sink(g);
            return;
        default:
            break;
    }

    // Common firing: compute readiness, consume, emit.
    double t_ready = 0.0;
    for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);

    // Gather the LUT operand values before consuming.
    std::uint32_t minterm = 0;
    for (std::size_t pin = 0; pin < gate.data_in.size(); ++pin) {
        if (tokens_[gate.data_in[pin]].value) minterm |= 1u << pin;
    }
    double efire_time = 0.0;
    bool efire_value = false;
    const bool has_trigger = gate.efire_in != pl::k_invalid_edge;
    if (has_trigger) {
        efire_time = tokens_[gate.efire_in].time;
        efire_value = tokens_[gate.efire_in].value;
    }
    double t_data = 0.0;
    for (pl::edge_id e : gate.data_in) t_data = std::max(t_data, tokens_[e].time);

    for (pl::edge_id e : gate.in_edges) {
        tokens_[e].present = false;
        ++pending_[g];
    }
    ++fired_waves_[g];
    ++stats_.firings;

    bool value = false;
    double t_out = 0.0;
    switch (gate.kind) {
        case pl::gate_kind::const_source:
            value = gate.const_value;
            t_out = t_ready + options_.delays.d_source;
            break;
        case pl::gate_kind::through:
            value = (minterm & 1u) != 0;  // identity on the D token
            t_out = t_ready + options_.delays.through_delay();
            break;
        case pl::gate_kind::trigger:
            value = gate.function.eval(minterm);
            t_out = t_ready + options_.delays.gate_delay();
            break;
        case pl::gate_kind::compute: {
            value = gate.function.eval(minterm);
            if (!has_trigger) {
                t_out = t_ready + options_.delays.gate_delay();
                break;
            }
            // EE master: normal completion pays the extra C-element; a
            // 1-valued efire token opens the output latch early.
            const double normal =
                t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
            if (efire_value) {
                const double early = efire_time + options_.delays.efire_delay();
                t_out = std::min(early, normal);
                ++stats_.ee_hits;
                if (early < normal) ++stats_.ee_wins;
            } else {
                t_out = normal;
                ++stats_.ee_misses;
            }
            if (options_.check_early_value) {
                // Recompute the trigger from the master's consumed operands
                // through the precomputed pin-packing map.
                const gate_desc& d = desc_[g];
                std::uint32_t packed = 0;
                for (std::uint8_t i = 0; i < d.trig_pin_count; ++i) {
                    packed |= ((minterm >> d.trig_pins[i]) & 1u) << i;
                }
                const bool trig_value =
                    (d.trig_fn_bits[packed >> 6] >> (packed & 63)) & 1u;
                if (trig_value != efire_value) {
                    throw invariant_violation(
                        "efire token disagrees with the trigger function (EE "
                        "invariant violated)",
                        options_.label, stats_.events, "heap");
                }
            }
            break;
        }
        default:
            throw invariant_violation("unexpected gate kind in firing",
                                      options_.label, stats_.events, "heap");
    }

    const double t_ack = t_ready + options_.delays.ack_delay();
    for (pl::edge_id e : gate.out_edges) {
        const pl::pl_edge& edge = pl_.edge(e);
        schedule(e, value, edge.kind == pl::edge_kind::ack ? t_ack : t_out);
    }
}

void pl_simulator::run_heap() {
    tokens_.assign(pl_.num_edges(), {});
    heap_.clear();
    // Initial marking: tokens in place at t = 0.
    for (pl::edge_id e = 0; e < pl_.num_edges(); ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            tokens_[e] = {true, edge.init_value, 0.0};
            --pending_[edge.to];
        }
    }

    // Kick off every gate enabled by the initial marking.
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] == 0 && !pl_.gate(g).in_edges.empty()) try_fire(g);
        // Sources with no acknowledge inputs (no consumers needing them) may
        // also be enabled with zero in-edges.
        if (pending_[g] == 0 && pl_.gate(g).in_edges.empty() &&
            pl_.gate(g).kind == pl::gate_kind::source &&
            !pl_.gate(g).out_edges.empty()) {
            try_fire(g);
        }
    }

    while (!heap_.empty() && waves_stable_ < num_waves_) {
        if (++stats_.events > options_.max_events) {
            throw budget_exhausted(options_.label, stats_.events, "heap");
        }
        if ((stats_.events & (k_cancel_check_events - 1)) == 0) {
            if (options_.cancel != nullptr && options_.cancel->expired()) {
                throw job_timeout("sim.events", options_.label, stats_.events);
            }
            fault::injector::instance().check("sim.fire", stats_.events);
            if (options_.recorder != nullptr) {
                options_.recorder->record("sim.progress", stats_.events,
                                          waves_stable_);
            }
        }
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        const deposit d = heap_.back();
        heap_.pop_back();
        place(d.edge, d.value, d.time);
    }
}

// ---------------------------------------------------------------------------
// Throughput engine: calendar queue over SoA tokens and CSR adjacency.
// ---------------------------------------------------------------------------

void pl_simulator::place_fast(pl::edge_id edge, bool value, double time) {
    const std::size_t word = edge >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (edge & 63);
    const std::uint64_t present = tok_present_[word];
    if (present & bit) {
        throw invariant_violation(
            "token deposited onto an occupied edge " + std::to_string(edge) +
                " (marked-graph safety violation)",
            options_.label, stats_.events, "calendar");
    }
    tok_present_[word] = present | bit;
    tok_value_[word] = value ? tok_value_[word] | bit : tok_value_[word] & ~bit;
    tok_time_[edge] = time;
    if (trace_on_ && !topo_.edge_is_ack[edge]) {
        trace_.push_back({time, edge, value});
    }
    const pl::gate_id g = topo_.edge_to[edge];
    if (--pending_[g] == 0) try_fire_fast(g);
}

void pl_simulator::fire_source_fast(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    while (pending_[g] == 0) {
        const std::size_t wave = fired_waves_[g];
        if (wave >= num_waves_ || wave >= released_waves_) return;

        double t_ready = release_time_[wave];
        for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
            const pl::edge_id e = topo_.in_flat[i];
            t_ready = std::max(t_ready, tok_time_[e]);
            tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
        }
        pending_[g] = in_count_[g];
        ++fired_waves_[g];
        ++stats_.firings;

        const bool value = stim_bit(wave, d.env_slot);
        const double t_out = t_ready + options_.delays.d_source;
        input_stable_[wave] = std::max(input_stable_[wave], t_out);
        const std::uint64_t tick = calendar_.tick_of(t_out);
        std::uint64_t seq = next_seq_;
        for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
            calendar_.push_at(
                tick, {t_out, cal_event::pack(seq++, topo_.out_flat[i], value)});
        }
        next_seq_ = seq;
    }
}

void pl_simulator::record_sink_fast(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    const pl::edge_id data_edge = topo_.data_flat[d.data_begin];
    const bool tok_val = token_value(data_edge);
    const double tok_time = tok_time_[data_edge];
    const std::size_t wave = fired_waves_[g];

    double t_ready = tok_time;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = topo_.in_flat[i];
        t_ready = std::max(t_ready, tok_time_[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick = calendar_.tick_of(t_ack);
    std::uint64_t seq = next_seq_;
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        calendar_.push_at(
            tick, {t_ack, cal_event::pack(seq++, topo_.out_flat[i], false)});
    }
    next_seq_ = seq;

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    wave_outputs_[wave][d.env_slot] = tok_val;
    output_stable_[wave] = std::max(output_stable_[wave], tok_time);
    if (--sinks_pending_[wave] == 0) {
        ++waves_stable_;
        if (options_.non_pipelined && wave + 1 < num_waves_) {
            release_time_[wave + 1] = output_stable_[wave];
            ++released_waves_;
            for (pl::gate_id src : pl_.sources()) {
                if (pending_[src] == 0) fire_source_fast(src);
            }
        }
    }
}

void pl_simulator::try_fire_fast(pl::gate_id g) {
    if (pending_[g] != 0) return;
    const gate_desc& d = desc_[g];

    switch (d.kind) {
        case pl::gate_kind::source:
            fire_source_fast(g);
            return;
        case pl::gate_kind::sink:
            record_sink_fast(g);
            return;
        default:
            break;
    }

    // Readiness + consume in one pass, then LUT operands, then emit
    // (clearing presence leaves values and times intact).
    const pl::edge_id* const in_flat = topo_.in_flat.data();
    const double* const tok_time = tok_time_.data();
    double t_ready = 0.0;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = in_flat[i];
        t_ready = std::max(t_ready, tok_time[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    const pl::edge_id* const data_flat = topo_.data_flat.data() + d.data_begin;
    std::uint32_t minterm = 0;
    double t_data = 0.0;
    for (std::uint8_t pin = 0; pin < d.num_data; ++pin) {
        const pl::edge_id e = data_flat[pin];
        minterm |= static_cast<std::uint32_t>(token_value(e)) << pin;
        t_data = std::max(t_data, tok_time[e]);
    }
    const bool has_trigger = d.efire_in != pl::k_invalid_edge;
    double efire_time = 0.0;
    bool efire_value = false;
    if (has_trigger) {
        efire_time = tok_time[d.efire_in];
        efire_value = token_value(d.efire_in);
    }

    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    bool value = false;
    double t_out = 0.0;
    switch (d.kind) {
        case pl::gate_kind::const_source:
            value = d.const_value;
            t_out = t_ready + options_.delays.d_source;
            break;
        case pl::gate_kind::through:
            value = (minterm & 1u) != 0;  // identity on the D token
            t_out = t_ready + options_.delays.through_delay();
            break;
        case pl::gate_kind::trigger:
            value = (d.fn_bits[minterm >> 6] >> (minterm & 63)) & 1u;
            t_out = t_ready + options_.delays.gate_delay();
            break;
        case pl::gate_kind::compute: {
            value = (d.fn_bits[minterm >> 6] >> (minterm & 63)) & 1u;
            if (!has_trigger) {
                t_out = t_ready + options_.delays.gate_delay();
                break;
            }
            const double normal =
                t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
            if (efire_value) {
                const double early = efire_time + options_.delays.efire_delay();
                t_out = std::min(early, normal);
                ++stats_.ee_hits;
                if (early < normal) ++stats_.ee_wins;
            } else {
                t_out = normal;
                ++stats_.ee_misses;
            }
            if (options_.check_early_value) {
                std::uint32_t packed = 0;
                for (std::uint8_t i = 0; i < d.trig_pin_count; ++i) {
                    packed |= ((minterm >> d.trig_pins[i]) & 1u) << i;
                }
                const bool trig_value =
                    (d.trig_fn_bits[packed >> 6] >> (packed & 63)) & 1u;
                if (trig_value != efire_value) {
                    throw invariant_violation(
                        "efire token disagrees with the trigger function (EE "
                        "invariant violated)",
                        options_.label, stats_.events, "calendar");
                }
            }
            break;
        }
        default:
            throw invariant_violation("unexpected gate kind in firing",
                                      options_.label, stats_.events, "calendar");
    }

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick_out = calendar_.tick_of(t_out);
    const std::uint64_t tick_ack = calendar_.tick_of(t_ack);
    const pl::edge_id* const out_flat = topo_.out_flat.data();
    std::uint64_t seq = next_seq_;
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        const pl::edge_id e = out_flat[i];
        if (topo_.edge_is_ack[e]) {
            calendar_.push_at(tick_ack, {t_ack, cal_event::pack(seq++, e, value)});
        } else {
            calendar_.push_at(tick_out, {t_out, cal_event::pack(seq++, e, value)});
        }
    }
    next_seq_ = seq;
}

void pl_simulator::run_calendar() {
    const std::size_t num_edges = pl_.num_edges();
    tok_present_.assign((num_edges + 63) / 64, 0);
    tok_value_.assign((num_edges + 63) / 64, 0);
    tok_time_.assign(num_edges, 0.0);
    calendar_.reset(bucket_width_for(options_.delays),
                    max_delay_for(options_.delays), num_edges);

    // Initial marking: tokens in place at t = 0.
    for (pl::edge_id e = 0; e < num_edges; ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            const std::size_t word = e >> 6;
            const std::uint64_t bit = std::uint64_t{1} << (e & 63);
            tok_present_[word] |= bit;
            if (edge.init_value) tok_value_[word] |= bit;
            --pending_[edge.to];
        }
    }

    // Kick off every gate enabled by the initial marking (same rules as the
    // reference engine, read from the descriptors).
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] == 0 && in_count_[g] != 0) try_fire_fast(g);
        if (pending_[g] == 0 && in_count_[g] == 0 &&
            desc_[g].kind == pl::gate_kind::source &&
            desc_[g].out_end != desc_[g].out_begin) {
            try_fire_fast(g);
        }
    }

    // The event counter lives in a register for the loop (stats_.events is a
    // uint64 the queue's stores could alias, forcing reloads) and is written
    // back on every exit path.
    std::uint64_t events = stats_.events;
    const std::uint64_t max_events = options_.max_events;
    cancel_token* const cancel = options_.cancel;
    try {
        while (!calendar_.empty() && waves_stable_ < num_waves_) {
            if (++events > max_events) {
                throw budget_exhausted(options_.label, events, "calendar");
            }
            if ((events & (k_cancel_check_events - 1)) == 0) {
                // Sync the registered counter so any throw below (including
                // from place_fast) reports an event count at most one check
                // interval stale.
                stats_.events = events;
                if (cancel != nullptr && cancel->expired()) {
                    throw job_timeout("sim.events", options_.label, events);
                }
                fault::injector::instance().check("sim.fire", events);
                if (options_.recorder != nullptr) {
                    options_.recorder->record("sim.progress", events,
                                              waves_stable_);
                }
            }
            // Argument loads happen before the call, so the reference going
            // stale on an in-run push inside place_fast is harmless.
            const cal_event& dep = calendar_.pop_min();
            place_fast(dep.edge(), dep.value(), dep.time);
        }
    } catch (...) {
        stats_.events = events;
        throw;
    }
    stats_.events = events;
}

// ---------------------------------------------------------------------------
// Engine-independent driver.
// ---------------------------------------------------------------------------

std::vector<wave_record> pl_simulator::run(
    const std::vector<std::vector<bool>>& vectors) {
    for (const auto& v : vectors) {
        if (v.size() != pl_.sources().size()) {
            throw std::invalid_argument("pl_simulator::run: vector width mismatch");
        }
    }
    // Transpose into the packed layout both engines now read from.
    const std::size_t width = pl_.sources().size();
    packed_stim_.assign((vectors.size() + k_lanes - 1) / k_lanes, {});
    for (auto& block : packed_stim_) {
        block.width = width;
        block.words.assign(width, 0);
    }
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        stimulus_block& block = packed_stim_[w / k_lanes];
        block.num_vectors = w % k_lanes + 1;
        const std::uint64_t lane_bit = std::uint64_t{1} << (w % k_lanes);
        for (std::size_t i = 0; i < width; ++i) {
            if (vectors[w][i]) block.words[i] |= lane_bit;
        }
    }
    return run_packed(packed_stim_);
}

std::vector<wave_record> pl_simulator::run_packed(
    const std::vector<stimulus_block>& blocks) {
    std::size_t count = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].width != pl_.sources().size()) {
            throw std::invalid_argument("pl_simulator::run: vector width mismatch");
        }
        if (blocks[b].num_vectors == 0 || blocks[b].num_vectors > k_lanes ||
            (b + 1 < blocks.size() && blocks[b].num_vectors != k_lanes)) {
            throw std::invalid_argument(
                "pl_simulator::run: every stimulus block except the last "
                "must hold exactly 64 vectors");
        }
        count += blocks[b].num_vectors;
    }
    if (pl_.sinks().empty()) {
        throw std::invalid_argument("pl_simulator::run: netlist has no outputs");
    }

    reset();
    stim_ = blocks.data();
    num_waves_ = count;
    released_waves_ = options_.non_pipelined ? 1 : num_waves_;
    release_time_.assign(num_waves_, 0.0);
    input_stable_.assign(num_waves_, 0.0);
    output_stable_.assign(num_waves_, 0.0);
    sinks_pending_.assign(num_waves_, pl_.sinks().size());
    waves_stable_ = 0;
    wave_outputs_.assign(num_waves_, std::vector<bool>(pl_.sinks().size(), false));
    if (options_.collect_trace) {
        // One data token per data edge per wave in the common case.
        trace_.reserve(std::min<std::size_t>(num_waves_ * topo_.num_data_edges,
                                             std::size_t{1} << 20));
    }

    // The calendar engine packs (seq, edge, value) into one 64-bit key;
    // netlists or event budgets beyond that layout fall back to the heap
    // engine, which produces identical results.
    const bool calendar_fits = pl_.num_edges() < cal_event::k_max_edges &&
                               options_.max_events < cal_event::k_max_seq / 2;
    const bool use_heap =
        options_.queue == queue_kind::binary_heap || !calendar_fits;
    if (use_heap) {
        run_heap();
    } else {
        run_calendar();
    }
    if (waves_stable_ < num_waves_) {
        throw deadlock_error(options_.label, deadlock_diagnostic(),
                             stats_.events, use_heap ? "heap" : "calendar");
    }

    std::vector<wave_record> records;
    records.reserve(num_waves_);
    for (std::size_t w = 0; w < num_waves_; ++w) {
        wave_record rec;
        rec.outputs = wave_outputs_[w];
        rec.release_time = release_time_[w];
        rec.input_stable = input_stable_[w];
        rec.output_stable = output_stable_[w];
        records.push_back(std::move(rec));
    }
    return records;
}

// ---------------------------------------------------------------------------
// Lane engine: 64 independent single-vector runs through one event stream.
//
// Structure mirrors the calendar engine: same queue, same presence bitset,
// same time array, same (time, seq) pop order.  What changes is the payload
// — every data token carries a 64-bit value word instead of one bit.  The
// cal_event key has no room for a word, so the word rides in a side array
// (lane_sched_) indexed by edge: marked-graph safety guarantees at most one
// deposit in flight per edge, and lane_inflight_ enforces it (an unsafe
// netlist throws here instead of at place time).
// ---------------------------------------------------------------------------

void pl_simulator::schedule_lanes(std::uint64_t tick, double time,
                                  pl::edge_id edge, std::uint64_t word) {
    const std::size_t w = edge >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (edge & 63);
    if (lane_inflight_[w] & bit) {
        throw invariant_violation(
            "two deposits in flight on edge " + std::to_string(edge) +
                " (lane engine requires a safe netlist)",
            options_.label, stats_.events, "lanes");
    }
    lane_inflight_[w] |= bit;
    lane_sched_[edge] = word;
    calendar_.push_at(tick, {time, cal_event::pack(next_seq_++, edge, false)});
}

void pl_simulator::place_lanes(pl::edge_id edge, double time) {
    const std::size_t word = edge >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (edge & 63);
    if (tok_present_[word] & bit) {
        throw invariant_violation(
            "token deposited onto an occupied edge " + std::to_string(edge) +
                " (marked-graph safety violation)",
            options_.label, stats_.events, "lanes");
    }
    tok_present_[word] |= bit;
    lane_inflight_[word] &= ~bit;
    lane_value_[edge] = lane_sched_[edge];
    tok_time_[edge] = time;
    const pl::gate_id g = topo_.edge_to[edge];
    if (--pending_[g] == 0) try_fire_lanes(g);
}

void pl_simulator::fire_source_lanes(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    while (pending_[g] == 0) {
        const std::size_t wave = fired_waves_[g];
        if (wave >= num_waves_ || wave >= released_waves_) return;

        double t_ready = release_time_[wave];
        for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
            const pl::edge_id e = topo_.in_flat[i];
            t_ready = std::max(t_ready, tok_time_[e]);
            tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
        }
        pending_[g] = in_count_[g];
        ++fired_waves_[g];
        ++stats_.firings;

        const std::uint64_t word = lane_block_->words[d.env_slot];
        const double t_out = t_ready + options_.delays.d_source;
        input_stable_[wave] = std::max(input_stable_[wave], t_out);
        const std::uint64_t tick = calendar_.tick_of(t_out);
        for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
            schedule_lanes(tick, t_out, topo_.out_flat[i], word);
        }
    }
}

void pl_simulator::record_sink_lanes(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    const pl::edge_id data_edge = topo_.data_flat[d.data_begin];
    const std::uint64_t tok_word = lane_value_[data_edge];
    const double tok_time = tok_time_[data_edge];
    const std::size_t wave = fired_waves_[g];

    double t_ready = tok_time;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = topo_.in_flat[i];
        t_ready = std::max(t_ready, tok_time_[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick = calendar_.tick_of(t_ack);
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        schedule_lanes(tick, t_ack, topo_.out_flat[i], 0);
    }

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    lane_sink_words_[d.env_slot] = tok_word;
    output_stable_[wave] = std::max(output_stable_[wave], tok_time);
    if (--sinks_pending_[wave] == 0) ++waves_stable_;
}

void pl_simulator::try_fire_lanes(pl::gate_id g) {
    if (pending_[g] != 0) return;
    const gate_desc& d = desc_[g];

    switch (d.kind) {
        case pl::gate_kind::source:
            fire_source_lanes(g);
            return;
        case pl::gate_kind::sink:
            record_sink_lanes(g);
            return;
        default:
            break;
    }

    const pl::edge_id* const in_flat = topo_.in_flat.data();
    const double* const tok_time = tok_time_.data();
    double t_ready = 0.0;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = in_flat[i];
        t_ready = std::max(t_ready, tok_time[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    const pl::edge_id* const data_flat = topo_.data_flat.data() + d.data_begin;
    std::uint64_t ins[bf::k_max_vars];
    double t_data = 0.0;
    for (std::uint8_t pin = 0; pin < d.num_data; ++pin) {
        const pl::edge_id e = data_flat[pin];
        ins[pin] = lane_value_[e];
        t_data = std::max(t_data, tok_time[e]);
    }
    const bool has_trigger = d.efire_in != pl::k_invalid_edge;
    double efire_time = 0.0;
    std::uint64_t efire_word = 0;
    if (has_trigger) {
        efire_time = tok_time[d.efire_in];
        efire_word = lane_value_[d.efire_in];
    }

    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    std::uint64_t value = 0;
    double t_out = 0.0;
    switch (d.kind) {
        case pl::gate_kind::const_source:
            value = d.const_value ? ~std::uint64_t{0} : 0;
            t_out = t_ready + options_.delays.d_source;
            break;
        case pl::gate_kind::through:
            value = d.num_data != 0 ? ins[0] : 0;  // identity on the D token
            t_out = t_ready + options_.delays.through_delay();
            break;
        case pl::gate_kind::trigger:
            value = bf::truth_table::eval_word_lanes(d.fn_bits.data(),
                                                     d.num_data, ins);
            t_out = t_ready + options_.delays.gate_delay();
            break;
        case pl::gate_kind::compute: {
            value = bf::truth_table::eval_word_lanes(d.fn_bits.data(),
                                                     d.num_data, ins);
            if (!has_trigger) {
                t_out = t_ready + options_.delays.gate_delay();
                break;
            }
            if (options_.check_early_value) {
                // Values are timing-independent, so the invariant is checked
                // word-wide for every lane this pass still owns.
                std::uint64_t tins[bf::k_max_vars];
                for (std::uint8_t i = 0; i < d.trig_pin_count; ++i) {
                    tins[i] = ins[d.trig_pins[i]];
                }
                const std::uint64_t trig = bf::truth_table::eval_word_lanes(
                    d.trig_fn_bits.data(), d.trig_pin_count, tins);
                if ((trig ^ efire_word) & lane_mask_) {
                    throw invariant_violation(
                        "efire token disagrees with the trigger function (EE "
                        "invariant violated)",
                        options_.label, stats_.events, "lanes");
                }
            }
            // The only divergence point: a mixed efire word means the lanes
            // disagree on which output path fires.  Keep the majority in
            // lockstep, defer the minority to its own pass from t = 0.
            std::uint64_t hit = efire_word & lane_mask_;
            if (hit != 0 && hit != lane_mask_) {
                const std::uint64_t miss = lane_mask_ & ~efire_word;
                const std::uint64_t keep =
                    2 * std::popcount(hit) >= std::popcount(lane_mask_) ? hit
                                                                        : miss;
                lane_deferred_.push_back(lane_mask_ ^ keep);
                ++stats_.lane_splits;
                lane_mask_ = keep;
                hit = efire_word & lane_mask_;
            }
            const double normal =
                t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
            if (hit != 0) {
                const double early = efire_time + options_.delays.efire_delay();
                t_out = std::min(early, normal);
                ++lane_hits_;
                if (early < normal) ++lane_wins_;
            } else {
                t_out = normal;
                ++lane_misses_;
            }
            break;
        }
        default:
            throw invariant_violation("unexpected gate kind in firing",
                                      options_.label, stats_.events, "lanes");
    }

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick_out = calendar_.tick_of(t_out);
    const std::uint64_t tick_ack = calendar_.tick_of(t_ack);
    const pl::edge_id* const out_flat = topo_.out_flat.data();
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        const pl::edge_id e = out_flat[i];
        if (topo_.edge_is_ack[e]) {
            schedule_lanes(tick_ack, t_ack, e, value);
        } else {
            schedule_lanes(tick_out, t_out, e, value);
        }
    }
}

void pl_simulator::run_lane_pass(std::uint64_t mask, lane_block_result& result) {
    lane_mask_ = mask;
    lane_hits_ = lane_misses_ = lane_wins_ = 0;
    next_seq_ = 0;
    pending_ = in_count_;
    fired_waves_.assign(pl_.num_gates(), 0);
    num_waves_ = 1;
    released_waves_ = 1;
    release_time_.assign(1, 0.0);
    input_stable_.assign(1, 0.0);
    output_stable_.assign(1, 0.0);
    sinks_pending_.assign(1, pl_.sinks().size());
    waves_stable_ = 0;

    const std::size_t num_edges = pl_.num_edges();
    tok_present_.assign((num_edges + 63) / 64, 0);
    tok_time_.assign(num_edges, 0.0);
    lane_value_.assign(num_edges, 0);
    lane_sched_.assign(num_edges, 0);
    lane_inflight_.assign((num_edges + 63) / 64, 0);
    calendar_.reset(bucket_width_for(options_.delays),
                    max_delay_for(options_.delays), num_edges);

    // Initial marking: tokens in place at t = 0, values broadcast to every
    // lane (the marking is per-netlist, not per-vector).
    for (pl::edge_id e = 0; e < num_edges; ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            tok_present_[e >> 6] |= std::uint64_t{1} << (e & 63);
            lane_value_[e] = edge.init_value ? ~std::uint64_t{0} : 0;
            --pending_[edge.to];
        }
    }
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] == 0 && in_count_[g] != 0) try_fire_lanes(g);
        if (pending_[g] == 0 && in_count_[g] == 0 &&
            desc_[g].kind == pl::gate_kind::source &&
            desc_[g].out_end != desc_[g].out_begin) {
            try_fire_lanes(g);
        }
    }

    std::uint64_t events = stats_.events;
    const std::uint64_t max_events = options_.max_events;
    cancel_token* const cancel = options_.cancel;
    try {
        while (!calendar_.empty() && waves_stable_ < num_waves_) {
            if (++events > max_events) {
                throw budget_exhausted(options_.label, events, "lanes");
            }
            if ((events & (k_cancel_check_events - 1)) == 0) {
                stats_.events = events;
                if (cancel != nullptr && cancel->expired()) {
                    throw job_timeout("sim.events", options_.label, events);
                }
                fault::injector::instance().check("sim.fire", events);
                if (options_.recorder != nullptr) {
                    options_.recorder->record("sim.progress", events,
                                              waves_stable_);
                }
            }
            const cal_event& dep = calendar_.pop_min();
            place_lanes(dep.edge(), dep.time);
        }
    } catch (...) {
        stats_.events = events;
        throw;
    }
    stats_.events = events;
    if (waves_stable_ < num_waves_) {
        throw deadlock_error(options_.label, deadlock_diagnostic(),
                             stats_.events, "lanes");
    }

    // Commit the lanes this pass retained.  Values are correct for every
    // lane, so masking is only needed because deferred lanes replay with
    // their own (correct) timing.
    ++stats_.lane_runs;
    const std::uint64_t kept = lane_mask_;
    const std::uint64_t n = static_cast<std::uint64_t>(std::popcount(kept));
    stats_.ee_hits += lane_hits_ * n;
    stats_.ee_misses += lane_misses_ * n;
    stats_.ee_wins += lane_wins_ * n;
    for (std::size_t j = 0; j < lane_sink_words_.size(); ++j) {
        result.outputs[j] =
            (result.outputs[j] & ~kept) | (lane_sink_words_[j] & kept);
    }
    for (std::uint64_t rest = kept; rest != 0; rest &= rest - 1) {
        const int lane = std::countr_zero(rest);
        result.input_stable[static_cast<std::size_t>(lane)] = input_stable_[0];
        result.output_stable[static_cast<std::size_t>(lane)] = output_stable_[0];
    }
}

lane_block_result pl_simulator::run_lanes(const stimulus_block& block) {
    if (block.width != pl_.sources().size()) {
        throw std::invalid_argument("pl_simulator::run_lanes: width mismatch");
    }
    if (block.num_vectors == 0 || block.num_vectors > k_lanes) {
        throw std::invalid_argument(
            "pl_simulator::run_lanes: block must hold 1..64 vectors");
    }
    if (pl_.sinks().empty()) {
        throw std::invalid_argument(
            "pl_simulator::run_lanes: netlist has no outputs");
    }
    if (options_.collect_trace) {
        throw std::invalid_argument(
            "pl_simulator::run_lanes: waveform tracing requires the scalar "
            "engine (lane tokens have no single trace value)");
    }

    lane_block_result result;
    result.num_vectors = block.num_vectors;
    result.outputs.assign(pl_.sinks().size(), 0);

    const bool calendar_fits = pl_.num_edges() < cal_event::k_max_edges &&
                               options_.max_events < cal_event::k_max_seq / 2;
    if (options_.queue == queue_kind::binary_heap || !calendar_fits) {
        // Scalar fallback: one run per lane, identical results by
        // construction.  Stats are summed so callers see block totals.
        sim_run_stats total{};
        std::vector<std::vector<bool>> one(1);
        for (std::size_t lane = 0; lane < block.num_vectors; ++lane) {
            block.extract(lane, one.front());
            const std::vector<wave_record> recs = run(one);
            total.events += stats_.events;
            total.firings += stats_.firings;
            total.ee_hits += stats_.ee_hits;
            total.ee_misses += stats_.ee_misses;
            total.ee_wins += stats_.ee_wins;
            ++total.lane_runs;
            const wave_record& rec = recs.front();
            for (std::size_t j = 0; j < rec.outputs.size(); ++j) {
                if (rec.outputs[j]) {
                    result.outputs[j] |= std::uint64_t{1} << lane;
                }
            }
            result.input_stable[lane] = rec.input_stable;
            result.output_stable[lane] = rec.output_stable;
        }
        total.lane_blocks = 1;
        total.lane_vectors = block.num_vectors;
        stats_ = total;
        return result;
    }

    reset();
    stats_.lane_blocks = 1;
    stats_.lane_vectors = block.num_vectors;
    lane_block_ = &block;
    lane_sink_words_.assign(pl_.sinks().size(), 0);
    lane_deferred_.clear();
    lane_deferred_.push_back(block.lane_mask());
    while (!lane_deferred_.empty()) {
        const std::uint64_t mask = lane_deferred_.back();
        lane_deferred_.pop_back();
        run_lane_pass(mask, result);
    }
    lane_block_ = nullptr;
    return result;
}

std::string pl_simulator::deadlock_diagnostic() const {
    std::size_t starving = 0;
    pl::gate_id example = pl::k_invalid_gate;
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] > 0) {
            ++starving;
            if (example == pl::k_invalid_gate) example = g;
        }
    }
    std::string msg = std::to_string(waves_stable_) + "/" +
                      std::to_string(num_waves_) + " waves stable, " +
                      std::to_string(starving) + " gates waiting";
    if (example != pl::k_invalid_gate) {
        msg += " (first: gate " + std::to_string(example) + " '" +
               pl_.gate(example).name + "' missing " +
               std::to_string(pending_[example]) + " tokens)";
    }
    return msg;
}

}  // namespace plee::sim
