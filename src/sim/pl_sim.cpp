#include "sim/pl_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "bool/support.hpp"

namespace plee::sim {

pl_simulator::pl_simulator(const pl::pl_netlist& pl, sim_options options)
    : pl_(pl), options_(options),
      source_index_(pl.num_gates(), 0), sink_index_(pl.num_gates(), 0) {
    for (std::size_t i = 0; i < pl.sources().size(); ++i) {
        source_index_[pl.sources()[i]] = i;
    }
    for (std::size_t i = 0; i < pl.sinks().size(); ++i) {
        sink_index_[pl.sinks()[i]] = i;
    }
}

void pl_simulator::reset() {
    stats_ = {};
    trace_.clear();
    tokens_.assign(pl_.num_edges(), {});
    pending_.assign(pl_.num_gates(), 0);
    fired_waves_.assign(pl_.num_gates(), 0);
    heap_.clear();
    next_seq_ = 0;
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        pending_[g] = static_cast<std::uint32_t>(pl_.gate(g).in_edges.size());
    }
    // Initial marking: tokens in place at t = 0.
    for (pl::edge_id e = 0; e < pl_.num_edges(); ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            tokens_[e] = {true, edge.init_value, 0.0};
            --pending_[edge.to];
        }
    }
}

void pl_simulator::schedule(pl::edge_id edge, bool value, double time) {
    heap_.push_back({time, next_seq_++, edge, value});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void pl_simulator::place(pl::edge_id edge, bool value, double time) {
    token_slot& slot = tokens_[edge];
    if (slot.present) {
        throw std::logic_error(
            "pl_simulator: token deposited onto an occupied edge " +
            std::to_string(edge) + " (marked-graph safety violation)");
    }
    slot = {true, value, time};
    if (options_.collect_trace && pl_.edge(edge).kind == pl::edge_kind::data) {
        trace_.push_back({time, edge, value});
    }
    if (--pending_[pl_.edge(edge).to] == 0) try_fire(pl_.edge(edge).to);
}

void pl_simulator::fire_source(pl::gate_id g) {
    const pl::pl_gate& gate = pl_.gate(g);
    // A source with acknowledge inputs fires once per enabling; a source with
    // no feedback constraints (all its acks were shared away, or it is being
    // abused in a hand-built netlist) free-runs through every released wave —
    // which is exactly how an over-eager environment overruns an unsafe
    // design, and the dynamic safety check then reports it.
    while (pending_[g] == 0) {
        const std::size_t wave = fired_waves_[g];
        if (wave >= num_waves_ || wave >= released_waves_) return;

        double t_ready = release_time_[wave];
        for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);
        for (pl::edge_id e : gate.in_edges) {
            tokens_[e].present = false;
            ++pending_[g];
        }
        ++fired_waves_[g];
        ++stats_.firings;

        const bool value = (*vectors_)[wave][source_index_[g]];
        const double t_out = t_ready + options_.delays.d_source;
        input_stable_[wave] = std::max(input_stable_[wave], t_out);
        for (pl::edge_id e : gate.out_edges) schedule(e, value, t_out);
    }
}

void pl_simulator::record_sink(pl::gate_id g) {
    const pl::pl_gate& gate = pl_.gate(g);
    const pl::edge_id data_edge = gate.data_in.front();
    const token_slot tok = tokens_[data_edge];
    const std::size_t wave = fired_waves_[g];

    for (pl::edge_id e : gate.in_edges) {
        tokens_[e].present = false;
        ++pending_[g];
    }
    ++fired_waves_[g];
    ++stats_.firings;

    double t_ready = tok.time;
    for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);
    for (pl::edge_id e : gate.out_edges) {
        schedule(e, false, t_ready + options_.delays.ack_delay());
    }

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    wave_outputs_[wave][sink_index_[g]] = tok.value;
    output_stable_[wave] = std::max(output_stable_[wave], tok.time);
    if (--sinks_pending_[wave] == 0) {
        ++waves_stable_;
        if (options_.non_pipelined && wave + 1 < num_waves_) {
            release_time_[wave + 1] = output_stable_[wave];
            ++released_waves_;
            for (pl::gate_id src : pl_.sources()) {
                if (pending_[src] == 0) fire_source(src);
            }
        }
    }
}

void pl_simulator::try_fire(pl::gate_id g) {
    if (pending_[g] != 0) return;
    const pl::pl_gate& gate = pl_.gate(g);

    switch (gate.kind) {
        case pl::gate_kind::source:
            fire_source(g);
            return;
        case pl::gate_kind::sink:
            record_sink(g);
            return;
        default:
            break;
    }

    // Common firing: compute readiness, consume, emit.
    double t_ready = 0.0;
    for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);

    // Gather the LUT operand values before consuming.
    std::uint32_t minterm = 0;
    for (std::size_t pin = 0; pin < gate.data_in.size(); ++pin) {
        if (tokens_[gate.data_in[pin]].value) minterm |= 1u << pin;
    }
    double efire_time = 0.0;
    bool efire_value = false;
    const bool has_trigger = gate.efire_in != pl::k_invalid_edge;
    if (has_trigger) {
        efire_time = tokens_[gate.efire_in].time;
        efire_value = tokens_[gate.efire_in].value;
    }
    double t_data = 0.0;
    for (pl::edge_id e : gate.data_in) t_data = std::max(t_data, tokens_[e].time);

    for (pl::edge_id e : gate.in_edges) {
        tokens_[e].present = false;
        ++pending_[g];
    }
    ++fired_waves_[g];
    ++stats_.firings;

    bool value = false;
    double t_out = 0.0;
    switch (gate.kind) {
        case pl::gate_kind::const_source:
            value = gate.const_value;
            t_out = t_ready + options_.delays.d_source;
            break;
        case pl::gate_kind::through:
            value = (minterm & 1u) != 0;  // identity on the D token
            t_out = t_ready + options_.delays.through_delay();
            break;
        case pl::gate_kind::trigger:
            value = gate.function.eval(minterm);
            t_out = t_ready + options_.delays.gate_delay();
            break;
        case pl::gate_kind::compute: {
            value = gate.function.eval(minterm);
            if (!has_trigger) {
                t_out = t_ready + options_.delays.gate_delay();
                break;
            }
            // EE master: normal completion pays the extra C-element; a
            // 1-valued efire token opens the output latch early.
            const double normal =
                t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
            if (efire_value) {
                const double early = efire_time + options_.delays.efire_delay();
                t_out = std::min(early, normal);
                ++stats_.ee_hits;
                if (early < normal) ++stats_.ee_wins;
            } else {
                t_out = normal;
                ++stats_.ee_misses;
            }
            if (options_.check_early_value) {
                // Recompute the trigger from the master's consumed operands.
                const pl::pl_gate& trig = pl_.gate(gate.trigger);
                const std::vector<int> pins = bf::support_members(trig.trigger_support);
                std::uint32_t packed = 0;
                for (std::size_t i = 0; i < pins.size(); ++i) {
                    if ((minterm >> pins[i]) & 1u) packed |= 1u << i;
                }
                if (trig.function.eval(packed) != efire_value) {
                    throw std::logic_error(
                        "pl_simulator: efire token disagrees with the trigger "
                        "function (EE invariant violated)");
                }
            }
            break;
        }
        default:
            throw std::logic_error("pl_simulator: unexpected gate kind in firing");
    }

    const double t_ack = t_ready + options_.delays.ack_delay();
    for (pl::edge_id e : gate.out_edges) {
        const pl::pl_edge& edge = pl_.edge(e);
        schedule(e, value, edge.kind == pl::edge_kind::ack ? t_ack : t_out);
    }
}

std::vector<wave_record> pl_simulator::run(
    const std::vector<std::vector<bool>>& vectors) {
    for (const auto& v : vectors) {
        if (v.size() != pl_.sources().size()) {
            throw std::invalid_argument("pl_simulator::run: vector width mismatch");
        }
    }
    if (pl_.sinks().empty()) {
        throw std::invalid_argument("pl_simulator::run: netlist has no outputs");
    }

    reset();
    vectors_ = &vectors;
    num_waves_ = vectors.size();
    released_waves_ = options_.non_pipelined ? 1 : num_waves_;
    release_time_.assign(num_waves_, 0.0);
    input_stable_.assign(num_waves_, 0.0);
    output_stable_.assign(num_waves_, 0.0);
    sinks_pending_.assign(num_waves_, pl_.sinks().size());
    waves_stable_ = 0;
    wave_outputs_.assign(num_waves_, std::vector<bool>(pl_.sinks().size(), false));

    // Kick off every gate enabled by the initial marking.
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] == 0 && !pl_.gate(g).in_edges.empty()) try_fire(g);
        // Sources with no acknowledge inputs (no consumers needing them) may
        // also be enabled with zero in-edges.
        if (pending_[g] == 0 && pl_.gate(g).in_edges.empty() &&
            pl_.gate(g).kind == pl::gate_kind::source &&
            !pl_.gate(g).out_edges.empty()) {
            try_fire(g);
        }
    }

    while (!heap_.empty() && waves_stable_ < num_waves_) {
        if (++stats_.events > options_.max_events) {
            throw std::runtime_error("pl_simulator: event budget exhausted");
        }
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        const deposit d = heap_.back();
        heap_.pop_back();
        place(d.edge, d.value, d.time);
    }
    if (waves_stable_ < num_waves_) {
        throw std::runtime_error("pl_simulator: deadlock — " + deadlock_diagnostic());
    }

    std::vector<wave_record> records;
    records.reserve(num_waves_);
    for (std::size_t w = 0; w < num_waves_; ++w) {
        wave_record rec;
        rec.outputs = wave_outputs_[w];
        rec.release_time = release_time_[w];
        rec.input_stable = input_stable_[w];
        rec.output_stable = output_stable_[w];
        records.push_back(std::move(rec));
    }
    return records;
}

std::string pl_simulator::deadlock_diagnostic() const {
    std::size_t starving = 0;
    pl::gate_id example = pl::k_invalid_gate;
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] > 0) {
            ++starving;
            if (example == pl::k_invalid_gate) example = g;
        }
    }
    std::string msg = std::to_string(waves_stable_) + "/" +
                      std::to_string(num_waves_) + " waves stable, " +
                      std::to_string(starving) + " gates waiting";
    if (example != pl::k_invalid_gate) {
        msg += " (first: gate " + std::to_string(example) + " '" +
               pl_.gate(example).name + "' missing " +
               std::to_string(pending_[example]) + " tokens)";
    }
    return msg;
}

}  // namespace plee::sim
