#include "sim/pl_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "fault/injector.hpp"
#include "sim/errors.hpp"

namespace plee::sim {

namespace {

/// Calendar bucket width: the smallest positive delay-model component, so
/// deposits separated by at least one delay land in distinct ticks and
/// same-time deposits share a bucket.  Falls back to 1.0 for an all-zero
/// (degenerate) model.
double bucket_width_for(const delay_model& d) {
    double width = 0.0;
    for (double v : {d.d_celem, d.d_lut, d.d_latch, d.d_ee_penalty, d.d_source}) {
        if (v > 0.0 && (width == 0.0 || v < width)) width = v;
    }
    return width > 0.0 ? width : 1.0;
}

/// Largest single-deposit look-ahead the model can produce (every scheduled
/// time is at most this far past the event that scheduled it) — sizes the
/// calendar's ring window.
double max_delay_for(const delay_model& d) {
    return std::max({d.d_source, d.gate_delay() + d.d_ee_penalty,
                     d.through_delay(), d.ack_delay(), d.efire_delay()});
}

/// Field-by-field stats accumulation for the scalar-fallback path: every
/// counter a run produces is added (maxima for the watermark fields), so
/// nothing is silently dropped when summing per-lane runs into block totals.
void add_run_stats(sim_run_stats& total, const sim_run_stats& s) {
    total.events += s.events;
    total.firings += s.firings;
    total.ee_hits += s.ee_hits;
    total.ee_misses += s.ee_misses;
    total.ee_wins += s.ee_wins;
    total.lane_splits += s.lane_splits;
    total.lane_forks += s.lane_forks;
    total.lane_groups += s.lane_groups;
    total.lane_replays += s.lane_replays;
    total.lane_fork_depth_max =
        std::max(total.lane_fork_depth_max, s.lane_fork_depth_max);
    total.lane_fork_bytes_peak =
        std::max(total.lane_fork_bytes_peak, s.lane_fork_bytes_peak);
}

}  // namespace

const char* to_string(queue_kind kind) {
    switch (kind) {
        case queue_kind::binary_heap: return "heap";
        case queue_kind::calendar: return "calendar";
    }
    return "?";
}

queue_kind queue_kind_from_string(const std::string& name) {
    if (name == "heap" || name == "binary_heap") return queue_kind::binary_heap;
    if (name == "calendar") return queue_kind::calendar;
    throw std::invalid_argument("unknown queue kind: '" + name +
                                "' (expected heap | binary_heap | calendar)");
}

const char* to_string(lane_split_policy policy) {
    switch (policy) {
        case lane_split_policy::vector: return "vector";
        case lane_split_policy::fork: return "fork";
        case lane_split_policy::replay: return "replay";
    }
    return "?";
}

lane_split_policy lane_split_policy_from_string(const std::string& name) {
    if (name == "vector") return lane_split_policy::vector;
    if (name == "fork") return lane_split_policy::fork;
    if (name == "replay") return lane_split_policy::replay;
    throw std::invalid_argument("unknown lane split policy: '" + name +
                                "' (expected vector | fork | replay)");
}

pl_simulator::pl_simulator(const pl::pl_netlist& pl, sim_options options)
    : pl_(pl), options_(options), topo_(pl) {
    const std::size_t num_gates = pl.num_gates();
    desc_.resize(num_gates);
    in_count_.resize(num_gates);
    for (pl::gate_id g = 0; g < num_gates; ++g) {
        const pl::pl_gate& gate = pl.gate(g);
        gate_desc& d = desc_[g];
        d.kind = gate.kind;
        d.num_data = static_cast<std::uint8_t>(gate.data_in.size());
        d.const_value = gate.const_value;
        d.in_begin = topo_.in_off[g];
        d.in_end = topo_.in_off[g + 1];
        d.data_begin = topo_.data_off[g];
        d.out_begin = topo_.out_off[g];
        d.out_end = topo_.out_off[g + 1];
        d.efire_in = gate.efire_in;
        d.fn_bits = gate.function.words();
        in_count_[g] = d.in_end - d.in_begin;
        if (gate.trigger != pl::k_invalid_gate) {
            // Master of an EE pair: bake the trigger function and its
            // pin-packing map in, so neither engine allocates at fire time.
            const pl::pl_gate& trig = pl.gate(gate.trigger);
            d.trig_fn_bits = trig.function.words();
            std::uint8_t count = 0;
            for (std::uint8_t v = 0; v < 32; ++v) {
                if ((trig.trigger_support >> v) & 1u) {
                    if (count >= sizeof(d.trig_pins)) {
                        throw std::logic_error(
                            "pl_simulator: trigger support wider than the "
                            "LUT pin limit");
                    }
                    d.trig_pins[count++] = v;
                }
            }
            d.trig_pin_count = count;
        }
    }
    for (pl::gate_id g = 0; g < num_gates; ++g) {
        if (desc_[g].efire_in != pl::k_invalid_edge) ++num_masters_;
    }
    for (std::size_t i = 0; i < pl.sources().size(); ++i) {
        desc_[pl.sources()[i]].env_slot = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 0; i < pl.sinks().size(); ++i) {
        desc_[pl.sinks()[i]].env_slot = static_cast<std::uint32_t>(i);
    }
}

void pl_simulator::reset() {
    stats_ = {};
    trace_on_ = options_.collect_trace;
    trace_.clear();
    next_seq_ = 0;
    pending_ = in_count_;
    fired_waves_.assign(pl_.num_gates(), 0);
    fork_depth_counts_.fill(0);
}

// ---------------------------------------------------------------------------
// Reference engine: binary heap over AoS token slots (the seed's hot path).
// ---------------------------------------------------------------------------

void pl_simulator::schedule(pl::edge_id edge, bool value, double time) {
    heap_.push_back({time, next_seq_++, edge, value});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void pl_simulator::place(pl::edge_id edge, bool value, double time) {
    token_slot& slot = tokens_[edge];
    if (slot.present) {
        throw invariant_violation(
            "token deposited onto an occupied edge " + std::to_string(edge) +
                " (marked-graph safety violation)",
            options_.label, stats_.events, "heap");
    }
    slot = {true, value, time};
    const pl::pl_edge& e = pl_.edge(edge);
    if (options_.collect_trace && e.kind == pl::edge_kind::data) {
        trace_.push_back({time, edge, value});
    }
    if (--pending_[e.to] == 0) try_fire(e.to);
}

void pl_simulator::fire_source(pl::gate_id g) {
    const pl::pl_gate& gate = pl_.gate(g);
    // A source with acknowledge inputs fires once per enabling; a source with
    // no feedback constraints (all its acks were shared away, or it is being
    // abused in a hand-built netlist) free-runs through every released wave —
    // which is exactly how an over-eager environment overruns an unsafe
    // design, and the dynamic safety check then reports it.
    while (pending_[g] == 0) {
        const std::size_t wave = fired_waves_[g];
        if (wave >= num_waves_ || wave >= released_waves_) return;

        double t_ready = release_time_[wave];
        for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);
        for (pl::edge_id e : gate.in_edges) {
            tokens_[e].present = false;
            ++pending_[g];
        }
        ++fired_waves_[g];
        ++stats_.firings;

        const bool value = stim_bit(wave, desc_[g].env_slot);
        const double t_out = t_ready + options_.delays.d_source;
        input_stable_[wave] = std::max(input_stable_[wave], t_out);
        for (pl::edge_id e : gate.out_edges) schedule(e, value, t_out);
    }
}

void pl_simulator::record_sink(pl::gate_id g) {
    const pl::pl_gate& gate = pl_.gate(g);
    const pl::edge_id data_edge = gate.data_in.front();
    const token_slot tok = tokens_[data_edge];
    const std::size_t wave = fired_waves_[g];

    for (pl::edge_id e : gate.in_edges) {
        tokens_[e].present = false;
        ++pending_[g];
    }
    ++fired_waves_[g];
    ++stats_.firings;

    double t_ready = tok.time;
    for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);
    for (pl::edge_id e : gate.out_edges) {
        schedule(e, false, t_ready + options_.delays.ack_delay());
    }

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    wave_outputs_[wave][desc_[g].env_slot] = tok.value;
    output_stable_[wave] = std::max(output_stable_[wave], tok.time);
    if (--sinks_pending_[wave] == 0) {
        ++waves_stable_;
        if (options_.non_pipelined && wave + 1 < num_waves_) {
            release_time_[wave + 1] = output_stable_[wave];
            ++released_waves_;
            for (pl::gate_id src : pl_.sources()) {
                if (pending_[src] == 0) fire_source(src);
            }
        }
    }
}

void pl_simulator::try_fire(pl::gate_id g) {
    if (pending_[g] != 0) return;
    // Wave horizon: a live marked graph fires every gate exactly once per
    // wave, so an enabling past num_waves_ firings is post-completion drain
    // (tokens circulating a feedback loop after the last sink recorded).
    // Refusing it makes firings, events, and the EE hit/miss/win counters
    // order-independent — identical across queue disciplines and lane
    // policies — instead of depending on the race between loop circulation
    // and the final sink record popping.
    if (fired_waves_[g] >= num_waves_) return;
    const pl::pl_gate& gate = pl_.gate(g);

    switch (gate.kind) {
        case pl::gate_kind::source:
            fire_source(g);
            return;
        case pl::gate_kind::sink:
            record_sink(g);
            return;
        default:
            break;
    }

    // Common firing: compute readiness, consume, emit.
    double t_ready = 0.0;
    for (pl::edge_id e : gate.in_edges) t_ready = std::max(t_ready, tokens_[e].time);

    // Gather the LUT operand values before consuming.
    std::uint32_t minterm = 0;
    for (std::size_t pin = 0; pin < gate.data_in.size(); ++pin) {
        if (tokens_[gate.data_in[pin]].value) minterm |= 1u << pin;
    }
    double efire_time = 0.0;
    bool efire_value = false;
    const bool has_trigger = gate.efire_in != pl::k_invalid_edge;
    if (has_trigger) {
        efire_time = tokens_[gate.efire_in].time;
        efire_value = tokens_[gate.efire_in].value;
    }
    double t_data = 0.0;
    for (pl::edge_id e : gate.data_in) t_data = std::max(t_data, tokens_[e].time);

    for (pl::edge_id e : gate.in_edges) {
        tokens_[e].present = false;
        ++pending_[g];
    }
    ++fired_waves_[g];
    ++stats_.firings;

    bool value = false;
    double t_out = 0.0;
    switch (gate.kind) {
        case pl::gate_kind::const_source:
            value = gate.const_value;
            t_out = t_ready + options_.delays.d_source;
            break;
        case pl::gate_kind::through:
            value = (minterm & 1u) != 0;  // identity on the D token
            t_out = t_ready + options_.delays.through_delay();
            break;
        case pl::gate_kind::trigger:
            value = gate.function.eval(minterm);
            t_out = t_ready + options_.delays.gate_delay();
            break;
        case pl::gate_kind::compute: {
            value = gate.function.eval(minterm);
            if (!has_trigger) {
                t_out = t_ready + options_.delays.gate_delay();
                break;
            }
            // EE master: normal completion pays the extra C-element; a
            // 1-valued efire token opens the output latch early.
            const double normal =
                t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
            if (efire_value) {
                const double early = efire_time + options_.delays.efire_delay();
                t_out = std::min(early, normal);
                ++stats_.ee_hits;
                if (early < normal) ++stats_.ee_wins;
            } else {
                t_out = normal;
                ++stats_.ee_misses;
            }
            if (options_.check_early_value) {
                // Recompute the trigger from the master's consumed operands
                // through the precomputed pin-packing map.
                const gate_desc& d = desc_[g];
                std::uint32_t packed = 0;
                for (std::uint8_t i = 0; i < d.trig_pin_count; ++i) {
                    packed |= ((minterm >> d.trig_pins[i]) & 1u) << i;
                }
                const bool trig_value =
                    (d.trig_fn_bits[packed >> 6] >> (packed & 63)) & 1u;
                if (trig_value != efire_value) {
                    throw invariant_violation(
                        "efire token disagrees with the trigger function (EE "
                        "invariant violated)",
                        options_.label, stats_.events, "heap");
                }
            }
            break;
        }
        default:
            throw invariant_violation("unexpected gate kind in firing",
                                      options_.label, stats_.events, "heap");
    }

    const double t_ack = t_ready + options_.delays.ack_delay();
    for (pl::edge_id e : gate.out_edges) {
        const pl::pl_edge& edge = pl_.edge(e);
        schedule(e, value, edge.kind == pl::edge_kind::ack ? t_ack : t_out);
    }
}

void pl_simulator::run_heap() {
    tokens_.assign(pl_.num_edges(), {});
    heap_.clear();
    // Initial marking: tokens in place at t = 0.
    for (pl::edge_id e = 0; e < pl_.num_edges(); ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            tokens_[e] = {true, edge.init_value, 0.0};
            --pending_[edge.to];
        }
    }

    // Kick off every gate enabled by the initial marking.
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] == 0 && !pl_.gate(g).in_edges.empty()) try_fire(g);
        // Sources with no acknowledge inputs (no consumers needing them) may
        // also be enabled with zero in-edges.
        if (pending_[g] == 0 && pl_.gate(g).in_edges.empty() &&
            pl_.gate(g).kind == pl::gate_kind::source &&
            !pl_.gate(g).out_edges.empty()) {
            try_fire(g);
        }
    }

    // Drain to quiescence: the wave-horizon cap in try_fire bounds the event
    // stream, and popping it fully (rather than stopping at stability) keeps
    // every stat independent of where the last sink record lands in the
    // queue's pop order.
    while (!heap_.empty()) {
        if (++stats_.events > options_.max_events) {
            throw budget_exhausted(options_.label, stats_.events, "heap");
        }
        if ((stats_.events & (k_cancel_check_events - 1)) == 0) {
            if (options_.cancel != nullptr && options_.cancel->expired()) {
                throw job_timeout("sim.events", options_.label, stats_.events);
            }
            fault::injector::instance().check("sim.fire", stats_.events);
            if (options_.recorder != nullptr) {
                options_.recorder->record("sim.progress", stats_.events,
                                          waves_stable_);
            }
        }
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        const deposit d = heap_.back();
        heap_.pop_back();
        place(d.edge, d.value, d.time);
    }
}

// ---------------------------------------------------------------------------
// Throughput engine: calendar queue over SoA tokens and CSR adjacency.
// ---------------------------------------------------------------------------

void pl_simulator::place_fast(pl::edge_id edge, bool value, double time) {
    const std::size_t word = edge >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (edge & 63);
    const std::uint64_t present = tok_present_[word];
    if (present & bit) {
        throw invariant_violation(
            "token deposited onto an occupied edge " + std::to_string(edge) +
                " (marked-graph safety violation)",
            options_.label, stats_.events, "calendar");
    }
    tok_present_[word] = present | bit;
    tok_value_[word] = value ? tok_value_[word] | bit : tok_value_[word] & ~bit;
    tok_time_[edge] = time;
    if (trace_on_ && !topo_.edge_is_ack[edge]) {
        trace_.push_back({time, edge, value});
    }
    const pl::gate_id g = topo_.edge_to[edge];
    if (--pending_[g] == 0) try_fire_fast(g);
}

void pl_simulator::fire_source_fast(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    while (pending_[g] == 0) {
        const std::size_t wave = fired_waves_[g];
        if (wave >= num_waves_ || wave >= released_waves_) return;

        double t_ready = release_time_[wave];
        for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
            const pl::edge_id e = topo_.in_flat[i];
            t_ready = std::max(t_ready, tok_time_[e]);
            tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
        }
        pending_[g] = in_count_[g];
        ++fired_waves_[g];
        ++stats_.firings;

        const bool value = stim_bit(wave, d.env_slot);
        const double t_out = t_ready + options_.delays.d_source;
        input_stable_[wave] = std::max(input_stable_[wave], t_out);
        const std::uint64_t tick = calendar_.tick_of(t_out);
        std::uint64_t seq = next_seq_;
        for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
            calendar_.push_at(
                tick, {t_out, cal_event::pack(seq++, topo_.out_flat[i], value)});
        }
        next_seq_ = seq;
    }
}

void pl_simulator::record_sink_fast(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    const pl::edge_id data_edge = topo_.data_flat[d.data_begin];
    const bool tok_val = token_value(data_edge);
    const double tok_time = tok_time_[data_edge];
    const std::size_t wave = fired_waves_[g];

    double t_ready = tok_time;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = topo_.in_flat[i];
        t_ready = std::max(t_ready, tok_time_[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick = calendar_.tick_of(t_ack);
    std::uint64_t seq = next_seq_;
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        calendar_.push_at(
            tick, {t_ack, cal_event::pack(seq++, topo_.out_flat[i], false)});
    }
    next_seq_ = seq;

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    wave_outputs_[wave][d.env_slot] = tok_val;
    output_stable_[wave] = std::max(output_stable_[wave], tok_time);
    if (--sinks_pending_[wave] == 0) {
        ++waves_stable_;
        if (options_.non_pipelined && wave + 1 < num_waves_) {
            release_time_[wave + 1] = output_stable_[wave];
            ++released_waves_;
            for (pl::gate_id src : pl_.sources()) {
                if (pending_[src] == 0) fire_source_fast(src);
            }
        }
    }
}

void pl_simulator::try_fire_fast(pl::gate_id g) {
    if (pending_[g] != 0) return;
    if (fired_waves_[g] >= num_waves_) return;  // wave horizon (see try_fire)
    const gate_desc& d = desc_[g];

    switch (d.kind) {
        case pl::gate_kind::source:
            fire_source_fast(g);
            return;
        case pl::gate_kind::sink:
            record_sink_fast(g);
            return;
        default:
            break;
    }

    // Readiness + consume in one pass, then LUT operands, then emit
    // (clearing presence leaves values and times intact).
    const pl::edge_id* const in_flat = topo_.in_flat.data();
    const double* const tok_time = tok_time_.data();
    double t_ready = 0.0;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = in_flat[i];
        t_ready = std::max(t_ready, tok_time[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    const pl::edge_id* const data_flat = topo_.data_flat.data() + d.data_begin;
    std::uint32_t minterm = 0;
    double t_data = 0.0;
    for (std::uint8_t pin = 0; pin < d.num_data; ++pin) {
        const pl::edge_id e = data_flat[pin];
        minterm |= static_cast<std::uint32_t>(token_value(e)) << pin;
        t_data = std::max(t_data, tok_time[e]);
    }
    const bool has_trigger = d.efire_in != pl::k_invalid_edge;
    double efire_time = 0.0;
    bool efire_value = false;
    if (has_trigger) {
        efire_time = tok_time[d.efire_in];
        efire_value = token_value(d.efire_in);
    }

    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    bool value = false;
    double t_out = 0.0;
    switch (d.kind) {
        case pl::gate_kind::const_source:
            value = d.const_value;
            t_out = t_ready + options_.delays.d_source;
            break;
        case pl::gate_kind::through:
            value = (minterm & 1u) != 0;  // identity on the D token
            t_out = t_ready + options_.delays.through_delay();
            break;
        case pl::gate_kind::trigger:
            value = (d.fn_bits[minterm >> 6] >> (minterm & 63)) & 1u;
            t_out = t_ready + options_.delays.gate_delay();
            break;
        case pl::gate_kind::compute: {
            value = (d.fn_bits[minterm >> 6] >> (minterm & 63)) & 1u;
            if (!has_trigger) {
                t_out = t_ready + options_.delays.gate_delay();
                break;
            }
            const double normal =
                t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
            if (efire_value) {
                const double early = efire_time + options_.delays.efire_delay();
                t_out = std::min(early, normal);
                ++stats_.ee_hits;
                if (early < normal) ++stats_.ee_wins;
            } else {
                t_out = normal;
                ++stats_.ee_misses;
            }
            if (options_.check_early_value) {
                std::uint32_t packed = 0;
                for (std::uint8_t i = 0; i < d.trig_pin_count; ++i) {
                    packed |= ((minterm >> d.trig_pins[i]) & 1u) << i;
                }
                const bool trig_value =
                    (d.trig_fn_bits[packed >> 6] >> (packed & 63)) & 1u;
                if (trig_value != efire_value) {
                    throw invariant_violation(
                        "efire token disagrees with the trigger function (EE "
                        "invariant violated)",
                        options_.label, stats_.events, "calendar");
                }
            }
            break;
        }
        default:
            throw invariant_violation("unexpected gate kind in firing",
                                      options_.label, stats_.events, "calendar");
    }

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick_out = calendar_.tick_of(t_out);
    const std::uint64_t tick_ack = calendar_.tick_of(t_ack);
    const pl::edge_id* const out_flat = topo_.out_flat.data();
    std::uint64_t seq = next_seq_;
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        const pl::edge_id e = out_flat[i];
        if (topo_.edge_is_ack[e]) {
            calendar_.push_at(tick_ack, {t_ack, cal_event::pack(seq++, e, value)});
        } else {
            calendar_.push_at(tick_out, {t_out, cal_event::pack(seq++, e, value)});
        }
    }
    next_seq_ = seq;
}

void pl_simulator::run_calendar() {
    const std::size_t num_edges = pl_.num_edges();
    tok_present_.assign((num_edges + 63) / 64, 0);
    tok_value_.assign((num_edges + 63) / 64, 0);
    tok_time_.assign(num_edges, 0.0);
    calendar_.reset(bucket_width_for(options_.delays),
                    max_delay_for(options_.delays), num_edges);

    // Initial marking: tokens in place at t = 0.
    for (pl::edge_id e = 0; e < num_edges; ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            const std::size_t word = e >> 6;
            const std::uint64_t bit = std::uint64_t{1} << (e & 63);
            tok_present_[word] |= bit;
            if (edge.init_value) tok_value_[word] |= bit;
            --pending_[edge.to];
        }
    }

    // Kick off every gate enabled by the initial marking (same rules as the
    // reference engine, read from the descriptors).
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] == 0 && in_count_[g] != 0) try_fire_fast(g);
        if (pending_[g] == 0 && in_count_[g] == 0 &&
            desc_[g].kind == pl::gate_kind::source &&
            desc_[g].out_end != desc_[g].out_begin) {
            try_fire_fast(g);
        }
    }

    // The event counter lives in a register for the loop (stats_.events is a
    // uint64 the queue's stores could alias, forcing reloads) and is written
    // back on every exit path.
    std::uint64_t events = stats_.events;
    const std::uint64_t max_events = options_.max_events;
    cancel_token* const cancel = options_.cancel;
    try {
        // Drain to quiescence (see run_heap): the wave-horizon cap bounds
        // the stream and full drain makes the stats pop-order-independent.
        while (!calendar_.empty()) {
            if (++events > max_events) {
                throw budget_exhausted(options_.label, events, "calendar");
            }
            if ((events & (k_cancel_check_events - 1)) == 0) {
                // Sync the registered counter so any throw below (including
                // from place_fast) reports an event count at most one check
                // interval stale.
                stats_.events = events;
                if (cancel != nullptr && cancel->expired()) {
                    throw job_timeout("sim.events", options_.label, events);
                }
                fault::injector::instance().check("sim.fire", events);
                if (options_.recorder != nullptr) {
                    options_.recorder->record("sim.progress", events,
                                              waves_stable_);
                }
            }
            // Argument loads happen before the call, so the reference going
            // stale on an in-run push inside place_fast is harmless.
            const cal_event& dep = calendar_.pop_min();
            place_fast(dep.edge(), dep.value(), dep.time);
        }
    } catch (...) {
        stats_.events = events;
        throw;
    }
    stats_.events = events;
}

// ---------------------------------------------------------------------------
// Engine-independent driver.
// ---------------------------------------------------------------------------

std::vector<wave_record> pl_simulator::run(
    const std::vector<std::vector<bool>>& vectors) {
    for (const auto& v : vectors) {
        if (v.size() != pl_.sources().size()) {
            throw std::invalid_argument("pl_simulator::run: vector width mismatch");
        }
    }
    // Transpose into the packed layout both engines now read from.
    const std::size_t width = pl_.sources().size();
    packed_stim_.assign((vectors.size() + k_lanes - 1) / k_lanes, {});
    for (auto& block : packed_stim_) {
        block.width = width;
        block.words.assign(width, 0);
    }
    for (std::size_t w = 0; w < vectors.size(); ++w) {
        stimulus_block& block = packed_stim_[w / k_lanes];
        block.num_vectors = w % k_lanes + 1;
        const std::uint64_t lane_bit = std::uint64_t{1} << (w % k_lanes);
        for (std::size_t i = 0; i < width; ++i) {
            if (vectors[w][i]) block.words[i] |= lane_bit;
        }
    }
    return run_packed(packed_stim_);
}

std::vector<wave_record> pl_simulator::run_packed(
    const std::vector<stimulus_block>& blocks) {
    std::size_t count = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].width != pl_.sources().size()) {
            throw std::invalid_argument("pl_simulator::run: vector width mismatch");
        }
        if (blocks[b].num_vectors == 0 || blocks[b].num_vectors > k_lanes ||
            (b + 1 < blocks.size() && blocks[b].num_vectors != k_lanes)) {
            throw std::invalid_argument(
                "pl_simulator::run: every stimulus block except the last "
                "must hold exactly 64 vectors");
        }
        count += blocks[b].num_vectors;
    }
    if (pl_.sinks().empty()) {
        throw std::invalid_argument("pl_simulator::run: netlist has no outputs");
    }

    reset();
    stim_ = blocks.data();
    num_waves_ = count;
    released_waves_ = options_.non_pipelined ? 1 : num_waves_;
    release_time_.assign(num_waves_, 0.0);
    input_stable_.assign(num_waves_, 0.0);
    output_stable_.assign(num_waves_, 0.0);
    sinks_pending_.assign(num_waves_, pl_.sinks().size());
    waves_stable_ = 0;
    wave_outputs_.assign(num_waves_, std::vector<bool>(pl_.sinks().size(), false));
    if (options_.collect_trace) {
        // One data token per data edge per wave in the common case.
        trace_.reserve(std::min<std::size_t>(num_waves_ * topo_.num_data_edges,
                                             std::size_t{1} << 20));
    }

    // The calendar engine packs (seq, edge, value) into one 64-bit key;
    // netlists or event budgets beyond that layout fall back to the heap
    // engine, which produces identical results.
    const bool calendar_fits = pl_.num_edges() < cal_event::k_max_edges &&
                               options_.max_events < cal_event::k_max_seq / 2;
    const bool use_heap =
        options_.queue == queue_kind::binary_heap || !calendar_fits;
    if (use_heap) {
        run_heap();
    } else {
        run_calendar();
    }
    if (waves_stable_ < num_waves_) {
        throw deadlock_error(options_.label, deadlock_diagnostic(),
                             stats_.events, use_heap ? "heap" : "calendar");
    }

    std::vector<wave_record> records;
    records.reserve(num_waves_);
    for (std::size_t w = 0; w < num_waves_; ++w) {
        wave_record rec;
        rec.outputs = wave_outputs_[w];
        rec.release_time = release_time_[w];
        rec.input_stable = input_stable_[w];
        rec.output_stable = output_stable_[w];
        records.push_back(std::move(rec));
    }
    return records;
}

// ---------------------------------------------------------------------------
// Lane engine: 64 independent single-vector runs through one event stream.
//
// Structure mirrors the calendar engine: same queue, same presence bitset,
// same time array, same (time, seq) pop order.  What changes is the payload
// — every data token carries a 64-bit value word instead of one bit.  The
// cal_event key has no room for a word, so the word rides in a side array
// (lane_sched_) indexed by edge: marked-graph safety guarantees at most one
// deposit in flight per edge, and lane_inflight_ enforces it (an unsafe
// netlist throws here instead of at place time).
// ---------------------------------------------------------------------------

void pl_simulator::schedule_lanes(std::uint64_t tick, double time,
                                  pl::edge_id edge, std::uint64_t word) {
    const std::size_t w = edge >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (edge & 63);
    if (lane_inflight_[w] & bit) {
        throw invariant_violation(
            "two deposits in flight on edge " + std::to_string(edge) +
                " (lane engine requires a safe netlist)",
            options_.label, stats_.events, "lanes");
    }
    lane_inflight_[w] |= bit;
    lane_sched_[edge] = word;
    if (lane_vec_) lane_time_varies_[w] &= ~bit;  // uniform emission
    calendar_.push_at(tick, {time, cal_event::pack(next_seq_++, edge, false)});
}

/// Vector-time emission: the deposit's per-lane times land in the slab, the
/// calendar orders the event by their maximum (any order that respects the
/// firing rule yields the same times — the recurrence is confluent).
void pl_simulator::schedule_lanes_vec(pl::edge_id edge, std::uint64_t word,
                                      const double* times) {
    const std::size_t w = edge >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (edge & 63);
    if (lane_inflight_[w] & bit) {
        throw invariant_violation(
            "two deposits in flight on edge " + std::to_string(edge) +
                " (lane engine requires a safe netlist)",
            options_.label, stats_.events, "lanes");
    }
    lane_inflight_[w] |= bit;
    lane_sched_[edge] = word;
    lane_time_varies_[w] |= bit;
    double* const slot = lane_time_.data() + std::size_t{edge} * k_lanes;
    double rep = 0.0;
    for (std::size_t l = 0; l < k_lanes; ++l) {
        slot[l] = times[l];
        rep = std::max(rep, times[l]);
    }
    calendar_.push_at(calendar_.tick_of(rep),
                      {rep, cal_event::pack(next_seq_++, edge, false)});
}

void pl_simulator::place_lanes(pl::edge_id edge, double time) {
    const std::size_t word = edge >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (edge & 63);
    if (tok_present_[word] & bit) {
        throw invariant_violation(
            "token deposited onto an occupied edge " + std::to_string(edge) +
                " (marked-graph safety violation)",
            options_.label, stats_.events, "lanes");
    }
    tok_present_[word] |= bit;
    lane_inflight_[word] &= ~bit;
    lane_value_[edge] = lane_sched_[edge];
    tok_time_[edge] = time;
    const pl::gate_id g = topo_.edge_to[edge];
    if (--pending_[g] == 0) {
        lane_vec_ ? try_fire_lanes_vec(g) : try_fire_lanes(g);
    }
}

void pl_simulator::fire_source_lanes(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    while (pending_[g] == 0) {
        const std::size_t wave = fired_waves_[g];
        if (wave >= num_waves_ || wave >= released_waves_) return;

        double t_ready = release_time_[wave];
        for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
            const pl::edge_id e = topo_.in_flat[i];
            t_ready = std::max(t_ready, tok_time_[e]);
            tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
        }
        pending_[g] = in_count_[g];
        ++fired_waves_[g];
        ++stats_.firings;

        const std::uint64_t word = lane_block_->words[d.env_slot];
        const double t_out = t_ready + options_.delays.d_source;
        input_stable_[wave] = std::max(input_stable_[wave], t_out);
        const std::uint64_t tick = calendar_.tick_of(t_out);
        for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
            schedule_lanes(tick, t_out, topo_.out_flat[i], word);
        }
    }
}

void pl_simulator::record_sink_lanes(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    const pl::edge_id data_edge = topo_.data_flat[d.data_begin];
    const std::uint64_t tok_word = lane_value_[data_edge];
    const double tok_time = tok_time_[data_edge];
    const std::size_t wave = fired_waves_[g];

    double t_ready = tok_time;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = topo_.in_flat[i];
        t_ready = std::max(t_ready, tok_time_[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick = calendar_.tick_of(t_ack);
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        schedule_lanes(tick, t_ack, topo_.out_flat[i], 0);
    }

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    lane_sink_words_[d.env_slot] = tok_word;
    output_stable_[wave] = std::max(output_stable_[wave], tok_time);
    if (--sinks_pending_[wave] == 0) ++waves_stable_;
}

// ---------------------------------------------------------------------------
// Vector-time firing (lane_split_policy::vector).  Identical firing rules to
// the scalar lane path, but a token's arrival time is per-lane wherever the
// EE cone made it diverge: such edges carry a 64-double slab entry
// (lane_time_) flagged in lane_time_varies_, everything else keeps the
// shared scalar in tok_time_.  Marked-graph token times are a max/min
// recurrence over the producing firing's input times, so they are exact and
// order-independent per lane — divergence never needs a split, and times
// that reconverge (the max absorbed the early token) drop back to scalar.
// ---------------------------------------------------------------------------

/// Max-accumulates the [begin, end) edges' per-lane arrival times into
/// out[0..63] (callers pre-fill with the floor, usually 0).
void pl_simulator::gather_times_vec(const pl::edge_id* edges,
                                    std::uint32_t begin, std::uint32_t end,
                                    double* out) const {
    for (std::uint32_t i = begin; i < end; ++i) {
        const pl::edge_id e = edges[i];
        if (edge_time_varies(e)) {
            const double* const t =
                lane_time_.data() + std::size_t{e} * k_lanes;
            for (std::size_t l = 0; l < k_lanes; ++l) {
                out[l] = std::max(out[l], t[l]);
            }
        } else {
            const double s = tok_time_[e];
            for (std::size_t l = 0; l < k_lanes; ++l) {
                out[l] = std::max(out[l], s);
            }
        }
    }
}

void pl_simulator::record_sink_lanes_vec(pl::gate_id g) {
    const gate_desc& d = desc_[g];
    const pl::edge_id data_edge = topo_.data_flat[d.data_begin];
    const std::uint64_t tok_word = lane_value_[data_edge];
    const std::size_t wave = fired_waves_[g];

    double tv[k_lanes];
    if (edge_time_varies(data_edge)) {
        const double* const t =
            lane_time_.data() + std::size_t{data_edge} * k_lanes;
        for (std::size_t l = 0; l < k_lanes; ++l) tv[l] = t[l];
    } else {
        const double s = tok_time_[data_edge];
        for (std::size_t l = 0; l < k_lanes; ++l) tv[l] = s;
    }
    double tr[k_lanes];
    for (std::size_t l = 0; l < k_lanes; ++l) tr[l] = tv[l];
    gather_times_vec(topo_.in_flat.data(), d.in_begin, d.in_end, tr);
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = topo_.in_flat[i];
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    double ta[k_lanes];
    double ta_min = tr[0] + options_.delays.ack_delay();
    double ta_max = ta_min;
    for (std::size_t l = 0; l < k_lanes; ++l) {
        ta[l] = tr[l] + options_.delays.ack_delay();
        ta_min = std::min(ta_min, ta[l]);
        ta_max = std::max(ta_max, ta[l]);
    }
    const bool ack_uniform = ta_min == ta_max;
    const std::uint64_t tick = calendar_.tick_of(ta_max);
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        const pl::edge_id e = topo_.out_flat[i];
        if (ack_uniform) {
            schedule_lanes(tick, ta_max, e, 0);
        } else {
            schedule_lanes_vec(e, 0, ta);
        }
    }

    if (wave >= num_waves_) return;  // drain beyond the measured horizon
    lane_sink_words_[d.env_slot] = tok_word;
    for (std::size_t l = 0; l < k_lanes; ++l) {
        output_stable_lane_[l] = std::max(output_stable_lane_[l], tv[l]);
    }
    if (--sinks_pending_[wave] == 0) ++waves_stable_;
}

void pl_simulator::try_fire_lanes_vec(pl::gate_id g) {
    if (pending_[g] != 0) return;
    if (fired_waves_[g] >= num_waves_) return;  // wave horizon (see try_fire)
    const gate_desc& d = desc_[g];

    switch (d.kind) {
        case pl::gate_kind::source:
            // Sources fire exactly once per released wave from uniform
            // state (stimulus broadcast at t = 0), so the scalar path is
            // exact; late ack arrivals hit its released_waves_ guard.
            fire_source_lanes(g);
            return;
        case pl::gate_kind::sink:
            record_sink_lanes_vec(g);
            return;
        default:
            break;
    }

    const pl::edge_id* const in_flat = topo_.in_flat.data();
    bool vary = false;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        if (edge_time_varies(in_flat[i])) {
            vary = true;
            break;
        }
    }
    if (!vary) {
        // All inputs share one time per edge: the scalar-input body computes
        // the exact same doubles, and only a divergent EE emission (mixed
        // efire word with the early path faster) widens the output to
        // per-lane times instead of splitting the pass.
        try_fire_lanes_impl<true>(g);
        return;
    }

    const double* const tok_time = tok_time_.data();
    const pl::edge_id* const data_flat = topo_.data_flat.data() + d.data_begin;
    double tr[k_lanes];
    for (std::size_t l = 0; l < k_lanes; ++l) tr[l] = 0.0;
    gather_times_vec(in_flat, d.in_begin, d.in_end, tr);
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = in_flat[i];
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    std::uint64_t ins[bf::k_max_vars];
    double td[k_lanes];
    for (std::size_t l = 0; l < k_lanes; ++l) td[l] = 0.0;
    for (std::uint8_t pin = 0; pin < d.num_data; ++pin) {
        ins[pin] = lane_value_[data_flat[pin]];
    }
    const bool has_trigger = d.efire_in != pl::k_invalid_edge;
    std::uint64_t efire_word = 0;
    double ef[k_lanes];
    if (has_trigger) {
        gather_times_vec(data_flat, 0, d.num_data, td);
        efire_word = lane_value_[d.efire_in];
        if (edge_time_varies(d.efire_in)) {
            const double* const t =
                lane_time_.data() + std::size_t{d.efire_in} * k_lanes;
            for (std::size_t l = 0; l < k_lanes; ++l) ef[l] = t[l];
        } else {
            const double s = tok_time[d.efire_in];
            for (std::size_t l = 0; l < k_lanes; ++l) ef[l] = s;
        }
    }

    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    std::uint64_t value = 0;
    double to[k_lanes];
    switch (d.kind) {
        case pl::gate_kind::const_source:
            value = d.const_value ? ~std::uint64_t{0} : 0;
            for (std::size_t l = 0; l < k_lanes; ++l) {
                to[l] = tr[l] + options_.delays.d_source;
            }
            break;
        case pl::gate_kind::through:
            value = d.num_data != 0 ? ins[0] : 0;
            for (std::size_t l = 0; l < k_lanes; ++l) {
                to[l] = tr[l] + options_.delays.through_delay();
            }
            break;
        case pl::gate_kind::trigger:
            value = bf::truth_table::eval_word_lanes(d.fn_bits.data(),
                                                     d.num_data, ins);
            for (std::size_t l = 0; l < k_lanes; ++l) {
                to[l] = tr[l] + options_.delays.gate_delay();
            }
            break;
        case pl::gate_kind::compute: {
            value = bf::truth_table::eval_word_lanes(d.fn_bits.data(),
                                                     d.num_data, ins);
            if (!has_trigger) {
                for (std::size_t l = 0; l < k_lanes; ++l) {
                    to[l] = tr[l] + options_.delays.gate_delay();
                }
                break;
            }
            if (options_.check_early_value) {
                std::uint64_t tins[bf::k_max_vars];
                for (std::uint8_t i = 0; i < d.trig_pin_count; ++i) {
                    tins[i] = ins[d.trig_pins[i]];
                }
                const std::uint64_t trig = bf::truth_table::eval_word_lanes(
                    d.trig_fn_bits.data(), d.trig_pin_count, tins);
                if ((trig ^ efire_word) & lane_mask_) {
                    throw invariant_violation(
                        "efire token disagrees with the trigger function (EE "
                        "invariant violated)",
                        options_.label, stats_.events, "lanes");
                }
            }
            const std::uint64_t hit = efire_word & lane_mask_;
            std::uint64_t divergent = 0;
            for (std::size_t l = 0; l < k_lanes; ++l) {
                const double normal = td[l] + options_.delays.gate_delay() +
                                      options_.delays.d_ee_penalty;
                if ((hit >> l) & 1u) {
                    const double early =
                        ef[l] + options_.delays.efire_delay();
                    to[l] = std::min(early, normal);
                    if (early < normal) {
                        divergent |= std::uint64_t{1} << l;
                    }
                } else {
                    to[l] = normal;
                }
            }
            lane_hits_ += static_cast<std::uint64_t>(std::popcount(hit));
            lane_misses_ += static_cast<std::uint64_t>(
                std::popcount(lane_mask_ & ~efire_word));
            lane_wins_ +=
                static_cast<std::uint64_t>(std::popcount(divergent));
            if (hit != 0 && hit != lane_mask_ && divergent != 0) {
                ++stats_.lane_splits;  // a scalar pass would fork/replay here
            }
            break;
        }
        default:
            throw invariant_violation("unexpected gate kind in firing",
                                      options_.label, stats_.events, "lanes");
    }

    double to_min = to[0];
    double to_max = to[0];
    double ta[k_lanes];
    double ta_min = tr[0] + options_.delays.ack_delay();
    double ta_max = ta_min;
    for (std::size_t l = 0; l < k_lanes; ++l) {
        to_min = std::min(to_min, to[l]);
        to_max = std::max(to_max, to[l]);
        ta[l] = tr[l] + options_.delays.ack_delay();
        ta_min = std::min(ta_min, ta[l]);
        ta_max = std::max(ta_max, ta[l]);
    }
    const bool out_uniform = to_min == to_max;
    const bool ack_uniform = ta_min == ta_max;
    const std::uint64_t tick_out = calendar_.tick_of(to_max);
    const std::uint64_t tick_ack = calendar_.tick_of(ta_max);
    const pl::edge_id* const out_flat = topo_.out_flat.data();
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        const pl::edge_id e = out_flat[i];
        if (topo_.edge_is_ack[e]) {
            if (ack_uniform) {
                schedule_lanes(tick_ack, ta_max, e, value);
            } else {
                schedule_lanes_vec(e, value, ta);
            }
        } else {
            if (out_uniform) {
                schedule_lanes(tick_out, to_max, e, value);
            } else {
                schedule_lanes_vec(e, value, to);
            }
        }
    }
}

/// Shared firing body for the scalar lane path (Vec = false, the fork /
/// replay policies) and the vector path's uniform-input case (Vec = true).
/// The two differ only at a divergent EE master: the scalar path splits the
/// mask (defer_minority), the vector path widens the emission to per-lane
/// times; and the vector path's EE counters are lane-summed popcounts
/// instead of per-pass scalars (its mask never narrows).
template <bool Vec>
void pl_simulator::try_fire_lanes_impl(pl::gate_id g) {
    if (pending_[g] != 0) return;
    if (fired_waves_[g] >= num_waves_) return;  // wave horizon (see try_fire)
    const gate_desc& d = desc_[g];

    switch (d.kind) {
        case pl::gate_kind::source:
            fire_source_lanes(g);
            return;
        case pl::gate_kind::sink:
            if constexpr (Vec) {
                record_sink_lanes_vec(g);
            } else {
                record_sink_lanes(g);
            }
            return;
        default:
            break;
    }

    const pl::edge_id* const in_flat = topo_.in_flat.data();
    const double* const tok_time = tok_time_.data();
    double t_ready = 0.0;
    for (std::uint32_t i = d.in_begin; i < d.in_end; ++i) {
        const pl::edge_id e = in_flat[i];
        t_ready = std::max(t_ready, tok_time[e]);
        tok_present_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
    }
    const pl::edge_id* const data_flat = topo_.data_flat.data() + d.data_begin;
    std::uint64_t ins[bf::k_max_vars];
    double t_data = 0.0;
    for (std::uint8_t pin = 0; pin < d.num_data; ++pin) {
        const pl::edge_id e = data_flat[pin];
        ins[pin] = lane_value_[e];
        t_data = std::max(t_data, tok_time[e]);
    }
    const bool has_trigger = d.efire_in != pl::k_invalid_edge;
    double efire_time = 0.0;
    std::uint64_t efire_word = 0;
    if (has_trigger) {
        efire_time = tok_time[d.efire_in];
        efire_word = lane_value_[d.efire_in];
    }

    pending_[g] = in_count_[g];
    ++fired_waves_[g];
    ++stats_.firings;

    std::uint64_t value = 0;
    double t_out = 0.0;
    switch (d.kind) {
        case pl::gate_kind::const_source:
            value = d.const_value ? ~std::uint64_t{0} : 0;
            t_out = t_ready + options_.delays.d_source;
            break;
        case pl::gate_kind::through:
            value = d.num_data != 0 ? ins[0] : 0;  // identity on the D token
            t_out = t_ready + options_.delays.through_delay();
            break;
        case pl::gate_kind::trigger:
            value = bf::truth_table::eval_word_lanes(d.fn_bits.data(),
                                                     d.num_data, ins);
            t_out = t_ready + options_.delays.gate_delay();
            break;
        case pl::gate_kind::compute: {
            value = bf::truth_table::eval_word_lanes(d.fn_bits.data(),
                                                     d.num_data, ins);
            if (!has_trigger) {
                t_out = t_ready + options_.delays.gate_delay();
                break;
            }
            if (options_.check_early_value) {
                // Values are timing-independent, so the invariant is checked
                // word-wide for every lane this pass still owns.
                std::uint64_t tins[bf::k_max_vars];
                for (std::uint8_t i = 0; i < d.trig_pin_count; ++i) {
                    tins[i] = ins[d.trig_pins[i]];
                }
                const std::uint64_t trig = bf::truth_table::eval_word_lanes(
                    d.trig_fn_bits.data(), d.trig_pin_count, tins);
                if ((trig ^ efire_word) & lane_mask_) {
                    throw invariant_violation(
                        "efire token disagrees with the trigger function (EE "
                        "invariant violated)",
                        options_.label, stats_.events, "lanes");
                }
            }
            // The only divergence point: a mixed efire word means the lanes
            // disagree on which output path fires.  But the paths only
            // matter when the early one is actually faster — with
            // early >= normal every lane's t_out is `normal` regardless of
            // its efire bit, so the word stays whole and only the per-lane
            // hit/miss accounting differs.  When the timing genuinely
            // diverges, the scalar path keeps the majority in lockstep and
            // checkpoints (fork) or defers (replay) the minority; the
            // vector path emits per-lane times instead and never splits.
            const double normal =
                t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
            const double early = efire_time + options_.delays.efire_delay();
            std::uint64_t hit = efire_word & lane_mask_;
            const bool diverges =
                hit != 0 && hit != lane_mask_ && early < normal;
            if constexpr (Vec) {
                lane_hits_ += static_cast<std::uint64_t>(std::popcount(hit));
                lane_misses_ += static_cast<std::uint64_t>(
                    std::popcount(lane_mask_ & ~efire_word));
                if (early < normal) {
                    lane_wins_ +=
                        static_cast<std::uint64_t>(std::popcount(hit));
                }
                if (diverges) {
                    // A scalar pass would fork/replay here; widen instead.
                    ++stats_.lane_splits;
                    double to[k_lanes];
                    for (std::size_t l = 0; l < k_lanes; ++l) {
                        to[l] = ((hit >> l) & 1u) ? early : normal;
                    }
                    const double t_ack =
                        t_ready + options_.delays.ack_delay();
                    const std::uint64_t tick_ack = calendar_.tick_of(t_ack);
                    const pl::edge_id* const out_flat = topo_.out_flat.data();
                    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
                        const pl::edge_id e = out_flat[i];
                        if (topo_.edge_is_ack[e]) {
                            schedule_lanes(tick_ack, t_ack, e, value);
                        } else {
                            schedule_lanes_vec(e, value, to);
                        }
                    }
                    return;
                }
                t_out = hit == lane_mask_ ? std::min(early, normal) : normal;
            } else {
                if (diverges) {
                    const std::uint64_t miss = lane_mask_ & ~efire_word;
                    const std::uint64_t keep =
                        2 * std::popcount(hit) >= std::popcount(lane_mask_)
                            ? hit
                            : miss;
                    ++stats_.lane_splits;
                    defer_minority(g, lane_mask_ ^ keep, efire_word, value,
                                   t_ready, t_data, efire_time);
                    lane_mask_ = keep;
                    hit = efire_word & lane_mask_;
                }
                if (hit == lane_mask_) {
                    t_out = std::min(early, normal);
                    ++lane_hits_;
                    if (early < normal) ++lane_wins_;
                } else if (hit == 0) {
                    t_out = normal;
                    ++lane_misses_;
                } else {
                    // Mixed, non-diverging: one shared t_out, per-lane
                    // outcome.
                    t_out = normal;
                    for (std::uint64_t w = hit; w != 0; w &= w - 1) {
                        ++lane_mixed_hits_[std::countr_zero(w)];
                    }
                    for (std::uint64_t w = lane_mask_ & ~efire_word; w != 0;
                         w &= w - 1) {
                        ++lane_mixed_misses_[std::countr_zero(w)];
                    }
                }
            }
            break;
        }
        default:
            throw invariant_violation("unexpected gate kind in firing",
                                      options_.label, stats_.events, "lanes");
    }

    const double t_ack = t_ready + options_.delays.ack_delay();
    const std::uint64_t tick_out = calendar_.tick_of(t_out);
    const std::uint64_t tick_ack = calendar_.tick_of(t_ack);
    const pl::edge_id* const out_flat = topo_.out_flat.data();
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        const pl::edge_id e = out_flat[i];
        if (topo_.edge_is_ack[e]) {
            schedule_lanes(tick_ack, t_ack, e, value);
        } else {
            schedule_lanes(tick_out, t_out, e, value);
        }
    }
}

void pl_simulator::try_fire_lanes(pl::gate_id g) {
    try_fire_lanes_impl<false>(g);
}

void pl_simulator::run_lane_pass(std::uint64_t mask, lane_block_result& result) {
    lane_mask_ = mask;
    lane_depth_ = 0;
    lane_hits_ = lane_misses_ = lane_wins_ = 0;
    lane_mixed_hits_.fill(0);
    lane_mixed_misses_.fill(0);
    next_seq_ = 0;
    pending_ = in_count_;
    fired_waves_.assign(pl_.num_gates(), 0);
    num_waves_ = 1;
    released_waves_ = 1;
    release_time_.assign(1, 0.0);
    input_stable_.assign(1, 0.0);
    output_stable_.assign(1, 0.0);
    sinks_pending_.assign(1, pl_.sinks().size());
    waves_stable_ = 0;

    const std::size_t num_edges = pl_.num_edges();
    tok_present_.assign((num_edges + 63) / 64, 0);
    tok_time_.assign(num_edges, 0.0);
    lane_value_.assign(num_edges, 0);
    lane_sched_.assign(num_edges, 0);
    lane_inflight_.assign((num_edges + 63) / 64, 0);
    lane_vec_ = options_.lane_policy == lane_split_policy::vector;
    if (lane_vec_) {
        lane_time_.assign(num_edges * k_lanes, 0.0);
        lane_time_varies_.assign((num_edges + 63) / 64, 0);
        output_stable_lane_.fill(0.0);
    }
    calendar_.reset(bucket_width_for(options_.delays),
                    max_delay_for(options_.delays), num_edges);

    // Initial marking: tokens in place at t = 0, values broadcast to every
    // lane (the marking is per-netlist, not per-vector).
    for (pl::edge_id e = 0; e < num_edges; ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            tok_present_[e >> 6] |= std::uint64_t{1} << (e & 63);
            lane_value_[e] = edge.init_value ? ~std::uint64_t{0} : 0;
            --pending_[edge.to];
        }
    }
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] == 0 && in_count_[g] != 0) {
            lane_vec_ ? try_fire_lanes_vec(g) : try_fire_lanes(g);
        }
        if (pending_[g] == 0 && in_count_[g] == 0 &&
            desc_[g].kind == pl::gate_kind::source &&
            desc_[g].out_end != desc_[g].out_begin) {
            lane_vec_ ? try_fire_lanes_vec(g) : try_fire_lanes(g);
        }
    }

    run_lane_events();
    ++stats_.lane_runs;
    commit_lane_pass(result);
}

/// Checkpoint (fork policy) or defer (replay policy / budget overflow) the
/// minority lanes of a mixed efire word.  Called from try_fire_lanes at the
/// exact split point: gate g's inputs are consumed and its firing counted,
/// but its output deposits are not yet scheduled — the one piece of state
/// the branches disagree on is g's t_out, which is decided here for the
/// minority (uniform by construction: it is entirely hit-side or miss-side).
void pl_simulator::defer_minority(pl::gate_id g, std::uint64_t minority,
                                  std::uint64_t efire_word, std::uint64_t value,
                                  double t_ready, double t_data,
                                  double efire_time) {
    if (options_.lane_policy == lane_split_policy::replay) {
        lane_deferred_.push_back(minority);
        ++stats_.lane_replays;
        return;
    }

    lane_fork_record rec;
    if (!lane_fork_pool_.empty()) {
        // Reuse a retired record's vector capacities: defer_minority is on
        // the hot split path and three fresh allocations per fork show up.
        rec = std::move(lane_fork_pool_.back());
        lane_fork_pool_.pop_back();
        rec.tokens.clear();
        rec.deposits.clear();
    }
    rec.mask = minority;
    rec.depth = lane_depth_ + 1;
    rec.next_seq = next_seq_;
    rec.input_stable = input_stable_[0];
    rec.output_stable = output_stable_[0];
    rec.sinks_pending = sinks_pending_[0];
    rec.hits = lane_hits_;
    rec.misses = lane_misses_;
    rec.wins = lane_wins_;
    rec.mixed_hits = lane_mixed_hits_;
    rec.mixed_misses = lane_mixed_misses_;
    rec.fired_waves = fired_waves_;
    // Present tokens, sparse over the presence bitset (g's inputs are
    // already cleared, so they are correctly absent).
    for (std::size_t w = 0; w < tok_present_.size(); ++w) {
        for (std::uint64_t bits = tok_present_[w]; bits != 0; bits &= bits - 1) {
            const pl::edge_id e = static_cast<pl::edge_id>(
                (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
            rec.tokens.push_back({e, lane_value_[e], tok_time_[e]});
        }
    }
    // Pending deposits: the calendar's event set plus each event's lane
    // payload word (rides in lane_sched_, not the packed key).
    cal_scratch_.clear();
    calendar_.snapshot_pending(cal_scratch_);
    rec.deposits.reserve(cal_scratch_.size());
    for (const cal_event& d : cal_scratch_) {
        rec.deposits.push_back({d, lane_sched_[d.edge()]});
    }
    // The split master's emission on this branch's output path, plus its
    // per-lane EE accounting (the majority's accounting happens at the
    // caller after the mask shrinks).
    rec.split_gate = g;
    rec.split_value = value;
    rec.split_t_ack = t_ready + options_.delays.ack_delay();
    const double normal =
        t_data + options_.delays.gate_delay() + options_.delays.d_ee_penalty;
    if ((efire_word & minority) != 0) {
        const double early = efire_time + options_.delays.efire_delay();
        rec.split_t_out = std::min(early, normal);
        ++rec.hits;
        if (early < normal) ++rec.wins;
    } else {
        rec.split_t_out = normal;
        ++rec.misses;
    }

    rec.footprint = rec.bytes();
    if (lane_fork_bytes_ + rec.footprint > options_.lane_fork_budget_bytes) {
        // Budget pressure degrades to replay: identical results, the branch
        // just pays the from-t0 prefix again instead of holding memory.
        lane_deferred_.push_back(minority);
        ++stats_.lane_replays;
        lane_fork_pool_.push_back(std::move(rec));
        return;
    }
    lane_fork_bytes_ += rec.footprint;
    stats_.lane_fork_bytes_peak =
        std::max<std::uint64_t>(stats_.lane_fork_bytes_peak, lane_fork_bytes_);
    stats_.lane_fork_depth_max =
        std::max<std::uint64_t>(stats_.lane_fork_depth_max, rec.depth);
    ++stats_.lane_forks;
    fork_depth_counts_[std::min<std::size_t>(rec.depth, k_lanes)] += 1;
    lane_forks_.push_back(std::move(rec));
}

/// Resume the most recent fork record: rebuild the pass state it captured,
/// re-emit the split master's outputs on the minority's timing, and re-enter
/// the event loop mid-stream.  Times stay absolute (no epoch rebasing), so
/// every computed per-lane time is bit-identical to the serial run's.
void pl_simulator::run_lane_fork(lane_block_result& result) {
    lane_fork_record rec = std::move(lane_forks_.back());
    lane_forks_.pop_back();
    lane_fork_bytes_ -= rec.footprint;

    lane_mask_ = rec.mask;
    lane_depth_ = rec.depth;
    lane_hits_ = rec.hits;
    lane_misses_ = rec.misses;
    lane_wins_ = rec.wins;
    lane_mixed_hits_ = rec.mixed_hits;
    lane_mixed_misses_ = rec.mixed_misses;
    next_seq_ = rec.next_seq;
    num_waves_ = 1;
    released_waves_ = 1;
    release_time_.assign(1, 0.0);
    input_stable_.assign(1, rec.input_stable);
    output_stable_.assign(1, rec.output_stable);
    sinks_pending_.assign(1, rec.sinks_pending);
    waves_stable_ = 0;  // a split can only happen while sinks are pending
    fired_waves_ = rec.fired_waves;

    const std::size_t num_edges = pl_.num_edges();
    tok_present_.assign((num_edges + 63) / 64, 0);
    lane_inflight_.assign((num_edges + 63) / 64, 0);
    // lane_value_ / lane_sched_ / tok_time_ keep stale entries: the engine
    // only reads the value or time of a present token or an in-flight
    // deposit, and both sets are rebuilt below.
    pending_ = in_count_;
    for (const lane_fork_token& t : rec.tokens) {
        tok_present_[t.edge >> 6] |= std::uint64_t{1} << (t.edge & 63);
        lane_value_[t.edge] = t.value;
        tok_time_[t.edge] = t.time;
        --pending_[topo_.edge_to[t.edge]];
    }
    cal_scratch_.clear();
    for (const lane_fork_deposit& d : rec.deposits) {
        const pl::edge_id e = d.event.edge();
        lane_sched_[e] = d.word;
        lane_inflight_[e >> 6] |= std::uint64_t{1} << (e & 63);
        cal_scratch_.push_back(d.event);
    }
    calendar_.restore(bucket_width_for(options_.delays),
                      max_delay_for(options_.delays), num_edges, cal_scratch_);

    // The split master's outputs, scheduled on this branch's output path.
    const gate_desc& d = desc_[rec.split_gate];
    const std::uint64_t tick_out = calendar_.tick_of(rec.split_t_out);
    const std::uint64_t tick_ack = calendar_.tick_of(rec.split_t_ack);
    for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
        const pl::edge_id e = topo_.out_flat[i];
        if (topo_.edge_is_ack[e]) {
            schedule_lanes(tick_ack, rec.split_t_ack, e, rec.split_value);
        } else {
            schedule_lanes(tick_out, rec.split_t_out, e, rec.split_value);
        }
    }

    lane_fork_pool_.push_back(std::move(rec));
    run_lane_events();
    commit_lane_pass(result);
}

/// The shared lane event loop + deadlock check (identical for from-t0
/// passes and fork resumes).
void pl_simulator::run_lane_events() {
    std::uint64_t events = stats_.events;
    const std::uint64_t max_events = options_.max_events;
    cancel_token* const cancel = options_.cancel;
    try {
        // Drain to quiescence (see run_heap): with firings capped at the
        // wave horizon the calendar empties deterministically, and every
        // lane pass observes the same firing set regardless of pop order.
        while (!calendar_.empty()) {
            if (++events > max_events) {
                throw budget_exhausted(options_.label, events, "lanes");
            }
            if ((events & (k_cancel_check_events - 1)) == 0) {
                stats_.events = events;
                if (cancel != nullptr && cancel->expired()) {
                    throw job_timeout("sim.events", options_.label, events);
                }
                fault::injector::instance().check("sim.fire", events);
                if (options_.recorder != nullptr) {
                    options_.recorder->record("sim.progress", events,
                                              waves_stable_);
                }
            }
            const cal_event& dep = calendar_.pop_min();
            place_lanes(dep.edge(), dep.time);
        }
    } catch (...) {
        stats_.events = events;
        throw;
    }
    stats_.events = events;
    if (waves_stable_ < num_waves_) {
        throw deadlock_error(options_.label, deadlock_diagnostic(),
                             stats_.events, "lanes");
    }
}

/// Commit the lanes the just-finished pass retained into the block result.
/// Values are correct for every lane, so masking is only needed because
/// other branches land with their own (correct) timing.
void pl_simulator::commit_lane_pass(lane_block_result& result) {
    const std::uint64_t kept = lane_mask_;
    for (std::size_t j = 0; j < lane_sink_words_.size(); ++j) {
        result.outputs[j] =
            (result.outputs[j] & ~kept) | (lane_sink_words_[j] & kept);
    }
    if (lane_vec_) {
        // Vector passes already accumulate lane-summed popcounts, and each
        // lane carries its own stability time from the per-lane slab.
        stats_.ee_hits += lane_hits_;
        stats_.ee_misses += lane_misses_;
        stats_.ee_wins += lane_wins_;
        for (std::uint64_t rest = kept; rest != 0; rest &= rest - 1) {
            const std::size_t lane =
                static_cast<std::size_t>(std::countr_zero(rest));
            result.input_stable[lane] = input_stable_[0];
            result.output_stable[lane] = output_stable_lane_[lane];
            result.release[lane] = release_time_[0];
        }
        return;
    }
    const std::uint64_t n = static_cast<std::uint64_t>(std::popcount(kept));
    stats_.ee_hits += lane_hits_ * n;
    stats_.ee_misses += lane_misses_ * n;
    stats_.ee_wins += lane_wins_ * n;
    for (std::uint64_t rest = kept; rest != 0; rest &= rest - 1) {
        const std::size_t lane =
            static_cast<std::size_t>(std::countr_zero(rest));
        stats_.ee_hits += lane_mixed_hits_[lane];
        stats_.ee_misses += lane_mixed_misses_[lane];
        result.input_stable[lane] = input_stable_[0];
        result.output_stable[lane] = output_stable_[0];
        result.release[lane] = release_time_[0];
    }
}

/// Trigger-aware grouping: an untimed value-only dataflow pass over the PL
/// netlist (same firing rules as the lane engine, no queue, no times)
/// records every EE master's efire word in firing order; the block's lanes
/// are then partitioned by the first masters whose words are mixed, so
/// lanes predicted to take different output paths never share a pass.
/// Pure prediction: a truncated frontier, a capped group count, or an
/// abandoned prepass only means some groups still split — correctness is
/// carried by the fork/replay machinery either way.  Fills group_masks_.
void pl_simulator::plan_lane_groups(const stimulus_block& block) {
    group_masks_.clear();
    const std::uint64_t full = block.lane_mask();
    group_masks_.push_back(full);
    if (options_.lane_policy == lane_split_policy::vector ||
        !options_.lane_group || block.num_vectors < 2 || num_masters_ == 0) {
        return;  // vector passes never split, so one full-mask group is best
    }

    constexpr std::size_t k_frontier = 8;  ///< mixed words worth collecting
    constexpr std::size_t k_group_cap = 8;  ///< passes worth pre-paying
    const std::size_t num_edges = pl_.num_edges();
    const std::size_t num_gates = pl_.num_gates();
    pre_value_.assign(num_edges, 0);
    pre_pending_ = in_count_;
    pre_fired_.assign(num_gates, 0);
    pre_worklist_.clear();
    std::size_t sinks_left = pl_.sinks().size();
    std::uint64_t mixed[k_frontier];
    std::size_t num_mixed = 0;

    for (pl::edge_id e = 0; e < num_edges; ++e) {
        const pl::pl_edge& edge = pl_.edge(e);
        if (edge.init_token) {
            pre_value_[e] = edge.init_value ? ~std::uint64_t{0} : 0;
            --pre_pending_[edge.to];
        }
    }
    for (pl::gate_id g = 0; g < num_gates; ++g) {
        if (pre_pending_[g] != 0) continue;
        if (in_count_[g] != 0 || (desc_[g].kind == pl::gate_kind::source &&
                                  desc_[g].out_end != desc_[g].out_begin)) {
            pre_worklist_.push_back(g);
        }
    }

    const auto emit = [&](pl::edge_id e, std::uint64_t word) {
        pre_value_[e] = word;
        const pl::gate_id to = topo_.edge_to[e];
        if (--pre_pending_[to] == 0) pre_worklist_.push_back(to);
    };
    // Firing budget: the timed pass's firings are bounded by the ack
    // round-trips of one wave; anything past this bound is a pathological
    // netlist and the prediction is abandoned mid-way (harmless).
    std::size_t budget = 64 * num_gates + 4096;
    while (!pre_worklist_.empty() && sinks_left > 0 &&
           num_mixed < k_frontier && budget-- > 0) {
        const pl::gate_id g = pre_worklist_.back();
        pre_worklist_.pop_back();
        const gate_desc& d = desc_[g];
        if (d.kind == pl::gate_kind::source) {
            if (pre_fired_[g] >= 1) continue;  // single-wave protocol
            pre_pending_[g] = in_count_[g];
            ++pre_fired_[g];
            const std::uint64_t word = block.words[d.env_slot];
            for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
                emit(topo_.out_flat[i], word);
            }
            continue;
        }
        if (d.kind == pl::gate_kind::sink) {
            pre_pending_[g] = in_count_[g];
            if (pre_fired_[g]++ == 0) --sinks_left;
            for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
                emit(topo_.out_flat[i], 0);
            }
            continue;
        }
        std::uint64_t ins[bf::k_max_vars];
        for (std::uint8_t pin = 0; pin < d.num_data; ++pin) {
            ins[pin] = pre_value_[topo_.data_flat[d.data_begin + pin]];
        }
        pre_pending_[g] = in_count_[g];
        ++pre_fired_[g];
        std::uint64_t value = 0;
        switch (d.kind) {
            case pl::gate_kind::const_source:
                value = d.const_value ? ~std::uint64_t{0} : 0;
                break;
            case pl::gate_kind::through:
                value = d.num_data != 0 ? ins[0] : 0;
                break;
            default:  // trigger / compute
                value = bf::truth_table::eval_word_lanes(d.fn_bits.data(),
                                                         d.num_data, ins);
                break;
        }
        if (d.efire_in != pl::k_invalid_edge) {
            const std::uint64_t efire = pre_value_[d.efire_in] & full;
            if (efire != 0 && efire != full) mixed[num_mixed++] = efire;
        }
        for (std::uint32_t i = d.out_begin; i < d.out_end; ++i) {
            emit(topo_.out_flat[i], value);
        }
    }

    // Partition by the collected frontier: earlier mixed masters first (they
    // are the dominant, earliest-splitting ones), larger fragment keeps its
    // slot so group order tracks expected size.
    for (std::size_t i = 0; i < num_mixed && group_masks_.size() < k_group_cap;
         ++i) {
        const std::size_t groups = group_masks_.size();
        for (std::size_t j = 0;
             j < groups && group_masks_.size() < k_group_cap; ++j) {
            const std::uint64_t a = group_masks_[j] & mixed[i];
            const std::uint64_t b = group_masks_[j] & ~mixed[i];
            if (a == 0 || b == 0) continue;
            group_masks_[j] = std::popcount(a) >= std::popcount(b) ? a : b;
            group_masks_.push_back(group_masks_[j] == a ? b : a);
        }
    }
}

lane_block_result pl_simulator::run_lanes(const stimulus_block& block) {
    if (block.width != pl_.sources().size()) {
        throw std::invalid_argument("pl_simulator::run_lanes: width mismatch");
    }
    if (block.num_vectors == 0 || block.num_vectors > k_lanes) {
        throw std::invalid_argument(
            "pl_simulator::run_lanes: block must hold 1..64 vectors");
    }
    if (pl_.sinks().empty()) {
        throw std::invalid_argument(
            "pl_simulator::run_lanes: netlist has no outputs");
    }
    if (options_.collect_trace) {
        throw std::invalid_argument(
            "pl_simulator::run_lanes: waveform tracing requires the scalar "
            "engine (lane tokens have no single trace value)");
    }

    lane_block_result result;
    result.num_vectors = block.num_vectors;
    result.outputs.assign(pl_.sinks().size(), 0);

    const bool calendar_fits = pl_.num_edges() < cal_event::k_max_edges &&
                               options_.max_events < cal_event::k_max_seq / 2;
    if (options_.queue == queue_kind::binary_heap || !calendar_fits) {
        // Scalar fallback: one run per lane, identical results by
        // construction.  Stats are summed so callers see block totals, and
        // the running total is committed before a rethrow so a lane that
        // throws mid-loop leaves block-consistent counters behind (the
        // throwing lane's own partial stats included), mirroring the lane
        // event loop's catch block.
        sim_run_stats total{};
        total.lane_blocks = 1;
        total.lane_vectors = block.num_vectors;
        std::vector<std::vector<bool>> one(1);
        for (std::size_t lane = 0; lane < block.num_vectors; ++lane) {
            block.extract(lane, one.front());
            std::vector<wave_record> recs;
            try {
                recs = run(one);
            } catch (...) {
                add_run_stats(total, stats_);
                stats_ = total;
                throw;
            }
            add_run_stats(total, stats_);
            ++total.lane_runs;
            const wave_record& rec = recs.front();
            for (std::size_t j = 0; j < rec.outputs.size(); ++j) {
                if (rec.outputs[j]) {
                    result.outputs[j] |= std::uint64_t{1} << lane;
                }
            }
            result.input_stable[lane] = rec.input_stable;
            result.output_stable[lane] = rec.output_stable;
            result.release[lane] = rec.release_time;
        }
        stats_ = total;
        return result;
    }

    reset();
    stats_.lane_blocks = 1;
    stats_.lane_vectors = block.num_vectors;
    lane_block_ = &block;
    lane_sink_words_.assign(pl_.sinks().size(), 0);
    lane_forks_.clear();
    lane_fork_bytes_ = 0;
    plan_lane_groups(block);
    stats_.lane_groups = group_masks_.size();
    lane_deferred_ = group_masks_;
    // Forks drain LIFO (depth-first) so the live checkpoint chain stays a
    // single root-to-leaf path — that is what bounds lane_fork_bytes_.
    while (!lane_deferred_.empty() || !lane_forks_.empty()) {
        if (!lane_forks_.empty()) {
            run_lane_fork(result);
        } else {
            const std::uint64_t mask = lane_deferred_.back();
            lane_deferred_.pop_back();
            run_lane_pass(mask, result);
        }
    }
    lane_block_ = nullptr;
    return result;
}

std::string pl_simulator::deadlock_diagnostic() const {
    std::size_t starving = 0;
    pl::gate_id example = pl::k_invalid_gate;
    for (pl::gate_id g = 0; g < pl_.num_gates(); ++g) {
        if (pending_[g] > 0) {
            ++starving;
            if (example == pl::k_invalid_gate) example = g;
        }
    }
    std::string msg = std::to_string(waves_stable_) + "/" +
                      std::to_string(num_waves_) + " waves stable, " +
                      std::to_string(starving) + " gates waiting";
    if (example != pl::k_invalid_gate) {
        msg += " (first: gate " + std::to_string(example) + " '" +
               pl_.gate(example).name + "' missing " +
               std::to_string(pending_[example]) + " tokens)";
    }
    return msg;
}

}  // namespace plee::sim
