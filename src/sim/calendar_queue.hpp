// calendar_queue.hpp — a bucketed timing-wheel event queue for pl_simulator.
//
// The simulator's events are token deposits, dense in time and popped in
// strict (time, seq) order.  A binary heap pays O(log n) comparisons and
// 24-byte record shuffles per operation; a calendar queue exploits the
// structure of simulated time instead: event times are bucketed by a
// quantized tick (bucket width = the smallest positive delay-model
// component), each tick owns one bucket of a power-of-two ring, and the
// queue jumps from occupied tick to occupied tick through a one-bit-per-
// bucket occupancy bitmap (64 empty ticks skipped per word scan).
//
// Storage exploits marked-graph safety: a safe PL netlist never has two
// deposits in flight on the same edge (a producer cannot refire before the
// consumer's acknowledge, and a double deposit is the safety violation the
// simulator exists to detect), so the wheel is an intrusive linked list over
// an edge-indexed node pool — push writes slot_[edge] and appends the edge
// id to its bucket's chain, no per-bucket containers and no allocation on
// the hot path.  The rare second in-flight deposit on one edge (an unsafe
// hand-built netlist, about to throw anyway) falls back to the overflow
// heap, which preserves exact pop order.
//
// Ordering contract (what makes the two engines bit-identical): events are
// popped in exactly increasing (time, seq) — the same total order the heap's
// comparator induces.  Bucketing never reorders across buckets because
// tick(t) is monotone in t, and a bucket is sorted by (time, seq) when its
// tick becomes current.  Chain order within a bucket is already seq order
// and event times arrive nearly sorted, so the drain sort is an adaptive
// insertion sort (linear on the common nearly-sorted case) with a std::sort
// fallback for large buckets.  Late arrivals into the in-drain run are
// inserted at their sorted position.
//
// Capacity management: the ring covers the window [cur_tick, cur_tick + N).
// N is sized from the delay model (every deposit lands at most one gate
// delay past the current event, a couple dozen ticks), so in-window is the
// overwhelmingly common case; deposits beyond the window go to a small
// overflow min-heap and migrate into the ring when the drain frontier
// reaches them.  The pool needs no growth: in-flight deposits are bounded
// by the edge count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "plogic/pl_netlist.hpp"

namespace plee::sim {

/// One scheduled token deposit (the heap engine's record, the seed layout).
struct deposit {
    double time = 0.0;
    std::uint64_t seq = 0;
    pl::edge_id edge = pl::k_invalid_edge;
    bool value = false;
    /// Heap-engine comparator: std::greater<> over (time, seq).
    bool operator>(const deposit& o) const {
        return time != o.time ? time > o.time : seq > o.seq;
    }
};

/// The calendar engine's 16-byte event: (seq, edge, value) packed into one
/// key as [seq:39][edge:24][value:1].  seq owns the top bits and is unique,
/// so ordering by (time, key) is exactly ordering by (time, seq) — the same
/// total order the heap comparator induces — while halving every copy, sort
/// move and cache line the queue touches.  The layout caps the engine at
/// 2^24 edges and 2^39 events per run; pl_simulator falls back to the heap
/// engine (identical results) beyond that.
struct cal_event {
    double time = 0.0;
    std::uint64_t key = 0;

    static constexpr std::uint32_t k_max_edges = 1u << 24;
    static constexpr std::uint64_t k_max_seq = std::uint64_t{1} << 39;

    static std::uint64_t pack(std::uint64_t seq, pl::edge_id edge, bool value) {
        return (seq << 25) | (std::uint64_t{edge} << 1) |
               static_cast<std::uint64_t>(value);
    }
    pl::edge_id edge() const {
        return static_cast<pl::edge_id>((key >> 1) & (k_max_edges - 1));
    }
    bool value() const { return (key & 1) != 0; }

    bool operator<(const cal_event& o) const {
        return time != o.time ? time < o.time : key < o.key;
    }
    bool operator>(const cal_event& o) const {
        return time != o.time ? time > o.time : key > o.key;
    }
};

class calendar_queue {
public:
    /// Re-arms the queue.  `bucket_width` is the tick quantum (> 0),
    /// `max_delay` the largest single-deposit look-ahead the delay model can
    /// produce (sizes the ring window), `num_edges` the netlist edge count
    /// (sizes the node pool — one slot per edge).
    void reset(double bucket_width, double max_delay, std::size_t num_edges) {
        inv_width_ = 1.0 / bucket_width;
        // Window: 4x the worst-case look-ahead in ticks, so in-window stays
        // the common case even when the frontier sits mid-window.
        const double span = max_delay * inv_width_;
        std::size_t want =
            span < 1e6 ? 4 * static_cast<std::size_t>(span) + 2 : (1u << 16);
        std::size_t n = 64;
        while (n < want && n < (std::size_t{1} << 16)) n <<= 1;
        mask_ = n - 1;
        buckets_.assign(n, chain{k_npos, k_npos});
        occupied_.assign(n >> 6, 0);
        slot_.resize(num_edges);
        next_.assign(num_edges, k_free);
        cur_tick_ = 0;
        run_.clear();
        run_idx_ = 0;
        overflow_.clear();
        ring_count_ = 0;
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void push(const cal_event& d) { push_at(tick_of(d.time), d); }

    /// The tick of a time — lets a caller scheduling several deposits at the
    /// same time quantize it once and push with push_at.
    std::uint64_t tick_of(double time) const {
        return static_cast<std::uint64_t>(time * inv_width_);
    }

    /// Push with a precomputed tick (must equal tick_of(d.time)).
    void push_at(std::uint64_t tick, const cal_event& d) {
        ++size_;
        // One compare covers both rare cases: tick <= cur_tick_ wraps the
        // subtraction to a huge value, tick >= cur_tick_ + N stays >= N - 1.
        if (tick - cur_tick_ - 1 < buckets_.size() - 1 && !inflight(d.edge())) {
            insert_ring(tick, d);
            return;
        }
        push_slow(tick, d);
    }

    /// Pops the globally minimal (time, seq) deposit.  Precondition: !empty().
    /// The reference is valid until the next push or pop — read the fields
    /// out before scheduling anything.
    const cal_event& pop_min() {
        if (run_idx_ == run_.size()) refill_run();
        --size_;
        return run_[run_idx_++];
    }

    /// Snapshot: appends every pending deposit to `out` — the in-drain
    /// remainder of the current run, the ring chains (walked through the
    /// occupancy bitmap) and the overflow heap.  Order is unspecified; the
    /// queue itself is unchanged.  This is the fork-at-split checkpoint
    /// surface: a caller can capture the full event set mid-drain and later
    /// rebuild an equivalent queue with restore().
    void snapshot_pending(std::vector<cal_event>& out) const {
        out.reserve(out.size() + size_);
        out.insert(out.end(),
                   run_.begin() + static_cast<std::ptrdiff_t>(run_idx_),
                   run_.end());
        for (std::size_t w = 0; w < occupied_.size(); ++w) {
            for (std::uint64_t bits = occupied_[w]; bits != 0; bits &= bits - 1) {
                const std::size_t pos =
                    (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
                for (std::uint32_t e = buckets_[pos].head; e != k_npos;
                     e = next_[e]) {
                    out.push_back(slot_[e]);
                }
            }
        }
        out.insert(out.end(), overflow_.begin(), overflow_.end());
    }

    /// Restore: re-arms the queue (same geometry as reset) and reloads a
    /// snapshot_pending event set.  The frontier restarts at tick 0, so
    /// mid-stream events land in the overflow heap and migrate into the ring
    /// as refill_run advances — pop order stays exactly (time, seq), which
    /// is all the bit-identity contract needs.
    void restore(double bucket_width, double max_delay, std::size_t num_edges,
                 const std::vector<cal_event>& events) {
        reset(bucket_width, max_delay, num_edges);
        for (const cal_event& d : events) push(d);
    }

private:
    static constexpr std::uint32_t k_npos = ~std::uint32_t{0};
    /// next_ sentinel for "not in the ring" — next_ doubles as the in-flight
    /// marker, so push touches one array instead of a chain-link array plus
    /// a presence bitmap.
    static constexpr std::uint32_t k_free = k_npos - 1;

    /// One bucket's chain endpoints, paired so a push reads and writes a
    /// single location.
    struct chain {
        std::uint32_t head;
        std::uint32_t tail;
    };

    bool inflight(pl::edge_id e) const { return next_[e] != k_free; }

    void push_slow(std::uint64_t tick, const cal_event& d) {
        if (tick <= cur_tick_) {
            // Into the run currently draining (or, with a zero-delay model,
            // nominally behind it): keep the run sorted past the drain point
            // so pop order stays exact.
            run_.insert(std::upper_bound(run_.begin() +
                                             static_cast<std::ptrdiff_t>(run_idx_),
                                         run_.end(), d),
                        d);
            return;
        }
        overflow_.push_back(d);
        std::push_heap(overflow_.begin(), overflow_.end(), std::greater<>());
    }

    /// Appends the deposit to its bucket's chain.  Precondition: in-window
    /// tick and no deposit in flight on d.edge.
    void insert_ring(std::uint64_t tick, const cal_event& d) {
        const std::size_t pos = tick & mask_;
        const std::uint32_t e = d.edge();
        slot_[e] = d;
        next_[e] = k_npos;
        chain& b = buckets_[pos];
        if (b.tail == k_npos) {
            b.head = e;
            occupied_[pos >> 6] |= std::uint64_t{1} << (pos & 63);
        } else {
            next_[b.tail] = e;
        }
        b.tail = e;
        ++ring_count_;
    }

    /// Earliest occupied ring tick strictly after cur_tick_ (bitmap scan;
    /// precondition ring_count_ > 0, which guarantees a set bit).
    std::uint64_t next_ring_tick() const {
        const std::size_t start = (cur_tick_ + 1) & mask_;
        std::size_t word = start >> 6;
        std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
        for (;;) {
            if (bits != 0) {
                const std::size_t pos =
                    (word << 6) +
                    static_cast<std::size_t>(__builtin_ctzll(bits));
                // Distance from cur_tick_+1's ring position, wrapping once.
                const std::uint64_t dist = (pos - start) & mask_;
                return cur_tick_ + 1 + dist;
            }
            word = word + 1 == occupied_.size() ? 0 : word + 1;
            bits = occupied_[word];
        }
    }

    /// Advances cur_tick_ to the next occupied tick (ring or overflow
    /// frontier, whichever is earlier) and loads its deposits into run_,
    /// sorted by (time, seq).  Events at the new tick may live in both the
    /// ring bucket and the overflow heap; both are merged before sorting.
    /// Precondition: run_ is fully drained and size_ > 0.
    void refill_run() {
        run_.clear();
        run_idx_ = 0;
        const std::uint64_t t_ring =
            ring_count_ > 0 ? next_ring_tick() : ~std::uint64_t{0};
        const std::uint64_t t_ovf =
            overflow_.empty() ? ~std::uint64_t{0} : tick_of(overflow_.front().time);
        cur_tick_ = std::min(t_ring, t_ovf);
        // Pull every overflow deposit the window now covers: same-tick ones
        // join the run, later ones drop into their ring bucket — unless that
        // edge already has an in-flight slot (unsafe-netlist fallback), in
        // which case migration stops and retries at the next refill.
        while (!overflow_.empty() &&
               tick_of(overflow_.front().time) < cur_tick_ + buckets_.size()) {
            const cal_event d = overflow_.front();
            const std::uint64_t tick = tick_of(d.time);
            if (tick > cur_tick_ && inflight(d.edge())) break;
            std::pop_heap(overflow_.begin(), overflow_.end(), std::greater<>());
            overflow_.pop_back();
            if (tick <= cur_tick_) {
                run_.push_back(d);
            } else {
                insert_ring(tick, d);
            }
        }
        const std::size_t pos = cur_tick_ & mask_;
        bool sorted = true;
        if (occupied_[pos >> 6] & (std::uint64_t{1} << (pos & 63))) {
            occupied_[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
            chain& b = buckets_[pos];
            for (std::uint32_t e = b.head; e != k_npos;) {
                if (!run_.empty() && slot_[e] < run_.back()) sorted = false;
                run_.push_back(slot_[e]);
                const std::uint32_t n = next_[e];
                next_[e] = k_free;
                e = n;
                --ring_count_;
            }
            b.head = k_npos;
            b.tail = k_npos;
        }
        if (!sorted) sort_run();
    }

    /// Sorts run_ by (time, seq).  Chain order is seq order and times arrive
    /// nearly sorted, so small runs use adaptive insertion sort.
    void sort_run() {
        const std::size_t n = run_.size();
        if (n > 48) {
            std::sort(run_.begin(), run_.end());
            return;
        }
        for (std::size_t i = 1; i < n; ++i) {
            const cal_event d = run_[i];
            std::size_t j = i;
            while (j > 0 && d < run_[j - 1]) {
                run_[j] = run_[j - 1];
                --j;
            }
            run_[j] = d;
        }
    }

    double inv_width_ = 1.0;
    std::vector<chain> buckets_;       ///< per bucket: chain endpoints
    std::vector<std::uint64_t> occupied_;  ///< bit per bucket: non-empty
    std::vector<cal_event> slot_;      ///< node pool, indexed by edge id
    /// Chain links, indexed by edge id; k_free when the edge has no deposit
    /// in the ring, k_npos at end of chain.
    std::vector<std::uint32_t> next_;
    std::size_t mask_ = 0;
    std::uint64_t cur_tick_ = 0;   ///< tick of the bucket being drained
    std::vector<cal_event> run_;     ///< current bucket, sorted by (time, seq)
    std::size_t run_idx_ = 0;      ///< drain position within run_
    std::vector<cal_event> overflow_;  ///< min-heap of beyond-window deposits
    std::size_t ring_count_ = 0;   ///< deposits resident in the ring
    std::size_t size_ = 0;
};

}  // namespace plee::sim
