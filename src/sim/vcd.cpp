#include "sim/vcd.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace plee::sim {

namespace {

/// Compact VCD identifier for signal index i (printable ASCII 33..126).
std::string vcd_id(std::size_t i) {
    std::string id;
    do {
        id += static_cast<char>(33 + (i % 94));
        i /= 94;
    } while (i > 0);
    return id;
}

std::string signal_name(const pl::pl_netlist& pl, pl::gate_id g) {
    const pl::pl_gate& gate = pl.gate(g);
    std::string base = gate.name.empty()
                           ? std::string(to_string(gate.kind)) + std::to_string(g)
                           : gate.name;
    // VCD identifiers must not contain whitespace or brackets.
    for (char& c : base) {
        if (c == ' ' || c == '[' || c == ']') c = '_';
    }
    return base;
}

}  // namespace

std::string to_vcd(const pl::pl_netlist& pl, const std::vector<trace_event>& trace,
                   const vcd_options& options) {
    // One signal per gate that drives at least one data edge; a gate's data
    // fanout edges all carry the same token, so the first one represents it.
    std::map<pl::gate_id, std::size_t> signal_of_gate;  // -> signal index
    std::vector<pl::gate_id> gate_of_signal;
    std::vector<pl::edge_id> probe_edge;  // representative edge per signal
    for (pl::gate_id g = 0; g < pl.num_gates(); ++g) {
        if (options.ports_only && pl.gate(g).kind != pl::gate_kind::source) continue;
        for (pl::edge_id e : pl.gate(g).out_edges) {
            if (pl.edge(e).kind == pl::edge_kind::data) {
                signal_of_gate.emplace(g, gate_of_signal.size());
                gate_of_signal.push_back(g);
                probe_edge.push_back(e);
                break;
            }
        }
    }
    // Sinks observe, they do not drive; in ports_only mode expose the wires
    // feeding the sinks instead.
    if (options.ports_only) {
        for (pl::gate_id s : pl.sinks()) {
            const pl::pl_gate& sink = pl.gate(s);
            if (sink.data_in.empty()) continue;
            const pl::edge_id feed = sink.data_in.front();
            const pl::gate_id driver = pl.edge(feed).from;
            if (!signal_of_gate.count(driver)) {
                signal_of_gate.emplace(driver, gate_of_signal.size());
                gate_of_signal.push_back(driver);
                probe_edge.push_back(feed);
            }
        }
    }

    std::ostringstream os;
    os << "$date plee self-timed trace $end\n";
    os << "$timescale " << options.timescale << " $end\n";
    os << "$scope module pl $end\n";
    for (std::size_t i = 0; i < gate_of_signal.size(); ++i) {
        os << "$var wire 1 " << vcd_id(i) << " "
           << signal_name(pl, gate_of_signal[i]) << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    // Initial values unknown until the first token arrives.
    os << "$dumpvars\n";
    for (std::size_t i = 0; i < gate_of_signal.size(); ++i) {
        os << "x" << vcd_id(i) << "\n";
    }
    os << "$end\n";

    // Events, time-ordered, restricted to the representative edges and
    // filtered to actual value changes.
    struct change {
        long long ticks;
        std::size_t signal;
        bool value;
    };
    std::map<pl::edge_id, std::size_t> signal_of_edge;
    for (std::size_t i = 0; i < probe_edge.size(); ++i) {
        signal_of_edge.emplace(probe_edge[i], i);
    }
    std::vector<change> changes;
    changes.reserve(trace.size());
    for (const trace_event& ev : trace) {
        auto it = signal_of_edge.find(ev.edge);
        if (it == signal_of_edge.end()) continue;
        changes.push_back({static_cast<long long>(
                               std::llround(ev.time * options.ns_to_ticks)),
                           it->second, ev.value});
    }
    std::stable_sort(changes.begin(), changes.end(),
                     [](const change& a, const change& b) { return a.ticks < b.ticks; });

    std::vector<int> last(gate_of_signal.size(), -1);
    long long current_time = -1;
    for (const change& c : changes) {
        if (last[c.signal] == static_cast<int>(c.value)) continue;
        if (c.ticks != current_time) {
            os << "#" << c.ticks << "\n";
            current_time = c.ticks;
        }
        os << (c.value ? "1" : "0") << vcd_id(c.signal) << "\n";
        last[c.signal] = static_cast<int>(c.value);
    }
    return os.str();
}

}  // namespace plee::sim
