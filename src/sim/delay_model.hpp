// delay_model.hpp — timing model of the PL gate (Figure 1) and EE pair (Figure 2).
//
// A normal PL gate firing passes through the completion-detecting Muller-C
// element, the LUT4, and the output latches: d_celem + d_lut + d_latch.
//
// In an EE pair the master owns an extra Muller-C element in its firing path
// (the paper observes that "because a master/trigger pair of PL gates
// requires the use of an additional Muller-C element, some benchmarks
// suffered a slight degradation"), modeled by d_ee_penalty on the normal
// path.  When the trigger fires with value 1 the master's output is latched
// from the efire signal without waiting for the LUT4's remaining inputs:
// d_celem + d_latch after the trigger output.
//
// Absolute values are nominal nanoseconds; the reproduction targets the
// relative shape of the paper's Table 3, not qhsim's absolute numbers.

#pragma once

namespace plee::sim {

struct delay_model {
    double d_celem = 0.5;       ///< Muller-C element toggle
    double d_lut = 1.0;         ///< LUT4 propagation
    double d_latch = 0.5;       ///< output latch
    double d_ee_penalty = 0.5;  ///< extra series C-element in an EE master
    double d_source = 0.1;      ///< environment drive of a primary input

    /// Normal PL gate firing: completion detection + LUT + latch.
    double gate_delay() const { return d_celem + d_lut + d_latch; }
    /// Early (efire) path through the master: C-element + latch only.
    double efire_delay() const { return d_celem + d_latch; }
    /// Register (through) gate: latch only.
    double through_delay() const { return d_latch; }
    /// Acknowledge generation: the gate-phase toggle.
    double ack_delay() const { return d_celem; }
};

}  // namespace plee::sim
