// errors.hpp — typed simulator failures.
//
// The simulator's three deliberate runtime failures — event-budget
// exhaustion, deadlock, and the dynamic marked-graph/EE invariant checks —
// were indistinguishable runtime_error/logic_errors before; a fleet log full
// of "event budget exhausted" lines could not say which circuit, how far it
// got, or on which engine.  Each type here carries the circuit label
// (sim_options::label, set by the fleet runner to the job id), the event
// count at failure and the queue engine, and renders them into what(), so a
// single log line is actionable.  All are permanent (the simulator is
// deterministic given its stimulus).

#pragma once

#include <cstdint>
#include <string>

#include "rt/errors.hpp"

namespace plee::sim {

/// Base simulator failure: label + events + engine context.
class sim_error : public plee_error {
public:
    sim_error(const std::string& message, const std::string& label,
              std::uint64_t events, const char* queue)
        : plee_error("pl_simulator[" + (label.empty() ? "?" : label) +
                         "]: " + message + " (after " + std::to_string(events) +
                         " events, " + queue + " queue)",
                     failure_class::permanent),
          events_(events) {}

    std::uint64_t events() const { return events_; }

private:
    std::uint64_t events_;
};

/// sim_options::max_events tripped — the runaway guard, not a logic error.
class budget_exhausted : public sim_error {
public:
    budget_exhausted(const std::string& label, std::uint64_t events,
                     const char* queue)
        : sim_error("event budget exhausted", label, events, queue) {}
};

/// The event queue drained before every wave stabilized; the message embeds
/// the liveness diagnostic (waves stable, starving gates, first example).
class deadlock_error : public sim_error {
public:
    deadlock_error(const std::string& label, const std::string& diagnostic,
                   std::uint64_t events, const char* queue)
        : sim_error("deadlock — " + diagnostic, label, events, queue) {}
};

/// Dynamic marked-graph safety or EE invariant violation — the simulator
/// doubling as a checker of the theory; always a bug in the netlist or the
/// transform, never recoverable.
class invariant_violation : public sim_error {
public:
    invariant_violation(const std::string& message, const std::string& label,
                        std::uint64_t events, const char* queue)
        : sim_error(message, label, events, queue) {}
};

}  // namespace plee::sim
