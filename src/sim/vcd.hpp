// vcd.hpp — Value Change Dump export of PL simulation traces.
//
// Converts the token arrivals recorded by pl_simulator (collect_trace mode)
// into a standard VCD waveform: one logic signal per token-producing gate
// (the value rail of its output wire), viewable in GTKWave and friends.
// This is the debugging view the paper's authors would have had from qhsim.

#pragma once

#include <string>
#include <vector>

#include "plogic/pl_netlist.hpp"
#include "sim/pl_sim.hpp"

namespace plee::sim {

struct vcd_options {
    /// Dump only primary inputs and outputs (default: every wire).
    bool ports_only = false;
    /// VCD timescale; simulation times (ns) are emitted at this resolution.
    std::string timescale = "1ps";
    double ns_to_ticks = 1000.0;  ///< ns -> timescale ticks
};

/// Renders a VCD document for `trace` over `pl`.  Events are grouped per
/// producing gate; only value *changes* are emitted after the initial dump.
std::string to_vcd(const pl::pl_netlist& pl, const std::vector<trace_event>& trace,
                   const vcd_options& options = {});

}  // namespace plee::sim
