// transform.hpp — netlist cleanup passes run before Phased Logic mapping.
//
// The PL mapper consumes netlists where every LUT fanin is live (a vacuous
// fanin would make a 100%-coverage "trigger" trivially available, which is a
// synthesis artifact rather than Early Evaluation) and where constants have
// been folded into LUT masks wherever possible.  These passes normalize the
// output of the technology mapper accordingly.

#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace plee::nl {

struct cleanup_stats {
    std::size_t folded_constants = 0;   ///< LUTs that became constants
    std::size_t trimmed_fanins = 0;     ///< vacuous fanin connections removed
    std::size_t swept_cells = 0;        ///< dead cells removed
};

struct cleanup_result {
    netlist nl;
    /// old cell id -> new cell id, or k_invalid_cell when removed.  Constant-
    /// valued cells map to a shared constant cell in the new netlist.
    std::vector<cell_id> remap;
    cleanup_stats stats;
};

/// Runs constant propagation, vacuous-fanin trimming and a dead-cell sweep,
/// producing a fresh netlist.  Port names and DFF initial values survive.
/// The result validates and computes the same input/output function.
cleanup_result cleanup(const netlist& src);

}  // namespace plee::nl
