#include "netlist/transform.hpp"

#include <optional>
#include <stdexcept>

namespace plee::nl {

namespace {

/// Constant knowledge about the net driven by each old cell.
struct net_fact {
    bool is_const = false;
    bool value = false;
};

}  // namespace

cleanup_result cleanup(const netlist& src) {
    cleanup_result result;
    cleanup_stats& stats = result.stats;

    const std::vector<cell_id> order = src.topo_order();

    // --- Pass 1: forward constant analysis over one combinational frame.
    // DFF outputs are unknown (state), inputs are unknown, constants known.
    std::vector<net_fact> facts(src.num_cells());
    // Per-LUT simplified function and live fanins after constant insertion
    // and support trimming.
    std::vector<bf::truth_table> simple_fn(src.num_cells(), bf::truth_table(0));
    std::vector<std::vector<cell_id>> simple_fanins(src.num_cells());

    for (cell_id id : order) {
        const cell& c = src.at(id);
        if (c.kind == cell_kind::constant) {
            facts[id] = {true, c.const_value};
            continue;
        }
        if (c.kind != cell_kind::lut) continue;

        // Substitute constant fanins by cofactoring.
        bf::truth_table fn = c.function;
        for (int i = 0; i < static_cast<int>(c.fanins.size()); ++i) {
            const net_fact& f = facts[c.fanins[static_cast<std::size_t>(i)]];
            if (f.is_const) fn = fn.cofactor(i, f.value);
        }
        // Drop vacuous variables (constant-substituted ones and any the
        // original function never depended on).
        const std::uint32_t support = fn.support_mask();
        std::vector<cell_id> live;
        std::vector<int> live_pos;
        for (int i = 0; i < static_cast<int>(c.fanins.size()); ++i) {
            if (support & (1u << i)) {
                live.push_back(c.fanins[static_cast<std::size_t>(i)]);
                live_pos.push_back(i);
            }
        }
        stats.trimmed_fanins += c.fanins.size() - live.size();

        if (live.empty()) {
            facts[id] = {true, fn.eval(0)};
            ++stats.folded_constants;
            continue;
        }

        // Compress the function onto the live variables.
        const int k = static_cast<int>(live.size());
        bf::truth_table packed = bf::truth_table::from_function(
            k, [&](std::uint32_t m) {
                std::uint32_t full = 0;
                for (int i = 0; i < k; ++i) {
                    if ((m >> i) & 1u) full |= 1u << live_pos[static_cast<std::size_t>(i)];
                }
                return fn.eval(full);
            });
        simple_fn[id] = packed;
        simple_fanins[id] = std::move(live);
    }

    // --- Pass 2: liveness sweep.  A cell is live when a primary output
    // depends on it (through LUTs and DFF D-inputs).  Primary inputs are
    // always kept: they are part of the module interface.
    std::vector<char> live_cell(src.num_cells(), 0);
    std::vector<cell_id> worklist;
    for (cell_id id : src.outputs()) {
        live_cell[id] = 1;
        worklist.push_back(id);
    }
    while (!worklist.empty()) {
        const cell_id id = worklist.back();
        worklist.pop_back();
        const cell& c = src.at(id);
        // For simplified LUTs, only the live fanins matter.
        const std::vector<cell_id>& fanins =
            (c.kind == cell_kind::lut && !facts[id].is_const) ? simple_fanins[id]
                                                              : c.fanins;
        if (c.kind == cell_kind::lut && facts[id].is_const) continue;
        for (cell_id f : fanins) {
            if (f != k_invalid_cell && !live_cell[f]) {
                live_cell[f] = 1;
                worklist.push_back(f);
            }
        }
    }
    for (cell_id id : src.inputs()) live_cell[id] = 1;

    // --- Pass 3: rebuild.
    netlist& out = result.nl;
    result.remap.assign(src.num_cells(), k_invalid_cell);
    std::optional<cell_id> const_cells[2];
    auto materialize_const = [&](bool v) {
        auto& slot = const_cells[v ? 1 : 0];
        if (!slot) slot = out.add_constant(v);
        return *slot;
    };

    // DFFs first so that feedback through registers can be wired afterwards.
    for (cell_id id : src.dffs()) {
        if (!live_cell[id]) {
            ++stats.swept_cells;
            continue;
        }
        result.remap[id] = out.add_dff(k_invalid_cell, src.at(id).init_value,
                                       src.at(id).name);
    }
    for (cell_id id : order) {
        const cell& c = src.at(id);
        if (!live_cell[id] && c.kind != cell_kind::input) {
            if (c.kind != cell_kind::dff) ++stats.swept_cells;
            continue;
        }
        switch (c.kind) {
            case cell_kind::input:
                result.remap[id] = out.add_input(c.name);
                break;
            case cell_kind::constant:
                result.remap[id] = materialize_const(c.const_value);
                break;
            case cell_kind::lut: {
                if (facts[id].is_const) {
                    result.remap[id] = materialize_const(facts[id].value);
                    break;
                }
                std::vector<cell_id> fanins;
                fanins.reserve(simple_fanins[id].size());
                for (cell_id f : simple_fanins[id]) {
                    if (result.remap[f] == k_invalid_cell) {
                        throw std::logic_error("cleanup: fanin not yet rebuilt");
                    }
                    fanins.push_back(result.remap[f]);
                }
                // A LUT that degenerated to the identity is just a wire.
                if (fanins.size() == 1 &&
                    simple_fn[id] == bf::truth_table::variable(1, 0)) {
                    result.remap[id] = fanins.front();
                    break;
                }
                result.remap[id] = out.add_lut(simple_fn[id], std::move(fanins), c.name);
                break;
            }
            case cell_kind::dff:
            case cell_kind::output:
                break;  // handled separately
        }
    }
    for (cell_id id : src.dffs()) {
        if (result.remap[id] == k_invalid_cell) continue;
        const cell_id old_d = src.at(id).fanins.front();
        cell_id new_d = result.remap[old_d];
        if (new_d == k_invalid_cell) {
            // D was folded to a constant or swept; re-materialize constants.
            if (facts[old_d].is_const) {
                new_d = materialize_const(facts[old_d].value);
            } else {
                throw std::logic_error("cleanup: DFF input lost during rebuild");
            }
        }
        out.set_dff_input(result.remap[id], new_d);
    }
    for (cell_id id : src.outputs()) {
        const cell_id old_src = src.at(id).fanins.front();
        cell_id new_src = result.remap[old_src];
        if (new_src == k_invalid_cell) {
            if (facts[old_src].is_const) {
                new_src = materialize_const(facts[old_src].value);
            } else {
                throw std::logic_error("cleanup: output source lost during rebuild");
            }
        }
        result.remap[id] = out.add_output(src.at(id).name, new_src);
    }

    out.validate();
    return result;
}

}  // namespace plee::nl
