#include "netlist/netlist.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace plee::nl {

const char* to_string(cell_kind kind) {
    switch (kind) {
        case cell_kind::input: return "input";
        case cell_kind::constant: return "constant";
        case cell_kind::lut: return "lut";
        case cell_kind::dff: return "dff";
        case cell_kind::output: return "output";
    }
    return "?";
}

cell_id netlist::add_cell(cell c) {
    cells_.push_back(std::move(c));
    return static_cast<cell_id>(cells_.size() - 1);
}

cell_id netlist::add_input(std::string name) {
    cell c;
    c.kind = cell_kind::input;
    c.name = std::move(name);
    const cell_id id = add_cell(std::move(c));
    inputs_.push_back(id);
    return id;
}

cell_id netlist::add_constant(bool value) {
    cell c;
    c.kind = cell_kind::constant;
    c.const_value = value;
    return add_cell(std::move(c));
}

cell_id netlist::add_lut(const bf::truth_table& function, std::vector<cell_id> fanins,
                         std::string name) {
    if (function.num_vars() != static_cast<int>(fanins.size())) {
        throw std::invalid_argument("add_lut: function arity != fanin count");
    }
    if (fanins.empty()) {
        throw std::invalid_argument("add_lut: LUT must have at least one fanin");
    }
    cell c;
    c.kind = cell_kind::lut;
    c.name = std::move(name);
    c.fanins = std::move(fanins);
    c.function = function;
    return add_cell(std::move(c));
}

cell_id netlist::add_dff(cell_id d, bool init, std::string name) {
    cell c;
    c.kind = cell_kind::dff;
    c.name = std::move(name);
    c.fanins = {d};
    c.init_value = init;
    const cell_id id = add_cell(std::move(c));
    dffs_.push_back(id);
    return id;
}

void netlist::set_dff_input(cell_id dff, cell_id d) {
    if (dff >= cells_.size() || cells_[dff].kind != cell_kind::dff) {
        throw std::invalid_argument("set_dff_input: not a DFF cell");
    }
    cells_[dff].fanins = {d};
}

cell_id netlist::add_output(std::string name, cell_id src) {
    cell c;
    c.kind = cell_kind::output;
    c.name = std::move(name);
    c.fanins = {src};
    const cell_id id = add_cell(std::move(c));
    outputs_.push_back(id);
    return id;
}

const cell& netlist::at(cell_id id) const {
    if (id >= cells_.size()) throw std::out_of_range("netlist::at: bad cell id");
    return cells_[id];
}

std::size_t netlist::num_luts() const {
    return static_cast<std::size_t>(
        std::count_if(cells_.begin(), cells_.end(),
                      [](const cell& c) { return c.kind == cell_kind::lut; }));
}

std::vector<cell_id> netlist::topo_order() const {
    // Within one clock cycle, DFF outputs are constants; only LUT->LUT edges
    // constrain the order.  Iterative DFS with cycle detection.
    enum class mark : std::uint8_t { white, grey, black };
    std::vector<mark> marks(cells_.size(), mark::white);
    std::vector<cell_id> order;
    order.reserve(cells_.size());

    // Sources first for a stable, readable order.
    for (cell_id id = 0; id < cells_.size(); ++id) {
        const cell_kind k = cells_[id].kind;
        if (k == cell_kind::input || k == cell_kind::constant || k == cell_kind::dff) {
            order.push_back(id);
            marks[id] = mark::black;
        }
    }

    for (cell_id root = 0; root < cells_.size(); ++root) {
        if (marks[root] != mark::white || cells_[root].kind != cell_kind::lut) continue;
        // Explicit stack of (cell, next fanin index) pairs.
        std::vector<std::pair<cell_id, std::size_t>> stack{{root, 0}};
        marks[root] = mark::grey;
        while (!stack.empty()) {
            auto& [id, next] = stack.back();
            const auto& fanins = cells_[id].fanins;
            if (next < fanins.size()) {
                const cell_id f = fanins[next++];
                if (f == k_invalid_cell || f >= cells_.size()) {
                    throw std::logic_error("topo_order: unresolved fanin");
                }
                if (cells_[f].kind != cell_kind::lut) continue;
                if (marks[f] == mark::grey) {
                    throw std::logic_error("topo_order: combinational cycle through cell " +
                                           std::to_string(f));
                }
                if (marks[f] == mark::white) {
                    marks[f] = mark::grey;
                    stack.emplace_back(f, 0);
                }
            } else {
                marks[id] = mark::black;
                order.push_back(id);
                stack.pop_back();
            }
        }
    }

    for (cell_id id = 0; id < cells_.size(); ++id) {
        if (cells_[id].kind == cell_kind::output) order.push_back(id);
    }
    return order;
}

std::vector<int> netlist::comb_depth() const {
    std::vector<int> depth(cells_.size(), 0);
    for (cell_id id : topo_order()) {
        const cell& c = cells_[id];
        if (c.kind == cell_kind::lut) {
            int d = 0;
            for (cell_id f : c.fanins) d = std::max(d, depth[f]);
            depth[id] = d + 1;
        } else if (c.kind == cell_kind::output) {
            depth[id] = depth[c.fanins.front()];
        }
    }
    return depth;
}

void netlist::validate() const {
    std::set<std::string> port_names;
    for (cell_id id = 0; id < cells_.size(); ++id) {
        const cell& c = cells_[id];
        if (c.kind == cell_kind::input || c.kind == cell_kind::output) {
            if (c.name.empty()) {
                throw std::logic_error("validate: port cell " + std::to_string(id) +
                                       " has no name");
            }
            if (!port_names.insert(c.name).second) {
                throw std::logic_error("validate: duplicate port name '" + c.name + "'");
            }
        }
        for (cell_id f : c.fanins) {
            if (f == k_invalid_cell) {
                throw std::logic_error("validate: cell " + std::to_string(id) +
                                       " has an unconnected fanin");
            }
            if (f >= cells_.size()) {
                throw std::logic_error("validate: cell " + std::to_string(id) +
                                       " references out-of-range fanin");
            }
            if (cells_[f].kind == cell_kind::output) {
                throw std::logic_error("validate: output port used as a fanin");
            }
        }
        switch (c.kind) {
            case cell_kind::lut:
                if (c.fanins.empty() ||
                    c.fanins.size() > static_cast<std::size_t>(bf::k_max_vars)) {
                    throw std::logic_error("validate: LUT fanin count out of range");
                }
                if (c.function.num_vars() != static_cast<int>(c.fanins.size())) {
                    throw std::logic_error("validate: LUT arity mismatch");
                }
                break;
            case cell_kind::dff:
            case cell_kind::output:
                if (c.fanins.size() != 1) {
                    throw std::logic_error("validate: dff/output must have exactly one fanin");
                }
                break;
            case cell_kind::input:
            case cell_kind::constant:
                if (!c.fanins.empty()) {
                    throw std::logic_error("validate: source cell must have no fanins");
                }
                break;
        }
    }
    (void)topo_order();  // throws on combinational cycles
}

bool netlist::respects_fanin_limit(int max_fanin) const {
    return std::all_of(cells_.begin(), cells_.end(), [max_fanin](const cell& c) {
        return c.kind != cell_kind::lut ||
               c.fanins.size() <= static_cast<std::size_t>(max_fanin);
    });
}

std::string netlist::to_dot(const std::string& graph_name) const {
    std::ostringstream os;
    os << "digraph " << graph_name << " {\n  rankdir=LR;\n";
    for (cell_id id = 0; id < cells_.size(); ++id) {
        const cell& c = cells_[id];
        os << "  n" << id << " [label=\"";
        switch (c.kind) {
            case cell_kind::input: os << "IN " << c.name; break;
            case cell_kind::output: os << "OUT " << c.name; break;
            case cell_kind::constant: os << (c.const_value ? "1" : "0"); break;
            case cell_kind::dff: os << "DFF" << (c.init_value ? "/1" : "/0"); break;
            case cell_kind::lut: os << "LUT" << c.fanins.size(); break;
        }
        os << "\", shape=" << (c.kind == cell_kind::dff ? "box" : "ellipse") << "];\n";
    }
    for (cell_id id = 0; id < cells_.size(); ++id) {
        for (cell_id f : cells_[id].fanins) {
            if (f != k_invalid_cell) os << "  n" << f << " -> n" << id << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

}  // namespace plee::nl
