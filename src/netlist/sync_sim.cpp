#include "netlist/sync_sim.hpp"

#include <stdexcept>

namespace plee::nl {

sync_simulator::sync_simulator(const netlist& nl)
    : nl_(nl), order_(nl.topo_order()), values_(nl.num_cells(), 0),
      state_(nl.num_cells(), 0) {
    reset();
}

void sync_simulator::reset() {
    std::fill(values_.begin(), values_.end(), 0);
    std::fill(state_.begin(), state_.end(), 0);
    for (cell_id id : nl_.dffs()) state_[id] = nl_.at(id).init_value ? 1 : 0;
}

void sync_simulator::set_input(cell_id input, bool value) {
    if (nl_.at(input).kind != cell_kind::input) {
        throw std::invalid_argument("set_input: cell is not a primary input");
    }
    values_[input] = value ? 1 : 0;
}

void sync_simulator::set_input(const std::string& name, bool value) {
    for (cell_id id : nl_.inputs()) {
        if (nl_.at(id).name == name) {
            values_[id] = value ? 1 : 0;
            return;
        }
    }
    throw std::invalid_argument("set_input: no input named '" + name + "'");
}

void sync_simulator::set_inputs(const std::vector<bool>& values) {
    if (values.size() != nl_.inputs().size()) {
        throw std::invalid_argument("set_inputs: value count != input count");
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
        values_[nl_.inputs()[i]] = values[i] ? 1 : 0;
    }
}

void sync_simulator::eval() {
    for (cell_id id : order_) {
        const cell& c = nl_.at(id);
        switch (c.kind) {
            case cell_kind::input:
                break;  // externally driven
            case cell_kind::constant:
                values_[id] = c.const_value ? 1 : 0;
                break;
            case cell_kind::dff:
                values_[id] = state_[id];
                break;
            case cell_kind::lut: {
                std::uint32_t minterm = 0;
                for (std::size_t i = 0; i < c.fanins.size(); ++i) {
                    if (values_[c.fanins[i]]) minterm |= 1u << i;
                }
                values_[id] = c.function.eval(minterm) ? 1 : 0;
                break;
            }
            case cell_kind::output:
                values_[id] = values_[c.fanins.front()];
                break;
        }
    }
}

std::vector<bool> sync_simulator::output_values() const {
    std::vector<bool> out;
    out.reserve(nl_.outputs().size());
    for (cell_id id : nl_.outputs()) out.push_back(values_[id] != 0);
    return out;
}

void sync_simulator::latch() {
    for (cell_id id : nl_.dffs()) state_[id] = values_[nl_.at(id).fanins.front()];
}

void sync_simulator::step() {
    eval();
    latch();
}

std::vector<bool> sync_simulator::cycle(const std::vector<bool>& inputs) {
    set_inputs(inputs);
    step();
    return output_values();
}

bool sync_simulator::outputs_equal(const std::vector<bool>& expected) const {
    const std::vector<cell_id>& outs = nl_.outputs();
    if (expected.size() != outs.size()) return false;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        if ((values_[outs[i]] != 0) != expected[i]) return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// 64-lane bit-parallel golden model.
// ---------------------------------------------------------------------------

sync_lane_simulator::sync_lane_simulator(const netlist& nl)
    : nl_(nl), order_(nl.topo_order()), values_(nl.num_cells(), 0),
      state_(nl.num_cells(), 0) {
    reset();
}

void sync_lane_simulator::reset() {
    std::fill(values_.begin(), values_.end(), 0);
    std::fill(state_.begin(), state_.end(), 0);
    for (cell_id id : nl_.dffs()) {
        state_[id] = nl_.at(id).init_value ? ~std::uint64_t{0} : 0;
    }
}

void sync_lane_simulator::set_input(cell_id input, std::uint64_t lanes) {
    if (nl_.at(input).kind != cell_kind::input) {
        throw std::invalid_argument("set_input: cell is not a primary input");
    }
    values_[input] = lanes;
}

void sync_lane_simulator::set_inputs(const std::uint64_t* lane_words,
                                     std::size_t count) {
    if (count != nl_.inputs().size()) {
        throw std::invalid_argument("set_inputs: word count != input count");
    }
    for (std::size_t i = 0; i < count; ++i) {
        values_[nl_.inputs()[i]] = lane_words[i];
    }
}

void sync_lane_simulator::eval() {
    std::uint64_t fanin_lanes[bf::k_max_vars];
    for (cell_id id : order_) {
        const cell& c = nl_.at(id);
        switch (c.kind) {
            case cell_kind::input:
                break;  // externally driven
            case cell_kind::constant:
                values_[id] = c.const_value ? ~std::uint64_t{0} : 0;
                break;
            case cell_kind::dff:
                values_[id] = state_[id];
                break;
            case cell_kind::lut: {
                for (std::size_t i = 0; i < c.fanins.size(); ++i) {
                    fanin_lanes[i] = values_[c.fanins[i]];
                }
                values_[id] = c.function.eval_lanes(fanin_lanes);
                break;
            }
            case cell_kind::output:
                values_[id] = values_[c.fanins.front()];
                break;
        }
    }
}

void sync_lane_simulator::latch() {
    for (cell_id id : nl_.dffs()) state_[id] = values_[nl_.at(id).fanins.front()];
}

void sync_lane_simulator::step() {
    eval();
    latch();
}

void sync_lane_simulator::output_values(std::uint64_t* out) const {
    const std::vector<cell_id>& outs = nl_.outputs();
    for (std::size_t i = 0; i < outs.size(); ++i) out[i] = values_[outs[i]];
}

}  // namespace plee::nl
