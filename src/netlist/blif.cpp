#include "netlist/blif.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "bool/cube_list.hpp"

namespace plee::nl {

namespace {

std::string net_name(const netlist& nl, cell_id id) {
    const cell& c = nl.at(id);
    if (!c.name.empty() && c.kind != cell_kind::output) return c.name;
    return "n" + std::to_string(id);
}

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) tokens.push_back(tok);
    return tokens;
}

}  // namespace

std::string to_blif(const netlist& nl, const std::string& model_name) {
    nl.validate();
    std::ostringstream os;
    os << ".model " << model_name << "\n.inputs";
    for (cell_id id : nl.inputs()) os << " " << net_name(nl, id);
    os << "\n.outputs";
    for (cell_id id : nl.outputs()) os << " " << nl.at(id).name;
    os << "\n";

    for (cell_id id = 0; id < nl.num_cells(); ++id) {
        const cell& c = nl.at(id);
        switch (c.kind) {
            case cell_kind::constant:
                os << ".names " << net_name(nl, id) << "\n";
                if (c.const_value) os << "1\n";
                break;
            case cell_kind::lut: {
                os << ".names";
                for (cell_id f : c.fanins) os << " " << net_name(nl, f);
                os << " " << net_name(nl, id) << "\n";
                // Irredundant ON-set cover via the shared QM engine.
                const bf::cube_list cover = bf::isop_cover(c.function);
                for (const bf::cube& cube : cover.cubes()) {
                    os << cube.to_string(c.function.num_vars()) << " 1\n";
                }
                break;
            }
            case cell_kind::dff:
                os << ".latch " << net_name(nl, c.fanins.front()) << " "
                   << net_name(nl, id) << " re clk " << (c.init_value ? 1 : 0)
                   << "\n";
                break;
            case cell_kind::input:
            case cell_kind::output:
                break;
        }
    }
    // Output ports that rename an internal net become buffers.
    for (cell_id id : nl.outputs()) {
        const cell_id src = nl.at(id).fanins.front();
        if (net_name(nl, src) != nl.at(id).name) {
            os << ".names " << net_name(nl, src) << " " << nl.at(id).name << "\n1 1\n";
        }
    }
    os << ".end\n";
    return os.str();
}

netlist from_blif(std::istream& in) {
    struct names_block {
        std::vector<std::string> inputs;
        std::string output;
        std::vector<std::pair<std::string, char>> rows;  // cover row + out char
        int line = 0;
    };
    struct latch_block {
        std::string input;
        std::string output;
        bool init = false;
    };

    std::vector<std::string> input_ports;
    std::vector<std::string> output_ports;
    std::vector<names_block> names;
    std::vector<latch_block> latches;

    auto fail = [](int line, const std::string& what) {
        throw blif_error(line, what);
    };

    // --- Lexing/parsing ------------------------------------------------------
    std::string raw;
    int line_no = 0;
    bool in_model = false;
    bool ended = false;
    names_block* current = nullptr;
    std::string pending;  // handles '\' continuations
    while (std::getline(in, raw) && !ended) {
        ++line_no;
        if (const auto hash = raw.find('#'); hash != std::string::npos) {
            raw.erase(hash);
        }
        if (!raw.empty() && raw.back() == '\\') {
            pending += raw.substr(0, raw.size() - 1) + " ";
            continue;
        }
        const std::string line = pending + raw;
        pending.clear();
        const std::vector<std::string> tok = tokenize(line);
        if (tok.empty()) continue;

        if (tok[0] == ".model") {
            if (in_model) fail(line_no, "nested .model");
            in_model = true;
            current = nullptr;
        } else if (tok[0] == ".inputs") {
            input_ports.insert(input_ports.end(), tok.begin() + 1, tok.end());
            current = nullptr;
        } else if (tok[0] == ".outputs") {
            output_ports.insert(output_ports.end(), tok.begin() + 1, tok.end());
            current = nullptr;
        } else if (tok[0] == ".names") {
            if (tok.size() < 2) fail(line_no, ".names needs an output");
            names_block b;
            b.inputs.assign(tok.begin() + 1, tok.end() - 1);
            b.output = tok.back();
            b.line = line_no;
            names.push_back(std::move(b));
            current = &names.back();
        } else if (tok[0] == ".latch") {
            if (tok.size() < 3) fail(line_no, ".latch needs input and output");
            latch_block l;
            l.input = tok[1];
            l.output = tok[2];
            // Optional: <type> <control> <init>; init may also follow directly.
            const std::string& last = tok.back();
            if (tok.size() > 3 && (last == "0" || last == "1" || last == "2" ||
                                   last == "3")) {
                l.init = last == "1";
            }
            latches.push_back(std::move(l));
            current = nullptr;
        } else if (tok[0] == ".end") {
            ended = true;
        } else if (tok[0][0] == '.') {
            current = nullptr;  // unsupported directive: skip (e.g. .clock)
        } else {
            if (current == nullptr) fail(line_no, "cover row outside .names");
            if (current->inputs.empty()) {
                // Constant block: a row "1" (or "0") with no input columns.
                if (tok.size() != 1 || (tok[0] != "1" && tok[0] != "0")) {
                    fail(line_no, "bad constant row");
                }
                current->rows.emplace_back("", tok[0][0]);
            } else {
                if (tok.size() != 2) fail(line_no, "cover row needs <mask> <value>");
                if (tok[0].size() != current->inputs.size()) {
                    fail(line_no, "cover row width != fanin count");
                }
                for (const char c : tok[0]) {
                    if (c != '0' && c != '1' && c != '-') {
                        fail(line_no, std::string("bad cover character '") + c + "'");
                    }
                }
                if (tok[1] != "0" && tok[1] != "1") fail(line_no, "bad output value");
                current->rows.emplace_back(tok[0], tok[1][0]);
            }
        }
    }
    if (!in_model) throw blif_error(0, "no .model found");
    if (!pending.empty()) {
        fail(line_no, "file ends mid-continuation ('\\' on final line)");
    }
    if (!ended) fail(line_no, "truncated file: missing .end");

    // --- Building ---------------------------------------------------------------
    netlist out;
    std::map<std::string, cell_id> net;  // driver of each named net

    for (const std::string& port : input_ports) {
        if (net.count(port)) throw blif_error(0, "duplicate input " + port);
        net.emplace(port, out.add_input(port));
    }
    for (const latch_block& l : latches) {
        if (net.count(l.output)) {
            throw blif_error(0, "net driven twice: " + l.output);
        }
        net.emplace(l.output, out.add_dff(k_invalid_cell, l.init, l.output));
    }

    // .names blocks may reference each other in any order: resolve by
    // repeated sweeps (the dependency graph is a DAG for valid BLIF).
    std::vector<bool> built(names.size(), false);
    std::size_t remaining = names.size();
    while (remaining > 0) {
        bool progress = false;
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (built[i]) continue;
            const names_block& b = names[i];
            bool ready = true;
            for (const std::string& dep : b.inputs) {
                if (!net.count(dep)) {
                    ready = false;
                    break;
                }
            }
            if (!ready) continue;

            cell_id id = k_invalid_cell;
            if (b.inputs.empty()) {
                bool value = false;
                for (const auto& [mask, v] : b.rows) value = value || v == '1';
                id = out.add_constant(value);
            } else {
                const int arity = static_cast<int>(b.inputs.size());
                if (arity > bf::k_max_vars) {
                    fail(b.line, "LUT wider than " +
                                     std::to_string(bf::k_max_vars) +
                                     " inputs unsupported");
                }
                // Rows are either all ON-set or all OFF-set per BLIF rules.
                bf::cube_list cover(arity);
                char polarity = '1';
                for (const auto& [mask, v] : b.rows) {
                    polarity = v;
                    cover.add(bf::cube::from_string(mask));
                }
                bf::truth_table fn = cover.to_truth_table();
                if (polarity == '0') fn = ~fn;
                std::vector<cell_id> fanins;
                for (const std::string& dep : b.inputs) fanins.push_back(net.at(dep));
                id = out.add_lut(fn, std::move(fanins));
            }
            if (net.count(b.output)) fail(b.line, "net driven twice: " + b.output);
            net.emplace(b.output, id);
            built[i] = true;
            --remaining;
            progress = true;
        }
        if (!progress) {
            throw blif_error(0, "unresolvable (cyclic or undriven) .names");
        }
    }

    for (const latch_block& l : latches) {
        auto it = net.find(l.input);
        if (it == net.end()) throw blif_error(0, "latch input undriven: " + l.input);
        out.set_dff_input(net.at(l.output), it->second);
    }
    for (const std::string& port : output_ports) {
        auto it = net.find(port);
        if (it == net.end()) throw blif_error(0, "output undriven: " + port);
        out.add_output(port, it->second);
    }

    // validate() throws std::logic_error for structural defects a hostile
    // file can still smuggle past the checks above (e.g. an output port name
    // colliding with an input); re-type it so callers see one error family.
    try {
        out.validate();
    } catch (const std::exception& e) {
        throw blif_error(0, std::string("imported netlist invalid: ") + e.what());
    }
    return out;
}

netlist from_blif_string(const std::string& text) {
    std::istringstream is(text);
    return from_blif(is);
}

}  // namespace plee::nl
