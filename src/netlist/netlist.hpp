// netlist.hpp — synchronous LUT+DFF gate-level netlists.
//
// Phased Logic is a *direct mapping* design style: "designers may use
// synthesis tools and design styles that are currently used for the design of
// synchronous digital circuitry" and the synchronous result is mapped
// gate-for-gate onto PL cells.  This module is the synchronous side of that
// contract: a flat netlist of k-input LUTs (k <= 4 after technology mapping,
// matching the paper's LUT4 PL gate) and D flip-flops, with primary
// input/output ports.  One cell drives exactly one net, so a cell id doubles
// as the id of the net it drives.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bool/truth_table.hpp"

namespace plee::nl {

/// Identifies a cell and, equivalently, the net driven by that cell.
using cell_id = std::uint32_t;

inline constexpr cell_id k_invalid_cell = 0xffffffffu;

enum class cell_kind : std::uint8_t {
    input,     ///< primary input port
    constant,  ///< constant driver (folded away before PL mapping where possible)
    lut,       ///< combinational look-up table, 0 < fanin <= 8 (4 after LUT4 mapping)
    dff,       ///< positive-edge D flip-flop with initial state
    output,    ///< primary output port (single fanin, drives nothing)
};

const char* to_string(cell_kind kind);

struct cell {
    cell_kind kind = cell_kind::lut;
    std::string name;                  ///< required for ports, optional otherwise
    std::vector<cell_id> fanins;       ///< lut: 1..6, dff: {D}, output: {src}
    bf::truth_table function{0};       ///< lut only; arity == fanins.size()
    bool const_value = false;          ///< constant only
    bool init_value = false;           ///< dff only: state before the first edge
};

/// A flat synchronous netlist.  Cells are append-only; DFF data inputs may be
/// connected after creation so that state feedback loops can be expressed.
class netlist {
public:
    cell_id add_input(std::string name);
    cell_id add_constant(bool value);
    /// Adds a LUT cell; `function` arity must equal `fanins.size()`.
    cell_id add_lut(const bf::truth_table& function, std::vector<cell_id> fanins,
                    std::string name = "");
    /// Adds a DFF whose D input may be `k_invalid_cell` (connect later).
    cell_id add_dff(cell_id d, bool init, std::string name = "");
    /// Connects (or reconnects) the D input of a DFF.
    void set_dff_input(cell_id dff, cell_id d);
    cell_id add_output(std::string name, cell_id src);

    std::size_t num_cells() const { return cells_.size(); }
    const cell& at(cell_id id) const;
    const std::vector<cell>& cells() const { return cells_; }

    const std::vector<cell_id>& inputs() const { return inputs_; }
    const std::vector<cell_id>& outputs() const { return outputs_; }
    const std::vector<cell_id>& dffs() const { return dffs_; }

    std::size_t num_luts() const;
    /// Count of cells a PL mapping turns into PL gates (LUTs + DFFs).  This is
    /// the paper's "PL Gates" area unit.
    std::size_t num_pl_mappable() const { return num_luts() + dffs_.size(); }

    /// Cells in a combinational-safe evaluation order: inputs, constants and
    /// DFFs first (their values are sources within a cycle), then LUTs in
    /// dependency order, then outputs.  Throws if a purely combinational
    /// cycle exists.
    std::vector<cell_id> topo_order() const;

    /// Combinational depth per cell: sources are 0, a LUT is 1 + max(fanins).
    /// This is the arrival-time model the EE cost function uses ("maximum
    /// path length in terms of PL gates from the primary circuit inputs").
    std::vector<int> comb_depth() const;

    /// Structural checks: fanins resolved and in range, LUT arity matches,
    /// port names unique and non-empty, no combinational cycles.  Throws
    /// std::logic_error with a description on the first violation.
    void validate() const;

    /// True when every LUT has at most `max_fanin` inputs.
    bool respects_fanin_limit(int max_fanin) const;

    /// Graphviz dump for documentation and debugging.
    std::string to_dot(const std::string& graph_name = "netlist") const;

private:
    cell_id add_cell(cell c);

    std::vector<cell> cells_;
    std::vector<cell_id> inputs_;
    std::vector<cell_id> outputs_;
    std::vector<cell_id> dffs_;
};

}  // namespace plee::nl
