// blif.hpp — Berkeley Logic Interchange Format (BLIF) import/export.
//
// The paper's flow consumed EDIF netlists from a commercial synthesis tool;
// this repository's equivalent interchange point is the (far simpler) BLIF
// subset every academic logic-synthesis tool emits:
//
//   .model <name>
//   .inputs <ports...>          .outputs <ports...>
//   .names <in...> <out>        followed by single-output cover rows
//   .latch <in> <out> [<type> <ctrl>] [<init>]
//   .end
//
// Export writes each LUT as its irredundant SOP cover (reusing the
// Quine–McCluskey engine), so a written file round-trips bit-exactly.
// Import accepts covers with '-' don't-cares and both ON-set ("1") and
// OFF-set ("0") output columns, constants (".names y" with/without a "1"
// row), and latches with initial values 0/1 (2/3 treated as 0).
//
// The importer treats its input as untrusted: every malformed construct —
// bad cover characters, width mismatches, truncation mid-continuation or
// before .end, cyclic or undriven nets — raises blif_error (a permanent
// plee_error), never an unclassified exception and never undefined
// behaviour, so a fleet job fed a hostile deck rejects it cleanly.

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "rt/errors.hpp"

namespace plee::nl {

/// Malformed-BLIF diagnostic.  `line()` is the 1-based source line the error
/// is attributable to, or 0 for whole-file conditions (missing .model,
/// undriven output port).  Classified permanent: re-parsing the same bytes
/// fails the same way.
class blif_error : public plee_error {
public:
    blif_error(int line, const std::string& what)
        : plee_error(line > 0
                         ? "BLIF line " + std::to_string(line) + ": " + what
                         : "BLIF: " + what),
          line_(line) {}

    int line() const { return line_; }

private:
    int line_;
};

/// Serializes `netlist` as BLIF.  Port and latch names survive; internal LUT
/// nets get synthetic names (n<id>).
std::string to_blif(const netlist& nl, const std::string& model_name = "plee");

/// Parses one .model from a BLIF stream.  Throws blif_error with a line
/// number on malformed input.  The result validates.
netlist from_blif(std::istream& in);
netlist from_blif_string(const std::string& text);

}  // namespace plee::nl
