// sync_sim.hpp — cycle-accurate synchronous reference simulator.
//
// A PL circuit produced by direct mapping is cycle-equivalent to its
// synchronous source: every PL gate fires exactly once per "wave" of tokens,
// registers advance one state per wave, and the values carried by tokens in
// wave k equal the synchronous wire values in clock cycle k.  This simulator
// provides the golden semantics that the phased-logic event simulator (with
// and without Early Evaluation) is tested against, cycle by cycle.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace plee::nl {

class sync_simulator {
public:
    explicit sync_simulator(const netlist& nl);

    /// Resets all DFFs to their initial values and clears inputs to 0.
    void reset();

    void set_input(cell_id input, bool value);
    void set_input(const std::string& name, bool value);
    /// Assigns all primary inputs in netlist input order.
    void set_inputs(const std::vector<bool>& values);

    /// Propagates combinational logic for the current inputs and DFF states.
    void eval();

    /// The value on the net driven by `id` after the last eval().
    bool value_of(cell_id id) const { return values_[id]; }

    /// Primary output values, in netlist output order, after the last eval().
    std::vector<bool> output_values() const;

    /// eval() followed by a clock edge (DFF states <= D values).
    void step();

    /// Convenience: applies `inputs`, runs one full cycle and returns the
    /// output values observed *before* the clock edge.
    std::vector<bool> cycle(const std::vector<bool>& inputs);

private:
    const netlist& nl_;
    std::vector<cell_id> order_;
    std::vector<char> values_;  // char, not bool: avoids bitset proxy churn
    std::vector<char> state_;   // DFF state, indexed by cell id
};

}  // namespace plee::nl
