// sync_sim.hpp — cycle-accurate synchronous reference simulator.
//
// A PL circuit produced by direct mapping is cycle-equivalent to its
// synchronous source: every PL gate fires exactly once per "wave" of tokens,
// registers advance one state per wave, and the values carried by tokens in
// wave k equal the synchronous wire values in clock cycle k.  This simulator
// provides the golden semantics that the phased-logic event simulator (with
// and without Early Evaluation) is tested against, cycle by cycle.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace plee::nl {

class sync_simulator {
public:
    explicit sync_simulator(const netlist& nl);

    /// Resets all DFFs to their initial values and clears inputs to 0.
    void reset();

    void set_input(cell_id input, bool value);
    void set_input(const std::string& name, bool value);
    /// Assigns all primary inputs in netlist input order.
    void set_inputs(const std::vector<bool>& values);

    /// Propagates combinational logic for the current inputs and DFF states.
    void eval();

    /// The value on the net driven by `id` after the last eval().
    bool value_of(cell_id id) const { return values_[id]; }

    /// Primary output values, in netlist output order, after the last eval().
    std::vector<bool> output_values() const;

    /// The clock edge alone (DFF states <= D values); callers that already
    /// ran eval() can latch without paying a second propagation pass.
    void latch();

    /// eval() followed by a clock edge (DFF states <= D values).
    void step();

    /// Convenience: applies `inputs`, runs one full cycle and returns the
    /// output values observed *before* the clock edge.
    std::vector<bool> cycle(const std::vector<bool>& inputs);

    /// Allocation-free comparison of the post-eval() primary outputs against
    /// `expected` (netlist output order) — the golden-check hot path.
    bool outputs_equal(const std::vector<bool>& expected) const;

private:
    const netlist& nl_;
    std::vector<cell_id> order_;
    std::vector<char> values_;  // char, not bool: avoids bitset proxy churn
    std::vector<char> state_;   // DFF state, indexed by cell id
};

/// 64-lane bit-parallel version of sync_simulator: every net carries one
/// 64-bit word whose bit L is the net's value in lane L, and each lane is a
/// fully independent simulation (its own inputs and its own DFF state
/// trajectory).  One eval() pass evaluates all 64 lanes — LUTs collapse to
/// the mux-tree word kernel bf::truth_table::eval_lanes — which is what
/// makes the lane-parallel measure path ~an order of magnitude faster per
/// vector than 64 scalar passes.  Lane L of any word is bit-identical to a
/// scalar sync_simulator driven with lane L's inputs from the same reset
/// state (locked down by tests/test_lane_sim.cpp).
class sync_lane_simulator {
public:
    explicit sync_lane_simulator(const netlist& nl);

    /// Resets every lane: DFFs to their initial values, inputs to 0.
    void reset();

    /// Assigns one input across all 64 lanes (bit L = lane L's value).
    void set_input(cell_id input, std::uint64_t lanes);
    /// Assigns all primary inputs in netlist input order, one word each.
    void set_inputs(const std::uint64_t* lane_words, std::size_t count);

    /// Propagates combinational logic for the current inputs and DFF states
    /// in every lane at once.
    void eval();
    /// The clock edge alone (DFF states <= D values), all lanes.
    void latch();
    /// eval() followed by the clock edge.
    void step();

    /// Lane word on the net driven by `id` after the last eval().
    std::uint64_t value_of(cell_id id) const { return values_[id]; }

    /// Post-eval() primary output words, netlist output order, written into
    /// `out` (must hold outputs().size() words).
    void output_values(std::uint64_t* out) const;

private:
    const netlist& nl_;
    std::vector<cell_id> order_;
    std::vector<std::uint64_t> values_;  ///< per cell: one bit per lane
    std::vector<std::uint64_t> state_;   ///< DFF state words, by cell id
};

}  // namespace plee::nl
