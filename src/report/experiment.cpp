#include "report/experiment.hpp"

#include <utility>

#include "fault/injector.hpp"
#include "obs/sink.hpp"
#include "report/json.hpp"
#include "rt/errors.hpp"

namespace plee::report {

experiment_row run_ee_experiment(const std::string& description,
                                 const nl::netlist& netlist,
                                 const experiment_options& options) {
    experiment_row row;
    row.description = description;

    // One failure context for the whole run: typed errors and injected-fault
    // decisions key on it, so a fleet log line names the job and attempt.
    const std::string context =
        options.fault_context.empty() ? description : options.fault_context;
    fault::injector::scope fault_scope(fault::injector::hash(context));
    // Ambient recorder for this thread: stages that cannot take a recorder
    // parameter (the fault injector) still find the job's ring.
    obs::recorder_scope ambient_recorder(options.recorder);
    sim::measure_options measure = options.measure;
    measure.sim.label = context;
    measure.sim.cancel = options.cancel;
    measure.sim.recorder = options.recorder;
    measure.trace = options.trace;
    measure.telemetry = options.telemetry;
    ee::ee_options ee_opts = options.ee;
    ee_opts.cancel = options.cancel;
    ee_opts.context = context;
    ee_opts.recorder = options.recorder;
    const auto stage_gate = [&](const char* stage, std::uint64_t site) {
        if (options.cancel != nullptr && options.cancel->expired()) {
            throw job_timeout(stage, context, site);
        }
    };

    // Baseline: plain Phased Logic.  Each stage opens its own top-level span
    // (sim.run / sim.golden nest inside the measure spans), so the trace
    // reads as the stage sequence of the header comment.
    stage_gate("pipeline.map", 0);
    pl::map_result mapped = [&] {
        const obs::scoped_span span(options.trace, "map_to_pl.plain");
        fault::injector::instance().check("synth.map", 0);
        return pl::map_to_phased_logic(netlist, options.map);
    }();
    row.pl_gates = mapped.pl.num_pl_gates();
    sim::measure_result base;
    {
        const obs::scoped_span span(options.trace, "measure.plain");
        base = sim::measure_average_delay(mapped.pl, &netlist, measure);
    }
    row.delay_no_ee = base.avg_delay;
    row.stats_no_ee = base.stats;
    row.sim_wall_ms += base.sim_wall_ms;
    row.delay_hist_no_ee = std::move(base.delay_hist);

    // Early Evaluation applied to the same mapping.
    stage_gate("pipeline.map", 1);
    pl::map_result mapped_ee = [&] {
        const obs::scoped_span span(options.trace, "map_to_pl.ee");
        fault::injector::instance().check("synth.map", 1);
        return pl::map_to_phased_logic(netlist, options.map);
    }();
    {
        const obs::scoped_span span(options.trace, "ee.search");
        row.ee_detail = ee::apply_early_evaluation(mapped_ee.pl, ee_opts);
    }
    row.ee_gates = mapped_ee.pl.num_trigger_gates();
    sim::measure_result with_ee;
    {
        const obs::scoped_span span(options.trace, "measure.ee");
        with_ee = sim::measure_average_delay(mapped_ee.pl, &netlist, measure);
    }
    row.delay_ee = with_ee.avg_delay;
    row.stats_ee = with_ee.stats;
    row.sim_wall_ms += with_ee.sim_wall_ms;
    row.delay_hist_ee = std::move(with_ee.delay_hist);

    row.lanes = measure.lanes;
    row.vectors_measured = base.delays.size() + with_ee.delays.size();
    if (measure.lanes > 1) {
        // Weight each measurement's run-merging by its vector count.
        const double total = static_cast<double>(row.vectors_measured);
        row.lockstep_fraction =
            total > 0.0
                ? (base.lockstep_fraction * static_cast<double>(base.delays.size()) +
                   with_ee.lockstep_fraction *
                       static_cast<double>(with_ee.delays.size())) /
                      total
                : 1.0;
    }

    row.delay_diff = row.delay_no_ee - row.delay_ee;
    row.area_increase_pct =
        row.pl_gates == 0 ? 0.0
                          : 100.0 * static_cast<double>(row.ee_gates) /
                                static_cast<double>(row.pl_gates);
    row.delay_decrease_pct =
        row.delay_no_ee == 0.0 ? 0.0 : 100.0 * row.delay_diff / row.delay_no_ee;
    return row;
}

json to_json(const experiment_row& row, bool include_cache_counters) {
    json j = json::object();
    j.set("description", json::str(row.description));
    j.set("pl_gates", json::number(row.pl_gates));
    j.set("ee_gates", json::number(row.ee_gates));
    j.set("delay_no_ee_ns", json::number(row.delay_no_ee));
    j.set("delay_ee_ns", json::number(row.delay_ee));
    j.set("delay_diff_ns", json::number(row.delay_diff));
    j.set("area_increase_pct", json::number(row.area_increase_pct));
    j.set("delay_decrease_pct", json::number(row.delay_decrease_pct));
    j.set("triggers_added", json::number(row.ee_detail.triggers_added));
    j.set("masters_considered", json::number(row.ee_detail.masters_considered));
    j.set("sim_events", json::number(static_cast<std::int64_t>(
                            row.stats_no_ee.events + row.stats_ee.events)));
    j.set("sim_wall_ms", json::number(row.sim_wall_ms));
    j.set("lanes", json::number(row.lanes));
    j.set("vectors_measured", json::number(row.vectors_measured));
    j.set("vectors_per_s", json::number(row.vectors_per_s()));
    if (row.lanes > 1) {
        j.set("lockstep_fraction", json::number(row.lockstep_fraction));
    }
    if (include_cache_counters) {
        j.set("trigger_cache_hits", json::number(static_cast<std::int64_t>(
                                        row.ee_detail.cache_hits)));
        j.set("trigger_cache_misses", json::number(static_cast<std::int64_t>(
                                          row.ee_detail.cache_misses)));
    }
    // Present only when the run collected them (telemetry on): the paper's
    // claim is distributional, so the row carries the distributions, in ns
    // (recorded ps / 1000).
    if (!row.delay_hist_no_ee.empty()) {
        j.set("delay_hist_no_ee_ns",
              obs::hist_to_json(row.delay_hist_no_ee, 1e3));
    }
    if (!row.delay_hist_ee.empty()) {
        j.set("delay_hist_ee_ns", obs::hist_to_json(row.delay_hist_ee, 1e3));
    }
    return j;
}

}  // namespace plee::report
