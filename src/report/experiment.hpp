// experiment.hpp — the end-to-end Table 3 experiment pipeline.
//
// One row of the paper's Table 3 is produced by:
//   synchronous netlist -> PL mapping -> measure (100 random vectors)
//                        -> EE transform -> measure again
// and reporting: PL gate count, EE gate count, both average delays, the
// delay difference, % area increase (EE gates / PL gates) and % delay
// decrease.  Both measurements verify the PL outputs against the synchronous
// golden simulation wave-by-wave.

#pragma once

#include <string>

#include "ee/ee_transform.hpp"
#include "netlist/netlist.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "plogic/pl_mapper.hpp"
#include "rt/cancel.hpp"
#include "sim/measure.hpp"

namespace plee::report {

struct experiment_options {
    pl::map_options map{};
    ee::ee_options ee{};
    sim::measure_options measure{};
    /// Cooperative cancellation for the whole pipeline run: polled between
    /// stages, inside the EE search chunks and inside the simulator event
    /// loops.  Expiry raises plee::job_timeout.  Not owned.
    cancel_token* cancel = nullptr;
    /// Failure context threaded into every typed error and fault-injection
    /// scope; the fleet runner sets "jobid#attempt", standalone runs default
    /// to the row description.
    std::string fault_context;
    /// Per-job trace: the pipeline opens one span per stage (map_to_pl.plain
    /// → measure.plain → map_to_pl.ee → ee.search → measure.ee, with
    /// sim.run / sim.golden children inside each measure).  Spans close on
    /// exception unwind, so a failed run still carries a partial breakdown.
    /// Not owned; null = untraced.
    obs::trace* trace = nullptr;
    /// Per-job flight recorder, threaded into both simulator engines and the
    /// EE search (progress beats at the cancel-check cadence).  Not owned;
    /// null = off.
    obs::flight_recorder* recorder = nullptr;
    /// false skips observable-only work (per-vector delay histograms, the
    /// registry flush) — the "compiled-in-but-idle" arm of the overhead A/B.
    bool telemetry = true;
};

struct experiment_row {
    std::string description;
    std::size_t pl_gates = 0;       ///< compute + through gates, before EE
    std::size_t ee_gates = 0;       ///< trigger gates added
    double delay_no_ee = 0.0;       ///< ns, averaged over the random waves
    double delay_ee = 0.0;
    double delay_diff = 0.0;        ///< delay_no_ee - delay_ee
    double area_increase_pct = 0.0; ///< 100 * ee_gates / pl_gates
    double delay_decrease_pct = 0.0;///< 100 * delay_diff / delay_no_ee
    sim::sim_run_stats stats_no_ee;
    sim::sim_run_stats stats_ee;
    ee::ee_stats ee_detail;
    /// Event-simulation wall time across both measurements (ms) — with the
    /// stats' event counts this tracks simulator events/s per circuit.
    double sim_wall_ms = 0.0;
    /// Stimulus lanes per engine pass (measure_options::lanes: 1 or 64).
    std::size_t lanes = 1;
    /// Vectors measured across both runs — with sim_wall_ms this tracks
    /// measurement vectors/s per circuit.
    std::size_t vectors_measured = 0;
    /// Lane mode: run-merging fraction across both measurements (see
    /// measure_result::lockstep_fraction); 1.0 when lanes == 1.
    double lockstep_fraction = 1.0;
    /// Per-vector completion-time distributions (integer picoseconds; see
    /// measure_result::delay_hist).  Empty when telemetry was off.
    obs::hist_snapshot delay_hist_no_ee;
    obs::hist_snapshot delay_hist_ee;

    /// Measurement throughput (0 when the run was too fast to time).
    double vectors_per_s() const {
        return sim_wall_ms > 0.0
                   ? static_cast<double>(vectors_measured) * 1e3 / sim_wall_ms
                   : 0.0;
    }
};

/// Runs the full pipeline on one benchmark circuit.
experiment_row run_ee_experiment(const std::string& description,
                                 const nl::netlist& netlist,
                                 const experiment_options& options = {});

class json;

/// One experiment row as a JSON object (the schema of BENCH_itc99.json).
/// Pass include_cache_counters = false when the run used a fleet-shared
/// trigger cache: the per-pass counters read zero there (the shared cache's
/// owner holds the real totals), and emitting fake zeros would corrupt the
/// cross-PR perf tracking these artifacts exist for.
json to_json(const experiment_row& row, bool include_cache_counters = true);

}  // namespace plee::report
