// table.hpp — plain-text table rendering for the benchmark harness.
//
// Every bench binary prints its results in the same row/column layout as the
// corresponding table in the paper, so paper-vs-measured comparisons are a
// side-by-side read.  A CSV form is provided for downstream plotting.

#pragma once

#include <string>
#include <vector>

namespace plee::report {

class text_table {
public:
    explicit text_table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Fixed-width ASCII rendering with a header separator.
    std::string to_string() const;
    /// RFC-4180-ish CSV (no quoting needed for our cell contents).
    std::string to_csv() const;

    std::size_t num_rows() const { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits (fixed).
std::string fmt(double value, int digits = 1);
/// Formats a percentage with sign, e.g. "+36%" / "-2%".
std::string fmt_pct(double value, int digits = 0);

}  // namespace plee::report
