#include "report/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace plee::report {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void text_table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("text_table::add_row: cell count mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string text_table::to_string() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << " |\n";
    };
    emit_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

std::string text_table::to_csv() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::string fmt(double value, int digits) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << value;
    return os.str();
}

std::string fmt_pct(double value, int digits) {
    std::string s = fmt(value, digits);
    if (value >= 0) s.insert(s.begin(), '+');
    return s + "%";
}

}  // namespace plee::report
