#include "report/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace plee::report {

json json::object() {
    json j;
    j.kind_ = kind::object;
    return j;
}

json json::array() {
    json j;
    j.kind_ = kind::array;
    return j;
}

json json::str(std::string value) {
    json j;
    j.kind_ = kind::string;
    j.string_ = std::move(value);
    return j;
}

json json::number(double value) {
    json j;
    j.kind_ = kind::real;
    j.real_ = value;
    return j;
}

json json::number(std::int64_t value) {
    json j;
    j.kind_ = kind::integer;
    j.integer_ = value;
    return j;
}

json json::boolean(bool value) {
    json j;
    j.kind_ = kind::boolean;
    j.bool_ = value;
    return j;
}

json& json::set(std::string key, json value) {
    if (kind_ != kind::object) {
        throw std::logic_error("json::set: not an object");
    }
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
}

json& json::push(json value) {
    if (kind_ != kind::array) {
        throw std::logic_error("json::push: not an array");
    }
    elements_.push_back(std::move(value));
    return *this;
}

namespace {

void escape_to(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void pad(std::string& out, int indent) { out.append(static_cast<std::size_t>(indent), ' '); }

}  // namespace

void json::dump_to(std::string& out, int indent) const {
    switch (kind_) {
        case kind::null:
            out += "null";
            break;
        case kind::boolean:
            out += bool_ ? "true" : "false";
            break;
        case kind::integer: {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(integer_));
            out += buf;
            break;
        }
        case kind::real: {
            if (!std::isfinite(real_)) {
                out += "null";  // JSON has no Inf/NaN
                break;
            }
            char buf[40];
            std::snprintf(buf, sizeof buf, "%.10g", real_);
            out += buf;
            break;
        }
        case kind::string:
            escape_to(out, string_);
            break;
        case kind::object: {
            if (members_.empty()) {
                out += "{}";
                break;
            }
            out += "{\n";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                pad(out, indent + 2);
                escape_to(out, members_[i].first);
                out += ": ";
                members_[i].second.dump_to(out, indent + 2);
                if (i + 1 < members_.size()) out += ',';
                out += '\n';
            }
            pad(out, indent);
            out += '}';
            break;
        }
        case kind::array: {
            if (elements_.empty()) {
                out += "[]";
                break;
            }
            out += "[\n";
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                pad(out, indent + 2);
                elements_[i].dump_to(out, indent + 2);
                if (i + 1 < elements_.size()) out += ',';
                out += '\n';
            }
            pad(out, indent);
            out += ']';
            break;
        }
    }
}

void json::dump_compact_to(std::string& out) const {
    switch (kind_) {
        case kind::object: {
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i != 0) out += ',';
                escape_to(out, members_[i].first);
                out += ':';
                members_[i].second.dump_compact_to(out);
            }
            out += '}';
            break;
        }
        case kind::array: {
            out += '[';
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                if (i != 0) out += ',';
                elements_[i].dump_compact_to(out);
            }
            out += ']';
            break;
        }
        default:
            // Scalars print identically in both modes.
            dump_to(out, 0);
    }
}

std::string json::dump() const {
    std::string out;
    dump_to(out, 0);
    out += '\n';
    return out;
}

std::string json::dump_compact() const {
    std::string out;
    dump_compact_to(out);
    return out;
}

void json::write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) {
        throw std::runtime_error("json::write_file: cannot open " + path);
    }
    f << dump();
    if (!f) {
        throw std::runtime_error("json::write_file: write failed for " + path);
    }
}

}  // namespace plee::report
