// json.hpp — a minimal JSON value builder and writer.
//
// The perf trajectory of this repository is tracked across PRs through
// machine-readable bench artifacts (BENCH_trigger.json, BENCH_itc99.json);
// this module is the single serializer behind them.  It builds a value tree
// (object / array / string / number / bool / null) with insertion-ordered
// object keys — deterministic output for diffing — and dumps it with
// standard escaping.  Deliberately write-only: nothing in this project needs
// a JSON parser.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace plee::report {

/// Version stamp the BENCH_*.json writers emit as "schema_version" (the
/// fleet artifact carries runner::k_fleet_schema_version instead).
/// Artifacts without the field predate versioning — read them as version 0.
/// Bump on any breaking shape change; see docs/schemas.md.
inline constexpr int k_bench_schema_version = 1;

class json {
public:
    /// Defaults to null.
    json() = default;

    static json object();
    static json array();
    static json str(std::string value);
    static json number(double value);
    static json number(std::int64_t value);
    static json number(int value) { return number(static_cast<std::int64_t>(value)); }
    static json number(std::size_t value) {
        return number(static_cast<std::int64_t>(value));
    }
    static json boolean(bool value);

    /// Object insert (insertion order preserved); *this must be an object.
    json& set(std::string key, json value);
    /// Array append; *this must be an array.
    json& push(json value);

    /// Serializes with 2-space indentation and a trailing newline at the top
    /// level — the shape git diffs handle best.
    std::string dump() const;

    /// Serializes on one line with no whitespace and no trailing newline —
    /// the shape JSONL telemetry streams need (one record per line).
    std::string dump_compact() const;

    /// Writes dump() to `path`, throwing std::runtime_error on I/O failure.
    void write_file(const std::string& path) const;

private:
    enum class kind : std::uint8_t { null, object, array, string, real, integer, boolean };

    void dump_to(std::string& out, int indent) const;
    void dump_compact_to(std::string& out) const;

    kind kind_ = kind::null;
    std::string string_;
    double real_ = 0.0;
    std::int64_t integer_ = 0;
    bool bool_ = false;
    std::vector<std::pair<std::string, json>> members_;  ///< object
    std::vector<json> elements_;                         ///< array
};

}  // namespace plee::report
