#include "synth/fsm.hpp"

#include <stdexcept>

namespace plee::syn {

namespace {
int bits_for(int num_states) {
    int bits = 1;
    while ((1 << bits) < num_states) ++bits;
    return bits;
}
}  // namespace

fsm_builder::fsm_builder(module_builder& m, const std::string& name,
                         int num_states, int initial_state)
    : m_(m), num_states_(num_states),
      default_to_(static_cast<std::size_t>(num_states), -1) {
    if (num_states < 1) throw std::invalid_argument("fsm_builder: need >= 1 state");
    if (initial_state < 0 || initial_state >= num_states) {
        throw std::invalid_argument("fsm_builder: initial state out of range");
    }
    state_q_ = m_.new_register(name + "_state", bits_for(num_states),
                               static_cast<std::uint64_t>(initial_state));
}

expr_id fsm_builder::in_state(int s) const {
    if (s < 0 || s >= num_states_) {
        throw std::invalid_argument("fsm_builder::in_state: out of range");
    }
    return m_.eq_const(state_q_, static_cast<std::uint64_t>(s));
}

void fsm_builder::transition(int from, expr_id guard, int to) {
    if (from < 0 || from >= num_states_ || to < 0 || to >= num_states_) {
        throw std::invalid_argument("fsm_builder::transition: state out of range");
    }
    edges_.push_back({from, guard, to});
}

void fsm_builder::otherwise(int from, int to) {
    if (from < 0 || from >= num_states_ || to < 0 || to >= num_states_) {
        throw std::invalid_argument("fsm_builder::otherwise: state out of range");
    }
    default_to_[static_cast<std::size_t>(from)] = to;
}

void fsm_builder::finalize() {
    if (finalized_) throw std::logic_error("fsm_builder::finalize: called twice");
    finalized_ = true;

    const int bits = state_bits();
    // Two-level selection, the shape an RTL synthesis tool extracts from a
    // VHDL case statement: fold each state's transitions (prioritized within
    // the state, first declared wins) into a per-state next value, then
    // combine across states through the mutually exclusive in_state
    // predicates with an AND-OR network.  This keeps small FSMs flat instead
    // of building one long priority-mux chain over every transition.
    std::vector<std::vector<expr_id>> bit_terms(static_cast<std::size_t>(bits));
    for (int s = 0; s < num_states_; ++s) {
        const int d = default_to_[static_cast<std::size_t>(s)];
        bus state_next =
            d >= 0 ? m_.literal(static_cast<std::uint64_t>(d), bits)
                   : m_.literal(static_cast<std::uint64_t>(s), bits);  // stay
        for (auto it = edges_.rbegin(); it != edges_.rend(); ++it) {
            if (it->from != s) continue;
            state_next = m_.mux2(it->guard,
                                 m_.literal(static_cast<std::uint64_t>(it->to), bits),
                                 state_next);
        }
        const expr_id here = in_state(s);
        for (int j = 0; j < bits; ++j) {
            bit_terms[static_cast<std::size_t>(j)].push_back(
                m_.arena().and_(here, state_next[static_cast<std::size_t>(j)]));
        }
    }
    bus next;
    next.reserve(static_cast<std::size_t>(bits));
    for (int j = 0; j < bits; ++j) {
        next.push_back(m_.arena().or_all(bit_terms[static_cast<std::size_t>(j)]));
    }
    m_.connect_register(state_q_, next);
}

}  // namespace plee::syn
