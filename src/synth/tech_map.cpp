#include "synth/tech_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace plee::syn {

tech_mapper::tech_mapper(expr_arena& arena, nl::netlist& nl, int max_fanin)
    : arena_(arena), nl_(nl), max_fanin_(max_fanin) {
    if (max_fanin < 2 || max_fanin > bf::k_max_vars) {
        throw std::invalid_argument("tech_mapper: max_fanin must be in [2, 8]");
    }
}

tech_mapper::cone tech_mapper::leaf_cone(nl::cell_id cell) {
    return cone{{cell}, bf::truth_table::variable(1, 0)};
}

tech_mapper::cone tech_mapper::apply_not(const cone& a) {
    return cone{a.leaves, ~a.fn};
}

tech_mapper::cone tech_mapper::merge(const cone& a, const cone& b, expr_op op) {
    // Union of leaves, ascending and distinct.
    std::vector<nl::cell_id> leaves = a.leaves;
    leaves.insert(leaves.end(), b.leaves.begin(), b.leaves.end());
    std::sort(leaves.begin(), leaves.end());
    leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());

    const int k = static_cast<int>(leaves.size());
    if (k > max_fanin_) {
        throw std::logic_error("tech_mapper::merge: leaf budget exceeded");
    }

    auto position = [&leaves](nl::cell_id cell) {
        return static_cast<int>(std::lower_bound(leaves.begin(), leaves.end(), cell) -
                                leaves.begin());
    };
    auto project = [&](const cone& c, std::uint32_t merged_minterm) {
        std::uint32_t local = 0;
        for (std::size_t i = 0; i < c.leaves.size(); ++i) {
            if ((merged_minterm >> position(c.leaves[i])) & 1u) local |= 1u << i;
        }
        return c.fn.eval(local);
    };

    bf::truth_table fn = bf::truth_table::from_function(k, [&](std::uint32_t m) {
        const bool va = project(a, m);
        const bool vb = project(b, m);
        switch (op) {
            case expr_op::and_: return va && vb;
            case expr_op::or_: return va || vb;
            case expr_op::xor_: return va != vb;
            default: throw std::logic_error("tech_mapper::merge: bad op");
        }
    });
    return cone{std::move(leaves), std::move(fn)};
}

nl::cell_id tech_mapper::materialize(const cone& c) {
    if (c.leaves.empty()) {
        return nl_.add_constant(c.fn.eval(0));
    }
    if (c.leaves.size() == 1 && c.fn == bf::truth_table::variable(1, 0)) {
        return c.leaves.front();  // plain wire: no cell needed
    }
    // Trim vacuous leaves so every emitted LUT has a full support.
    const std::uint32_t support = c.fn.support_mask();
    if (support == 0) return nl_.add_constant(c.fn.eval(0));
    std::vector<nl::cell_id> live;
    std::vector<int> pos;
    for (int i = 0; i < static_cast<int>(c.leaves.size()); ++i) {
        if (support & (1u << i)) {
            live.push_back(c.leaves[static_cast<std::size_t>(i)]);
            pos.push_back(i);
        }
    }
    if (live.size() != c.leaves.size()) {
        bf::truth_table packed = bf::truth_table::from_function(
            static_cast<int>(live.size()), [&](std::uint32_t m) {
                std::uint32_t full = 0;
                for (std::size_t i = 0; i < pos.size(); ++i) {
                    if ((m >> i) & 1u) full |= 1u << pos[i];
                }
                return c.fn.eval(full);
            });
        if (live.size() == 1 && packed == bf::truth_table::variable(1, 0)) {
            return live.front();
        }
        return nl_.add_lut(packed, std::move(live));
    }
    return nl_.add_lut(c.fn, c.leaves);
}

tech_mapper::cone tech_mapper::cone_of(expr_id id) {
    if (auto it = cone_memo_.find(id); it != cone_memo_.end()) return it->second;
    if (auto it = cell_memo_.find(id); it != cell_memo_.end()) {
        return leaf_cone(it->second);
    }

    const expr_node& n = arena_.at(id);
    cone result;
    switch (n.op) {
        case expr_op::var:
            result = leaf_cone(n.var_cell);
            break;
        case expr_op::konst:
            result = cone{{}, bf::truth_table::constant(0, n.value)};
            break;
        case expr_op::not_:
            result = apply_not(cone_of(n.a));
            break;
        case expr_op::and_:
        case expr_op::or_:
        case expr_op::xor_: {
            cone ca = cone_of(n.a);
            cone cb = cone_of(n.b);
            // Try direct packing; on overflow, materialize the wider operand
            // (then, if needed, the other) to shrink it to a single leaf.
            auto merged_size = [](const cone& x, const cone& y) {
                std::vector<nl::cell_id> u = x.leaves;
                u.insert(u.end(), y.leaves.begin(), y.leaves.end());
                std::sort(u.begin(), u.end());
                u.erase(std::unique(u.begin(), u.end()), u.end());
                return static_cast<int>(u.size());
            };
            if (merged_size(ca, cb) > max_fanin_) {
                if (ca.leaves.size() >= cb.leaves.size()) {
                    ca = leaf_cone(materialize(ca));
                } else {
                    cb = leaf_cone(materialize(cb));
                }
            }
            if (merged_size(ca, cb) > max_fanin_) {
                if (ca.leaves.size() > 1) ca = leaf_cone(materialize(ca));
                if (merged_size(ca, cb) > max_fanin_) cb = leaf_cone(materialize(cb));
            }
            result = merge(ca, cb, n.op);
            break;
        }
    }

    // Shared subexpressions become shared LUTs: materialize once, then hand
    // parents a leaf cone over the shared cell.
    const bool shared_op_node = n.use_count > 1 && n.op != expr_op::var &&
                                n.op != expr_op::konst && result.leaves.size() >= 1;
    if (shared_op_node) {
        const nl::cell_id cell = materialize(result);
        cell_memo_.emplace(id, cell);
        result = leaf_cone(cell);
    }
    cone_memo_.emplace(id, result);
    return result;
}

nl::cell_id tech_mapper::lower(expr_id root) {
    if (auto it = cell_memo_.find(root); it != cell_memo_.end()) return it->second;
    const nl::cell_id cell = materialize(cone_of(root));
    cell_memo_.emplace(root, cell);
    return cell;
}

}  // namespace plee::syn
