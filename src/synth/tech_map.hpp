// tech_map.hpp — greedy cone-packing technology mapper onto LUT cells.
//
// Every Phased Logic gate in the paper's implementation realizes a 4-input
// look-up table ("our restriction to a LUT4 in the PL gate allows for the
// [exhaustive trigger] approach to be practical").  This mapper lowers an
// expression DAG into a netlist of LUTs with at most `max_fanin` inputs
// (default 4, the paper's PL gate; any K up to the 8-variable truth-table
// limit is accepted for the wide-block experiments) by packing operator
// trees into single-output cones while the merged leaf support stays within
// the fanin budget.  Multi-fanout subexpressions are materialized once and
// shared.

#pragma once

#include <unordered_map>

#include "netlist/netlist.hpp"
#include "synth/expr.hpp"

namespace plee::syn {

class tech_mapper {
public:
    /// `max_fanin` must be in [2, 8]; 4 matches the paper's PL gate, 7/8
    /// open the wide-cut (LUT7/LUT8) mapping the multiword tables support.
    tech_mapper(expr_arena& arena, nl::netlist& nl, int max_fanin = 4);

    /// Lowers `root` to a cell driving an equivalent net.  Idempotent per
    /// expression node; shared nodes map to shared cells.
    nl::cell_id lower(expr_id root);

private:
    /// A single-output cone: a function over at most `max_fanin_` leaf cells.
    struct cone {
        std::vector<nl::cell_id> leaves;  ///< distinct, ascending
        bf::truth_table fn{0};            ///< arity == leaves.size()
    };

    cone cone_of(expr_id id);
    cone merge(const cone& a, const cone& b, expr_op op);
    static cone apply_not(const cone& a);
    /// Emits the cone as a LUT (or reuses a wire / constant for trivial
    /// cones) and returns the driving cell.
    nl::cell_id materialize(const cone& c);
    static cone leaf_cone(nl::cell_id cell);

    expr_arena& arena_;
    nl::netlist& nl_;
    int max_fanin_;
    std::unordered_map<expr_id, cone> cone_memo_;
    std::unordered_map<expr_id, nl::cell_id> cell_memo_;
};

}  // namespace plee::syn
