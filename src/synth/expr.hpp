// expr.hpp — Boolean expression DAG with structural hashing.
//
// The synthesis front-end (the stand-in for the commercial RTL synthesis the
// paper ran before PL mapping) builds combinational logic as expressions over
// primary inputs and register outputs, then lowers them onto LUT4 cells with
// the technology mapper.  Structural hashing keeps shared subterms shared, so
// common subexpressions become shared LUT cones exactly once.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace plee::syn {

using expr_id = std::uint32_t;
inline constexpr expr_id k_invalid_expr = 0xffffffffu;

enum class expr_op : std::uint8_t { var, konst, not_, and_, or_, xor_ };

struct expr_node {
    expr_op op = expr_op::konst;
    expr_id a = k_invalid_expr;   ///< first operand (unary/binary ops)
    expr_id b = k_invalid_expr;   ///< second operand (binary ops)
    nl::cell_id var_cell = nl::k_invalid_cell;  ///< var: driving netlist cell
    bool value = false;           ///< konst only
    std::uint32_t use_count = 0;  ///< number of parents (for mapper sharing)
};

/// Append-only arena of hashed expression nodes.  All binary combinators are
/// normalized (commutative operand ordering, constant folding, idempotence
/// and involution simplifications) so trivially-equal expressions unify.
class expr_arena {
public:
    expr_id var(nl::cell_id cell);
    expr_id konst(bool v);
    expr_id not_(expr_id a);
    expr_id and_(expr_id a, expr_id b);
    expr_id or_(expr_id a, expr_id b);
    expr_id xor_(expr_id a, expr_id b);
    expr_id xnor_(expr_id a, expr_id b) { return not_(xor_(a, b)); }
    expr_id nand_(expr_id a, expr_id b) { return not_(and_(a, b)); }
    expr_id nor_(expr_id a, expr_id b) { return not_(or_(a, b)); }

    /// 2:1 multiplexer: sel ? a : b.
    expr_id mux(expr_id sel, expr_id a, expr_id b);

    /// Balanced n-ary reductions (empty input yields the op identity).
    expr_id and_all(const std::vector<expr_id>& xs);
    expr_id or_all(const std::vector<expr_id>& xs);
    expr_id xor_all(const std::vector<expr_id>& xs);

    const expr_node& at(expr_id id) const { return nodes_[id]; }
    std::size_t size() const { return nodes_.size(); }

    /// Reference-count bump used when an expression gains an external parent
    /// (e.g. it is both a module output and a register input).
    void add_use(expr_id id) { ++nodes_[id].use_count; }

    /// Recursive evaluation under an assignment of values to var cells.
    /// Intended for tests; the mapper produces the production evaluator.
    bool eval(expr_id id,
              const std::unordered_map<nl::cell_id, bool>& assignment) const;

private:
    expr_id intern(expr_node node);
    expr_id reduce_balanced(std::vector<expr_id> xs, expr_op op, bool identity);

    struct node_key {
        expr_op op;
        expr_id a;
        expr_id b;
        nl::cell_id var_cell;
        bool value;
        bool operator==(const node_key&) const = default;
    };
    struct node_key_hash {
        std::size_t operator()(const node_key& k) const;
    };

    std::vector<expr_node> nodes_;
    std::unordered_map<node_key, expr_id, node_key_hash> hash_;
};

}  // namespace plee::syn
