// fsm.hpp — finite-state-machine synthesis onto a binary-encoded register.
//
// Most of the smaller ITC99 benchmarks the paper measures (serial-flow
// comparator, BCD recognizer, arbiter, interrupt handler, ...) are control
// FSMs.  fsm_builder captures a symbolic state graph with prioritized guarded
// transitions and lowers it to next-state logic on a module_builder register,
// mirroring how an RTL synthesis tool would encode a VHDL case statement.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/rtl.hpp"

namespace plee::syn {

class fsm_builder {
public:
    /// `num_states` >= 1; states are indexed 0..num_states-1 and encoded in
    /// binary over ceil(log2(num_states)) register bits initialized to
    /// `initial_state`.
    fsm_builder(module_builder& m, const std::string& name, int num_states,
                int initial_state);

    /// Predicate expression "FSM is currently in state s".  Usable both in
    /// transition guards and for Moore/Mealy output logic.
    expr_id in_state(int s) const;

    /// The raw state register Q bus (binary encoded).
    const bus& state() const { return state_q_; }

    /// Adds a guarded transition.  Within one source state, transitions are
    /// prioritized in declaration order (first match wins), mirroring VHDL
    /// if/elsif chains.
    void transition(int from, expr_id guard, int to);

    /// Unconditional fallback for `from` (defaults to "stay" if never set).
    void otherwise(int from, int to);

    /// Builds the next-state logic and connects the state register.  Must be
    /// called exactly once, before module_builder::build().
    void finalize();

    int num_states() const { return num_states_; }
    int state_bits() const { return static_cast<int>(state_q_.size()); }

private:
    struct edge {
        int from;
        expr_id guard;
        int to;
    };

    module_builder& m_;
    int num_states_;
    bus state_q_;
    std::vector<edge> edges_;
    std::vector<int> default_to_;  ///< -1 = stay
    bool finalized_ = false;
};

}  // namespace plee::syn
