// rtl.hpp — RTL-level module construction on top of the expression arena.
//
// The ITC99 benchmarks the paper evaluates were written in RTL VHDL and
// pushed through a commercial synthesis tool.  module_builder is this
// repository's equivalent front-end: multi-bit buses of expressions,
// registers with initial values, ripple-carry arithmetic, comparators,
// multiplexers and shifters, all finally lowered to a flat LUT4+DFF netlist
// by the technology mapper.  Ripple-carry adders matter particularly: the
// carry chain is the canonical Early Evaluation win the paper builds on.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "synth/expr.hpp"

namespace plee::syn {

/// A little-endian bus of expression bits (index 0 = LSB).
using bus = std::vector<expr_id>;

class module_builder {
public:
    explicit module_builder(std::string name = "top");

    expr_arena& arena() { return arena_; }
    const std::string& name() const { return name_; }

    // --- Ports -----------------------------------------------------------
    expr_id input(const std::string& name);
    bus input_bus(const std::string& name, int width);
    void output(const std::string& name, expr_id e);
    void output_bus(const std::string& name, const bus& b);

    // --- State -----------------------------------------------------------
    /// Creates `width` DFFs and returns their Q bus.  The register's next
    /// value must be supplied later via connect_register.
    bus new_register(const std::string& name, int width, std::uint64_t init = 0);
    void connect_register(const bus& q, const bus& next);

    // --- Literals ---------------------------------------------------------
    expr_id lit(bool v) { return arena_.konst(v); }
    bus literal(std::uint64_t value, int width);

    // --- Arithmetic (ripple-carry) ----------------------------------------
    struct add_result {
        bus sum;
        expr_id carry;
    };
    add_result add(const bus& a, const bus& b, expr_id cin);
    add_result add(const bus& a, const bus& b);
    /// Modular addition (carry dropped).
    bus add_mod(const bus& a, const bus& b);
    struct sub_result {
        bus diff;
        expr_id borrow;
    };
    sub_result sub(const bus& a, const bus& b);
    bus inc(const bus& a);

    // --- Comparison --------------------------------------------------------
    expr_id eq(const bus& a, const bus& b);
    expr_id eq_const(const bus& a, std::uint64_t v);
    expr_id ult(const bus& a, const bus& b);  ///< unsigned a < b
    expr_id ule(const bus& a, const bus& b);
    expr_id ugt(const bus& a, const bus& b) { return ult(b, a); }
    expr_id uge(const bus& a, const bus& b) { return ule(b, a); }
    expr_id reduce_or(const bus& a) { return arena_.or_all(a); }
    expr_id reduce_and(const bus& a) { return arena_.and_all(a); }
    expr_id reduce_xor(const bus& a) { return arena_.xor_all(a); }

    // --- Bitwise / steering -------------------------------------------------
    bus bw_and(const bus& a, const bus& b);
    bus bw_or(const bus& a, const bus& b);
    bus bw_xor(const bus& a, const bus& b);
    bus bw_not(const bus& a);
    bus mux2(expr_id sel, const bus& when_true, const bus& when_false);
    /// Generalized mux: `options.size()` must equal 2^sel.size(); index is
    /// interpreted little-endian over `sel`.
    bus mux_tree(const bus& sel, const std::vector<bus>& options);
    /// One-hot decode of `sel` (2^width outputs).
    std::vector<expr_id> decode(const bus& sel);

    // --- Constant-distance shifts -------------------------------------------
    bus shl(const bus& a, int amount, expr_id fill);
    bus shr(const bus& a, int amount, expr_id fill);
    bus rotl(const bus& a, int amount);

    // --- Finalization --------------------------------------------------------
    /// Lowers all outputs and register next-state functions through the LUT4
    /// technology mapper, runs cleanup passes and returns the flat netlist.
    nl::netlist build();

private:
    struct register_bit {
        nl::cell_id dff = nl::k_invalid_cell;
        expr_id next = k_invalid_expr;
        bool connected = false;
    };
    struct pending_output {
        std::string name;
        expr_id value;
    };

    std::string name_;
    nl::netlist nl_;
    expr_arena arena_;
    std::unordered_map<expr_id, std::size_t> reg_of_q_;  ///< Q expr -> register_bits_ idx
    std::vector<register_bit> register_bits_;
    std::vector<pending_output> pending_outputs_;
    bool built_ = false;
};

}  // namespace plee::syn
