#include "synth/expr.hpp"

#include <algorithm>
#include <stdexcept>

namespace plee::syn {

std::size_t expr_arena::node_key_hash::operator()(const node_key& k) const {
    std::size_t h = static_cast<std::size_t>(k.op);
    h = h * 1000003u ^ k.a;
    h = h * 1000003u ^ k.b;
    h = h * 1000003u ^ k.var_cell;
    h = h * 1000003u ^ static_cast<std::size_t>(k.value);
    return h;
}

expr_id expr_arena::intern(expr_node node) {
    const node_key key{node.op, node.a, node.b, node.var_cell, node.value};
    if (auto it = hash_.find(key); it != hash_.end()) return it->second;
    const expr_id id = static_cast<expr_id>(nodes_.size());
    if (node.a != k_invalid_expr) ++nodes_[node.a].use_count;
    if (node.b != k_invalid_expr) ++nodes_[node.b].use_count;
    nodes_.push_back(node);
    hash_.emplace(key, id);
    return id;
}

expr_id expr_arena::var(nl::cell_id cell) {
    expr_node n;
    n.op = expr_op::var;
    n.var_cell = cell;
    return intern(n);
}

expr_id expr_arena::konst(bool v) {
    expr_node n;
    n.op = expr_op::konst;
    n.value = v;
    return intern(n);
}

expr_id expr_arena::not_(expr_id a) {
    const expr_node& na = nodes_[a];
    if (na.op == expr_op::konst) return konst(!na.value);
    if (na.op == expr_op::not_) return na.a;  // involution
    expr_node n;
    n.op = expr_op::not_;
    n.a = a;
    return intern(n);
}

expr_id expr_arena::and_(expr_id a, expr_id b) {
    if (a == b) return a;
    const expr_node& na = nodes_[a];
    const expr_node& nb = nodes_[b];
    if (na.op == expr_op::konst) return na.value ? b : konst(false);
    if (nb.op == expr_op::konst) return nb.value ? a : konst(false);
    if (a > b) std::swap(a, b);  // commutative normal form
    expr_node n;
    n.op = expr_op::and_;
    n.a = a;
    n.b = b;
    return intern(n);
}

expr_id expr_arena::or_(expr_id a, expr_id b) {
    if (a == b) return a;
    const expr_node& na = nodes_[a];
    const expr_node& nb = nodes_[b];
    if (na.op == expr_op::konst) return na.value ? konst(true) : b;
    if (nb.op == expr_op::konst) return nb.value ? konst(true) : a;
    if (a > b) std::swap(a, b);
    expr_node n;
    n.op = expr_op::or_;
    n.a = a;
    n.b = b;
    return intern(n);
}

expr_id expr_arena::xor_(expr_id a, expr_id b) {
    if (a == b) return konst(false);
    const expr_node& na = nodes_[a];
    const expr_node& nb = nodes_[b];
    if (na.op == expr_op::konst) return na.value ? not_(b) : b;
    if (nb.op == expr_op::konst) return nb.value ? not_(a) : a;
    if (a > b) std::swap(a, b);
    expr_node n;
    n.op = expr_op::xor_;
    n.a = a;
    n.b = b;
    return intern(n);
}

expr_id expr_arena::mux(expr_id sel, expr_id a, expr_id b) {
    if (a == b) return a;
    return or_(and_(sel, a), and_(not_(sel), b));
}

expr_id expr_arena::reduce_balanced(std::vector<expr_id> xs, expr_op op,
                                    bool identity) {
    if (xs.empty()) return konst(identity);
    while (xs.size() > 1) {
        std::vector<expr_id> next;
        next.reserve((xs.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
            switch (op) {
                case expr_op::and_: next.push_back(and_(xs[i], xs[i + 1])); break;
                case expr_op::or_: next.push_back(or_(xs[i], xs[i + 1])); break;
                case expr_op::xor_: next.push_back(xor_(xs[i], xs[i + 1])); break;
                default: throw std::logic_error("reduce_balanced: bad op");
            }
        }
        if (xs.size() % 2 == 1) next.push_back(xs.back());
        xs = std::move(next);
    }
    return xs.front();
}

expr_id expr_arena::and_all(const std::vector<expr_id>& xs) {
    return reduce_balanced(xs, expr_op::and_, true);
}

expr_id expr_arena::or_all(const std::vector<expr_id>& xs) {
    return reduce_balanced(xs, expr_op::or_, false);
}

expr_id expr_arena::xor_all(const std::vector<expr_id>& xs) {
    return reduce_balanced(xs, expr_op::xor_, false);
}

bool expr_arena::eval(expr_id id,
                      const std::unordered_map<nl::cell_id, bool>& assignment) const {
    const expr_node& n = nodes_[id];
    switch (n.op) {
        case expr_op::var: {
            auto it = assignment.find(n.var_cell);
            if (it == assignment.end()) {
                throw std::invalid_argument("expr eval: unassigned variable");
            }
            return it->second;
        }
        case expr_op::konst: return n.value;
        case expr_op::not_: return !eval(n.a, assignment);
        case expr_op::and_: return eval(n.a, assignment) && eval(n.b, assignment);
        case expr_op::or_: return eval(n.a, assignment) || eval(n.b, assignment);
        case expr_op::xor_: return eval(n.a, assignment) != eval(n.b, assignment);
    }
    return false;
}

}  // namespace plee::syn
