#include "synth/rtl.hpp"

#include <stdexcept>

#include "netlist/transform.hpp"
#include "synth/tech_map.hpp"

namespace plee::syn {

module_builder::module_builder(std::string name) : name_(std::move(name)) {}

expr_id module_builder::input(const std::string& name) {
    return arena_.var(nl_.add_input(name));
}

bus module_builder::input_bus(const std::string& name, int width) {
    bus b;
    b.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
        b.push_back(input(name + "[" + std::to_string(i) + "]"));
    }
    return b;
}

void module_builder::output(const std::string& name, expr_id e) {
    arena_.add_use(e);
    pending_outputs_.push_back({name, e});
}

void module_builder::output_bus(const std::string& name, const bus& b) {
    for (std::size_t i = 0; i < b.size(); ++i) {
        output(name + "[" + std::to_string(i) + "]", b[i]);
    }
}

bus module_builder::new_register(const std::string& name, int width,
                                 std::uint64_t init) {
    bus q;
    q.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
        const bool bit_init = (init >> i) & 1u;
        const nl::cell_id dff = nl_.add_dff(nl::k_invalid_cell, bit_init,
                                            name + "[" + std::to_string(i) + "]");
        const expr_id qe = arena_.var(dff);
        reg_of_q_.emplace(qe, register_bits_.size());
        register_bits_.push_back({dff, k_invalid_expr, false});
        q.push_back(qe);
    }
    return q;
}

void module_builder::connect_register(const bus& q, const bus& next) {
    if (q.size() != next.size()) {
        throw std::invalid_argument("connect_register: width mismatch");
    }
    for (std::size_t i = 0; i < q.size(); ++i) {
        auto it = reg_of_q_.find(q[i]);
        if (it == reg_of_q_.end()) {
            throw std::invalid_argument("connect_register: bus bit is not a register Q");
        }
        register_bit& rb = register_bits_[it->second];
        if (rb.connected) {
            throw std::logic_error("connect_register: register already connected");
        }
        rb.next = next[i];
        rb.connected = true;
        arena_.add_use(next[i]);
    }
}

bus module_builder::literal(std::uint64_t value, int width) {
    bus b;
    b.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) b.push_back(lit((value >> i) & 1u));
    return b;
}

module_builder::add_result module_builder::add(const bus& a, const bus& b,
                                               expr_id cin) {
    if (a.size() != b.size()) throw std::invalid_argument("add: width mismatch");
    bus sum;
    sum.reserve(a.size());
    expr_id carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const expr_id axb = arena_.xor_(a[i], b[i]);
        sum.push_back(arena_.xor_(axb, carry));
        // carry-out = ab + c(a ^ b): the paper's Table 1 master function.
        carry = arena_.or_(arena_.and_(a[i], b[i]), arena_.and_(carry, axb));
    }
    return {std::move(sum), carry};
}

module_builder::add_result module_builder::add(const bus& a, const bus& b) {
    return add(a, b, lit(false));
}

bus module_builder::add_mod(const bus& a, const bus& b) { return add(a, b).sum; }

module_builder::sub_result module_builder::sub(const bus& a, const bus& b) {
    // a - b = a + ~b + 1; borrow = NOT carry-out.
    add_result r = add(a, bw_not(b), lit(true));
    return {std::move(r.sum), arena_.not_(r.carry)};
}

bus module_builder::inc(const bus& a) {
    // Increment with balanced prefix-AND carries (the shape a synthesis tool
    // extracts for "+1"): carry into bit i is AND(a[0..i-1]), log-depth, so
    // the bits arrive with little skew — unlike a data adder's ripple chain.
    bus r;
    r.reserve(a.size());
    std::vector<expr_id> prefix;
    expr_id carry = lit(true);
    for (std::size_t i = 0; i < a.size(); ++i) {
        r.push_back(arena_.xor_(a[i], carry));
        prefix.push_back(a[i]);
        carry = arena_.and_all(prefix);
    }
    return r;
}

expr_id module_builder::eq(const bus& a, const bus& b) {
    if (a.size() != b.size()) throw std::invalid_argument("eq: width mismatch");
    std::vector<expr_id> bits;
    bits.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) bits.push_back(arena_.xnor_(a[i], b[i]));
    return arena_.and_all(bits);
}

expr_id module_builder::eq_const(const bus& a, std::uint64_t v) {
    return eq(a, literal(v, static_cast<int>(a.size())));
}

expr_id module_builder::ult(const bus& a, const bus& b) {
    // Balanced-tree magnitude comparator (lt, eq) over halves — log depth,
    // matching how commercial synthesis maps relational operators.  (The
    // paper's Early Evaluation wins come from genuine carry chains in data
    // adders, not from comparators that a tool would tree-ify anyway.)
    if (a.size() != b.size()) throw std::invalid_argument("ult: width mismatch");
    struct cmp {
        expr_id lt;
        expr_id eq;
    };
    auto compare = [&](auto&& self, std::size_t lo, std::size_t hi) -> cmp {
        if (hi - lo == 1) {
            return {arena_.and_(arena_.not_(a[lo]), b[lo]), arena_.xnor_(a[lo], b[lo])};
        }
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        const cmp low = self(self, lo, mid);
        const cmp high = self(self, mid, hi);
        return {arena_.or_(high.lt, arena_.and_(high.eq, low.lt)),
                arena_.and_(high.eq, low.eq)};
    };
    return compare(compare, 0, a.size()).lt;
}

expr_id module_builder::ule(const bus& a, const bus& b) {
    return arena_.not_(ult(b, a));
}

bus module_builder::bw_and(const bus& a, const bus& b) {
    if (a.size() != b.size()) throw std::invalid_argument("bw_and: width mismatch");
    bus r;
    r.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r.push_back(arena_.and_(a[i], b[i]));
    return r;
}

bus module_builder::bw_or(const bus& a, const bus& b) {
    if (a.size() != b.size()) throw std::invalid_argument("bw_or: width mismatch");
    bus r;
    r.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r.push_back(arena_.or_(a[i], b[i]));
    return r;
}

bus module_builder::bw_xor(const bus& a, const bus& b) {
    if (a.size() != b.size()) throw std::invalid_argument("bw_xor: width mismatch");
    bus r;
    r.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r.push_back(arena_.xor_(a[i], b[i]));
    return r;
}

bus module_builder::bw_not(const bus& a) {
    bus r;
    r.reserve(a.size());
    for (expr_id e : a) r.push_back(arena_.not_(e));
    return r;
}

bus module_builder::mux2(expr_id sel, const bus& when_true, const bus& when_false) {
    if (when_true.size() != when_false.size()) {
        throw std::invalid_argument("mux2: width mismatch");
    }
    bus r;
    r.reserve(when_true.size());
    for (std::size_t i = 0; i < when_true.size(); ++i) {
        r.push_back(arena_.mux(sel, when_true[i], when_false[i]));
    }
    return r;
}

bus module_builder::mux_tree(const bus& sel, const std::vector<bus>& options) {
    if (options.size() != (std::size_t{1} << sel.size())) {
        throw std::invalid_argument("mux_tree: option count != 2^sel bits");
    }
    std::vector<bus> layer = options;
    for (std::size_t level = 0; level < sel.size(); ++level) {
        std::vector<bus> next;
        next.reserve(layer.size() / 2);
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            next.push_back(mux2(sel[level], layer[i + 1], layer[i]));
        }
        layer = std::move(next);
    }
    return layer.front();
}

std::vector<expr_id> module_builder::decode(const bus& sel) {
    const std::size_t n = std::size_t{1} << sel.size();
    std::vector<expr_id> out;
    out.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
        std::vector<expr_id> terms;
        terms.reserve(sel.size());
        for (std::size_t i = 0; i < sel.size(); ++i) {
            terms.push_back((v >> i) & 1u ? sel[i] : arena_.not_(sel[i]));
        }
        out.push_back(arena_.and_all(terms));
    }
    return out;
}

bus module_builder::shl(const bus& a, int amount, expr_id fill) {
    bus r(a.size(), fill);
    for (std::size_t i = static_cast<std::size_t>(amount); i < a.size(); ++i) {
        r[i] = a[i - static_cast<std::size_t>(amount)];
    }
    return r;
}

bus module_builder::shr(const bus& a, int amount, expr_id fill) {
    bus r(a.size(), fill);
    for (std::size_t i = 0; i + static_cast<std::size_t>(amount) < a.size(); ++i) {
        r[i] = a[i + static_cast<std::size_t>(amount)];
    }
    return r;
}

bus module_builder::rotl(const bus& a, int amount) {
    bus r(a.size(), k_invalid_expr);
    for (std::size_t i = 0; i < a.size(); ++i) {
        r[(i + static_cast<std::size_t>(amount)) % a.size()] = a[i];
    }
    return r;
}

nl::netlist module_builder::build() {
    if (built_) throw std::logic_error("module_builder::build: already built");
    built_ = true;
    for (const register_bit& rb : register_bits_) {
        if (!rb.connected) {
            throw std::logic_error("module_builder::build: unconnected register");
        }
    }

    tech_mapper mapper(arena_, nl_, 4);
    for (const register_bit& rb : register_bits_) {
        nl::cell_id d = mapper.lower(rb.next);
        nl_.set_dff_input(rb.dff, d);
    }
    for (const pending_output& po : pending_outputs_) {
        nl_.add_output(po.name, mapper.lower(po.value));
    }

    nl_.validate();
    return nl::cleanup(nl_).nl;
}

}  // namespace plee::syn
