// trigger_cache.hpp — P-canonical memoization of exact trigger functions.
//
// The trigger of a support set depends only on the master's truth table and
// the support mask — not on the netlist context — and a LUT4 master has only
// 2^16 possible functions.  Real netlists reuse a small set of functions
// (carry majorities, AND/OR trees, muxes), so a per-run memo turns the
// 14-support-set sweep into table lookups after the first occurrence of each
// function.
//
// The memo keys on the *P-canonical* (input-permutation-canonical) form of
// the master: permuting a master's inputs permutes its triggers the same
// way, so the 2^16 LUT4 functions collapse to their 3984 permutation
// classes.  A lookup canonicalizes the master (memoized per function),
// relabels the support through the canonicalizing permutation, fetches or
// computes the canonical trigger, and un-permutes it back to the caller's
// pin order.  bench_micro quantifies the effect; cached and uncached
// searches are cross-checked bit-for-bit in the tests.

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "bool/truth_table.hpp"

namespace plee::ee {

class trigger_cache {
public:
    /// Cached equivalent of exact_trigger_function(master, support).
    bf::truth_table exact(const bf::truth_table& master, std::uint32_t support);

    /// Absorbs another cache's entries and counters — the parallel EE pass
    /// merges its per-thread caches through this after joining.
    void merge_from(const trigger_cache& other);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /// Number of cached canonical (function-class, support) triggers.
    std::size_t size() const { return memo_.size(); }
    /// Number of distinct master functions canonicalized so far.
    std::size_t canonicalized_masters() const { return canon_memo_.size(); }

    /// A P-canonical form: the minimal truth-table bits over all input
    /// permutations of the function, plus one permutation achieving it
    /// (perm[v] is the canonical position of original variable v).
    struct canonical_form {
        std::uint64_t bits = 0;
        std::array<std::uint8_t, bf::k_max_vars> perm{};
    };
    /// Exhaustive n!-enumeration canonicalization (n <= 6; 24 word-level
    /// permutes for a LUT4).  Deterministic: ties broken by the
    /// lexicographically smallest permutation.
    static canonical_form canonicalize(const bf::truth_table& f);

    /// The 64-bit key mixer (splitmix64 finalization over all key fields),
    /// exposed so the tests can assert its collision distribution.
    static std::uint64_t mix_key(std::uint64_t bits, std::uint32_t support,
                                 int num_vars);

private:
    struct key {
        std::uint64_t bits;
        std::uint32_t support;
        int num_vars;
        bool operator==(const key&) const = default;
    };
    struct key_hash {
        std::size_t operator()(const key& k) const {
            return static_cast<std::size_t>(mix_key(k.bits, k.support, k.num_vars));
        }
    };

    /// Canonical triggers, keyed on (canonical master bits, canonical
    /// support).
    std::unordered_map<key, bf::truth_table, key_hash> memo_;
    /// Canonicalization results per concrete master function (support 0).
    std::unordered_map<key, canonical_form, key_hash> canon_memo_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace plee::ee
