// trigger_cache.hpp — memoization of exact trigger functions.
//
// The trigger of a support set depends only on the master's truth table and
// the support mask — not on the netlist context — and a LUT4 master has only
// 2^16 possible functions.  Real netlists reuse a small set of functions
// (carry majorities, AND/OR trees, muxes), so a per-run memo turns the
// 14-support-set sweep into table lookups after the first occurrence of each
// function.  bench_micro quantifies the effect; the cached and uncached
// searches are cross-checked in the tests.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "bool/truth_table.hpp"

namespace plee::ee {

class trigger_cache {
public:
    /// Cached equivalent of exact_trigger_function(master, support).
    const bf::truth_table& exact(const bf::truth_table& master,
                                 std::uint32_t support);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const { return memo_.size(); }

private:
    struct key {
        std::uint64_t bits;
        std::uint32_t support;
        int num_vars;
        bool operator==(const key&) const = default;
    };
    struct key_hash {
        std::size_t operator()(const key& k) const {
            std::size_t h = static_cast<std::size_t>(k.bits * 0x9e3779b97f4a7c15ull);
            h ^= (static_cast<std::size_t>(k.support) << 7) ^
                 static_cast<std::size_t>(k.num_vars);
            return h;
        }
    };

    std::unordered_map<key, bf::truth_table, key_hash> memo_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace plee::ee
