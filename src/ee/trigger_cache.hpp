// trigger_cache.hpp — NPN-canonical memoization of exact trigger functions.
//
// The trigger of a support set depends only on the master's truth table and
// the support mask — not on the netlist context — and a LUT4 master has only
// 2^16 possible functions.  Real netlists reuse a small set of functions
// (carry majorities, AND/OR trees, muxes), so a per-run memo turns the
// 14-support-set sweep into table lookups after the first occurrence of each
// function.
//
// The memo keys on a canonical form of the master.  Two levels are
// supported:
//   * P  — input-permutation canonical: permuting a master's inputs permutes
//     its triggers the same way, so the 2^16 LUT4 functions collapse to
//     their 3984 permutation classes.
//   * NPN (default) — input/output negation on top of permutation.  The
//     exact trigger is invariant under output complement (a constant
//     cofactor stays constant), and negating input v merely reflects the
//     trigger along that axis: trig_{f(x^a)}(u) = trig_f(u ^ a_S).  The
//     LUT4 space therefore collapses to its 222 NPN classes and every
//     lookup maps back through the stored permutation and negation masks.
// A lookup canonicalizes the master (memoized per function), relabels the
// support through the canonicalizing permutation, fetches or computes the
// canonical trigger, un-permutes it to the caller's pin order and finally
// un-reflects the negated support pins.  NPN and P caches are cross-checked
// bit-for-bit over the full LUT4 space in the tests.
//
// Masters wider than 6 variables (multiword truth tables) are memoized on
// their concrete bits: the exhaustive orbit sweep behind both canonical
// levels enumerates n! * 2^(n+1) variants, a first-seen latency wall at
// LUT7/LUT8 scale.  Identity keying still dedups repeated wide functions;
// class-level sharing for wide masters is the semi-canonical-form follow-on
// in the ROADMAP.  All keys mix every truth-table word (see mix_key).

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "bool/truth_table.hpp"

namespace plee::ee {

struct cache_image;  // cache_image.hpp — snapshot exchange form

/// Pure interface for exact-trigger memoization, so the search can run
/// against a plain per-thread cache or a shared concurrent one.
class trigger_memo {
public:
    virtual ~trigger_memo() = default;
    /// Must return exactly exact_trigger_function(master, support).
    virtual bf::truth_table exact(const bf::truth_table& master,
                                  std::uint32_t support) = 0;
};

/// Canonicalization level of a trigger_cache.
enum class canon_mode : std::uint8_t {
    p,    ///< input permutations only (3984 LUT4 classes)
    npn,  ///< permutations + input/output negation (222 LUT4 classes)
};

class trigger_cache : public trigger_memo {
public:
    explicit trigger_cache(canon_mode mode = canon_mode::npn) : mode_(mode) {}

    /// Cached equivalent of exact_trigger_function(master, support).
    bf::truth_table exact(const bf::truth_table& master,
                          std::uint32_t support) override;

    canon_mode mode() const { return mode_; }

    /// Absorbs another cache's entries and counters — the parallel EE pass
    /// merges its per-thread caches through this after joining.  Both caches
    /// must use the same canonicalization mode.
    void merge_from(const trigger_cache& other);

    /// Copies both cache levels into the snapshot exchange form (see
    /// cache_image.hpp).  Entry order is the map iteration order —
    /// unspecified, and deliberately so: merge is order-independent.
    cache_image export_image() const;

    /// Unions a (validated) snapshot image into this cache: insert-if-absent
    /// on both levels, existing entries win.  Does not touch hit/miss
    /// counters — loaded entries only count once a lookup actually uses
    /// them.  Throws std::logic_error on canonicalization-mode mismatch
    /// (the snapshot loader checks the mode first, so reaching the throw
    /// means a caller skipped validation).
    void merge_from_snapshot(const cache_image& image);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /// Number of cached canonical (function-class, support) triggers.
    std::size_t size() const { return memo_.size(); }
    /// Number of distinct master functions canonicalized so far.
    std::size_t canonicalized_masters() const { return canon_memo_.size(); }

    /// A canonical form: the minimal truth-table words over the orbit of the
    /// function, plus one transform achieving it.  The transform is applied
    /// input-negation first, permutation second, output negation last:
    ///   canon(y) = output_neg XOR f(P^-1(y) ^ input_neg)
    /// where perm[v] is the canonical position of original variable v.  The
    /// P-canonical form leaves input_neg == 0 and output_neg == false.
    /// Tables are ordered as 2^n-bit integers (most-significant word first);
    /// for <= 6 variables this coincides with the single-word `<` order.
    struct canonical_form {
        bf::tt_words bits{};
        std::array<std::uint8_t, bf::k_max_vars> perm{};
        std::uint32_t input_neg = 0;
        bool output_neg = false;
    };
    /// Exhaustive n!-enumeration P-canonicalization (24 word-level permutes
    /// for a LUT4).  Deterministic: ties broken by the lexicographically
    /// smallest permutation.  Exact for any arity up to k_max_vars, but the
    /// 8!-variant sweep is a cold-start cost the cache only pays for <= 6
    /// variables (see exact()).
    static canonical_form canonicalize(const bf::truth_table& f);

    /// Exhaustive NPN canonicalization: 2 output phases x 2^n input phases
    /// x n! permutations (768 variants for a LUT4), all word-level.
    /// Deterministic: minimal words win, ties broken by the enumeration
    /// order (output phase, then input phase, then permutation).
    static canonical_form npn_canonicalize(const bf::truth_table& f);

    /// The transform the cache uses for masters wider than 6 variables: the
    /// identity (concrete bits, identity permutation, no negation).  The
    /// exhaustive orbit sweeps above are exact but their n! * 2^n variant
    /// count is a first-seen latency wall at LUT7/LUT8 scale; until the
    /// semi-canonical forms named in the ROADMAP land, wide functions are
    /// memoized per concrete function instead of per class.
    static canonical_form identity_form(const bf::truth_table& f);

    /// Where `support` lands under the canonicalizing permutation.
    static std::uint32_t canonical_support(const canonical_form& form,
                                           std::uint32_t support, int num_vars);

    /// Maps the canonical trigger (over canonical_support) back to the
    /// caller's pin order and polarity: un-permutes through `form.perm` and
    /// reflects every negated support axis (trig_f(u) = trig_canon(u ^
    /// neg_S); output polarity never matters for exact triggers).  Shared by
    /// this class and the concurrent fleet cache.
    static bf::truth_table uncanonicalize_trigger(const canonical_form& form,
                                                  const bf::truth_table& canon_trigger,
                                                  std::uint32_t support,
                                                  std::uint32_t canon_support,
                                                  int num_vars);

    /// The 64-bit key mixer (splitmix64 finalization chained over every
    /// active word plus the support/arity fields), exposed so the tests can
    /// assert its collision distribution and the concurrent cache can shard
    /// on it.  Every word of a multiword function feeds the chain — two
    /// functions that agree on word 0 but differ above never alias.  For
    /// <= 6 variables the chain reduces to the original single-word mix, so
    /// pre-multiword keys are reproduced bit-for-bit.
    static std::uint64_t mix_key(const bf::tt_words& bits, std::uint32_t support,
                                 int num_vars);
    /// Single-word convenience for <= 6-variable callers; identical to the
    /// array overload with words 1..3 zero.
    static std::uint64_t mix_key(std::uint64_t bits, std::uint32_t support,
                                 int num_vars);

private:
    struct key {
        bf::tt_words bits;
        std::uint32_t support;
        int num_vars;
        bool operator==(const key&) const = default;
    };
    struct key_hash {
        std::size_t operator()(const key& k) const {
            return static_cast<std::size_t>(mix_key(k.bits, k.support, k.num_vars));
        }
    };

    canon_mode mode_;
    /// Canonical triggers, keyed on (canonical master bits, canonical
    /// support).
    std::unordered_map<key, bf::truth_table, key_hash> memo_;
    /// Canonicalization results per concrete master function (support 0).
    std::unordered_map<key, canonical_form, key_hash> canon_memo_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace plee::ee
