#include "ee/ee_transform.hpp"

#include <atomic>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>

#include "ee/trigger_cache.hpp"
#include "fault/injector.hpp"
#include "obs/registry.hpp"
#include "rt/errors.hpp"

namespace plee::ee {

namespace {

struct search_job {
    pl::gate_id master = pl::k_invalid_gate;
    std::vector<int> pin_arrivals;
};

/// Runs the trigger search for jobs [begin, end) pulled in chunks from a
/// shared counter, writing each best candidate to its own slot — the output
/// is position-addressed, so any work interleaving yields the same result.
void search_worker(const pl::pl_netlist& pl, const std::vector<search_job>& jobs,
                   const ee_options& options, std::atomic<std::size_t>& next,
                   trigger_memo& cache,
                   std::vector<std::optional<trigger_candidate>>& best) {
    const search_options& search = options.search;
    // Worker threads have no fault scope of their own; adopt the job's so
    // injected ee.search/cache.lookup decisions are per-job deterministic.
    fault::injector::scope scope(fault::injector::hash(options.context));
    constexpr std::size_t k_chunk = 16;
    for (;;) {
        const std::size_t begin = next.fetch_add(k_chunk, std::memory_order_relaxed);
        if (begin >= jobs.size()) return;
        if (options.cancel != nullptr && options.cancel->expired()) {
            throw job_timeout("ee.search", options.context, begin);
        }
        fault::injector::instance().check("ee.search", begin);
        if (options.recorder != nullptr) {
            options.recorder->record("ee.chunk", begin, jobs.size());
        }
        const std::size_t end = std::min(begin + k_chunk, jobs.size());
        for (std::size_t i = begin; i < end; ++i) {
            best[i] = find_best_trigger(pl.gate(jobs[i].master).function,
                                        jobs[i].pin_arrivals, search, &cache)
                          .best;
        }
    }
}

}  // namespace

ee_stats apply_early_evaluation(pl::pl_netlist& pl, const ee_options& options) {
    ee_stats stats;
    const std::vector<int> arrival = pl.arrival_depth();

    // Snapshot the candidate masters first: attaching triggers appends gates
    // and edges, which must not perturb the iteration or the arrival model.
    std::vector<search_job> jobs;
    for (pl::gate_id g = 0; g < pl.num_gates(); ++g) {
        const pl::pl_gate& gate = pl.gate(g);
        if (gate.kind != pl::gate_kind::compute || gate.data_in.size() < 2) {
            continue;
        }
        search_job job;
        job.master = g;
        job.pin_arrivals.reserve(gate.data_in.size());
        for (pl::edge_id e : gate.data_in) {
            job.pin_arrivals.push_back(arrival[pl.edge(e).from]);
        }
        jobs.push_back(std::move(job));
    }
    stats.masters_considered = jobs.size();

    // Phase 1 — search, read-only over the netlist and safe to fan out.
    // Each worker memoizes into its own cache (netlists reuse functions
    // heavily); the caches are merged afterwards for the stats and because
    // the search itself is deterministic with or without memo hits.
    std::vector<std::optional<trigger_candidate>> best(jobs.size());
    unsigned threads = options.num_threads != 0 ? options.num_threads
                                                : std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(jobs.size(), 1)));

    trigger_cache cache;
    trigger_memo* shared = options.shared_cache;
    if (threads <= 1) {
        std::atomic<std::size_t> next{0};
        search_worker(pl, jobs, options, next,
                      shared != nullptr ? *shared : cache, best);
    } else {
        std::vector<trigger_cache> caches(threads);
        std::vector<std::exception_ptr> errors(threads);
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(threads - 1);
        // A throw inside any leg (including the main-thread one) must still
        // join the pool and then propagate to the caller, exactly as the
        // sequential pass would have propagated it.  With a shared memo all
        // legs use it directly (it is thread-safe by contract); otherwise
        // each leg memoizes privately and the caches merge after the join.
        auto leg_cache = [&](unsigned t) -> trigger_memo& {
            return shared != nullptr ? *shared
                                     : static_cast<trigger_memo&>(caches[t]);
        };
        for (unsigned t = 1; t < threads; ++t) {
            pool.emplace_back([&, t] {
                try {
                    search_worker(pl, jobs, options, next, leg_cache(t), best);
                } catch (...) {
                    errors[t] = std::current_exception();
                }
            });
        }
        try {
            search_worker(pl, jobs, options, next, leg_cache(0), best);
        } catch (...) {
            errors[0] = std::current_exception();
        }
        for (std::thread& t : pool) t.join();
        for (const std::exception_ptr& e : errors) {
            if (e) std::rethrow_exception(e);
        }
        if (shared == nullptr) {
            for (const trigger_cache& c : caches) cache.merge_from(c);
        }
    }
    // With a shared memo the counters belong to its owner (fleet-level); the
    // pass-local stats deterministically read zero at any thread count.
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats.cache_entries = cache.size();

    // Phase 2 — mutate, serial and in gate order: identical output to the
    // original sequential pass regardless of the thread count above.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!best[i]) continue;
        const pl::gate_id trig =
            pl.attach_trigger(jobs[i].master, best[i]->function, best[i]->support);
        stats.applied.push_back({jobs[i].master, trig, *best[i]});
        ++stats.triggers_added;
    }

    if (options.verify) {
        const pl::mg_report report = pl.verify();
        if (!report.ok()) {
            throw std::logic_error("apply_early_evaluation: marked graph invalid: " +
                                   report.violation);
        }
    }

    // Process-wide pass accounting; one flush per transform, not per gate.
    static obs::counter& masters =
        obs::registry::global().get_counter("ee.masters_considered");
    static obs::counter& triggers =
        obs::registry::global().get_counter("ee.triggers_added");
    masters.add(stats.masters_considered);
    triggers.add(stats.triggers_added);
    return stats;
}

}  // namespace plee::ee
