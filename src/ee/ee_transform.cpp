#include "ee/ee_transform.hpp"

#include <stdexcept>

#include "ee/trigger_cache.hpp"

namespace plee::ee {

ee_stats apply_early_evaluation(pl::pl_netlist& pl, const ee_options& options) {
    ee_stats stats;
    trigger_cache cache;  // netlists reuse functions heavily; pure speedup
    const std::vector<int> arrival = pl.arrival_depth();

    // Snapshot the candidate masters first: attaching triggers appends gates
    // and edges, which must not perturb the iteration or the arrival model.
    std::vector<pl::gate_id> masters;
    for (pl::gate_id g = 0; g < pl.num_gates(); ++g) {
        if (pl.gate(g).kind == pl::gate_kind::compute &&
            pl.gate(g).data_in.size() >= 2) {
            masters.push_back(g);
        }
    }

    for (pl::gate_id g : masters) {
        ++stats.masters_considered;
        const pl::pl_gate& gate = pl.gate(g);

        std::vector<int> pin_arrivals;
        pin_arrivals.reserve(gate.data_in.size());
        for (pl::edge_id e : gate.data_in) {
            pin_arrivals.push_back(arrival[pl.edge(e).from]);
        }

        const search_result found =
            find_best_trigger(gate.function, pin_arrivals, options.search, &cache);
        if (!found.best) continue;

        const pl::gate_id trig =
            pl.attach_trigger(g, found.best->function, found.best->support);
        stats.applied.push_back({g, trig, *found.best});
        ++stats.triggers_added;
    }

    if (options.verify) {
        const pl::mg_report report = pl.verify();
        if (!report.ok()) {
            throw std::logic_error("apply_early_evaluation: marked graph invalid: " +
                                   report.violation);
        }
    }
    return stats;
}

}  // namespace plee::ee
