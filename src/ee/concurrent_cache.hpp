// concurrent_cache.hpp — a thread-safe trigger memo shared across circuits.
//
// The trigger memo is keyed on canonical function classes, not on netlist
// context, so one cache can serve every circuit in a fleet: the first
// circuit that meets a carry majority pays for its canonicalization and
// triggers, and every later circuit — on any worker thread — gets hits.
//
// Two independently sharded levels keep the sharing exact:
//   1. function level — concrete master bits -> canonical_form, sharded by
//      the function key.  Each distinct function is canonicalized once
//      fleet-wide (the expensive step: 768 word permutes for NPN).
//   2. class level — (canonical bits, canonical support) -> canonical
//      trigger, sharded by the class key.  Every member function of an NPN
//      class, from any circuit on any thread, resolves to the same shard
//      and therefore the same single miss.
// A single-level design sharded by concrete bits would scatter one class
// over many shards and silently repay its misses per shard — the two-level
// split is what makes fleet-wide hit rates match the single-cache ones.
//
// Lookups are pure memoization, so sharing the cache never changes any EE
// result — only who pays each miss.  The splitmix64 key mixer spreads both
// levels evenly, keeping per-shard lock contention low.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "ee/trigger_cache.hpp"

namespace plee::ee {

class concurrent_trigger_cache : public trigger_memo {
public:
    explicit concurrent_trigger_cache(canon_mode mode = canon_mode::npn)
        : mode_(mode) {}

    /// Thread-safe cached equivalent of exact_trigger_function.
    bf::truth_table exact(const bf::truth_table& master,
                          std::uint32_t support) override;

    canon_mode mode() const { return mode_; }

    /// Trigger-level (class-level) counters.  hits + misses == total
    /// lookups; misses == size() (each miss inserts exactly one canonical
    /// trigger).
    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
    /// Cached canonical (function-class, support) triggers across shards.
    std::size_t size() const;
    /// Distinct master functions canonicalized, fleet-wide.
    std::size_t canonicalized_masters() const;

    /// Copies both levels into the snapshot exchange form (cache_image.hpp),
    /// taking each shard lock in turn.  Safe concurrently with lookups; the
    /// image is a consistent-per-shard point-in-time union, which is all a
    /// memo of pure functions needs.
    cache_image export_image() const;

    /// Unions a (validated) snapshot image into the cache: insert-if-absent
    /// per shard, existing entries win, counters untouched.  Thread-safe,
    /// though the runner calls it before fan-out.  Throws std::logic_error
    /// on canonicalization-mode mismatch.
    void merge_from_snapshot(const cache_image& image);

    static constexpr std::size_t k_num_shards = 64;

private:
    struct fn_key {
        bf::tt_words bits;
        int num_vars;
        bool operator==(const fn_key&) const = default;
    };
    struct fn_hash {
        std::size_t operator()(const fn_key& k) const {
            return static_cast<std::size_t>(trigger_cache::mix_key(k.bits, 0, k.num_vars));
        }
    };
    struct trig_key {
        bf::tt_words bits;
        std::uint32_t support;
        int num_vars;
        bool operator==(const trig_key&) const = default;
    };
    struct trig_hash {
        std::size_t operator()(const trig_key& k) const {
            return static_cast<std::size_t>(
                trigger_cache::mix_key(k.bits, k.support, k.num_vars));
        }
    };

    struct alignas(64) fn_shard {
        mutable std::mutex mu;
        std::unordered_map<fn_key, trigger_cache::canonical_form, fn_hash> map;
    };
    struct alignas(64) trig_shard {
        mutable std::mutex mu;
        std::unordered_map<trig_key, bf::truth_table, trig_hash> map;
    };

    canon_mode mode_;
    std::array<fn_shard, k_num_shards> fn_shards_;
    std::array<trig_shard, k_num_shards> trig_shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

}  // namespace plee::ee
