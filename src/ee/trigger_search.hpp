// trigger_search.hpp — generalized Early Evaluation trigger computation.
//
// This is the algorithmic core of the paper.  For a master PL gate computing
// f over up to four inputs, enumerate every proper support subset S of at
// most three inputs ("all 14 possible support sets" for a 4-input master) and
// derive the trigger function trig_S: trig_S(x_S) = 1 exactly when the
// assignment x_S already determines f's value — the master may then emit its
// output before the remaining inputs arrive, because their values are don't
// cares ("Each time the trigger function evaluates to '1', the master gate
// can go ahead and evaluate even if the input signal c has not arrived").
//
// Two derivations are provided:
//   * cube_list  — the paper's construction (Table 2): cubes of the f_ON and
//     f_OFF covers whose literals all lie inside S.  Its coverage depends on
//     the quality of the SOP cover.
//   * exact      — cofactor test per subset assignment; yields the maximal
//     trigger for S and is the default used in the experiments.
//
// Candidates are scored with Equation 1,
//     Cost = %Coverage * Mmax / Tmax,
// where Coverage is the fraction of master minterms (ON and OFF) the trigger
// covers, and Mmax/Tmax are the worst-case arrival depths (in PL gates from
// the primary inputs) of the master/trigger input signals.  Arrival depths
// start at 0 for signals straight from the environment or a register, so the
// implementation computes the ratio as (Mmax+1)/(Tmax+1), which is defined
// everywhere and preserves the paper's ordering ("weighted by the relative
// arrival times").

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bool/cube_list.hpp"
#include "bool/truth_table.hpp"

namespace plee::ee {

enum class trigger_method : std::uint8_t {
    exact,      ///< cofactor-constancy per subset assignment (maximal coverage)
    cube_list,  ///< the paper's Table 2 procedure over f_ON / f_OFF covers
};

struct trigger_candidate {
    std::uint32_t support = 0;        ///< pin mask over the master's inputs
    bf::truth_table function{0};      ///< over the support pins (compressed arity)
    int covered_minterms = 0;         ///< master minterms (ON and OFF) determined
    double coverage_percent = 0.0;    ///< 100 * covered / 2^n
    int master_max_arrival = 0;       ///< Mmax
    int trigger_max_arrival = 0;      ///< Tmax
    double cost = 0.0;                ///< Equation 1 (with the +1 smoothing)
};

/// The exact trigger for support S: one output bit per assignment of the S
/// pins, set when the master cofactor under that assignment is constant.
/// The result's arity equals the number of pins in `support`.
///
/// Computed word-parallel: the conjunctive fold of the master (resp. its
/// complement) over the free variables marks the constant-1 (resp.
/// constant-0) cofactors in one shift/AND cascade, and shrinking the union
/// onto S yields the trigger — no per-minterm eval loop.
bf::truth_table exact_trigger_function(const bf::truth_table& master,
                                       std::uint32_t support);

/// The paper's cube-list trigger for support S: the union of ON- and
/// OFF-cover cubes confined to S, projected onto the S pins.
bf::truth_table cube_list_trigger_function(const bf::truth_table& master,
                                           const bf::on_off_cover& cover,
                                           std::uint32_t support);

/// Master minterms determined by `trigger` (over `support`): every minterm
/// whose S-projection satisfies the trigger.  This is the paper's Coverage
/// numerator ("the percentage of minterms that are in common with the
/// trigger and master function (both 0 and 1-valued)").
int covered_minterms(const bf::truth_table& master, std::uint32_t support,
                     const bf::truth_table& trigger);

/// Equation 1 with the depth-zero smoothing documented above.
double equation1_cost(double coverage_percent, int master_max_arrival,
                      int trigger_max_arrival);

/// Retained scalar reference implementations of the three kernels above:
/// the original per-minterm eval() loops, kept verbatim as the ground truth
/// the word-parallel versions are exhaustively cross-checked against (all
/// 2^16 LUT4 masters x all support sets) and as the baseline the speedup in
/// BENCH_trigger.json is measured from.  Semantically identical.
namespace scalar {
bf::truth_table exact_trigger_function(const bf::truth_table& master,
                                       std::uint32_t support);
bf::truth_table cube_list_trigger_function(const bf::truth_table& master,
                                           const bf::on_off_cover& cover,
                                           std::uint32_t support);
int covered_minterms(const bf::truth_table& master, std::uint32_t support,
                     const bf::truth_table& trigger);
}  // namespace scalar

struct search_options {
    trigger_method method = trigger_method::exact;
    int max_support_size = 3;       ///< the paper's "3 or fewer variables"
    double cost_threshold = 0.0;    ///< implement only candidates with cost > threshold
    /// Require Tmax < Mmax: a trigger whose slowest input is as slow as the
    /// master's cannot produce an output any earlier.
    bool require_arrival_gain = true;
    /// Weight coverage by the Mmax/Tmax arrival ratio (Equation 1).  Turning
    /// this off selects by raw coverage only — the ablation the paper argues
    /// against ("a large coverage ... may depend on slowly arriving signals").
    bool weight_by_arrival = true;
    /// Route trigger derivation and coverage counting through the scalar
    /// reference kernels instead of the word-parallel ones.  For the
    /// cross-check tests and the baseline leg of bench_micro; results are
    /// identical either way.
    bool use_scalar_kernels = false;
};

struct search_result {
    std::optional<trigger_candidate> best;
    /// Every evaluated candidate (14 for a 4-input master), for diagnostics,
    /// the Table 1/2 reproduction and the ablation benches.
    std::vector<trigger_candidate> all;
};

class trigger_memo;

/// Evaluates every support subset of the master's inputs and returns the
/// best implementable candidate (if any) under `options`.  `pin_arrivals`
/// holds the arrival depth of each master input signal, pin-ordered.
/// A non-null `cache` memoizes exact trigger functions across calls (pure
/// speedup; results are identical).  Any trigger_memo works: a private
/// trigger_cache or a fleet-shared concurrent_trigger_cache.
search_result find_best_trigger(const bf::truth_table& master,
                                const std::vector<int>& pin_arrivals,
                                const search_options& options = {},
                                trigger_memo* cache = nullptr);

}  // namespace plee::ee
