#include "ee/trigger_search.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "bool/support.hpp"
#include "ee/trigger_cache.hpp"

namespace plee::ee {

namespace {

void check_support(const bf::truth_table& master, std::uint32_t support,
                   const char* who) {
    const int k = std::popcount(support);
    if (k == 0 || k >= master.num_vars() ||
        (support >> master.num_vars()) != 0) {
        throw std::invalid_argument(std::string(who) +
                                    ": support must be a non-empty proper "
                                    "subset of the master's inputs");
    }
}

/// Expands a compressed assignment of the support pins into a full-width
/// minterm (non-support pins 0).
std::uint32_t spread(std::uint32_t packed, const std::vector<int>& members) {
    std::uint32_t full = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if ((packed >> i) & 1u) full |= 1u << members[i];
    }
    return full;
}

}  // namespace

bf::truth_table exact_trigger_function(const bf::truth_table& master,
                                       std::uint32_t support) {
    check_support(master, support, "exact_trigger_function");
    // A support assignment is determined exactly when the cofactor over the
    // free variables is constant 1 (the conjunctive fold of f survives) or
    // constant 0 (the conjunctive fold of ~f survives).
    const int n = master.num_vars();
    if (n <= bf::k_word_vars) {
        // Single-word fast path: both polarity folds fused into one pass and
        // the shrink compaction, all on two register words — this is the
        // PR 1 hot kernel, kept allocation- and call-free so the multiword
        // generalization costs the LUT4 sweep nothing.
        const std::uint64_t full = n == bf::k_word_vars
                                       ? ~std::uint64_t{0}
                                       : ((std::uint64_t{1} << (1u << n)) - 1);
        std::uint64_t pos = master.bits();
        std::uint64_t neg = ~pos & full;
        for (int v = 0; v < n; ++v) {
            if ((support >> v) & 1u) continue;
            const std::uint64_t m = bf::k_var_mask[v];
            const int s = 1 << v;
            std::uint64_t lo = pos & ~m;
            lo |= lo << s;
            std::uint64_t hi = pos & m;
            hi |= hi >> s;
            pos = lo & hi;
            lo = neg & ~m;
            lo |= lo << s;
            hi = neg & m;
            hi |= hi >> s;
            neg = lo & hi;
        }
        std::uint64_t det = pos | neg;
        int target = 0;
        for (int v = 0; v < n; ++v) {
            if (!((support >> v) & 1u)) continue;
            for (int j = v - 1; j >= target; --j) det = bf::swap_adjacent_word(det, j);
            ++target;
        }
        const std::uint64_t full_k =
            target == bf::k_word_vars
                ? ~std::uint64_t{0}
                : ((std::uint64_t{1} << (1u << target)) - 1);
        return bf::truth_table(target, det & full_k);
    }
    const bf::truth_table determined = master.fold_free_vars(support, true) |
                                       (~master).fold_free_vars(support, true);
    return determined.shrink_to(support);
}

bf::truth_table cube_list_trigger_function(const bf::truth_table& master,
                                           const bf::on_off_cover& cover,
                                           std::uint32_t support) {
    check_support(master, support, "cube_list_trigger_function");
    const std::vector<int> members = bf::support_members(support);
    const int k = static_cast<int>(members.size());

    // "Since 2 cubes in Table 2 depend only upon master inputs a and b ...
    // a coverage of 50% is computed for the trigger function": each cube of
    // either cover that is confined to the support becomes a product of
    // projection masks over the compressed pins — one AND per bound literal.
    if (k <= bf::k_word_vars) {
        // Single-word fast path: one register AND per literal, as pre-
        // multiword — the dominant (<= 6 pin) case pays no truth_table
        // temporaries.
        const std::uint64_t full_k =
            k == bf::k_word_vars ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << (1u << k)) - 1);
        std::uint64_t bits = 0;
        auto absorb = [&](const bf::cube_list& cubes) {
            const bf::cube_list confined = cubes.restricted_to_support(support);
            for (const bf::cube& c : confined.cubes()) {
                std::uint64_t t = full_k;
                for (int i = 0; i < k; ++i) {
                    const int v = members[static_cast<std::size_t>(i)];
                    if (!((c.care_mask() >> v) & 1u)) continue;
                    t &= ((c.value_mask() >> v) & 1u) ? bf::k_var_mask[i]
                                                      : ~bf::k_var_mask[i];
                }
                bits |= t;
            }
        };
        absorb(cover.on);
        absorb(cover.off);
        return bf::truth_table(k, bits & full_k);
    }
    // Multiword supports (> 6 compressed pins): the same product, built
    // word-parallel over truth-table projections.
    bf::truth_table trig(k);
    auto absorb = [&](const bf::cube_list& cubes) {
        const bf::cube_list confined = cubes.restricted_to_support(support);
        for (const bf::cube& c : confined.cubes()) {
            bf::truth_table t = bf::truth_table::constant(k, true);
            for (int i = 0; i < k; ++i) {
                const int v = members[static_cast<std::size_t>(i)];
                if (!((c.care_mask() >> v) & 1u)) continue;
                const bf::truth_table x = bf::truth_table::variable(k, i);
                t = t & (((c.value_mask() >> v) & 1u) ? x : ~x);
            }
            trig = trig | t;
        }
    };
    absorb(cover.on);
    absorb(cover.off);
    return trig;
}

int covered_minterms(const bf::truth_table& master, std::uint32_t support,
                     const bf::truth_table& trigger) {
    if (trigger.num_vars() != std::popcount(support)) {
        throw std::invalid_argument("covered_minterms: trigger arity != |support|");
    }
    if ((support >> master.num_vars()) != 0) {
        throw std::invalid_argument("covered_minterms: support outside the "
                                    "master's inputs");
    }
    // Every firing support assignment covers exactly one completion per
    // assignment of the free variables: popcount times 2^(free vars).
    return trigger.count_ones() << (master.num_vars() - trigger.num_vars());
}

namespace scalar {

bf::truth_table exact_trigger_function(const bf::truth_table& master,
                                       std::uint32_t support) {
    check_support(master, support, "scalar::exact_trigger_function");
    const std::vector<int> members = bf::support_members(support);
    const int k = static_cast<int>(members.size());
    // Free (non-support) variables of the master.
    std::vector<int> free_vars;
    for (int v = 0; v < master.num_vars(); ++v) {
        if (!(support & (1u << v))) free_vars.push_back(v);
    }

    bf::truth_table trig(k);
    for (std::uint32_t a = 0; a < (1u << k); ++a) {
        const std::uint32_t base = spread(a, members);
        // Constant cofactor test: enumerate all completions of the free vars.
        const bool first = master.eval(base);
        bool constant = true;
        for (std::uint32_t b = 1; b < (1u << free_vars.size()) && constant; ++b) {
            std::uint32_t m = base;
            for (std::size_t i = 0; i < free_vars.size(); ++i) {
                if ((b >> i) & 1u) m |= 1u << free_vars[i];
            }
            constant = master.eval(m) == first;
        }
        if (constant) trig.set(a, true);
    }
    return trig;
}

bf::truth_table cube_list_trigger_function(const bf::truth_table& master,
                                           const bf::on_off_cover& cover,
                                           std::uint32_t support) {
    check_support(master, support, "scalar::cube_list_trigger_function");
    const std::vector<int> members = bf::support_members(support);
    const int k = static_cast<int>(members.size());

    bf::truth_table trig(k);
    auto absorb = [&](const bf::cube_list& cubes) {
        const bf::cube_list confined = cubes.restricted_to_support(support);
        for (const bf::cube& c : confined.cubes()) {
            for (std::uint32_t a = 0; a < (1u << k); ++a) {
                if (c.contains(spread(a, members))) trig.set(a, true);
            }
        }
    };
    absorb(cover.on);
    absorb(cover.off);
    return trig;
}

int covered_minterms(const bf::truth_table& master, std::uint32_t support,
                     const bf::truth_table& trigger) {
    const std::vector<int> members = bf::support_members(support);
    if (trigger.num_vars() != static_cast<int>(members.size())) {
        throw std::invalid_argument("covered_minterms: trigger arity != |support|");
    }
    int covered = 0;
    for (std::uint32_t m = 0; m < master.num_minterms(); ++m) {
        std::uint32_t packed = 0;
        for (std::size_t i = 0; i < members.size(); ++i) {
            if ((m >> members[i]) & 1u) packed |= 1u << i;
        }
        if (trigger.eval(packed)) ++covered;
    }
    return covered;
}

}  // namespace scalar

double equation1_cost(double coverage_percent, int master_max_arrival,
                      int trigger_max_arrival) {
    return coverage_percent * (static_cast<double>(master_max_arrival) + 1.0) /
           (static_cast<double>(trigger_max_arrival) + 1.0);
}

search_result find_best_trigger(const bf::truth_table& master,
                                const std::vector<int>& pin_arrivals,
                                const search_options& options,
                                trigger_memo* cache) {
    if (static_cast<int>(pin_arrivals.size()) != master.num_vars()) {
        throw std::invalid_argument("find_best_trigger: arrival count != arity");
    }
    search_result result;
    if (master.num_vars() < 2 || master.is_constant()) return result;

    const std::uint32_t all_pins = (1u << master.num_vars()) - 1;
    int master_max_arrival = 0;
    for (int a : pin_arrivals) master_max_arrival = std::max(master_max_arrival, a);

    // The cube covers are shared across all 14 support sets.
    std::optional<bf::on_off_cover> cover;
    if (options.method == trigger_method::cube_list) {
        cover = bf::make_on_off_cover(master);
    }

    const std::vector<std::uint32_t>& supports =
        bf::cached_support_subsets(all_pins, options.max_support_size);
    result.all.reserve(supports.size());
    for (std::uint32_t support : supports) {
        trigger_candidate cand;
        cand.support = support;
        if (options.method == trigger_method::exact) {
            if (options.use_scalar_kernels) {
                cand.function = scalar::exact_trigger_function(master, support);
            } else {
                cand.function = cache != nullptr
                                    ? cache->exact(master, support)
                                    : exact_trigger_function(master, support);
            }
        } else {
            cand.function = options.use_scalar_kernels
                                ? scalar::cube_list_trigger_function(master, *cover,
                                                                     support)
                                : cube_list_trigger_function(master, *cover, support);
        }
        if (cand.function.is_constant_zero()) continue;

        cand.covered_minterms =
            options.use_scalar_kernels
                ? scalar::covered_minterms(master, support, cand.function)
                : covered_minterms(master, support, cand.function);
        cand.coverage_percent =
            100.0 * cand.covered_minterms / static_cast<double>(master.num_minterms());
        // Full coverage means the master never needed the other inputs at
        // all — a synthesis artifact, not an Early Evaluation opportunity.
        if (cand.covered_minterms == static_cast<int>(master.num_minterms())) continue;

        cand.master_max_arrival = master_max_arrival;
        cand.trigger_max_arrival = 0;
        for (std::uint32_t rest = support; rest != 0; rest &= rest - 1) {
            const int v = std::countr_zero(rest);
            cand.trigger_max_arrival =
                std::max(cand.trigger_max_arrival, pin_arrivals[static_cast<std::size_t>(v)]);
        }
        cand.cost = options.weight_by_arrival
                        ? equation1_cost(cand.coverage_percent,
                                         cand.master_max_arrival,
                                         cand.trigger_max_arrival)
                        : cand.coverage_percent;
        result.all.push_back(cand);

        if (options.require_arrival_gain &&
            cand.trigger_max_arrival >= cand.master_max_arrival) {
            continue;  // recorded for diagnostics, never implemented
        }
        if (cand.cost <= options.cost_threshold) continue;

        const bool better =
            !result.best || cand.cost > result.best->cost ||
            (cand.cost == result.best->cost &&
             (cand.covered_minterms > result.best->covered_minterms ||
              (cand.covered_minterms == result.best->covered_minterms &&
               std::popcount(cand.support) < std::popcount(result.best->support))));
        if (better) result.best = cand;
    }
    return result;
}

}  // namespace plee::ee
