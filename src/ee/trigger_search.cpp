#include "ee/trigger_search.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "bool/support.hpp"
#include "ee/trigger_cache.hpp"

namespace plee::ee {

namespace {

/// Expands a compressed assignment of the support pins into a full-width
/// minterm (non-support pins 0).
std::uint32_t spread(std::uint32_t packed, const std::vector<int>& members) {
    std::uint32_t full = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if ((packed >> i) & 1u) full |= 1u << members[i];
    }
    return full;
}

}  // namespace

bf::truth_table exact_trigger_function(const bf::truth_table& master,
                                       std::uint32_t support) {
    const std::vector<int> members = bf::support_members(support);
    const int k = static_cast<int>(members.size());
    if (k == 0 || k >= master.num_vars()) {
        throw std::invalid_argument("exact_trigger_function: support must be a "
                                    "non-empty proper subset");
    }
    // Free (non-support) variables of the master.
    std::vector<int> free_vars;
    for (int v = 0; v < master.num_vars(); ++v) {
        if (!(support & (1u << v))) free_vars.push_back(v);
    }

    bf::truth_table trig(k);
    for (std::uint32_t a = 0; a < (1u << k); ++a) {
        const std::uint32_t base = spread(a, members);
        // Constant cofactor test: enumerate all completions of the free vars.
        const bool first = master.eval(base);
        bool constant = true;
        for (std::uint32_t b = 1; b < (1u << free_vars.size()) && constant; ++b) {
            std::uint32_t m = base;
            for (std::size_t i = 0; i < free_vars.size(); ++i) {
                if ((b >> i) & 1u) m |= 1u << free_vars[i];
            }
            constant = master.eval(m) == first;
        }
        if (constant) trig.set(a, true);
    }
    return trig;
}

bf::truth_table cube_list_trigger_function(const bf::truth_table& master,
                                           const bf::on_off_cover& cover,
                                           std::uint32_t support) {
    const std::vector<int> members = bf::support_members(support);
    const int k = static_cast<int>(members.size());
    if (k == 0 || k >= master.num_vars()) {
        throw std::invalid_argument("cube_list_trigger_function: support must be a "
                                    "non-empty proper subset");
    }

    // "Since 2 cubes in Table 2 depend only upon master inputs a and b ...
    // a coverage of 50% is computed for the trigger function": collect the
    // cubes of both covers confined to the support and project them onto the
    // support pins.
    bf::truth_table trig(k);
    auto absorb = [&](const bf::cube_list& cubes) {
        const bf::cube_list confined = cubes.restricted_to_support(support);
        for (const bf::cube& c : confined.cubes()) {
            for (std::uint32_t a = 0; a < (1u << k); ++a) {
                if (c.contains(spread(a, members))) trig.set(a, true);
            }
        }
    };
    absorb(cover.on);
    absorb(cover.off);
    return trig;
}

int covered_minterms(const bf::truth_table& master, std::uint32_t support,
                     const bf::truth_table& trigger) {
    const std::vector<int> members = bf::support_members(support);
    if (trigger.num_vars() != static_cast<int>(members.size())) {
        throw std::invalid_argument("covered_minterms: trigger arity != |support|");
    }
    int covered = 0;
    for (std::uint32_t m = 0; m < master.num_minterms(); ++m) {
        std::uint32_t packed = 0;
        for (std::size_t i = 0; i < members.size(); ++i) {
            if ((m >> members[i]) & 1u) packed |= 1u << i;
        }
        if (trigger.eval(packed)) ++covered;
    }
    return covered;
}

double equation1_cost(double coverage_percent, int master_max_arrival,
                      int trigger_max_arrival) {
    return coverage_percent * (static_cast<double>(master_max_arrival) + 1.0) /
           (static_cast<double>(trigger_max_arrival) + 1.0);
}

search_result find_best_trigger(const bf::truth_table& master,
                                const std::vector<int>& pin_arrivals,
                                const search_options& options,
                                trigger_cache* cache) {
    if (static_cast<int>(pin_arrivals.size()) != master.num_vars()) {
        throw std::invalid_argument("find_best_trigger: arrival count != arity");
    }
    search_result result;
    if (master.num_vars() < 2 || master.is_constant()) return result;

    const std::uint32_t all_pins = (1u << master.num_vars()) - 1;
    int master_max_arrival = 0;
    for (int a : pin_arrivals) master_max_arrival = std::max(master_max_arrival, a);

    // The cube covers are shared across all 14 support sets.
    std::optional<bf::on_off_cover> cover;
    if (options.method == trigger_method::cube_list) {
        cover = bf::make_on_off_cover(master);
    }

    for (std::uint32_t support :
         bf::enumerate_support_subsets(all_pins, options.max_support_size)) {
        trigger_candidate cand;
        cand.support = support;
        if (options.method == trigger_method::exact) {
            cand.function = cache != nullptr ? cache->exact(master, support)
                                             : exact_trigger_function(master, support);
        } else {
            cand.function = cube_list_trigger_function(master, *cover, support);
        }
        if (cand.function.is_constant_zero()) continue;

        cand.covered_minterms = covered_minterms(master, support, cand.function);
        cand.coverage_percent =
            100.0 * cand.covered_minterms / static_cast<double>(master.num_minterms());
        // Full coverage means the master never needed the other inputs at
        // all — a synthesis artifact, not an Early Evaluation opportunity.
        if (cand.covered_minterms == static_cast<int>(master.num_minterms())) continue;

        cand.master_max_arrival = master_max_arrival;
        cand.trigger_max_arrival = 0;
        for (int v : bf::support_members(support)) {
            cand.trigger_max_arrival =
                std::max(cand.trigger_max_arrival, pin_arrivals[static_cast<std::size_t>(v)]);
        }
        cand.cost = options.weight_by_arrival
                        ? equation1_cost(cand.coverage_percent,
                                         cand.master_max_arrival,
                                         cand.trigger_max_arrival)
                        : cand.coverage_percent;
        result.all.push_back(cand);

        if (options.require_arrival_gain &&
            cand.trigger_max_arrival >= cand.master_max_arrival) {
            continue;  // recorded for diagnostics, never implemented
        }
        if (cand.cost <= options.cost_threshold) continue;

        const bool better =
            !result.best || cand.cost > result.best->cost ||
            (cand.cost == result.best->cost &&
             (cand.covered_minterms > result.best->covered_minterms ||
              (cand.covered_minterms == result.best->covered_minterms &&
               std::popcount(cand.support) < std::popcount(result.best->support))));
        if (better) result.best = cand;
    }
    return result;
}

}  // namespace plee::ee
