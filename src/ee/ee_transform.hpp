// ee_transform.hpp — the Early Evaluation synthesis pass over a PL netlist.
//
// "EE circuitry was added to all PL gates where a speedup was possible"
// (Section 4): for every compute gate, run the trigger search weighted by the
// gate's input arrival depths; when an implementable candidate exists, attach
// a trigger gate (the paper's master/trigger EE pair, Figure 2).  The pass
// re-verifies the marked graph afterwards — the added edges form single-token
// cycles by construction, so liveness and safety are preserved.
//
// Setting `search.cost_threshold` > 0 reproduces the paper's area/delay
// trade-off: "Thresholding the cost function allows for a tradeoff in area
// versus delay of a PL circuit."

#pragma once

#include <string>
#include <vector>

#include "ee/trigger_search.hpp"
#include "obs/flight_recorder.hpp"
#include "plogic/pl_netlist.hpp"
#include "rt/cancel.hpp"

namespace plee::ee {

class trigger_memo;

struct ee_options {
    search_options search;
    /// Re-verify the marked graph after the transform (throws on failure).
    bool verify = true;
    /// Worker threads for the per-gate trigger search (the netlist-scale hot
    /// loop).  0 = one per hardware thread, 1 = fully sequential.  The
    /// search phase is pure, results are collected per gate index, and the
    /// netlist mutation phase stays serial in gate order — so the transform
    /// is bit-identical for every thread count.
    unsigned num_threads = 0;
    /// An external trigger memo (typically a fleet-shared
    /// ee::concurrent_trigger_cache) used by every worker thread instead of
    /// the pass's private per-thread caches.  Must be thread-safe when
    /// num_threads != 1.  Memoization is pure, so the transform result is
    /// unchanged; the pass-local cache counters in ee_stats read zero and
    /// the shared cache's owner carries the fleet-level counters instead.
    trigger_memo* shared_cache = nullptr;
    /// Cooperative cancellation: every worker polls the token at each
    /// work-queue chunk and raises plee::job_timeout when it has expired, so
    /// a pathological search stops within one chunk of extra work.  Not
    /// owned; null = never cancelled.
    cancel_token* cancel = nullptr;
    /// Job context for cancellation messages and fault-injection scoping
    /// ("b05#2" = job id, attempt 2).  Empty is fine for standalone passes.
    std::string context;
    /// Flight recorder: every worker records an "ee.chunk" event per
    /// work-queue chunk it claims (the same cadence as the cancel poll), so
    /// a post-mortem shows how deep the trigger search got.  The recorder is
    /// internally synchronized, so one per-job instance serves all worker
    /// threads.  Not owned; null = off.
    obs::flight_recorder* recorder = nullptr;
};

/// One applied master/trigger pair, for reporting.
struct applied_trigger {
    pl::gate_id master = pl::k_invalid_gate;
    pl::gate_id trigger = pl::k_invalid_gate;
    trigger_candidate candidate;
};

struct ee_stats {
    std::size_t masters_considered = 0;
    std::size_t triggers_added = 0;
    std::vector<applied_trigger> applied;
    /// Trigger-cache counters, merged across worker threads.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::size_t cache_entries = 0;
};

/// Applies Early Evaluation in place.  Arrival depths are computed once on
/// the incoming netlist (the paper's static arrival model).
ee_stats apply_early_evaluation(pl::pl_netlist& pl, const ee_options& options = {});

}  // namespace plee::ee
