#include "ee/trigger_cache.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bool/splitmix64.hpp"
#include "ee/trigger_search.hpp"

namespace plee::ee {

namespace {

using bf::splitmix64;

void record_perm(trigger_cache::canonical_form& form, const std::vector<int>& perm) {
    for (std::size_t v = 0; v < perm.size(); ++v) {
        form.perm[v] = static_cast<std::uint8_t>(perm[v]);
    }
}

}  // namespace

std::uint64_t trigger_cache::mix_key(std::uint64_t bits, std::uint32_t support,
                                     int num_vars) {
    return splitmix64(bits ^ splitmix64((static_cast<std::uint64_t>(support) << 8) |
                                        static_cast<std::uint64_t>(num_vars)));
}

trigger_cache::canonical_form trigger_cache::canonicalize(const bf::truth_table& f) {
    const int n = f.num_vars();
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);

    canonical_form best;
    best.bits = f.bits();
    record_perm(best, perm);

    // next_permutation enumerates in ascending lexicographic order, so with
    // a strict < the first permutation reaching the minimum wins the tie.
    while (std::next_permutation(perm.begin(), perm.end())) {
        const std::uint64_t bits = f.permute(perm).bits();
        if (bits < best.bits) {
            best.bits = bits;
            record_perm(best, perm);
        }
    }
    return best;
}

trigger_cache::canonical_form trigger_cache::npn_canonicalize(
    const bf::truth_table& f) {
    const int n = f.num_vars();
    std::vector<int> perm(static_cast<std::size_t>(n));

    canonical_form best;
    best.bits = f.bits();
    std::iota(perm.begin(), perm.end(), 0);
    record_perm(best, perm);

    // Output complement commutes with input permutation, so each (phase,
    // input-negation) pair needs one negate_inputs and at most one
    // complement before the n! permutation sweep.
    for (int out = 0; out < 2; ++out) {
        for (std::uint32_t neg = 0; neg < (1u << n); ++neg) {
            bf::truth_table h = f.negate_inputs(neg);
            if (out != 0) h = ~h;
            std::iota(perm.begin(), perm.end(), 0);
            do {
                const std::uint64_t bits = h.permute(perm).bits();
                if (bits < best.bits) {
                    best.bits = bits;
                    best.input_neg = neg;
                    best.output_neg = out != 0;
                    record_perm(best, perm);
                }
            } while (std::next_permutation(perm.begin(), perm.end()));
        }
    }
    return best;
}

std::uint32_t trigger_cache::canonical_support(const canonical_form& form,
                                               std::uint32_t support, int num_vars) {
    std::uint32_t canon_support = 0;
    for (int v = 0; v < num_vars; ++v) {
        if ((support >> v) & 1u) {
            canon_support |= 1u << form.perm[static_cast<std::size_t>(v)];
        }
    }
    return canon_support;
}

bf::truth_table trigger_cache::uncanonicalize_trigger(
    const canonical_form& form, const bf::truth_table& canon_trigger,
    std::uint32_t support, std::uint32_t canon_support, int num_vars) {
    // Un-permute: the caller's trigger variable i is the i-th (ascending)
    // member of `support`; under form.perm it lands at canonical position
    // form.perm[member], whose rank within canon_support is the canonical
    // trigger variable carrying its role.  permute() wants the map from old
    // (canonical) variables to new (caller) variables, i.e. the inverse.
    std::vector<int> canon_to_caller(
        static_cast<std::size_t>(canon_trigger.num_vars()));
    std::uint32_t compressed_neg = 0;
    int i = 0;
    for (int v = 0; v < num_vars; ++v) {
        if (!((support >> v) & 1u)) continue;
        const std::uint32_t canon_pos = form.perm[static_cast<std::size_t>(v)];
        const int rank = std::popcount(canon_support & ((1u << canon_pos) - 1));
        canon_to_caller[static_cast<std::size_t>(rank)] = i;
        if ((form.input_neg >> v) & 1u) compressed_neg |= 1u << i;
        ++i;
    }
    bf::truth_table trig = canon_trigger.permute(canon_to_caller);
    // The canonical trigger belongs to the input-negated function; the exact
    // trigger is invariant under output complement but reflects along every
    // negated input axis: trig_f(u) = trig_canon(u ^ neg_S).
    if (compressed_neg != 0) trig = trig.negate_inputs(compressed_neg);
    return trig;
}

bf::truth_table trigger_cache::exact(const bf::truth_table& master,
                                     std::uint32_t support) {
    const int n = master.num_vars();

    const key ck{master.bits(), 0, n};
    auto cit = canon_memo_.find(ck);
    if (cit == canon_memo_.end()) {
        cit = canon_memo_
                  .emplace(ck, mode_ == canon_mode::npn ? npn_canonicalize(master)
                                                        : canonicalize(master))
                  .first;
    }
    const canonical_form& cf = cit->second;

    const std::uint32_t canon_support = canonical_support(cf, support, n);

    const key tk{cf.bits, canon_support, n};
    auto it = memo_.find(tk);
    if (it != memo_.end()) {
        ++hits_;
    } else {
        ++misses_;
        it = memo_.emplace(tk, exact_trigger_function(bf::truth_table(n, cf.bits),
                                                      canon_support))
                 .first;
    }
    return uncanonicalize_trigger(cf, it->second, support, canon_support, n);
}

void trigger_cache::merge_from(const trigger_cache& other) {
    if (other.mode_ != mode_) {
        throw std::logic_error(
            "trigger_cache::merge_from: canonicalization mode mismatch");
    }
    for (const auto& [k, v] : other.memo_) memo_.emplace(k, v);
    for (const auto& [k, v] : other.canon_memo_) canon_memo_.emplace(k, v);
    hits_ += other.hits_;
    misses_ += other.misses_;
}

}  // namespace plee::ee
