#include "ee/trigger_cache.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bool/splitmix64.hpp"
#include "ee/cache_image.hpp"
#include "ee/trigger_search.hpp"

namespace plee::ee {

namespace {

using bf::splitmix64;

void record_perm(trigger_cache::canonical_form& form, const std::vector<int>& perm) {
    for (std::size_t v = 0; v < perm.size(); ++v) {
        form.perm[v] = static_cast<std::uint8_t>(perm[v]);
    }
}

/// 2^n-bit integer order on table storage: most-significant active word
/// decides.  For <= 6 variables (one active word) this is exactly the
/// single-word `<` the canonical forms used before multiword tables.
bool words_less(const bf::tt_words& a, const bf::tt_words& b, int active_words) {
    for (int w = active_words - 1; w >= 0; --w) {
        if (a[w] != b[w]) return a[w] < b[w];
    }
    return false;
}

/// Single-word variable permutation — the canonical sweeps below run it in
/// a register instead of round-tripping 4-word truth_table temporaries per
/// variant (24 variants for P, 768 for NPN, per first-seen LUT4 function).
std::uint64_t permute_word(std::uint64_t bits, int n, const std::vector<int>& perm) {
    int cur[bf::k_word_vars];
    for (int v = 0; v < n; ++v) cur[v] = v;
    for (int pass = 0; pass < n; ++pass) {
        for (int p = 0; p + 1 < n; ++p) {
            if (perm[static_cast<std::size_t>(cur[p])] >
                perm[static_cast<std::size_t>(cur[p + 1])]) {
                std::swap(cur[p], cur[p + 1]);
                bits = bf::swap_adjacent_word(bits, p);
            }
        }
    }
    return bits;
}

}  // namespace

std::uint64_t trigger_cache::mix_key(const bf::tt_words& bits,
                                     std::uint32_t support, int num_vars) {
    // Chain the finalizer through every active word, low word last, so a
    // single-word function hashes exactly as the pre-multiword
    // splitmix64(bits ^ splitmix64(support<<8 | n)) did.
    std::uint64_t h = splitmix64((static_cast<std::uint64_t>(support) << 8) |
                                 static_cast<std::uint64_t>(num_vars));
    for (int w = bf::words_for(num_vars) - 1; w >= 0; --w) {
        h = splitmix64(bits[w] ^ h);
    }
    return h;
}

std::uint64_t trigger_cache::mix_key(std::uint64_t bits, std::uint32_t support,
                                     int num_vars) {
    return mix_key(bf::tt_words{bits, 0, 0, 0}, support, num_vars);
}

trigger_cache::canonical_form trigger_cache::canonicalize(const bf::truth_table& f) {
    const int n = f.num_vars();
    const int nw = f.num_words();
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);

    canonical_form best;
    best.bits = f.words();
    record_perm(best, perm);

    // next_permutation enumerates in ascending lexicographic order, so with
    // a strict < the first permutation reaching the minimum wins the tie.
    if (n <= bf::k_word_vars) {
        // Single-word sweep, all in registers.
        while (std::next_permutation(perm.begin(), perm.end())) {
            const std::uint64_t bits = permute_word(f.bits(), n, perm);
            if (bits < best.bits[0]) {
                best.bits[0] = bits;
                record_perm(best, perm);
            }
        }
        return best;
    }
    while (std::next_permutation(perm.begin(), perm.end())) {
        const bf::tt_words bits = f.permute(perm).words();
        if (words_less(bits, best.bits, nw)) {
            best.bits = bits;
            record_perm(best, perm);
        }
    }
    return best;
}

trigger_cache::canonical_form trigger_cache::npn_canonicalize(
    const bf::truth_table& f) {
    const int n = f.num_vars();
    const int nw = f.num_words();
    std::vector<int> perm(static_cast<std::size_t>(n));

    canonical_form best;
    best.bits = f.words();
    std::iota(perm.begin(), perm.end(), 0);
    record_perm(best, perm);

    // Output complement commutes with input permutation, so each (phase,
    // input-negation) pair needs one negate_inputs and at most one
    // complement before the n! permutation sweep.
    for (int out = 0; out < 2; ++out) {
        for (std::uint32_t neg = 0; neg < (1u << n); ++neg) {
            bf::truth_table h = f.negate_inputs(neg);
            if (out != 0) h = ~h;
            if (n <= bf::k_word_vars) {
                // Single-word sweep, all in registers.
                const std::uint64_t base = h.bits();
                std::iota(perm.begin(), perm.end(), 0);
                do {
                    const std::uint64_t bits = permute_word(base, n, perm);
                    if (bits < best.bits[0]) {
                        best.bits[0] = bits;
                        best.input_neg = neg;
                        best.output_neg = out != 0;
                        record_perm(best, perm);
                    }
                } while (std::next_permutation(perm.begin(), perm.end()));
                continue;
            }
            std::iota(perm.begin(), perm.end(), 0);
            do {
                const bf::tt_words bits = h.permute(perm).words();
                if (words_less(bits, best.bits, nw)) {
                    best.bits = bits;
                    best.input_neg = neg;
                    best.output_neg = out != 0;
                    record_perm(best, perm);
                }
            } while (std::next_permutation(perm.begin(), perm.end()));
        }
    }
    return best;
}

trigger_cache::canonical_form trigger_cache::identity_form(
    const bf::truth_table& f) {
    canonical_form cf;
    cf.bits = f.words();
    for (int v = 0; v < f.num_vars(); ++v) {
        cf.perm[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(v);
    }
    return cf;
}

std::uint32_t trigger_cache::canonical_support(const canonical_form& form,
                                               std::uint32_t support, int num_vars) {
    std::uint32_t canon_support = 0;
    for (int v = 0; v < num_vars; ++v) {
        if ((support >> v) & 1u) {
            canon_support |= 1u << form.perm[static_cast<std::size_t>(v)];
        }
    }
    return canon_support;
}

bf::truth_table trigger_cache::uncanonicalize_trigger(
    const canonical_form& form, const bf::truth_table& canon_trigger,
    std::uint32_t support, std::uint32_t canon_support, int num_vars) {
    // Un-permute: the caller's trigger variable i is the i-th (ascending)
    // member of `support`; under form.perm it lands at canonical position
    // form.perm[member], whose rank within canon_support is the canonical
    // trigger variable carrying its role.  permute() wants the map from old
    // (canonical) variables to new (caller) variables, i.e. the inverse.
    std::vector<int> canon_to_caller(
        static_cast<std::size_t>(canon_trigger.num_vars()));
    std::uint32_t compressed_neg = 0;
    int i = 0;
    for (int v = 0; v < num_vars; ++v) {
        if (!((support >> v) & 1u)) continue;
        const std::uint32_t canon_pos = form.perm[static_cast<std::size_t>(v)];
        const int rank = std::popcount(canon_support & ((1u << canon_pos) - 1));
        canon_to_caller[static_cast<std::size_t>(rank)] = i;
        if ((form.input_neg >> v) & 1u) compressed_neg |= 1u << i;
        ++i;
    }
    bf::truth_table trig = canon_trigger.permute(canon_to_caller);
    // The canonical trigger belongs to the input-negated function; the exact
    // trigger is invariant under output complement but reflects along every
    // negated input axis: trig_f(u) = trig_canon(u ^ neg_S).
    if (compressed_neg != 0) trig = trig.negate_inputs(compressed_neg);
    return trig;
}

bf::truth_table trigger_cache::exact(const bf::truth_table& master,
                                     std::uint32_t support) {
    const int n = master.num_vars();

    const key ck{master.words(), 0, n};
    auto cit = canon_memo_.find(ck);
    if (cit == canon_memo_.end()) {
        // Masters wider than 6 variables skip the exhaustive orbit sweep
        // (n! * 2^(n+1) variants is a cold-start wall at LUT8 scale) and
        // memoize on concrete bits; see identity_form().
        const canonical_form cf = n > bf::k_word_vars ? identity_form(master)
                                  : mode_ == canon_mode::npn
                                      ? npn_canonicalize(master)
                                      : canonicalize(master);
        cit = canon_memo_.emplace(ck, cf).first;
    }
    const canonical_form& cf = cit->second;

    const std::uint32_t canon_support = canonical_support(cf, support, n);

    const key tk{cf.bits, canon_support, n};
    auto it = memo_.find(tk);
    if (it != memo_.end()) {
        ++hits_;
    } else {
        ++misses_;
        it = memo_.emplace(tk, exact_trigger_function(bf::truth_table(n, cf.bits),
                                                      canon_support))
                 .first;
    }
    return uncanonicalize_trigger(cf, it->second, support, canon_support, n);
}

void trigger_cache::merge_from(const trigger_cache& other) {
    if (other.mode_ != mode_) {
        throw std::logic_error(
            "trigger_cache::merge_from: canonicalization mode mismatch");
    }
    for (const auto& [k, v] : other.memo_) memo_.emplace(k, v);
    for (const auto& [k, v] : other.canon_memo_) canon_memo_.emplace(k, v);
    hits_ += other.hits_;
    misses_ += other.misses_;
}

cache_image trigger_cache::export_image() const {
    cache_image img;
    img.mode = mode_;
    img.fns.reserve(canon_memo_.size());
    for (const auto& [k, form] : canon_memo_) {
        img.fns.push_back({k.num_vars, k.bits, form});
    }
    img.triggers.reserve(memo_.size());
    for (const auto& [k, trig] : memo_) {
        img.triggers.push_back({k.num_vars, k.bits, k.support, trig});
    }
    return img;
}

void trigger_cache::merge_from_snapshot(const cache_image& image) {
    if (image.mode != mode_) {
        throw std::logic_error(
            "trigger_cache::merge_from_snapshot: canonicalization mode mismatch");
    }
    for (const auto& e : image.fns) {
        canon_memo_.emplace(key{e.bits, 0, e.num_vars}, e.form);
    }
    for (const auto& e : image.triggers) {
        memo_.emplace(key{e.class_bits, e.support, e.num_vars}, e.trigger);
    }
}

}  // namespace plee::ee
