#include "ee/trigger_cache.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <vector>

#include "ee/trigger_search.hpp"

namespace plee::ee {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t trigger_cache::mix_key(std::uint64_t bits, std::uint32_t support,
                                     int num_vars) {
    return splitmix64(bits ^ splitmix64((static_cast<std::uint64_t>(support) << 8) |
                                        static_cast<std::uint64_t>(num_vars)));
}

trigger_cache::canonical_form trigger_cache::canonicalize(const bf::truth_table& f) {
    const int n = f.num_vars();
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);

    canonical_form best;
    best.bits = f.bits();
    for (int v = 0; v < n; ++v) best.perm[static_cast<std::size_t>(v)] =
        static_cast<std::uint8_t>(v);

    // next_permutation enumerates in ascending lexicographic order, so with
    // a strict < the first permutation reaching the minimum wins the tie.
    while (std::next_permutation(perm.begin(), perm.end())) {
        const std::uint64_t bits = f.permute(perm).bits();
        if (bits < best.bits) {
            best.bits = bits;
            for (int v = 0; v < n; ++v) {
                best.perm[static_cast<std::size_t>(v)] =
                    static_cast<std::uint8_t>(perm[static_cast<std::size_t>(v)]);
            }
        }
    }
    return best;
}

bf::truth_table trigger_cache::exact(const bf::truth_table& master,
                                     std::uint32_t support) {
    const int n = master.num_vars();

    const key ck{master.bits(), 0, n};
    auto cit = canon_memo_.find(ck);
    if (cit == canon_memo_.end()) {
        cit = canon_memo_.emplace(ck, canonicalize(master)).first;
    }
    const canonical_form& cf = cit->second;

    std::uint32_t canon_support = 0;
    for (int v = 0; v < n; ++v) {
        if ((support >> v) & 1u) canon_support |= 1u << cf.perm[static_cast<std::size_t>(v)];
    }

    const key tk{cf.bits, canon_support, n};
    auto it = memo_.find(tk);
    if (it != memo_.end()) {
        ++hits_;
    } else {
        ++misses_;
        it = memo_.emplace(tk, exact_trigger_function(bf::truth_table(n, cf.bits),
                                                      canon_support))
                 .first;
    }
    const bf::truth_table& canon_trig = it->second;

    // Un-permute: the caller's trigger variable i is the i-th (ascending)
    // member of `support`; under cf.perm it lands at canonical position
    // cf.perm[member], whose rank within canon_support is the canonical
    // trigger variable carrying its role.  permute() wants the map from old
    // (canonical) variables to new (caller) variables, i.e. the inverse.
    std::vector<int> canon_to_caller(static_cast<std::size_t>(canon_trig.num_vars()));
    int i = 0;
    for (int v = 0; v < n; ++v) {
        if (!((support >> v) & 1u)) continue;
        const std::uint32_t canon_pos = cf.perm[static_cast<std::size_t>(v)];
        const int rank = std::popcount(canon_support & ((1u << canon_pos) - 1));
        canon_to_caller[static_cast<std::size_t>(rank)] = i;
        ++i;
    }
    return canon_trig.permute(canon_to_caller);
}

void trigger_cache::merge_from(const trigger_cache& other) {
    for (const auto& [k, v] : other.memo_) memo_.emplace(k, v);
    for (const auto& [k, v] : other.canon_memo_) canon_memo_.emplace(k, v);
    hits_ += other.hits_;
    misses_ += other.misses_;
}

}  // namespace plee::ee
