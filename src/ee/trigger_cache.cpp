#include "ee/trigger_cache.hpp"

#include "ee/trigger_search.hpp"

namespace plee::ee {

const bf::truth_table& trigger_cache::exact(const bf::truth_table& master,
                                            std::uint32_t support) {
    const key k{master.bits(), support, master.num_vars()};
    if (auto it = memo_.find(k); it != memo_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    return memo_.emplace(k, exact_trigger_function(master, support)).first->second;
}

}  // namespace plee::ee
