#include "ee/concurrent_cache.hpp"

#include <mutex>
#include <stdexcept>

#include "ee/cache_image.hpp"
#include "ee/trigger_search.hpp"
#include "fault/injector.hpp"
#include "obs/registry.hpp"

namespace plee::ee {

namespace {

/// Shard-lock acquisition that counts the times it actually had to wait —
/// the registry's view of how contended the fleet-shared memo is.  A failed
/// try_lock is one extra atomic op on a path that then blocks anyway.
template <typename Mutex>
std::unique_lock<Mutex> lock_counting_contention(Mutex& mu) {
    std::unique_lock<Mutex> lock(mu, std::try_to_lock);
    if (!lock.owns_lock()) {
        static obs::counter& contention =
            obs::registry::global().get_counter("ee.cache.shard_contention");
        contention.add();
        lock.lock();
    }
    return lock;
}

}  // namespace

bf::truth_table concurrent_trigger_cache::exact(const bf::truth_table& master,
                                                std::uint32_t support) {
    const int n = master.num_vars();
    // Fault-injection point for the shared memo: the site is the lookup key
    // itself, so within a fault scope ("job#attempt") the same lookup always
    // decides the same way regardless of which thread performs it.
    fault::injector::instance().check(
        "cache.lookup", trigger_cache::mix_key(master.words(), support, n));

    // Level 1: one canonicalization per concrete function, fleet-wide.  The
    // (expensive) canonicalization runs inside the shard lock so concurrent
    // first-lookups of the same function do the work once; different
    // functions land on different shards and proceed in parallel.
    trigger_cache::canonical_form cf;
    {
        const fn_key fk{master.words(), n};
        fn_shard& shard = fn_shards_[fn_hash{}(fk) % k_num_shards];
        const auto lock = lock_counting_contention(shard.mu);
        auto it = shard.map.find(fk);
        if (it == shard.map.end()) {
            // Same wide-master policy as trigger_cache::exact: > 6 variables
            // memoize on concrete bits (identity form) instead of paying the
            // exhaustive orbit sweep inside the shard lock.
            const trigger_cache::canonical_form fresh =
                n > bf::k_word_vars ? trigger_cache::identity_form(master)
                : mode_ == canon_mode::npn
                    ? trigger_cache::npn_canonicalize(master)
                    : trigger_cache::canonicalize(master);
            it = shard.map.emplace(fk, fresh).first;
        }
        cf = it->second;
    }

    const std::uint32_t canon_support =
        trigger_cache::canonical_support(cf, support, n);

    // Level 2: one exact trigger per canonical (class, support) pair.  Every
    // member of the class — from any circuit, any thread — shards here by
    // the canonical bits, so the class pays exactly one miss.
    bf::truth_table canon_trig{0};
    {
        const trig_key tk{cf.bits, canon_support, n};
        trig_shard& shard = trig_shards_[trig_hash{}(tk) % k_num_shards];
        const auto lock = lock_counting_contention(shard.mu);
        static obs::counter& reg_hits =
            obs::registry::global().get_counter("ee.cache.hits");
        static obs::counter& reg_misses =
            obs::registry::global().get_counter("ee.cache.misses");
        auto it = shard.map.find(tk);
        if (it != shard.map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            reg_hits.add();
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            reg_misses.add();
            it = shard.map
                     .emplace(tk, exact_trigger_function(bf::truth_table(n, cf.bits),
                                                         canon_support))
                     .first;
        }
        canon_trig = it->second;
    }

    return trigger_cache::uncanonicalize_trigger(cf, canon_trig, support,
                                                 canon_support, n);
}

std::size_t concurrent_trigger_cache::size() const {
    std::size_t total = 0;
    for (const trig_shard& s : trig_shards_) {
        const std::lock_guard<std::mutex> lock(s.mu);
        total += s.map.size();
    }
    return total;
}

std::size_t concurrent_trigger_cache::canonicalized_masters() const {
    std::size_t total = 0;
    for (const fn_shard& s : fn_shards_) {
        const std::lock_guard<std::mutex> lock(s.mu);
        total += s.map.size();
    }
    return total;
}

cache_image concurrent_trigger_cache::export_image() const {
    cache_image img;
    img.mode = mode_;
    for (const fn_shard& s : fn_shards_) {
        const std::lock_guard<std::mutex> lock(s.mu);
        for (const auto& [k, form] : s.map) {
            img.fns.push_back({k.num_vars, k.bits, form});
        }
    }
    for (const trig_shard& s : trig_shards_) {
        const std::lock_guard<std::mutex> lock(s.mu);
        for (const auto& [k, trig] : s.map) {
            img.triggers.push_back({k.num_vars, k.bits, k.support, trig});
        }
    }
    return img;
}

void concurrent_trigger_cache::merge_from_snapshot(const cache_image& image) {
    if (image.mode != mode_) {
        throw std::logic_error(
            "concurrent_trigger_cache::merge_from_snapshot: "
            "canonicalization mode mismatch");
    }
    for (const auto& e : image.fns) {
        const fn_key fk{e.bits, e.num_vars};
        fn_shard& shard = fn_shards_[fn_hash{}(fk) % k_num_shards];
        const std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.emplace(fk, e.form);
    }
    for (const auto& e : image.triggers) {
        const trig_key tk{e.class_bits, e.support, e.num_vars};
        trig_shard& shard = trig_shards_[trig_hash{}(tk) % k_num_shards];
        const std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.emplace(tk, e.trigger);
    }
}

}  // namespace plee::ee
