// cache_image.hpp — the in-memory exchange form of a trigger memo.
//
// Both trigger caches (the per-pass trigger_cache and the fleet-shared
// concurrent_trigger_cache) export their two levels into this plain struct
// and merge one back in.  The image is the seam between the caches and the
// durable snapshot layer (src/persist/): the caches know how to iterate and
// union their maps, persist knows how to turn an image into checksummed
// bytes and untrusted bytes back into an image — neither needs the other's
// internals.
//
// Merging is a union keyed on the same (bits, support, num_vars) keys the
// caches use.  Entries are oracle-equal by construction — two snapshots that
// both hold (class, support) hold the *same* exact trigger, because the
// trigger is a pure function of the class — so merge order is irrelevant and
// merging N hosts' snapshots is associative and commutative.

#pragma once

#include <cstdint>
#include <vector>

#include "bool/truth_table.hpp"
#include "ee/trigger_cache.hpp"

namespace plee::ee {

struct cache_image {
    canon_mode mode = canon_mode::npn;

    /// Function level: concrete master bits -> canonicalization result.
    struct fn_entry {
        int num_vars = 0;
        bf::tt_words bits{};  ///< concrete master function
        trigger_cache::canonical_form form;
    };

    /// Class level: (canonical bits, canonical support) -> exact trigger.
    struct trig_entry {
        int num_vars = 0;          ///< master arity
        bf::tt_words class_bits{}; ///< canonical (or identity-form) master
        std::uint32_t support = 0; ///< canonical support mask
        bf::truth_table trigger{0};
    };

    std::vector<fn_entry> fns;
    std::vector<trig_entry> triggers;

    std::size_t entries() const { return fns.size() + triggers.size(); }
    bool empty() const { return fns.empty() && triggers.empty(); }
};

}  // namespace plee::ee
