// small_fsms.cpp — b01 (serial-flow comparator), b02 (BCD recognizer),
// b06 (interrupt handler): the small control-dominated circuits of Table 3.

#include "bench_circuits/itc99.hpp"

#include "synth/fsm.hpp"
#include "synth/rtl.hpp"

namespace plee::bench {

// b01: "FSM that compares serial flows".  Two bit-serial streams arrive in
// lockstep; the machine tracks whether the flows are equal so far, which one
// leads, and flags an overflow when the same stream leads twice in a row.
nl::netlist make_b01() {
    syn::module_builder m("b01");
    auto& a = m.arena();
    const syn::expr_id line1 = m.input("line1");
    const syn::expr_id line2 = m.input("line2");

    enum { eq0, eq1, gt0, gt1, lt0, lt1, ovf };
    syn::fsm_builder fsm(m, "cmp", 7, eq0);

    const syn::expr_id same = a.xnor_(line1, line2);
    const syn::expr_id first_leads = a.and_(line1, a.not_(line2));
    const syn::expr_id second_leads = a.and_(line2, a.not_(line1));

    fsm.transition(eq0, same, eq1);
    fsm.transition(eq0, first_leads, gt0);
    fsm.transition(eq0, second_leads, lt0);
    fsm.transition(eq1, same, eq0);
    fsm.transition(eq1, first_leads, gt0);
    fsm.transition(eq1, second_leads, lt0);
    fsm.transition(gt0, same, gt1);
    fsm.transition(gt0, first_leads, ovf);
    fsm.transition(gt0, second_leads, eq0);
    fsm.transition(gt1, same, gt0);
    fsm.transition(gt1, first_leads, ovf);
    fsm.transition(gt1, second_leads, eq1);
    fsm.transition(lt0, same, lt1);
    fsm.transition(lt0, second_leads, ovf);
    fsm.transition(lt0, first_leads, eq0);
    fsm.transition(lt1, same, lt0);
    fsm.transition(lt1, second_leads, ovf);
    fsm.transition(lt1, first_leads, eq1);
    fsm.otherwise(ovf, eq0);

    m.output("outp", a.or_(fsm.in_state(eq0), fsm.in_state(eq1)));
    m.output("overflw", fsm.in_state(ovf));
    fsm.finalize();
    return m.build();
}

// b02: "FSM that recognizes BCD numbers".  Nibbles arrive MSB-first on a
// serial line; the nibble b3 b2 b1 b0 encodes a decimal digit iff b3 = 0 or
// b2 = b1 = 0 (value <= 9).  One state per bit position, split into
// accepting/strict/poisoned tracks; `valid` is asserted while the final bit
// streams in.
nl::netlist make_b02() {
    syn::module_builder m("b02");
    auto& a = m.arena();
    const syn::expr_id bit = m.input("bit");
    const syn::expr_id any = a.konst(true);

    enum { p3, p2_any, p2_strict, p1_any, p1_strict, p1_bad, p0_good, p0_bad };
    syn::fsm_builder fsm(m, "bcd", 8, p3);

    fsm.transition(p3, a.not_(bit), p2_any);    // b3 = 0: remaining bits free
    fsm.transition(p3, bit, p2_strict);         // b3 = 1: need b2 = b1 = 0
    fsm.transition(p2_any, any, p1_any);
    fsm.transition(p2_strict, a.not_(bit), p1_strict);
    fsm.transition(p2_strict, bit, p1_bad);
    fsm.transition(p1_any, any, p0_good);
    fsm.transition(p1_strict, a.not_(bit), p0_good);
    fsm.transition(p1_strict, bit, p0_bad);
    fsm.transition(p1_bad, any, p0_bad);
    fsm.transition(p0_good, any, p3);
    fsm.transition(p0_bad, any, p3);

    m.output("valid", fsm.in_state(p0_good));
    m.output("last_bit", a.or_(fsm.in_state(p0_good), fsm.in_state(p0_bad)));
    fsm.finalize();
    return m.build();
}

// b06: "Interrupt Handler".  Two interrupt request lines with fixed
// priority, an acknowledge input, and grant/busy outputs.
nl::netlist make_b06() {
    syn::module_builder m("b06");
    auto& a = m.arena();
    const syn::expr_id irq1 = m.input("irq1");
    const syn::expr_id irq2 = m.input("irq2");
    const syn::expr_id iack = m.input("iack");

    enum { idle, serve1, serve2, cool };
    syn::fsm_builder fsm(m, "ih", 4, idle);

    fsm.transition(idle, irq1, serve1);  // irq1 has priority
    fsm.transition(idle, irq2, serve2);
    fsm.transition(serve1, iack, cool);
    fsm.transition(serve2, iack, cool);
    fsm.transition(cool, a.konst(true), idle);

    m.output("grant1", fsm.in_state(serve1));
    m.output("grant2", fsm.in_state(serve2));
    m.output("busy", a.not_(fsm.in_state(idle)));
    fsm.finalize();
    return m.build();
}

}  // namespace plee::bench
