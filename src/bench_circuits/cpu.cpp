// cpu.cpp — b14 ("Viper processor (subset)") and b15 ("80386 processor
// (subset)"): the two large arithmetic-dominated benchmarks of Table 3.
//
// Both are accumulator-style processor subsets built from the same
// generator: a program ROM (folded into LUT logic), a register file, an ALU
// with ripple-carry add/sub (the carry chains are where Early Evaluation
// earns the paper's 38-45% wins), flag logic and a branching program
// counter.  b14 is a 32-bit, 4-register machine; b15 widens to a 32-bit,
// 8-register machine with a rotate unit and an address-generation adder,
// mirroring the relative sizes in the paper (b15 ~1.7x b14).

#include "bench_circuits/itc99.hpp"

#include <array>
#include <cstdint>

#include "synth/rtl.hpp"

namespace plee::bench {

namespace {

enum op_code : std::uint8_t {
    op_add = 0,
    op_sub = 1,
    op_and = 2,
    op_or = 3,
    op_xor = 4,
    op_mov = 5,
    op_cmp = 6,
    op_brz = 7,
};

struct instruction {
    std::uint8_t op;       // 3 bits
    std::uint8_t dst;      // up to 3 bits (masked to the register count)
    std::uint8_t src;      // up to 3 bits
    std::uint8_t use_imm;  // 1 bit: operand B comes from the external bus
};

/// 16-slot demo program exercising every op, with data-dependent branches.
constexpr std::array<instruction, 16> k_program = {{
    {op_mov, 0, 0, 1}, {op_mov, 1, 4, 1}, {op_add, 0, 1, 0}, {op_sub, 2, 0, 1},
    {op_and, 3, 0, 1}, {op_xor, 5, 2, 0}, {op_or, 2, 7, 0},  {op_cmp, 0, 1, 0},
    {op_brz, 0, 0, 1}, {op_add, 1, 5, 1}, {op_sub, 4, 2, 0}, {op_xor, 3, 3, 1},
    {op_cmp, 2, 6, 0}, {op_brz, 0, 0, 1}, {op_add, 6, 0, 1}, {op_mov, 2, 1, 0},
}};

/// Builds one ROM field bit as logic over the 4-bit program counter.
syn::expr_id rom_bit(syn::module_builder& m, const syn::bus& pc,
                     bool (*extract)(const instruction&)) {
    auto& a = m.arena();
    syn::expr_id e = a.konst(false);
    for (std::uint32_t slot = 0; slot < k_program.size(); ++slot) {
        if (!extract(k_program[slot])) continue;
        std::vector<syn::expr_id> terms;
        for (int k = 0; k < 4; ++k) {
            terms.push_back((slot >> k) & 1u ? pc[static_cast<std::size_t>(k)]
                                             : a.not_(pc[static_cast<std::size_t>(k)]));
        }
        e = a.or_(e, a.and_all(terms));
    }
    return e;
}

nl::netlist make_cpu(const std::string& name, int width, int num_regs,
                     bool extended) {
    syn::module_builder m(name);
    auto& a = m.arena();

    const int reg_bits = num_regs == 8 ? 3 : 2;

    const syn::bus din = m.input_bus("din", width);
    const syn::expr_id run = m.input("run");

    const syn::bus pc = m.new_register("pc", 4, 0);

    // --- Instruction decode (program ROM folded into PC logic) -------------
    syn::bus op(3), dst(static_cast<std::size_t>(reg_bits)),
        src(static_cast<std::size_t>(reg_bits));
    static constexpr std::array<bool (*)(const instruction&), 3> op_bits = {
        [](const instruction& i) { return (i.op & 1) != 0; },
        [](const instruction& i) { return (i.op & 2) != 0; },
        [](const instruction& i) { return (i.op & 4) != 0; }};
    static constexpr std::array<bool (*)(const instruction&), 3> dst_bits = {
        [](const instruction& i) { return (i.dst & 1) != 0; },
        [](const instruction& i) { return (i.dst & 2) != 0; },
        [](const instruction& i) { return (i.dst & 4) != 0; }};
    static constexpr std::array<bool (*)(const instruction&), 3> src_bits = {
        [](const instruction& i) { return (i.src & 1) != 0; },
        [](const instruction& i) { return (i.src & 2) != 0; },
        [](const instruction& i) { return (i.src & 4) != 0; }};
    for (int b = 0; b < 3; ++b) {
        op[static_cast<std::size_t>(b)] =
            rom_bit(m, pc, op_bits[static_cast<std::size_t>(b)]);
    }
    for (int b = 0; b < reg_bits; ++b) {
        dst[static_cast<std::size_t>(b)] =
            rom_bit(m, pc, dst_bits[static_cast<std::size_t>(b)]);
        src[static_cast<std::size_t>(b)] =
            rom_bit(m, pc, src_bits[static_cast<std::size_t>(b)]);
    }
    const syn::expr_id use_imm =
        rom_bit(m, pc, [](const instruction& i) { return i.use_imm != 0; });

    // --- Register file -------------------------------------------------------
    std::vector<syn::bus> regs;
    std::vector<syn::bus> options;
    for (int r = 0; r < num_regs; ++r) {
        regs.push_back(m.new_register("r" + std::to_string(r), width,
                                      static_cast<std::uint64_t>(r) * 3 + 1));
        options.push_back(regs.back());
    }
    const syn::bus reg_a = m.mux_tree(dst, options);
    const syn::bus reg_b = m.mux_tree(src, options);
    const syn::bus operand_b = m.mux2(use_imm, din, reg_b);

    // --- ALU -----------------------------------------------------------------
    const syn::module_builder::add_result sum = m.add(reg_a, operand_b);
    const syn::module_builder::sub_result dif = m.sub(reg_a, operand_b);
    const syn::bus land = m.bw_and(reg_a, operand_b);
    const syn::bus lor = m.bw_or(reg_a, operand_b);
    const syn::bus lxor = m.bw_xor(reg_a, operand_b);
    const syn::bus pass_b = operand_b;
    const syn::bus shl1 = m.shl(reg_a, 1, a.konst(false));

    syn::bus result = m.mux_tree(
        op, {sum.sum, dif.diff, land, lor, lxor, pass_b, dif.diff, shl1});
    if (extended) {
        // b15: a rotate unit keyed on the low opcode bits and an
        // address-generation adder (base + displacement).
        const syn::bus rot1 = m.rotl(result, 1);
        const syn::bus rot_q = m.rotl(result, width / 4);
        const syn::bus rot_h = m.rotl(result, width / 2);
        result = m.mux_tree({op[0], op[1]}, {result, rot1, rot_q, rot_h});
        const syn::bus agu = m.add(reg_b, din).sum;
        m.output_bus("addr", agu);
    }

    // --- Flags ----------------------------------------------------------------
    const syn::expr_id is_cmp = m.eq_const(op, op_cmp);
    const syn::expr_id is_brz = m.eq_const(op, op_brz);
    const syn::expr_id sets_flags = a.not_(is_brz);
    const syn::bus flags = m.new_register("flags", 3, 0);  // {zero, carry, neg}
    const syn::expr_id zero_now = m.eq_const(result, 0);
    const syn::expr_id carry_now = a.mux(m.eq_const(op, op_sub), dif.borrow, sum.carry);
    const syn::expr_id neg_now = result[result.size() - 1];
    syn::bus flags_next = flags;
    flags_next[0] = a.mux(sets_flags, zero_now, flags[0]);
    flags_next[1] = a.mux(sets_flags, carry_now, flags[1]);
    flags_next[2] = a.mux(sets_flags, neg_now, flags[2]);
    m.connect_register(flags, m.mux2(run, flags_next, flags));

    // --- Writeback --------------------------------------------------------------
    const syn::expr_id writes = a.and_(run, a.and_(a.not_(is_cmp), a.not_(is_brz)));
    const std::vector<syn::expr_id> dst_is = m.decode(dst);
    for (int r = 0; r < num_regs; ++r) {
        const syn::expr_id we = a.and_(writes, dst_is[static_cast<std::size_t>(r)]);
        m.connect_register(regs[static_cast<std::size_t>(r)],
                           m.mux2(we, result, regs[static_cast<std::size_t>(r)]));
    }

    // --- Program counter -----------------------------------------------------------
    const syn::expr_id taken = a.and_(is_brz, flags[0]);
    const syn::bus pc_plus1 = m.inc(pc);
    const syn::bus pc_branch = m.add(pc, syn::bus(din.begin(), din.begin() + 4)).sum;
    m.connect_register(pc, m.mux2(run, m.mux2(taken, pc_branch, pc_plus1), pc));

    m.output_bus("acc", regs[0]);
    m.output_bus("pc_out", pc);
    m.output("zero", flags[0]);
    m.output("carry", flags[1]);
    m.output("neg", flags[2]);
    return m.build();
}

}  // namespace

nl::netlist make_b14() { return make_cpu("b14", 32, 4, false); }

nl::netlist make_b15() { return make_cpu("b15", 32, 8, true); }

}  // namespace plee::bench
