// arbiter_voting.cpp — b03 (resource arbiter) and b10 (voting system).

#include "bench_circuits/itc99.hpp"

#include "synth/rtl.hpp"

namespace plee::bench {

// b03: "Resource arbiter".  Four requesters share one resource under a
// rotating (round-robin) priority: pending requests are latched, the grant
// goes to the first pending requester after the previous winner, and the
// winner's index is remembered for the next round.
nl::netlist make_b03() {
    syn::module_builder m("b03");
    auto& a = m.arena();

    syn::bus req;
    for (int i = 0; i < 4; ++i) req.push_back(m.input("req" + std::to_string(i)));

    const syn::bus last = m.new_register("last", 2, 3);      // previous winner
    const syn::bus pending_q = m.new_register("pending", 4, 0);

    // Requests stay pending until granted.
    const syn::bus live = m.bw_or(req, pending_q);

    // Rotating priority: for each possible previous winner w, the scan order
    // is w+1, w+2, w+3, w.  Build the grant vector per case and select.
    const std::vector<syn::expr_id> last_is = m.decode(last);
    syn::bus grant(4, a.konst(false));
    for (int w = 0; w < 4; ++w) {
        syn::expr_id nobody_before = a.konst(true);
        for (int k = 1; k <= 4; ++k) {
            const int cand = (w + k) % 4;
            const syn::expr_id take =
                a.and_(last_is[static_cast<std::size_t>(w)],
                       a.and_(nobody_before, live[static_cast<std::size_t>(cand)]));
            grant[static_cast<std::size_t>(cand)] =
                a.or_(grant[static_cast<std::size_t>(cand)], take);
            nobody_before =
                a.and_(nobody_before, a.not_(live[static_cast<std::size_t>(cand)]));
        }
    }

    // Encode the winner and update the rotation register when a grant fires.
    const syn::expr_id any_grant = m.reduce_or(grant);
    syn::bus winner(2, a.konst(false));
    winner[0] = a.or_(grant[1], grant[3]);
    winner[1] = a.or_(grant[2], grant[3]);
    m.connect_register(last, m.mux2(any_grant, winner, last));
    m.connect_register(pending_q, m.bw_and(live, m.bw_not(grant)));

    m.output_bus("grant", grant);
    m.output("busy", any_grant);
    return m.build();
}

// b10: "Voting system".  Four vote lines increment per-candidate tallies;
// the leader (lowest index wins ties) and a tie flag are reported
// combinationally, and `clear` restarts the election.
nl::netlist make_b10() {
    syn::module_builder m("b10");
    auto& a = m.arena();

    const syn::expr_id clear = m.input("clear");
    syn::bus vote;
    for (int i = 0; i < 4; ++i) vote.push_back(m.input("vote" + std::to_string(i)));

    std::vector<syn::bus> tally;
    for (int i = 0; i < 4; ++i) {
        const syn::bus q = m.new_register("tally" + std::to_string(i), 4, 0);
        const syn::bus bumped = m.mux2(vote[static_cast<std::size_t>(i)], m.inc(q), q);
        m.connect_register(q, m.mux2(clear, m.literal(0, 4), bumped));
        tally.push_back(q);
    }

    // Pairwise comparator tree: candidates 0/1, 2/3, then the winners.
    const syn::expr_id c1_beats_c0 = m.ugt(tally[1], tally[0]);
    const syn::expr_id c3_beats_c2 = m.ugt(tally[3], tally[2]);
    const syn::bus semi_a = m.mux2(c1_beats_c0, tally[1], tally[0]);
    const syn::bus semi_b = m.mux2(c3_beats_c2, tally[3], tally[2]);
    const syn::expr_id b_wins = m.ugt(semi_b, semi_a);

    syn::bus leader(2, a.konst(false));
    leader[1] = b_wins;
    leader[0] = a.mux(b_wins, c3_beats_c2, c1_beats_c0);

    const syn::expr_id finals_tied = m.eq(semi_a, semi_b);
    const syn::expr_id semis_tied =
        a.or_(m.eq(tally[0], tally[1]), m.eq(tally[2], tally[3]));

    m.output_bus("leader", leader);
    m.output("tie", a.or_(finals_tied, semis_tied));
    m.output_bus("top_count", m.mux2(b_wins, semi_b, semi_a));
    return m.build();
}

}  // namespace plee::bench
