#include "bench_circuits/itc99.hpp"

#include <stdexcept>

namespace plee::bench {

const std::vector<benchmark_info>& itc99_suite() {
    static const std::vector<benchmark_info> suite = {
        {"b01", "FSM that compares serial flows", &make_b01},
        {"b02", "FSM that recognizes BCD numbers", &make_b02},
        {"b03", "Resource arbiter", &make_b03},
        {"b04", "Compute min and max", &make_b04},
        {"b05", "Elaborate contents of memory", &make_b05},
        {"b06", "Interrupt Handler", &make_b06},
        {"b07", "Count points on a straight line", &make_b07},
        {"b08", "Find inclusions in sequences", &make_b08},
        {"b09", "Serial to serial converter", &make_b09},
        {"b10", "Voting system", &make_b10},
        {"b11", "Scramble string with a cipher", &make_b11},
        {"b12", "1-player game (guess a sequence)", &make_b12},
        {"b13", "Interface to meteo sensors", &make_b13},
        {"b14", "Viper processor (subset)", &make_b14},
        {"b15", "80386 processor (subset)", &make_b15},
    };
    return suite;
}

nl::netlist build_benchmark(const std::string& id) {
    for (const benchmark_info& info : itc99_suite()) {
        if (info.id == id) return info.build();
    }
    throw std::invalid_argument("build_benchmark: unknown benchmark '" + id + "'");
}

}  // namespace plee::bench
