// cipher_game.cpp — b11 (stream cipher scrambler), b12 (sequence-guessing
// game) and b13 (meteo sensor interface).

#include "bench_circuits/itc99.hpp"

#include "synth/fsm.hpp"
#include "synth/rtl.hpp"

namespace plee::bench {

// b11: "Scramble string with a cipher".  Each input character is mixed with
// a rotating key through xor/add stages (arithmetic-heavy on purpose: the
// paper reports one of the largest EE wins here) and a running checksum
// accumulates the scrambled stream.
nl::netlist make_b11() {
    syn::module_builder m("b11");
    const syn::expr_id load_key = m.input("load_key");
    const syn::bus chr = m.input_bus("char", 16);

    const syn::bus key = m.new_register("key", 16, 0x5aa5);
    const syn::bus chain = m.new_register("chain", 16, 0x0000);
    const syn::bus csum = m.new_register("csum", 16, 0x0000);

    // Two mixing rounds: (char ^ key) + chain, rotate, + key.
    const syn::bus mixed = m.bw_xor(chr, key);
    const syn::bus round1 = m.add(mixed, chain).sum;
    const syn::bus rotated = m.rotl(round1, 5);
    const syn::bus scrambled = m.add(rotated, key).sum;

    // Key schedule: rotate and perturb with the new character; reload on
    // request.
    const syn::bus key_evolved = m.bw_xor(m.rotl(key, 1), chr);
    m.connect_register(key, m.mux2(load_key, chr, key_evolved));
    m.connect_register(chain, scrambled);
    m.connect_register(csum, m.add(csum, scrambled).sum);

    m.output_bus("scrambled", scrambled);
    m.output_bus("checksum", csum);
    return m.build();
}

// b12: "1-player game (guess a sequence)".  An LFSR produces the hidden
// sequence; the player submits byte guesses under an FSM that scores hits,
// counts rounds and times out slow moves.
nl::netlist make_b12() {
    syn::module_builder m("b12");
    auto& a = m.arena();
    const syn::expr_id start = m.input("start");
    const syn::expr_id submit = m.input("submit");
    const syn::bus guess = m.input_bus("guess", 8);

    // Hidden sequence generator: 16-bit Fibonacci LFSR (taps 16,15,13,4).
    const syn::bus lfsr = m.new_register("lfsr", 16, 0xace1);
    const syn::expr_id feedback =
        a.xor_(a.xor_(lfsr[15], lfsr[14]), a.xor_(lfsr[12], lfsr[3]));

    const syn::bus score = m.new_register("score", 16, 0);
    const syn::bus rounds = m.new_register("rounds", 5, 0);
    const syn::bus timer = m.new_register("timer", 8, 0);

    enum { idle, show, wait_guess, check, done };
    syn::fsm_builder fsm(m, "game", 5, idle);

    const syn::expr_id timed_out = m.eq_const(timer, 255);
    const syn::expr_id last_round = m.eq_const(rounds, 31);

    fsm.transition(idle, start, show);
    fsm.transition(show, a.konst(true), wait_guess);
    fsm.transition(wait_guess, submit, check);
    fsm.transition(wait_guess, timed_out, check);
    fsm.transition(check, last_round, done);
    fsm.transition(check, a.konst(true), show);
    fsm.transition(done, start, show);

    const syn::expr_id in_show = fsm.in_state(show);
    const syn::expr_id in_wait = fsm.in_state(wait_guess);
    const syn::expr_id in_check = fsm.in_state(check);

    const syn::bus hidden(lfsr.begin(), lfsr.begin() + 8);
    const syn::expr_id hit = a.and_(m.eq(guess, hidden), a.not_(timed_out));

    // Advance the LFSR while showing; award a point per hit in check.
    m.connect_register(lfsr, m.mux2(in_show, m.shl(lfsr, 1, feedback), lfsr));
    const syn::bus bumped = m.inc(score);
    const syn::bus score_next =
        m.mux2(a.and_(in_check, hit), bumped, score);
    m.connect_register(score, m.mux2(a.and_(fsm.in_state(idle), start),
                                     m.literal(0, 16), score_next));
    m.connect_register(rounds, m.mux2(in_check, m.inc(rounds),
                                      m.mux2(start, m.literal(0, 5), rounds)));
    m.connect_register(timer, m.mux2(in_wait, m.inc(timer), m.literal(0, 8)));

    m.output_bus("score", score);
    m.output("game_over", fsm.in_state(done));
    m.output("awaiting", in_wait);
    fsm.finalize();
    return m.build();
}

// b13: "Interface to meteo sensors".  A framed serial protocol: a start
// pulse opens a frame, eight data bits are shifted in, the captured reading
// is range-checked against storm/frost thresholds and out-of-range frames
// bump an error counter.
nl::netlist make_b13() {
    syn::module_builder m("b13");
    auto& a = m.arena();
    const syn::expr_id frame = m.input("frame");
    const syn::expr_id sdata = m.input("sdata");

    const syn::bus shift = m.new_register("shift", 8, 0);
    const syn::bus reading = m.new_register("reading", 8, 0x40);
    const syn::bus errors = m.new_register("errors", 4, 0);
    const syn::bus bitcnt = m.new_register("bitcnt", 3, 0);

    enum { idle, recv, commit };
    syn::fsm_builder fsm(m, "rx", 3, idle);

    const syn::expr_id last_bit = m.eq_const(bitcnt, 7);
    fsm.transition(idle, frame, recv);
    fsm.transition(recv, last_bit, commit);
    fsm.transition(commit, a.konst(true), idle);

    const syn::expr_id in_recv = fsm.in_state(recv);
    const syn::expr_id in_commit = fsm.in_state(commit);

    m.connect_register(shift, m.mux2(in_recv, m.shl(shift, 1, sdata), shift));
    m.connect_register(bitcnt, m.mux2(in_recv, m.inc(bitcnt), m.literal(0, 3)));
    m.connect_register(reading, m.mux2(in_commit, shift, reading));

    // Range plausibility: frost below 0x20, storm above 0xd0.
    const syn::expr_id frost = m.ult(reading, m.literal(0x20, 8));
    const syn::expr_id storm = m.ugt(reading, m.literal(0xd0, 8));
    const syn::expr_id out_of_range = a.or_(frost, storm);
    m.connect_register(errors,
                       m.mux2(a.and_(in_commit, out_of_range), m.inc(errors), errors));

    const syn::bus csum = m.new_register("csum", 8, 0);
    m.connect_register(csum, m.mux2(in_commit, m.bw_xor(m.rotl(csum, 1), shift), csum));

    m.output_bus("reading", reading);
    m.output_bus("csum", csum);
    m.output("frost", frost);
    m.output("storm", storm);
    m.output_bus("errors", errors);
    m.output("receiving", in_recv);
    fsm.finalize();
    return m.build();
}

}  // namespace plee::bench
