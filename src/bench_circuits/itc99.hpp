// itc99.hpp — the benchmark suite of the paper's Table 3.
//
// The paper evaluates Early Evaluation on the ITC99 RTL benchmarks
// (Politecnico di Torino), synthesized with a commercial tool.  The original
// VHDL is not redistributable here, so this module provides from-scratch
// behavioural re-creations matching the Table 3 descriptions — the same
// functional classes (control FSMs, arbiters, counters, arithmetic datapaths
// and processor subsets), built with the repository's RTL front-end and
// mapped through the identical synthesis/PL/EE pipeline.  Gate counts are of
// the same order as the paper's, not bit-identical; see DESIGN.md for the
// substitution rationale.
//
// Circuit ids follow the ITC99 numbering; descriptions are quoted from the
// paper's Table 3.

#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace plee::bench {

nl::netlist make_b01();  ///< FSM that compares serial flows
nl::netlist make_b02();  ///< FSM that recognizes BCD numbers
nl::netlist make_b03();  ///< Resource arbiter
nl::netlist make_b04();  ///< Compute min and max
nl::netlist make_b05();  ///< Elaborate contents of memory
nl::netlist make_b06();  ///< Interrupt handler
nl::netlist make_b07();  ///< Count points on a straight line
nl::netlist make_b08();  ///< Find inclusions in sequences
nl::netlist make_b09();  ///< Serial to serial converter
nl::netlist make_b10();  ///< Voting system
nl::netlist make_b11();  ///< Scramble string with a cipher
nl::netlist make_b12();  ///< 1-player game (guess a sequence)
nl::netlist make_b13();  ///< Interface to meteo sensors
nl::netlist make_b14();  ///< Viper processor (subset)
nl::netlist make_b15();  ///< 80386 processor (subset)

struct benchmark_info {
    std::string id;           ///< "b01" ... "b15"
    std::string description;  ///< the paper's Table 3 wording
    nl::netlist (*build)();
};

/// All 15 benchmarks in Table 3 order.
const std::vector<benchmark_info>& itc99_suite();

/// Builds one benchmark by id; throws std::invalid_argument for unknown ids.
nl::netlist build_benchmark(const std::string& id);

}  // namespace plee::bench
