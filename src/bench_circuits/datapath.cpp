// datapath.cpp — the medium arithmetic/stream benchmarks of Table 3:
// b04 (min/max), b05 (memory contents), b07 (points on a line),
// b08 (inclusions in sequences), b09 (serial-to-serial converter).

#include "bench_circuits/itc99.hpp"

#include <array>

#include "synth/rtl.hpp"

namespace plee::bench {

// b04: "Compute min and max".  A 16-bit sample stream updates running
// minimum/maximum registers; `restart` re-arms them and a combinational
// flag reports whether the current sample lies inside the running range.
nl::netlist make_b04() {
    syn::module_builder m("b04");
    const syn::expr_id restart = m.input("restart");
    const syn::expr_id enable = m.input("enable");
    const syn::bus data = m.input_bus("data", 16);

    const syn::bus rmin = m.new_register("rmin", 16, 0xffff);
    const syn::bus rmax = m.new_register("rmax", 16, 0x0000);

    const syn::expr_id below = m.ult(data, rmin);
    const syn::expr_id above = m.ugt(data, rmax);

    syn::bus min_next = m.mux2(m.arena().and_(enable, below), data, rmin);
    syn::bus max_next = m.mux2(m.arena().and_(enable, above), data, rmax);
    m.connect_register(rmin, m.mux2(restart, m.literal(0xffff, 16), min_next));
    m.connect_register(rmax, m.mux2(restart, m.literal(0x0000, 16), max_next));

    m.output_bus("min", rmin);
    m.output_bus("max", rmax);
    m.output("in_range", m.arena().and_(m.ule(rmin, data), m.ule(data, rmax)));
    return m.build();
}

// b05: "Elaborate contents of memory".  A walking address scans a 32-word
// ROM (synthesized into LUT logic); the datapath accumulates a 16-bit sum of
// the words and tracks the largest word seen.
nl::netlist make_b05() {
    syn::module_builder m("b05");
    auto& a = m.arena();
    const syn::expr_id start = m.input("start");
    const syn::expr_id run = m.input("run");

    static constexpr std::array<std::uint8_t, 32> rom_words = {
        0x3a, 0x07, 0xc1, 0x58, 0x9d, 0x22, 0x6f, 0xe4, 0x11, 0x85, 0x4c,
        0xf0, 0x2b, 0x96, 0x63, 0xd8, 0x19, 0xa7, 0x5e, 0xc3, 0x30, 0x8b,
        0x76, 0xed, 0x02, 0xb9, 0x44, 0xfa, 0x5d, 0x81, 0x6a, 0xce};

    const syn::bus addr = m.new_register("addr", 5, 0);
    // ROM bit j = a sum of address minterms; the expression layer lets the
    // mapper pack the decode with downstream logic.
    syn::bus word;
    for (int j = 0; j < 8; ++j) {
        syn::expr_id e = a.konst(false);
        for (std::uint32_t v = 0; v < rom_words.size(); ++v) {
            if (!((rom_words[v] >> j) & 1u)) continue;
            std::vector<syn::expr_id> terms;
            for (int k = 0; k < 5; ++k) {
                terms.push_back((v >> k) & 1u ? addr[static_cast<std::size_t>(k)]
                                              : a.not_(addr[static_cast<std::size_t>(k)]));
            }
            e = a.or_(e, a.and_all(terms));
        }
        word.push_back(e);
    }

    const syn::bus acc = m.new_register("acc", 16, 0);
    const syn::bus best = m.new_register("best", 8, 0);

    syn::bus word16 = word;
    while (word16.size() < 16) word16.push_back(a.konst(false));

    const syn::bus acc_next = m.add(acc, word16).sum;
    const syn::bus best_next = m.mux2(m.ugt(word, best), word, best);

    m.connect_register(addr, m.mux2(start, m.literal(0, 5),
                                    m.mux2(run, m.inc(addr), addr)));
    m.connect_register(acc, m.mux2(start, m.literal(0, 16),
                                   m.mux2(run, acc_next, acc)));
    m.connect_register(best, m.mux2(start, m.literal(0, 8),
                                    m.mux2(run, best_next, best)));

    m.output_bus("sum", acc);
    m.output_bus("best", best);
    m.output("wrapped", m.eq_const(addr, 31));
    return m.build();
}

// b07: "Count points on a straight line".  A reference point is latched on
// `load_ref`; every subsequent sample is tested against the two unit-slope
// lines through the reference (|dx| == |dy|) and hits are counted.
nl::netlist make_b07() {
    syn::module_builder m("b07");
    auto& a = m.arena();
    const syn::expr_id load_ref = m.input("load_ref");
    const syn::expr_id enable = m.input("enable");
    const syn::bus x = m.input_bus("x", 12);
    const syn::bus y = m.input_bus("y", 12);

    const syn::bus x0 = m.new_register("x0", 12, 0);
    const syn::bus y0 = m.new_register("y0", 12, 0);
    const syn::bus hits = m.new_register("hits", 8, 0);

    const syn::bus dx = m.sub(x, x0).diff;
    const syn::bus dy = m.sub(y, y0).diff;
    const syn::bus neg_dy = m.sub(m.literal(0, 12), dy).diff;

    const syn::expr_id diagonal = a.or_(m.eq(dx, dy), m.eq(dx, neg_dy));
    const syn::expr_id counted = a.and_(enable, a.and_(diagonal, a.not_(load_ref)));

    m.connect_register(x0, m.mux2(load_ref, x, x0));
    m.connect_register(y0, m.mux2(load_ref, y, y0));
    m.connect_register(hits, m.mux2(counted, m.inc(hits), hits));

    m.output("on_line", diagonal);
    m.output_bus("count", hits);
    return m.build();
}

// b08: "Find inclusions in sequences".  A serial bit stream shifts through
// a 16-bit window; both bytes of the window are matched against an 8-bit
// pattern and the inclusion count accumulates.
nl::netlist make_b08() {
    syn::module_builder m("b08");
    auto& a = m.arena();
    const syn::expr_id sin = m.input("sin");
    const syn::bus pattern = m.input_bus("pattern", 8);

    const syn::bus window = m.new_register("window", 16, 0);
    const syn::bus count = m.new_register("count", 8, 0);

    syn::bus shifted = m.shl(window, 1, sin);
    m.connect_register(window, shifted);

    const syn::bus low(window.begin(), window.begin() + 8);
    const syn::bus high(window.begin() + 8, window.end());
    const syn::expr_id hit = a.or_(m.eq(low, pattern), m.eq(high, pattern));
    m.connect_register(count, m.mux2(hit, m.inc(count), count));

    m.output("match", hit);
    m.output_bus("inclusions", count);
    return m.build();
}

// b09: "Serial to serial converter".  Bits are deserialized into a byte;
// every eighth bit the byte is re-framed (nibble swap mixed with a frame
// counter) into the transmit shift register, which streams back out
// serially with a parity rail.
nl::netlist make_b09() {
    syn::module_builder m("b09");
    auto& a = m.arena();
    const syn::expr_id sin = m.input("sin");

    const syn::bus rx = m.new_register("rx", 8, 0);
    const syn::bus tx = m.new_register("tx", 8, 0);
    const syn::bus phase = m.new_register("phase", 3, 0);
    const syn::bus frames = m.new_register("frames", 4, 0);

    const syn::bus rx_next = m.shl(rx, 1, sin);
    const syn::expr_id byte_done = m.eq_const(phase, 7);

    // Re-frame the received byte: nibble swap mixed with the frame counter
    // (a serial protocol conversion has no arithmetic in it).
    const syn::bus swapped = m.rotl(rx_next, 4);
    syn::bus frames8 = frames;
    while (frames8.size() < 8) frames8.push_back(a.konst(false));
    const syn::bus loaded = m.bw_xor(swapped, frames8);
    const syn::bus tx_shift = m.shr(tx, 1, a.konst(false));

    m.connect_register(rx, rx_next);
    m.connect_register(tx, m.mux2(byte_done, loaded, tx_shift));
    m.connect_register(phase, m.inc(phase));
    m.connect_register(frames, m.mux2(byte_done, m.inc(frames), frames));

    m.output("sout", tx[0]);
    m.output("frame", byte_done);
    m.output("parity", m.reduce_xor(tx));
    return m.build();
}

}  // namespace plee::bench
