#include "workload/workload.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "bool/splitmix64.hpp"

namespace plee::wl {

namespace {

/// The generator's only randomness source: a splitmix64 counter stream.
/// All sampling below is integer-only so a seed fixes every decision
/// bit-for-bit on any platform.
class rng_stream {
public:
    explicit rng_stream(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() { return bf::splitmix64(state_++); }

    /// Uniform in [0, n); n must be > 0.  Modulo bias is irrelevant at the
    /// pool sizes involved and keeps the sampling platform-exact.
    std::uint64_t below(std::uint64_t n) { return next() % n; }

    bool chance_mille(std::uint64_t mille) { return below(1000) < mille; }

    bool bit() { return (next() & 1u) != 0; }

    std::vector<int> permutation(int n) {
        std::vector<int> p(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
        for (int i = n - 1; i > 0; --i) {
            std::swap(p[static_cast<std::size_t>(i)],
                      p[below(static_cast<std::uint64_t>(i) + 1)]);
        }
        return p;
    }

private:
    std::uint64_t state_;
};

std::uint64_t to_mille(double fraction) {
    const double clamped = std::clamp(fraction, 0.0, 1.0);
    return static_cast<std::uint64_t>(std::lround(clamped * 1000.0));
}

// Function templates for the arithmetic mix, by arity.  Every pick is
// NPN-scrambled (random input permutation + negations) afterwards, so the
// generated family exercises whole NPN classes, not just these seeds.
constexpr std::uint64_t k_arith2[] = {0x6, 0x8, 0xE, 0x9};
constexpr std::uint64_t k_arith3[] = {0x96, 0xE8, 0xCA, 0x80, 0xFE, 0x17};
constexpr std::uint64_t k_arith4[] = {0x6996, 0xF888, 0x8000, 0xFFFE, 0x7EE8};

/// Wide (5..8 input) arithmetic templates, built once per arity: parity,
/// majority, AND, OR, a mux tree (low inputs select among the high ones) and
/// a carry-save-shaped threshold — the early-output adder/comparator block
/// shapes of the wide-arity studies.  NPN scrambling afterwards spreads each
/// template over its whole class, exactly like the LUT2-4 seeds above.
std::vector<bf::truth_table> make_wide_templates(int arity) {
    std::vector<bf::truth_table> t;
    t.push_back(bf::truth_table::from_function(
        arity, [](std::uint32_t m) { return (std::popcount(m) & 1) != 0; }));
    t.push_back(bf::truth_table::from_function(arity, [arity](std::uint32_t m) {
        return std::popcount(m) * 2 > arity;
    }));
    t.push_back(bf::truth_table::from_function(arity, [arity](std::uint32_t m) {
        return m == (1u << arity) - 1;
    }));
    t.push_back(bf::truth_table::from_function(
        arity, [](std::uint32_t m) { return m != 0; }));
    // Mux: the low select inputs address one of the remaining data inputs
    // by wrapping modulo.  Full support needs (a) 2^sel >= data so every
    // data input is reachable and (b) 2^(sel-1) % data != 0 so the top
    // select bit survives the wrap — e.g. 3 select bits over 4 data inputs
    // would leave select bit 2 vacuous (4 % 4 == 0) and the "wide" template
    // secretly narrower than its arity.
    int sel = 1;
    while ((1 << sel) < arity - sel ||
           (sel > 1 && (1 << (sel - 1)) % (arity - sel) == 0)) {
        ++sel;
    }
    const int data = arity - sel;
    t.push_back(bf::truth_table::from_function(arity, [=](std::uint32_t m) {
        const std::uint32_t which = (m & ((1u << sel) - 1)) % static_cast<std::uint32_t>(data);
        return ((m >> (sel + which)) & 1u) != 0;
    }));
    t.push_back(bf::truth_table::from_function(arity, [arity](std::uint32_t m) {
        return std::popcount(m) >= arity - 1;
    }));
    // Every template must genuinely span its arity: a pick with dead pins
    // would wire a narrower function to `arity` sources and quietly shrink
    // the wide-support trigger space the presets exist to exercise.
    for (const bf::truth_table& f : t) {
        if (f.support_mask() != (1u << arity) - 1) {
            throw std::logic_error(
                "workload: wide template does not span its arity");
        }
    }
    return t;
}

const std::vector<bf::truth_table>& wide_templates(int arity) {
    static const std::vector<bf::truth_table> k_by_arity[4] = {
        make_wide_templates(5), make_wide_templates(6), make_wide_templates(7),
        make_wide_templates(8)};
    return k_by_arity[arity - 5];
}

bf::truth_table sample_function(rng_stream& rng, int arity, function_mix mix) {
    const std::uint64_t full =
        arity >= 6 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (1u << arity)) - 1);
    if (arity == 1) {
        // Buffer or inverter regardless of mix — the only non-constant
        // 1-input functions.
        return bf::truth_table(1, rng.bit() ? 0b10 : 0b01);
    }

    switch (mix) {
        case function_mix::arithmetic: {
            bf::truth_table t(arity);
            if (arity == 2) t = bf::truth_table(2, k_arith2[rng.below(std::size(k_arith2))]);
            else if (arity == 3) t = bf::truth_table(3, k_arith3[rng.below(std::size(k_arith3))]);
            else if (arity == 4) t = bf::truth_table(4, k_arith4[rng.below(std::size(k_arith4))]);
            else {
                const std::vector<bf::truth_table>& pool = wide_templates(arity);
                t = pool[rng.below(pool.size())];
            }
            t = t.negate_inputs(static_cast<std::uint32_t>(rng.next()) &
                                ((1u << arity) - 1));
            return t.permute(rng.permutation(arity));
        }
        case function_mix::control: {
            // A sparse decode: OR of 1..3 distinct minterms, complemented
            // half the time.  Never constant (3 < 2^arity for arity >= 2).
            bf::truth_table t(arity);
            const std::uint64_t count = 1 + rng.below(3);
            for (std::uint64_t i = 0; i < count; ++i) {
                t.set(static_cast<std::uint32_t>(rng.below(1u << arity)), true);
            }
            return rng.bit() ? ~t : t;
        }
        case function_mix::uniform:
        default: {
            // Prefer full-support non-constant tables; after a few rejected
            // draws accept partial support but still repair constants.  The
            // draw order is word 0 first, so <= 6-input sampling consumes the
            // stream exactly as it did before multiword tables.
            bf::tt_words words{};
            const int nw = bf::words_for(arity);
            for (int attempt = 0; attempt < 6; ++attempt) {
                words[0] = rng.next() & full;
                for (int w = 1; w < nw; ++w) words[w] = rng.next();
                const bf::truth_table t(arity, words);
                if (!t.is_constant() &&
                    t.support_mask() == (1u << arity) - 1) {
                    return t;
                }
            }
            bf::truth_table t(arity, words);
            if (t.is_constant()) {
                words[0] ^= 1;
                t = bf::truth_table(arity, words);
            }
            return t;
        }
    }
}

}  // namespace

const char* to_string(scenario s) {
    switch (s) {
        case scenario::random_dag: return "random-dag";
        case scenario::datapath_like: return "datapath-like";
        case scenario::control_fsm: return "control-fsm";
        case scenario::wide_adder: return "wide-adder";
        case scenario::lut6_dag: return "lut6-dag";
        case scenario::lut8_datapath: return "lut8-datapath";
    }
    return "unknown";
}

scenario scenario_from_string(const std::string& name) {
    for (scenario s : all_scenarios()) {
        if (name == to_string(s)) return s;
    }
    throw std::invalid_argument("unknown workload scenario: " + name);
}

const std::vector<scenario>& all_scenarios() {
    static const std::vector<scenario> k_all = {
        scenario::random_dag,  scenario::datapath_like, scenario::control_fsm,
        scenario::wide_adder,  scenario::lut6_dag,      scenario::lut8_datapath};
    return k_all;
}

workload_params scenario_params(scenario kind, std::size_t num_gates,
                                std::uint64_t seed) {
    workload_params p;
    p.name = to_string(kind);
    p.seed = seed;
    p.num_gates = num_gates;
    switch (kind) {
        case scenario::random_dag:
            p.num_inputs = std::max<std::size_t>(8, num_gates / 10);
            p.num_outputs = std::max<std::size_t>(4, num_gates / 20);
            break;
        case scenario::datapath_like:
            p.mix = function_mix::arithmetic;
            p.arity_weights = {0, 15, 45, 40};
            p.locality = 0.85;
            p.latch_fraction = 0.08;
            p.depth_layers = std::max<std::size_t>(4, num_gates / 12);
            p.num_inputs = std::max<std::size_t>(8, num_gates / 8);
            p.num_outputs = std::max<std::size_t>(4, num_gates / 16);
            break;
        case scenario::control_fsm:
            p.mix = function_mix::control;
            p.arity_weights = {10, 35, 35, 20};
            p.locality = 0.35;
            p.latch_fraction = 0.30;
            p.depth_layers = std::max<std::size_t>(
                3, static_cast<std::size_t>(std::sqrt(static_cast<double>(num_gates)) / 2.0));
            p.num_inputs = std::max<std::size_t>(6, num_gates / 16);
            p.num_outputs = std::max<std::size_t>(4, num_gates / 16);
            break;
        case scenario::wide_adder:
            p.mix = function_mix::arithmetic;
            p.arity_weights = {0, 5, 85, 10, 0, 0, 0, 0};
            p.locality = 0.95;
            p.latch_fraction = 0.05;
            p.depth_layers = std::max<std::size_t>(4, num_gates / 3);
            p.num_inputs = std::max<std::size_t>(8, num_gates / 4);
            p.num_outputs = std::max<std::size_t>(4, num_gates / 8);
            break;
        case scenario::lut6_dag:
            // Wide-arity null family: uniform LUT5/LUT6 blocks exercising
            // the one- and two-word trigger-search path at every gate.
            p.max_arity = 6;
            p.arity_weights = {0, 5, 10, 20, 30, 35, 0, 0};
            p.locality = 0.5;
            p.num_inputs = std::max<std::size_t>(12, num_gates / 6);
            p.num_outputs = std::max<std::size_t>(4, num_gates / 16);
            break;
        case scenario::lut8_datapath:
            // Widest blocks: LUT7/LUT8-heavy arithmetic templates — the
            // early-output adder/comparator shapes the multiword kernels
            // exist for.  Four-word truth tables on most gates.
            p.mix = function_mix::arithmetic;
            p.max_arity = 8;
            p.arity_weights = {0, 0, 10, 15, 15, 20, 20, 20};
            p.locality = 0.8;
            p.latch_fraction = 0.08;
            p.depth_layers = std::max<std::size_t>(4, num_gates / 10);
            p.num_inputs = std::max<std::size_t>(16, num_gates / 5);
            p.num_outputs = std::max<std::size_t>(4, num_gates / 12);
            break;
    }
    return p;
}

nl::netlist generate(const workload_params& params) {
    if (params.num_gates == 0) {
        throw std::invalid_argument("workload: num_gates must be > 0");
    }
    if (params.num_inputs < 2) {
        throw std::invalid_argument("workload: need at least 2 inputs");
    }
    if (params.max_arity < 1 || params.max_arity > bf::k_max_vars) {
        throw std::invalid_argument("workload: max_arity must be in [1, 8]");
    }
    int reachable_weight = 0;
    for (int a = 0; a < params.max_arity; ++a) {
        reachable_weight += params.arity_weights[static_cast<std::size_t>(a)];
    }
    if (reachable_weight <= 0) {
        throw std::invalid_argument("workload: arity_weights must not all be zero");
    }

    rng_stream rng(params.seed);
    const std::uint64_t locality_mille = to_mille(params.locality);
    nl::netlist nl;

    std::vector<nl::cell_id> sources;  // everything a LUT may read: grows as we go
    for (std::size_t i = 0; i < params.num_inputs; ++i) {
        sources.push_back(nl.add_input("in" + std::to_string(i)));
    }

    // State bits first: DFF outputs are readable from every layer and their
    // D inputs are wired to late-layer LUTs afterwards — that is what closes
    // sequential feedback loops without creating combinational ones.
    const std::size_t num_latches = static_cast<std::size_t>(std::lround(
        std::clamp(params.latch_fraction, 0.0, 1.0) *
        static_cast<double>(params.num_gates)));
    std::vector<nl::cell_id> latches;
    for (std::size_t i = 0; i < num_latches; ++i) {
        const nl::cell_id d = nl.add_dff(nl::k_invalid_cell, rng.bit());
        latches.push_back(d);
        sources.push_back(d);
    }

    // Layer sizing: requested depth (clamped so every layer holds a gate) or
    // a ~sqrt profile, remainder spread over the earliest layers.
    std::size_t layers = params.depth_layers != 0
                             ? params.depth_layers
                             : static_cast<std::size_t>(std::lround(std::sqrt(
                                   static_cast<double>(params.num_gates))));
    layers = std::clamp<std::size_t>(layers, 1, params.num_gates);
    const std::size_t per_layer = params.num_gates / layers;
    const std::size_t remainder = params.num_gates % layers;

    std::vector<nl::cell_id> prev_layer;
    std::vector<nl::cell_id> last_layer;
    for (std::size_t l = 0; l < layers; ++l) {
        const std::size_t width = per_layer + (l < remainder ? 1 : 0);
        std::vector<nl::cell_id> layer;
        layer.reserve(width);
        for (std::size_t g = 0; g < width; ++g) {
            // Sample the fanin count from the arity weights, clamped to the
            // cap and to the number of distinct sources actually available.
            int weight_sum = 0;
            for (int a = 0; a < params.max_arity; ++a) weight_sum += params.arity_weights[a];
            int arity = params.max_arity;
            std::int64_t pick = static_cast<std::int64_t>(
                rng.below(static_cast<std::uint64_t>(weight_sum)));
            for (int a = 0; a < params.max_arity; ++a) {
                pick -= params.arity_weights[a];
                if (pick < 0) {
                    arity = a + 1;
                    break;
                }
            }
            arity = static_cast<int>(
                std::min<std::size_t>(static_cast<std::size_t>(arity), sources.size()));

            // Distinct fanins: each pin prefers the previous layer with
            // probability `locality`, falling back to the full source pool;
            // a few duplicate-rejection retries, then a deterministic scan.
            std::vector<nl::cell_id> fanins;
            for (int pin = 0; pin < arity; ++pin) {
                nl::cell_id chosen = nl::k_invalid_cell;
                for (int attempt = 0; attempt < 8; ++attempt) {
                    const bool local =
                        !prev_layer.empty() && rng.chance_mille(locality_mille);
                    const std::vector<nl::cell_id>& pool =
                        local ? prev_layer : sources;
                    const nl::cell_id cand = pool[rng.below(pool.size())];
                    if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
                        chosen = cand;
                        break;
                    }
                }
                if (chosen == nl::k_invalid_cell) {
                    for (nl::cell_id cand : sources) {
                        if (std::find(fanins.begin(), fanins.end(), cand) ==
                            fanins.end()) {
                            chosen = cand;
                            break;
                        }
                    }
                }
                if (chosen == nl::k_invalid_cell) break;  // pool exhausted
                fanins.push_back(chosen);
            }
            const bf::truth_table fn =
                sample_function(rng, static_cast<int>(fanins.size()), params.mix);
            layer.push_back(nl.add_lut(fn, std::move(fanins)));
        }
        for (nl::cell_id id : layer) sources.push_back(id);
        prev_layer = layer;
        if (!layer.empty()) last_layer = std::move(layer);
    }

    // Close the state loops: every DFF samples a late-layer LUT.
    for (nl::cell_id d : latches) {
        nl.set_dff_input(d, last_layer[rng.below(last_layer.size())]);
    }

    // Primary outputs read the last layer and the state bits, distinct while
    // possible.
    std::vector<nl::cell_id> out_pool = last_layer;
    out_pool.insert(out_pool.end(), latches.begin(), latches.end());
    std::vector<nl::cell_id> taken;
    for (std::size_t i = 0; i < params.num_outputs; ++i) {
        nl::cell_id src = out_pool[rng.below(out_pool.size())];
        if (taken.size() < out_pool.size()) {
            for (int attempt = 0;
                 attempt < 16 &&
                 std::find(taken.begin(), taken.end(), src) != taken.end();
                 ++attempt) {
                src = out_pool[rng.below(out_pool.size())];
            }
            if (std::find(taken.begin(), taken.end(), src) != taken.end()) {
                for (nl::cell_id cand : out_pool) {
                    if (std::find(taken.begin(), taken.end(), cand) == taken.end()) {
                        src = cand;
                        break;
                    }
                }
            }
        }
        taken.push_back(src);
        nl.add_output("out" + std::to_string(i), src);
    }

    // Sink pass: every cell must drive something, or the PL mapping has a
    // token with no consumer.  Unread inputs, LUTs and DFFs get explicit
    // sink ports — deterministic by cell id order.
    std::vector<bool> consumed(nl.num_cells(), false);
    for (const nl::cell& c : nl.cells()) {
        for (nl::cell_id f : c.fanins) consumed[f] = true;
    }
    std::size_t sink = 0;
    const std::size_t cells_before_sinks = nl.num_cells();
    for (nl::cell_id id = 0; id < cells_before_sinks; ++id) {
        if (consumed[id]) continue;
        const nl::cell_kind kind = nl.at(id).kind;
        if (kind == nl::cell_kind::output) continue;
        nl.add_output("sink" + std::to_string(sink++), id);
    }

    nl.validate();
    return nl;
}

std::vector<sim::stimulus_block> stimulus_for(const nl::netlist& netlist,
                                              std::size_t count,
                                              std::uint64_t seed) {
    return sim::make_stimulus(count, netlist.inputs().size(), seed);
}

}  // namespace plee::wl
