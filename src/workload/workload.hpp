// workload.hpp — deterministic synthetic netlist generation.
//
// The ITC99-style suite tops out at a few thousand PL gates; tracking
// netlist-scale throughput of the EE engine needs circuit families that can
// be scaled arbitrarily and regenerated bit-for-bit anywhere.  This module
// grows layered LUT+DFF DAGs from a single uint64 seed: every structural
// decision (layer sizes, fanin wiring, LUT functions, latch placement)
// comes from one splitmix64 stream with integer sampling, so the same
// parameters produce a byte-identical netlist on every run, platform and
// thread count.  Scenario presets shape the statistics toward recognizable
// circuit families — arithmetic datapaths, control FSMs, carry chains —
// while `generate` itself stays one general algorithm.
//
// Generated netlists pass nl::netlist::validate(), respect the configured
// fanin cap (LUT4 for the classic presets, LUT6/LUT8 for the wide-arity
// ones), and run through the full synth -> PL-map -> EE -> simulate
// pipeline (the tests drive one end-to-end per scenario).

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/stimulus.hpp"

namespace plee::wl {

/// Named workload families.  See src/workload/README.md for the intent and
/// parameter shape of each preset.
enum class scenario : std::uint8_t {
    random_dag,     ///< uniform functions, mixed locality — the null family
    datapath_like,  ///< arithmetic templates (xor/maj/mux), deep and local
    control_fsm,    ///< latch-heavy sparse decodes with global wiring
    wide_adder,     ///< carry-chain shaped: 3-input heavy, maximal depth
    lut6_dag,       ///< wide-arity null family: uniform LUT5/LUT6 blocks
    lut8_datapath,  ///< widest blocks: LUT7/LUT8 arithmetic templates
};

const char* to_string(scenario s);
/// Accepts the to_string names ("datapath-like", ...); throws
/// std::invalid_argument for anything else.
scenario scenario_from_string(const std::string& name);
/// All scenarios, in enum order — for "mixed" fleets and sweeps.
const std::vector<scenario>& all_scenarios();

/// How LUT functions are sampled.
enum class function_mix : std::uint8_t {
    uniform,     ///< random truth tables with full support
    arithmetic,  ///< xor / majority / mux / and-or templates, NPN-scrambled
    control,     ///< sparse minterm decodes and their complements
};

struct workload_params {
    std::string name = "random-dag";
    std::uint64_t seed = 1;
    std::size_t num_gates = 200;   ///< LUT count (DFFs and ports come on top)
    std::size_t num_inputs = 16;
    std::size_t num_outputs = 8;
    int max_arity = 4;             ///< LUT fanin cap, 1..8 (4 = the paper's LUT4)
    /// Fraction of num_gates realized as state bits (DFFs fed from the last
    /// layers, readable everywhere — the generator's feedback loops).
    double latch_fraction = 0.12;
    /// Number of combinational layers; 0 derives ~sqrt(num_gates).
    std::size_t depth_layers = 0;
    /// Relative weight of arity 1..8 when sampling a LUT's fanin count; only
    /// the first `max_arity` entries are consulted.  The default matches the
    /// pre-wide-arity LUT4 shape bit-for-bit (entries 5..8 unreachable).
    std::array<int, 8> arity_weights{10, 20, 30, 40, 0, 0, 0, 0};
    /// Probability (0..1) that a fanin comes from the immediately previous
    /// layer rather than anywhere earlier — high values make deep chains.
    double locality = 0.6;
    function_mix mix = function_mix::uniform;
};

/// The preset parameter shape of a scenario at a given size.  `seed` flows
/// through unchanged; num_inputs/outputs/layers scale with num_gates.
workload_params scenario_params(scenario kind, std::size_t num_gates,
                                std::uint64_t seed);

/// Generates a valid synchronous netlist from the parameters.  Deterministic:
/// equal params (including seed) produce byte-identical netlists.  Throws
/// std::invalid_argument on unsatisfiable parameters.
nl::netlist generate(const workload_params& params);

/// Bit-packed stimulus sized for `netlist`: count vectors over its primary
/// inputs, in the lane-packed layout the measure path and the lane-parallel
/// simulators consume directly.  Same stream as sim::random_vectors per seed.
std::vector<sim::stimulus_block> stimulus_for(const nl::netlist& netlist,
                                              std::size_t count,
                                              std::uint64_t seed);

}  // namespace plee::wl
