#include "obs/sink.hpp"

#include <cctype>
#include <cstdio>

namespace plee::obs {
namespace {

report::json u64(std::uint64_t v) {
    return report::json::number(static_cast<std::int64_t>(v));
}

report::json scaled(std::uint64_t v, double scale) {
    return report::json::number(static_cast<double>(v) / scale);
}

/// plee_<name> with every character outside the Prometheus metric-name
/// alphabet folded to '_' (the registry's dots included).
std::string prom_name(const std::string& name) {
    std::string out = "plee_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                        c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

void prom_sample(std::string& out, const std::string& name,
                 const char* labels, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

}  // namespace

report::json hist_to_json(const hist_snapshot& h, double scale,
                          bool with_buckets) {
    report::json j = report::json::object();
    j.set("count", u64(h.count));
    if (h.count == 0) return j;
    j.set("mean", report::json::number(h.mean() / scale));
    j.set("min", scaled(h.min, scale));
    j.set("p50", scaled(h.value_at_percentile(50), scale));
    j.set("p90", scaled(h.value_at_percentile(90), scale));
    j.set("p99", scaled(h.value_at_percentile(99), scale));
    j.set("max", scaled(h.max, scale));
    if (with_buckets) {
        j.set("sum", u64(h.sum));
        report::json buckets = report::json::array();
        for (const auto& [idx, n] : h.buckets) {
            report::json b = report::json::array();
            b.push(u64(idx)).push(u64(n));
            buckets.push(std::move(b));
        }
        j.set("buckets", std::move(buckets));
    }
    return j;
}

report::json spans_to_json(const std::vector<span_record>& spans) {
    report::json arr = report::json::array();
    for (const span_record& s : spans) {
        report::json j = report::json::object();
        j.set("name", report::json::str(s.name));
        j.set("start_ms", report::json::number(s.start_ms));
        j.set("dur_ms", report::json::number(s.dur_ms));
        j.set("parent", report::json::number(s.parent));
        arr.push(std::move(j));
    }
    return arr;
}

report::json flight_to_json(const std::vector<fr_event>& events) {
    report::json arr = report::json::array();
    for (const fr_event& e : events) {
        report::json j = report::json::object();
        j.set("t_ms", report::json::number(e.t_ms));
        j.set("tag", report::json::str(e.tag));
        j.set("a", u64(e.a));
        j.set("b", u64(e.b));
        if (!e.note.empty()) j.set("note", report::json::str(e.note));
        arr.push(std::move(j));
    }
    return arr;
}

report::json metrics_to_json(const metrics_snapshot& snap) {
    report::json j = report::json::object();
    report::json counters = report::json::object();
    for (const auto& [name, v] : snap.counters) counters.set(name, u64(v));
    j.set("counters", std::move(counters));
    report::json gauges = report::json::object();
    for (const auto& [name, v] : snap.gauges) {
        gauges.set(name, report::json::number(static_cast<std::int64_t>(v)));
    }
    j.set("gauges", std::move(gauges));
    report::json hists = report::json::object();
    for (const auto& [name, h] : snap.histograms) {
        hists.set(name, hist_to_json(h, 1.0, /*with_buckets=*/true));
    }
    j.set("histograms", std::move(hists));
    return j;
}

std::string to_prometheus(const metrics_snapshot& snap) {
    std::string out;
    for (const auto& [name, v] : snap.counters) {
        const std::string pn = prom_name(name) + "_total";
        out += "# TYPE " + pn + " counter\n";
        prom_sample(out, pn, "", v);
    }
    for (const auto& [name, v] : snap.gauges) {
        const std::string pn = prom_name(name);
        out += "# TYPE " + pn + " gauge\n";
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        out += pn + " " + buf + "\n";
    }
    for (const auto& [name, h] : snap.histograms) {
        const std::string pn = prom_name(name);
        out += "# TYPE " + pn + " summary\n";
        prom_sample(out, pn, "{quantile=\"0.5\"}", h.value_at_percentile(50));
        prom_sample(out, pn, "{quantile=\"0.9\"}", h.value_at_percentile(90));
        prom_sample(out, pn, "{quantile=\"0.99\"}", h.value_at_percentile(99));
        prom_sample(out, pn, "{quantile=\"1\"}", h.max);
        prom_sample(out, pn + "_sum", "", h.sum);
        prom_sample(out, pn + "_count", "", h.count);
    }
    return out;
}

}  // namespace plee::obs
