#include "obs/flight_recorder.hpp"

#include <utility>

namespace plee::obs {
namespace {

thread_local flight_recorder* t_current = nullptr;

}  // namespace

flight_recorder::flight_recorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void flight_recorder::push(fr_event&& e) {
    const std::lock_guard<std::mutex> lock(mu_);
    e.t_ms = timer_.elapsed_ms();
    ring_[total_ % ring_.size()] = std::move(e);
    ++total_;
}

void flight_recorder::record(const char* tag, std::uint64_t a,
                             std::uint64_t b) {
    fr_event e;
    e.tag = tag;
    e.a = a;
    e.b = b;
    push(std::move(e));
}

void flight_recorder::record_note(const char* tag, std::string note,
                                  std::uint64_t a) {
    fr_event e;
    e.tag = tag;
    e.a = a;
    e.note = std::move(note);
    push(std::move(e));
}

std::vector<fr_event> flight_recorder::dump() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<fr_event> out;
    const std::size_t n = ring_.size();
    const std::size_t kept = total_ < n ? static_cast<std::size_t>(total_) : n;
    out.reserve(kept);
    const std::uint64_t first = total_ - kept;
    for (std::size_t i = 0; i < kept; ++i) {
        out.push_back(ring_[(first + i) % n]);
    }
    return out;
}

std::uint64_t flight_recorder::total_recorded() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

void flight_recorder::clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (fr_event& e : ring_) e = fr_event{};
    total_ = 0;
    timer_.restart();
}

flight_recorder* current_recorder() { return t_current; }

recorder_scope::recorder_scope(flight_recorder* r) : saved_(t_current) {
    t_current = r;
}

recorder_scope::~recorder_scope() { t_current = saved_; }

}  // namespace plee::obs
