// registry.hpp — the process-wide metrics registry.
//
// One `registry::global()` instance owns every named counter, gauge and
// histogram in the process.  Lookup (`get_counter` & co.) takes a mutex and
// a map walk, so callers cache the returned reference once — typically in a
// function-local `static` — and the hot path is then a single relaxed
// atomic add with no lock and no hash:
//
//     static obs::counter& hits =
//         obs::registry::global().get_counter("ee.cache.hits");
//     hits.add();
//
// References returned by the getters are stable for the life of the process:
// reset() zeroes values but never destroys or reallocates a metric, so cached
// `static` references in instrumented code stay valid across test-suite
// resets.  Metrics are stored in std::map, so snapshots and every sink emit
// in deterministic (lexicographic) name order.
//
// Naming convention (enforced by review, not code — see src/obs/README.md):
// dotted lowercase path `subsystem.noun[.verb]`, unit suffix on anything
// dimensioned (`_ms`, `_us`, `_ps`).  Counters count events; gauges hold a
// last-written level; histograms hold distributions.
//
// Counters are sharded across 16 cacheline-aligned atomic slots with a
// per-thread home slot, so a fleet of workers bumping the same counter does
// not ping-pong one cache line; value() sums the slots (a momentarily-stale
// read while writers run, exact at quiescence).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace plee::obs {

inline constexpr std::size_t k_counter_shards = 16;

/// Monotonic event count, sharded to keep concurrent add() cheap.
class counter {
public:
    counter() = default;
    counter(const counter&) = delete;
    counter& operator=(const counter&) = delete;

    void add(std::uint64_t n = 1) {
        shards_[home_shard()].value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const {
        std::uint64_t total = 0;
        for (const slot& s : shards_) {
            total += s.value.load(std::memory_order_relaxed);
        }
        return total;
    }

    void reset() {
        for (slot& s : shards_) s.value.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) slot {
        std::atomic<std::uint64_t> value{0};
    };

    /// Round-robin thread→slot assignment; cheaper and more uniform than
    /// hashing thread ids.
    static std::size_t home_shard();

    slot shards_[k_counter_shards];
};

/// A last-written level (queue depth, in-flight jobs).
class gauge {
public:
    gauge() = default;
    gauge(const gauge&) = delete;
    gauge& operator=(const gauge&) = delete;

    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d = 1) {
        value_.fetch_add(d, std::memory_order_relaxed);
    }
    std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { set(0); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// A point-in-time copy of every registered metric, name-sorted.
struct metrics_snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, hist_snapshot>> histograms;
};

class registry {
public:
    static registry& global();

    /// Create-on-first-use; the reference is stable forever after.
    counter& get_counter(const std::string& name);
    gauge& get_gauge(const std::string& name);
    histogram& get_histogram(const std::string& name);

    metrics_snapshot snapshot() const;

    /// Zeroes every value but keeps every registration (and thus every
    /// outstanding reference) alive.  Test isolation, not teardown.
    void reset();

private:
    registry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<counter>> counters_;
    std::map<std::string, std::unique_ptr<gauge>> gauges_;
    std::map<std::string, std::unique_ptr<histogram>> histograms_;
};

}  // namespace plee::obs
