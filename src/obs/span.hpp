// span.hpp — per-job pipeline trace spans.
//
// A `trace` is a per-job record of nested, timed stages: every
// `run_ee_experiment` call carries one, and each pipeline stage
// (map_to_pl.plain → measure.plain → map_to_pl.ee → ee.search → measure.ee,
// with sim.run / sim.golden children inside measure) opens a `scoped_span`
// on entry and closes it on scope exit.  The result — start offset,
// duration, and parent index per span — rides in `job_result` so a fleet
// report can answer "where did this job's time go" per job, not just in
// aggregate.
//
// Design points:
//  * Nesting is by parent index into the span vector, maintained by a
//    current-span cursor in the trace — no thread-locals, no globals; a
//    trace belongs to one job on one thread at a time.
//  * `scoped_span` closes in its destructor, which also runs during
//    exception unwind: a job that throws mid-stage still ends with every
//    entered span closed, so failed / timed-out jobs report a *partial but
//    well-formed* breakdown (the acceptance criterion for the flight
//    recorder's companion).
//  * Everything is null-tolerant: `scoped_span{nullptr, "x"}` is a no-op,
//    so instrumented code runs untraced at zero cost when telemetry is off.
//  * Timestamps come from the trace's own plee::wall_timer epoch
//    (steady_clock), in ms relative to trace start.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rt/wall_timer.hpp"

namespace plee::obs {

struct span_record {
    std::string name;
    double start_ms = 0.0;  ///< offset from trace epoch
    double dur_ms = 0.0;
    int parent = -1;  ///< index of enclosing span, -1 for roots

    bool operator==(const span_record&) const = default;
};

class trace {
public:
    trace() = default;

    /// Opens a span as a child of the currently open one; returns its index.
    std::size_t open(std::string name);

    /// Closes span `index`, fixing its duration and popping the cursor back
    /// to its parent.  Closing out of program order (exception unwind closes
    /// innermost-first) is well-defined.
    void close(std::size_t index);

    /// Drops all spans and re-arms the epoch (per-attempt reuse in the
    /// runner: a retried job reports only its final attempt's spans).
    void clear();

    const std::vector<span_record>& spans() const { return spans_; }
    double elapsed_ms() const { return timer_.elapsed_ms(); }

private:
    wall_timer timer_;
    std::vector<span_record> spans_;
    int current_ = -1;
};

/// RAII stage marker.  Null trace → no-op.
class scoped_span {
public:
    scoped_span(trace* t, std::string name) : trace_(t) {
        if (trace_) index_ = trace_->open(std::move(name));
    }
    ~scoped_span() {
        if (trace_) trace_->close(index_);
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

private:
    trace* trace_ = nullptr;
    std::size_t index_ = 0;
};

}  // namespace plee::obs
