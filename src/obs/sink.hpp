// sink.hpp — serialization of telemetry into the two wire formats.
//
// Everything obs collects (registry snapshots, per-job traces, flight
// recordings, histograms) leaves the process through exactly two shapes:
//
//  * JSON values (report::json) — embedded in fleet_result::to_json /
//    BENCH_*.json, or streamed one-record-per-line via json::dump_compact()
//    to the --trace-out JSONL file.  Schemas in docs/schemas.md.
//  * Prometheus text exposition (version 0.0.4) — the --metrics-out format:
//    counters as `plee_<name>_total`, gauges as `plee_<name>`, histograms as
//    summaries (quantile-labelled samples plus _sum/_count).  Metric names
//    are sanitized from the registry's dotted convention (dots → underscores,
//    anything outside [a-zA-Z0-9_:] → '_') and the whole exposition is
//    emitted in the registry's deterministic name order, so CI can lint it
//    line by line.
//
// Histograms serialize as {count, mean, min, p50, p90, p99, max[, buckets]}
// — the summary form is what humans and dashboards read; the optional raw
// bucket array is what exact re-merging needs (bench artifacts carry it,
// per-job rows don't).  A `scale` divisor converts the recorded integer unit
// to the reported one (e.g. ps → ns with scale = 1000).

#pragma once

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "report/json.hpp"

namespace plee::obs {

/// {count, mean, min, p50, p90, p99, max} with every value divided by
/// `scale`; with_buckets appends the raw sparse bucket array (exact,
/// unscaled) for downstream re-merging.  Empty histogram → {"count": 0}.
report::json hist_to_json(const hist_snapshot& h, double scale = 1.0,
                          bool with_buckets = false);

/// Array of {name, start_ms, dur_ms, parent} in open order.
report::json spans_to_json(const std::vector<span_record>& spans);

/// Array of {t_ms, tag, a, b[, note]}, oldest first.
report::json flight_to_json(const std::vector<fr_event>& events);

/// {counters: {...}, gauges: {...}, histograms: {...}} — one JSONL-able
/// record of a whole registry snapshot.
report::json metrics_to_json(const metrics_snapshot& snap);

/// Prometheus text exposition of a registry snapshot (see header comment).
std::string to_prometheus(const metrics_snapshot& snap);

}  // namespace plee::obs
