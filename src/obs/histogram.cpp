#include "obs/histogram.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace plee::obs {

void hist_snapshot::record_n(std::uint64_t value, std::uint64_t n) {
    if (n == 0) return;
    const std::uint32_t idx = hist_bucket_index(value);
    auto it = std::lower_bound(
        buckets.begin(), buckets.end(), idx,
        [](const auto& entry, std::uint32_t key) { return entry.first < key; });
    if (it != buckets.end() && it->first == idx) {
        it->second += n;
    } else {
        buckets.insert(it, {idx, n});
    }
    if (count == 0 || value < min) min = value;
    if (value > max) max = value;
    count += n;
    sum += value * n;
}

void hist_snapshot::merge(const hist_snapshot& other) {
    if (other.count == 0) return;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    auto a = buckets.begin();
    auto b = other.buckets.begin();
    while (a != buckets.end() || b != other.buckets.end()) {
        if (b == other.buckets.end() ||
            (a != buckets.end() && a->first < b->first)) {
            merged.push_back(*a++);
        } else if (a == buckets.end() || b->first < a->first) {
            merged.push_back(*b++);
        } else {
            merged.emplace_back(a->first, a->second + b->second);
            ++a, ++b;
        }
    }
    buckets = std::move(merged);
    min = count == 0 ? other.min : std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
    sum += other.sum;
}

std::uint64_t hist_snapshot::value_at_percentile(double p) const {
    if (count == 0) return 0;
    if (p <= 0.0) return min;
    if (p >= 100.0) return max;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (const auto& [idx, n] : buckets) {
        seen += n;
        if (seen >= rank) {
            return std::clamp(hist_bucket_upper(idx), min, max);
        }
    }
    return max;  // unreachable for a consistent snapshot
}

histogram::histogram()
    : counts_(std::make_unique<std::atomic<std::uint64_t>[]>(
          k_hist_num_buckets)) {}

void histogram::record_n(std::uint64_t value, std::uint64_t n) {
    if (n == 0) return;
    counts_[hist_bucket_index(value)].fetch_add(n, std::memory_order_relaxed);
    scalars_.count.fetch_add(n, std::memory_order_relaxed);
    scalars_.sum.fetch_add(value * n, std::memory_order_relaxed);
    std::uint64_t seen = scalars_.min.load(std::memory_order_relaxed);
    while (value < seen &&
           !scalars_.min.compare_exchange_weak(seen, value,
                                               std::memory_order_relaxed)) {
    }
    seen = scalars_.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !scalars_.max.compare_exchange_weak(seen, value,
                                               std::memory_order_relaxed)) {
    }
}

void histogram::merge(const hist_snapshot& snapshot) {
    if (snapshot.count == 0) return;
    for (const auto& [idx, n] : snapshot.buckets) {
        counts_[idx].fetch_add(n, std::memory_order_relaxed);
    }
    scalars_.count.fetch_add(snapshot.count, std::memory_order_relaxed);
    scalars_.sum.fetch_add(snapshot.sum, std::memory_order_relaxed);
    std::uint64_t seen = scalars_.min.load(std::memory_order_relaxed);
    while (snapshot.min < seen &&
           !scalars_.min.compare_exchange_weak(seen, snapshot.min,
                                               std::memory_order_relaxed)) {
    }
    seen = scalars_.max.load(std::memory_order_relaxed);
    while (snapshot.max > seen &&
           !scalars_.max.compare_exchange_weak(seen, snapshot.max,
                                               std::memory_order_relaxed)) {
    }
}

hist_snapshot histogram::snapshot() const {
    hist_snapshot out;
    out.count = scalars_.count.load(std::memory_order_relaxed);
    if (out.count == 0) return out;
    out.sum = scalars_.sum.load(std::memory_order_relaxed);
    out.min = scalars_.min.load(std::memory_order_relaxed);
    out.max = scalars_.max.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < k_hist_num_buckets; ++i) {
        const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
        if (n != 0) {
            out.buckets.emplace_back(static_cast<std::uint32_t>(i), n);
        }
    }
    return out;
}

void histogram::reset() {
    for (std::size_t i = 0; i < k_hist_num_buckets; ++i) {
        counts_[i].store(0, std::memory_order_relaxed);
    }
    scalars_.count.store(0, std::memory_order_relaxed);
    scalars_.sum.store(0, std::memory_order_relaxed);
    scalars_.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    scalars_.max.store(0, std::memory_order_relaxed);
}

}  // namespace plee::obs
