// flight_recorder.hpp — per-job ring buffer of recent pipeline events.
//
// When a fleet job fails, times out, or exhausts its event budget, the
// exception's what() says *what* died but not *what the job was doing in the
// moments before*.  The flight recorder answers that: a fixed-size ring of
// the last ~128 coarse events — simulator progress beats (one per
// k_cancel_check_events = 1024 events, riding the cancel-poll branch the hot
// loops already take), EE-search chunk starts, fault injections, retries and
// error sites — dumped into the failure report for non-ok jobs.  Healthy
// jobs pay for the recording but never serialize it.
//
// Cost model: record() takes a mutex, but is called at the cancel-check
// cadence (every 1024 simulator events), so the amortized hot-loop cost is
// one branch — the same branch the cancel poll already owns.  It is NOT for
// per-event use.
//
// `tag` must be a string literal (or otherwise static storage): events store
// the pointer, not a copy.  The optional `note` is an owned string for the
// rare sites (errors, faults) that need dynamic context.
//
// The fault injector fires deep inside stages that know nothing about jobs,
// so the recorder also has a thread-local ambient channel: the runner
// installs the current job's recorder with `recorder_scope`, and
// `current_recorder()` retrieves it (nullptr when none — e.g. plain library
// use), mirroring how fault::injector scopes itself.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rt/wall_timer.hpp"

namespace plee::obs {

struct fr_event {
    double t_ms = 0.0;       ///< ms since the recorder's epoch
    const char* tag = "";    ///< static string, e.g. "sim.progress"
    std::uint64_t a = 0;     ///< tag-specific payload (event count, index…)
    std::uint64_t b = 0;
    std::string note;        ///< optional dynamic context (error text…)
};

class flight_recorder {
public:
    static constexpr std::size_t k_default_capacity = 128;

    explicit flight_recorder(std::size_t capacity = k_default_capacity);
    flight_recorder(const flight_recorder&) = delete;
    flight_recorder& operator=(const flight_recorder&) = delete;

    void record(const char* tag, std::uint64_t a = 0, std::uint64_t b = 0);
    void record_note(const char* tag, std::string note, std::uint64_t a = 0);

    /// The retained events, oldest first (at most capacity() of them).
    std::vector<fr_event> dump() const;

    /// Total record() calls ever, including overwritten ones.
    std::uint64_t total_recorded() const;

    std::size_t capacity() const { return ring_.size(); }

    /// Empties the ring and re-arms the epoch (fresh job, same buffer).
    void clear();

private:
    void push(fr_event&& e);

    mutable std::mutex mu_;
    wall_timer timer_;
    std::vector<fr_event> ring_;  ///< fixed size; slot = total_ % capacity
    std::uint64_t total_ = 0;
};

/// The ambient recorder for this thread, or nullptr.
flight_recorder* current_recorder();

/// Installs `r` as this thread's ambient recorder for the scope's lifetime,
/// restoring the previous one on exit (scopes nest).
class recorder_scope {
public:
    explicit recorder_scope(flight_recorder* r);
    ~recorder_scope();
    recorder_scope(const recorder_scope&) = delete;
    recorder_scope& operator=(const recorder_scope&) = delete;

private:
    flight_recorder* saved_ = nullptr;
};

}  // namespace plee::obs
