// histogram.hpp — log-bucketed latency histograms with exact-rank readout.
//
// The paper's headline claim is distributional: Early Evaluation shifts the
// *completion-time distribution* of a self-timed pipeline, not just its mean.
// Reporting a mean therefore throws away exactly the evidence the experiment
// exists to produce.  This module is the distribution-capable accumulator the
// telemetry subsystem (and BENCH_*.json) records into.
//
// Bucketing is HDR-style: values below k_sub_count (128) get one bucket each
// (exact); above that, every power-of-two range [2^k, 2^(k+1)) is divided
// into k_sub_count equal sub-buckets, so the relative width of any bucket is
// at most 1/k_sub_count (< 0.8%).  Values are unsigned integers — callers
// pick the unit (the pipeline records picoseconds for ns-scale delays and
// microseconds for ms-scale wall times, keeping quantization far below the
// bucket resolution).
//
// Two representations share the bucket math:
//
//  * histogram — the resident, registry-owned form: one atomic slot per
//    bucket, lock-free record() (relaxed fetch_adds plus CAS min/max), safe
//    from any thread.  ~58 KiB per instance; intended for the handful of
//    process-wide metrics, not per-object use.
//  * hist_snapshot — the value form: sparse sorted (bucket, count) pairs.
//    Cheap to carry in results, exactly mergeable (merge is associative and
//    commutative, bucket-for-bucket — asserted by tests/test_obs.cpp), and
//    the unit of JSON serialization.
//
// Readout is exact-rank over the recorded buckets: value_at_percentile(p)
// walks the cumulative counts to rank ceil(p/100 * count) and returns that
// bucket's upper bound (clamped to the exactly-tracked max), so p50/p90/p99
// are exact for values in the one-per-bucket region and within 1/128
// relative error beyond it; min, max, count and sum are always exact.

#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace plee::obs {

/// Sub-buckets per power-of-two range (and the bound of the exact region).
inline constexpr int k_hist_sub_bits = 7;
inline constexpr std::uint64_t k_hist_sub_count = std::uint64_t{1}
                                                  << k_hist_sub_bits;
/// Total buckets covering the whole uint64 range: the exact region plus one
/// k_hist_sub_count strip per shift in [0, 64 - k_hist_sub_bits - 1].
inline constexpr std::size_t k_hist_num_buckets =
    static_cast<std::size_t>(k_hist_sub_count) * (64 - k_hist_sub_bits + 1);

/// Bucket index of a value (see header comment for the layout).
inline std::uint32_t hist_bucket_index(std::uint64_t value) {
    if (value < k_hist_sub_count) return static_cast<std::uint32_t>(value);
    const int top = 63 - std::countl_zero(value);
    const int shift = top - k_hist_sub_bits;
    const std::uint64_t sub = (value >> shift) - k_hist_sub_count;
    return static_cast<std::uint32_t>(
        k_hist_sub_count + static_cast<std::uint64_t>(shift) * k_hist_sub_count +
        sub);
}

/// Largest value mapping to bucket `index` (inverse of hist_bucket_index).
inline std::uint64_t hist_bucket_upper(std::uint32_t index) {
    if (index < k_hist_sub_count) return index;
    const std::uint32_t off = index - static_cast<std::uint32_t>(k_hist_sub_count);
    const std::uint32_t shift = off >> k_hist_sub_bits;
    const std::uint64_t sub = off & (k_hist_sub_count - 1);
    return ((k_hist_sub_count + sub + 1) << shift) - 1;
}

/// The value form: a mergeable, serializable histogram snapshot.
struct hist_snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< exact; 0 when count == 0
    std::uint64_t max = 0;  ///< exact; 0 when count == 0
    /// Occupied buckets only, sorted by bucket index.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    void record(std::uint64_t value) { record_n(value, 1); }
    void record_n(std::uint64_t value, std::uint64_t n);

    /// Adds `other` in: exact bucket-for-bucket accumulation (associative
    /// and commutative, so fleet aggregates are order-independent).
    void merge(const hist_snapshot& other);

    bool empty() const { return count == 0; }
    double mean() const {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Value at rank ceil(p/100 * count) (1-based over the sorted recorded
    /// values): the bucket upper bound clamped to [min, max].  p <= 0 reads
    /// min, p >= 100 reads max; 0 when empty.
    std::uint64_t value_at_percentile(double p) const;

    bool operator==(const hist_snapshot&) const = default;
};

/// The resident form: lock-free multi-thread recording for the registry.
class histogram {
public:
    histogram();
    histogram(const histogram&) = delete;
    histogram& operator=(const histogram&) = delete;

    void record(std::uint64_t value) { record_n(value, 1); }
    void record_n(std::uint64_t value, std::uint64_t n);

    /// Folds a snapshot in (the bulk path measure uses: build a local
    /// snapshot on one thread, merge once).
    void merge(const hist_snapshot& snapshot);

    /// A consistent-enough copy for reporting: each bucket is read once with
    /// relaxed loads, so a snapshot taken while writers run may be mid-batch
    /// but never corrupt; quiescent snapshots are exact.
    hist_snapshot snapshot() const;

    /// Zeroes every bucket (registry reset between test runs).
    void reset();

private:
    struct alignas(64) scalar_block {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{~std::uint64_t{0}};
        std::atomic<std::uint64_t> max{0};
    };

    scalar_block scalars_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

}  // namespace plee::obs
