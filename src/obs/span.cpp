#include "obs/span.hpp"

#include <utility>

namespace plee::obs {

std::size_t trace::open(std::string name) {
    span_record s;
    s.name = std::move(name);
    s.start_ms = timer_.elapsed_ms();
    s.parent = current_;
    const std::size_t index = spans_.size();
    spans_.push_back(std::move(s));
    current_ = static_cast<int>(index);
    return index;
}

void trace::close(std::size_t index) {
    if (index >= spans_.size()) return;
    span_record& s = spans_[index];
    s.dur_ms = timer_.elapsed_ms() - s.start_ms;
    if (current_ == static_cast<int>(index)) current_ = s.parent;
}

void trace::clear() {
    spans_.clear();
    current_ = -1;
    timer_.restart();
}

}  // namespace plee::obs
