#include "obs/registry.hpp"

namespace plee::obs {

std::size_t counter::home_shard() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine =
        next.fetch_add(1, std::memory_order_relaxed) % k_counter_shards;
    return mine;
}

registry& registry::global() {
    static registry instance;
    return instance;
}

counter& registry::get_counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<counter>& slot = counters_[name];
    if (!slot) slot = std::make_unique<counter>();
    return *slot;
}

gauge& registry::get_gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<gauge>& slot = gauges_[name];
    if (!slot) slot = std::make_unique<gauge>();
    return *slot;
}

histogram& registry::get_histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<histogram>& slot = histograms_[name];
    if (!slot) slot = std::make_unique<histogram>();
    return *slot;
}

metrics_snapshot registry::snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    metrics_snapshot out;
    out.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        out.counters.emplace_back(name, c->value());
    }
    out.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        out.gauges.emplace_back(name, g->value());
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        out.histograms.emplace_back(name, h->snapshot());
    }
    return out;
}

void registry::reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace plee::obs
