#include "fault/injector.hpp"

#include <array>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "bool/splitmix64.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"

namespace plee::fault {

namespace {

constexpr std::array<const char*, 6> k_points = {
    "synth.map", "ee.search",  "sim.fire",
    "cache.lookup", "cache.save", "cache.load"};

thread_local std::uint64_t t_scope = 0;

/// The stateless fire decision shared by throwing, delaying and torn fates:
/// a pure hash of (seed, point, scope, site) mapped to [0, 1).
double stateless_draw(std::uint64_t seed, const char* point,
                      std::uint64_t site) {
    const std::uint64_t u = bf::splitmix64(
        seed ^ bf::splitmix64(injector::hash(point) ^ t_scope) ^
        bf::splitmix64(site));
    return static_cast<double>(u >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
}

}  // namespace

injector& injector::instance() {
    static injector inst;
    return inst;
}

bool injector::known_point(const std::string& point) {
    for (const char* p : k_points) {
        if (point == p) return true;
    }
    return false;
}

std::uint64_t injector::hash(const std::string& s) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

injector::scope::scope(std::uint64_t context) : saved_(t_scope) {
    t_scope = context;
}

injector::scope::~scope() { t_scope = saved_; }

void injector::arm(const std::string& point, point_config config) {
    if (!known_point(point)) {
        throw std::invalid_argument("fault::injector: unknown point '" + point +
                                    "'");
    }
    std::lock_guard<std::mutex> lock(mu_);
    points_[point] = config;
    enabled_.store(true, std::memory_order_release);
}

void injector::clear() {
    std::lock_guard<std::mutex> lock(mu_);
    points_.clear();
    seed_ = 0;
    enabled_.store(false, std::memory_order_release);
}

void injector::configure(const std::string& spec) {
    // Parse into a staging map first so a malformed tail arms nothing.
    std::unordered_map<std::string, point_config> staged;
    std::uint64_t seed = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t semi = spec.find(';', pos);
        const std::size_t end = semi == std::string::npos ? spec.size() : semi;
        if (end > pos) {
            const std::string entry = spec.substr(pos, end - pos);
            const std::size_t eq = entry.find('=');
            if (eq == std::string::npos) {
                throw std::invalid_argument(
                    "fault::injector: entry missing '=': '" + entry + "'");
            }
            const std::string key = entry.substr(0, eq);
            const std::string value = entry.substr(eq + 1);
            if (key == "seed") {
                seed = std::strtoull(value.c_str(), nullptr, 10);
            } else {
                if (!known_point(key)) {
                    throw std::invalid_argument(
                        "fault::injector: unknown point '" + key + "'");
                }
                point_config config;
                const std::size_t colon = value.find(':');
                const std::string prob =
                    colon == std::string::npos ? value : value.substr(0, colon);
                char* parse_end = nullptr;
                config.probability = std::strtod(prob.c_str(), &parse_end);
                if (parse_end == prob.c_str() || config.probability < 0.0 ||
                    config.probability > 1.0) {
                    throw std::invalid_argument(
                        "fault::injector: bad probability '" + prob + "'");
                }
                if (colon != std::string::npos) {
                    const std::string kind = value.substr(colon + 1);
                    if (kind == "transient") {
                        config.cls = failure_class::transient;
                    } else if (kind == "permanent") {
                        config.cls = failure_class::permanent;
                    } else if (kind == "torn") {
                        config.torn = true;
                    } else if (kind.rfind("delay=", 0) == 0) {
                        config.delay_ms = std::strtod(kind.c_str() + 6, nullptr);
                        if (config.delay_ms <= 0.0) {
                            throw std::invalid_argument(
                                "fault::injector: bad delay '" + kind + "'");
                        }
                    } else {
                        throw std::invalid_argument(
                            "fault::injector: unknown action '" + kind + "'");
                    }
                }
                staged[key] = config;
            }
        }
        if (semi == std::string::npos) break;
        pos = semi + 1;
    }

    std::lock_guard<std::mutex> lock(mu_);
    points_ = std::move(staged);
    seed_ = seed;
    enabled_.store(!points_.empty(), std::memory_order_release);
}

void injector::check_slow(const char* point, std::uint64_t site) {
    point_config config;
    std::uint64_t seed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = points_.find(point);
        if (it == points_.end()) return;
        config = it->second;
        seed = seed_;
    }
    // Torn configs never throw or delay: the corruption happens in the I/O
    // path via torn_offset(), not at the check.
    if (config.probability <= 0.0 || config.torn) return;
    // Stateless decision: a pure hash of (seed, point, scope, site) — no RNG
    // stream, so outcomes are independent of thread interleaving.
    const double draw = stateless_draw(seed, point, site);
    if (draw >= config.probability) return;
    // The fault fires: leave a trail before disturbing anything, so the
    // job's failure report shows the injection that triggered the cascade.
    static obs::counter& injected =
        obs::registry::global().get_counter("fault.injected");
    injected.add();
    if (obs::flight_recorder* recorder = obs::current_recorder()) {
        recorder->record_note("fault.injected", point, site);
    }
    if (config.delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(config.delay_ms));
        return;
    }
    throw injected_fault(point, site, config.cls);
}

std::size_t injector::torn_offset(const char* point, std::uint64_t site,
                                  std::size_t size) {
    if (!enabled() || size == 0) return size;
    point_config config;
    std::uint64_t seed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = points_.find(point);
        if (it == points_.end()) return size;
        config = it->second;
        seed = seed_;
    }
    if (!config.torn || config.probability <= 0.0) return size;
    if (stateless_draw(seed, point, site) >= config.probability) return size;
    // A second independent hash picks where the tear lands, so the offset
    // is seeded but uncorrelated with the fire decision.
    const std::uint64_t u = bf::splitmix64(
        bf::splitmix64(seed ^ hash(point) ^ t_scope) ^ site ^ 0x7063u);
    const std::size_t offset = static_cast<std::size_t>(u % size);
    static obs::counter& injected =
        obs::registry::global().get_counter("fault.injected");
    injected.add();
    if (obs::flight_recorder* recorder = obs::current_recorder()) {
        recorder->record_note("fault.torn", point, offset);
    }
    return offset;
}

}  // namespace plee::fault
