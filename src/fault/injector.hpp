// injector.hpp — deterministic fault-injection harness.
//
// Every recovery path in the fleet runner (typed failure statuses, retry
// with backoff, graceful aggregation around failed jobs) exists to handle
// events that never occur in a healthy deterministic pipeline.  Rather than
// trusting that code, the pipeline carries named injection points — inert
// single-atomic-load checks compiled in always — that a test or the
// `plee_fleet --inject` flag can arm to throw or delay at configured
// probabilities:
//
//   synth.map     entry of the PL mapping stage (once per pipeline run)
//   ee.search     every trigger-search work-queue chunk
//   sim.fire      the simulator event loops, once per cancel-check interval
//   cache.lookup  every shared concurrent trigger-cache lookup
//   cache.save    trigger-cache snapshot save (supports the ':torn' fate)
//   cache.load    trigger-cache snapshot load (supports the ':torn' fate)
//
// Decisions are *stateless*: whether a check fires depends only on
// (seed, point, scope, site) where `scope` is a thread-local context hash
// (the runner scopes each attempt as "jobid#attempt") and `site` is the
// caller's stable position (event count, chunk index, cache key).  No draw
// order, no shared RNG state — so which jobs fail is bit-identical across
// thread counts and interleavings, which is what lets tests assert exact
// fleet outcomes under injection.
//
// Spec grammar (the --inject argument; see src/runner/README.md):
//
//   SPEC  := entry (';' entry)*
//   entry := 'seed=' N
//          | POINT '=' PROB                       (throw, transient)
//          | POINT '=' PROB ':transient'          (throw, transient)
//          | POINT '=' PROB ':permanent'          (throw, permanent)
//          | POINT '=' PROB ':delay=' MS          (sleep MS milliseconds)
//          | POINT '=' PROB ':torn'               (truncate the I/O buffer at
//                                                  a seeded offset; only the
//                                                  cache.save / cache.load
//                                                  points consult this fate)
//
// e.g.  --inject 'seed=42;ee.search=0.5;sim.fire=1:delay=5'

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rt/errors.hpp"

namespace plee::fault {

/// The exception an armed throwing point raises; classification follows the
/// point's configuration.
class injected_fault : public plee_error {
public:
    injected_fault(const std::string& point, std::uint64_t site,
                   failure_class cls)
        : plee_error("injected fault at " + point + " (site " +
                         std::to_string(site) + ", " + to_string(cls) + ")",
                     cls),
          point_(point) {}

    const std::string& point() const { return point_; }

private:
    std::string point_;
};

struct point_config {
    double probability = 0.0;                     ///< [0, 1]
    failure_class cls = failure_class::transient; ///< class of the throw
    double delay_ms = 0.0;  ///< > 0: sleep instead of throwing
    bool torn = false;      ///< truncate instead of throwing (torn_offset())
};

class injector {
public:
    /// The process-wide instance every injection point consults.
    static injector& instance();

    /// Known point names; configure() rejects anything else (typo safety).
    static bool known_point(const std::string& point);

    /// Parses the spec grammar above and arms the instance.  Throws
    /// std::invalid_argument on malformed specs or unknown points.
    void configure(const std::string& spec);

    /// Programmatic single-point arming (tests).
    void arm(const std::string& point, point_config config);
    void set_seed(std::uint64_t seed) { seed_ = seed; }

    /// Disarms everything; checks return to the inert fast path.
    void clear();

    bool enabled() const { return enabled_.load(std::memory_order_acquire); }

    /// The injection point: inert = one atomic load.  `site` is any value
    /// stable across re-runs at this call site (event count, chunk index).
    /// Points armed with the ':torn' fate never throw here — torn is a data
    /// corruption, not a failure, and is consulted through torn_offset().
    void check(const char* point, std::uint64_t site) {
        if (!enabled()) return;
        check_slow(point, site);
    }

    /// The torn-write fate: when `point` is armed ':torn' and the stateless
    /// (seed, point, scope, site) decision fires, returns the seeded
    /// truncation offset in [0, size); otherwise returns `size` (keep every
    /// byte).  The snapshot save path truncates its encoded buffer at the
    /// returned offset *and then completes the atomic rename normally* —
    /// modelling a write that the filesystem tore but the metadata committed
    /// — and the load path truncates the bytes it read, modelling a torn
    /// read.  Deterministic for fixed (seed, scope, site, size).
    std::size_t torn_offset(const char* point, std::uint64_t site,
                            std::size_t size);

    /// Scopes checks on this thread to a job context (hash of "id#attempt");
    /// nested scopes restore the outer one on destruction.
    class scope {
    public:
        explicit scope(std::uint64_t context);
        ~scope();
        scope(const scope&) = delete;
        scope& operator=(const scope&) = delete;

    private:
        std::uint64_t saved_;
    };

    /// FNV-1a — the stable string hash used for points and scope contexts.
    static std::uint64_t hash(const std::string& s);

private:
    injector() = default;
    void check_slow(const char* point, std::uint64_t site);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;  ///< guards points_/seed_ against concurrent config
    std::unordered_map<std::string, point_config> points_;
    std::uint64_t seed_ = 0;
};

}  // namespace plee::fault
