// ledr_sim.hpp — structural simulation at the physical LEDR encoding level.
//
// The token-level event simulator (sim/pl_sim.hpp) treats a PL netlist as a
// marked graph.  This module simulates the same netlist the way the silicon
// of Figure 1 does:
//   * every data wire holds a Level-Encoded Dual-Rail state (v, t) whose
//     phase p = v XOR t alternates with each new token;
//   * every gate owns a phase bit (the Muller-C element output) and fires
//     when all of its data inputs carry the phase the gate awaits and all of
//     its acknowledge inputs confirm the consumers have caught up;
//   * firing latches the LUT output into the wire's v/t latches (exactly one
//     rail toggles), toggles the gate phase and toggles the gate's
//     acknowledge (fi/fo) outputs.
//
// The simulator is deliberately untimed and order-insensitive: gates are
// fired in arbitrary scan order until quiescent, which demonstrates the
// delay-insensitivity claim — any firing order yields the same per-wave
// output words.  Equivalence with both the synchronous golden model and the
// token-level simulator is established in the test suite.

#pragma once

#include <cstdint>
#include <vector>

#include "plogic/ledr.hpp"
#include "plogic/pl_netlist.hpp"

namespace plee::pl {

class ledr_simulator {
public:
    /// `scan_seed` permutes the gate scan order; any seed must produce the
    /// same outputs (delay-insensitivity), which the tests assert.
    explicit ledr_simulator(const pl_netlist& pl, std::uint64_t scan_seed = 0);

    /// Runs `vectors.size()` waves; vectors[k] holds the wave-k value of
    /// each primary input in pl.sources() order.  Returns one output word
    /// (sink order) per wave.  Throws std::runtime_error on deadlock.
    std::vector<std::vector<bool>> run(const std::vector<std::vector<bool>>& vectors);

    /// Total gate firings of the last run (every PL gate fires once per wave).
    std::uint64_t firings() const { return firings_; }

private:
    bool enabled(gate_id g) const;
    void fire(gate_id g);

    const pl_netlist& pl_;
    std::vector<gate_id> scan_order_;

    // Physical state.
    std::vector<ledr_signal> wire_;     ///< per data edge: LEDR latch state
    std::vector<char> wire_full_;       ///< per data edge: holds an unconsumed token
    std::vector<char> ack_state_;       ///< per ack edge: toggle wire level
    std::vector<char> gate_phase_;      ///< per gate: Muller-C phase bit
    std::vector<std::uint32_t> fired_;  ///< per gate: completed firings

    const std::vector<std::vector<bool>>* vectors_ = nullptr;
    std::uint64_t firings_ = 0;
};

}  // namespace plee::pl
