#include "plogic/ledr_sim.hpp"

#include <stdexcept>
#include <string>

namespace plee::pl {

ledr_simulator::ledr_simulator(const pl_netlist& pl, std::uint64_t scan_seed)
    : pl_(pl) {
    scan_order_.resize(pl.num_gates());
    for (gate_id g = 0; g < pl.num_gates(); ++g) scan_order_[g] = g;
    // Fisher–Yates with a small LCG: the scan order must be immaterial.
    std::uint64_t state = scan_seed * 2862933555777941757ull + 3037000493ull;
    for (std::size_t i = scan_order_.size(); i > 1; --i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        std::swap(scan_order_[i - 1], scan_order_[(state >> 33) % i]);
    }
}

bool ledr_simulator::enabled(gate_id g) const {
    const pl_gate& gate = pl_.gate(g);
    const bool phase = gate_phase_[g] != 0;
    for (edge_id e : gate.in_edges) {
        const pl_edge& edge = pl_.edge(e);
        if (edge.kind == edge_kind::data) {
            // "A phased logic gate fires whenever all of the phases of the
            // inputs matches the internal gate phase."
            const bool wire_phase = wire_[e].signal_phase() == phase::odd;
            if (wire_phase != phase) return false;
        } else {
            // Acknowledge toggle wires: a marked ack (free queue slot) must
            // show the gate's own parity; an unmarked ack must show the
            // consumer one firing ahead.
            const bool required = edge.init_token ? phase : !phase;
            if ((ack_state_[e] != 0) != required) return false;
        }
    }
    return true;
}

void ledr_simulator::fire(gate_id g) {
    const pl_gate& gate = pl_.gate(g);

    bool value = false;
    switch (gate.kind) {
        case gate_kind::source:
            throw std::logic_error("ledr_simulator: sources fire via run()");
        case gate_kind::const_source:
            value = gate.const_value;
            break;
        case gate_kind::through:
            value = wire_[gate.data_in.front()].v;
            break;
        case gate_kind::compute:
        case gate_kind::trigger: {
            std::uint32_t minterm = 0;
            for (std::size_t pin = 0; pin < gate.data_in.size(); ++pin) {
                if (wire_[gate.data_in[pin]].v) minterm |= 1u << pin;
            }
            value = gate.function.eval(minterm);
            break;
        }
        case gate_kind::sink:
            value = wire_[gate.data_in.front()].v;
            break;
    }

    for (edge_id e : gate.out_edges) {
        const pl_edge& edge = pl_.edge(e);
        if (edge.kind == edge_kind::data) {
            // Exactly one of the v/t latches toggles (delay-insensitive).
            wire_[e] = wire_[e].next_token(value);
        } else {
            ack_state_[e] ^= 1;  // fi/fo feedback toggle
        }
    }
    gate_phase_[g] ^= 1;
    ++fired_[g];
    ++firings_;
}

std::vector<std::vector<bool>> ledr_simulator::run(
    const std::vector<std::vector<bool>>& vectors) {
    for (const auto& v : vectors) {
        if (v.size() != pl_.sources().size()) {
            throw std::invalid_argument("ledr_simulator::run: vector width mismatch");
        }
    }
    vectors_ = &vectors;
    const std::size_t num_waves = vectors.size();

    // Source gate -> index in sources(), sink gate -> index in sinks().
    std::vector<std::size_t> source_index(pl_.num_gates(), 0);
    std::vector<std::size_t> sink_index(pl_.num_gates(), 0);
    for (std::size_t i = 0; i < pl_.sources().size(); ++i) {
        source_index[pl_.sources()[i]] = i;
    }
    for (std::size_t i = 0; i < pl_.sinks().size(); ++i) {
        sink_index[pl_.sinks()[i]] = i;
    }

    // Initial physical state.  Wires holding an initial token carry the
    // even (wave 0) phase; empty wires carry the stale odd phase of the
    // notional wave -1.  All gate phases start even, all ack toggles low.
    wire_.assign(pl_.num_edges(), ledr_signal{});
    ack_state_.assign(pl_.num_edges(), 0);
    gate_phase_.assign(pl_.num_gates(), 0);
    fired_.assign(pl_.num_gates(), 0);
    firings_ = 0;
    for (edge_id e = 0; e < pl_.num_edges(); ++e) {
        const pl_edge& edge = pl_.edge(e);
        if (edge.kind != edge_kind::data) continue;
        if (edge.init_token) {
            wire_[e] = ledr_signal{edge.init_value, edge.init_value};  // even
        } else {
            wire_[e] = ledr_signal{false, true};  // odd: consumed long ago
        }
    }

    std::vector<std::vector<bool>> outputs(
        num_waves, std::vector<bool>(pl_.sinks().size(), false));

    auto sinks_done = [&] {
        for (gate_id s : pl_.sinks()) {
            if (fired_[s] < num_waves) return false;
        }
        return true;
    };

    while (!sinks_done()) {
        bool progress = false;
        for (gate_id g : scan_order_) {
            const pl_gate& gate = pl_.gate(g);
            if (gate.kind == gate_kind::source && fired_[g] >= num_waves) continue;
            if (gate.in_edges.empty() && gate.out_edges.empty()) continue;
            if (!enabled(g)) continue;

            if (gate.kind == gate_kind::source) {
                const bool value = vectors[fired_[g]][source_index[g]];
                for (edge_id e : gate.out_edges) {
                    wire_[e] = wire_[e].next_token(value);
                }
                gate_phase_[g] ^= 1;
                ++fired_[g];
                ++firings_;
            } else if (gate.kind == gate_kind::sink) {
                const std::size_t wave = fired_[g];
                if (wave < num_waves) {
                    outputs[wave][sink_index[g]] = wire_[gate.data_in.front()].v;
                }
                fire(g);
            } else {
                fire(g);
            }
            progress = true;
        }
        if (!progress) {
            std::size_t stuck = 0;
            for (gate_id s : pl_.sinks()) stuck += fired_[s] < num_waves;
            throw std::runtime_error(
                "ledr_simulator: deadlock with " + std::to_string(stuck) +
                " sinks incomplete (liveness violation at the LEDR level)");
        }
    }
    return outputs;
}

}  // namespace plee::pl
