#include "plogic/pl_netlist.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "bool/support.hpp"

namespace plee::pl {

const char* to_string(gate_kind kind) {
    switch (kind) {
        case gate_kind::source: return "source";
        case gate_kind::const_source: return "const";
        case gate_kind::sink: return "sink";
        case gate_kind::compute: return "compute";
        case gate_kind::through: return "through";
        case gate_kind::trigger: return "trigger";
    }
    return "?";
}

gate_id pl_netlist::add_gate(gate_kind kind, std::string name) {
    pl_gate g;
    g.kind = kind;
    g.name = std::move(name);
    gates_.push_back(std::move(g));
    const gate_id id = static_cast<gate_id>(gates_.size() - 1);
    if (kind == gate_kind::source) sources_.push_back(id);
    if (kind == gate_kind::sink) sinks_.push_back(id);
    return id;
}

void pl_netlist::set_function(gate_id g, const bf::truth_table& fn) {
    if (gates_[g].kind != gate_kind::compute && gates_[g].kind != gate_kind::trigger) {
        throw std::invalid_argument("set_function: gate has no LUT");
    }
    gates_[g].function = fn;
}

void pl_netlist::set_const_value(gate_id g, bool value) {
    if (gates_[g].kind != gate_kind::const_source) {
        throw std::invalid_argument("set_const_value: not a constant source");
    }
    gates_[g].const_value = value;
}

edge_id pl_netlist::add_data_edge(gate_id from, gate_id to, int to_pin,
                                  bool init_token, bool init_value) {
    if (from >= gates_.size() || to >= gates_.size()) {
        throw std::invalid_argument("add_data_edge: gate out of range");
    }
    pl_edge e;
    e.from = from;
    e.to = to;
    e.kind = edge_kind::data;
    e.to_pin = to_pin;
    e.init_token = init_token;
    e.init_value = init_value;
    edges_.push_back(e);
    const edge_id id = static_cast<edge_id>(edges_.size() - 1);
    gates_[from].out_edges.push_back(id);
    gates_[to].in_edges.push_back(id);
    if (to_pin >= 0) {
        auto& pins = gates_[to].data_in;
        if (to_pin != static_cast<int>(pins.size())) {
            throw std::invalid_argument("add_data_edge: pins must arrive in order");
        }
        pins.push_back(id);
    }
    return id;
}

edge_id pl_netlist::add_ack_edge(gate_id from, gate_id to, bool init_token) {
    if (from >= gates_.size() || to >= gates_.size()) {
        throw std::invalid_argument("add_ack_edge: gate out of range");
    }
    pl_edge e;
    e.from = from;
    e.to = to;
    e.kind = edge_kind::ack;
    e.init_token = init_token;
    edges_.push_back(e);
    const edge_id id = static_cast<edge_id>(edges_.size() - 1);
    gates_[from].out_edges.push_back(id);
    gates_[to].in_edges.push_back(id);
    return id;
}

gate_id pl_netlist::attach_trigger(gate_id master, const bf::truth_table& fn,
                                   std::uint32_t support_mask) {
    pl_gate& m = gates_[master];
    if (m.kind != gate_kind::compute) {
        throw std::invalid_argument("attach_trigger: master must be a compute gate");
    }
    if (m.trigger != k_invalid_gate) {
        throw std::logic_error("attach_trigger: master already has a trigger");
    }
    const std::vector<int> pins = bf::support_members(support_mask);
    if (fn.num_vars() != static_cast<int>(pins.size())) {
        throw std::invalid_argument("attach_trigger: function arity != support size");
    }

    const gate_id trig = add_gate(gate_kind::trigger, m.name.empty()
                                                          ? "ee"
                                                          : m.name + "_ee");
    gates_[trig].function = fn;
    gates_[trig].master = master;
    gates_[trig].trigger_support = support_mask;

    // Tap the master's selected input signals: a new data fanout edge from
    // each producer, plus the acknowledge feedback that keeps the new edge on
    // a single-token cycle.
    int pin = 0;
    for (int master_pin : pins) {
        // By value: add_data_edge below grows edges_ and would invalidate a
        // reference into it before init_token is read for the ack edge.
        const pl_edge src_edge = edges_[gates_[master].data_in[static_cast<std::size_t>(master_pin)]];
        const gate_id producer = src_edge.from;
        add_data_edge(producer, trig, pin++, src_edge.init_token, src_edge.init_value);
        add_ack_edge(trig, producer, !src_edge.init_token);
    }

    // The efire channel: trigger -> master data token each wave, acknowledged
    // by the master (the extra Muller-C element pair of Figure 2).
    const edge_id efire = add_data_edge(trig, master, -1, false, false);
    add_ack_edge(master, trig, true);

    gates_[master].trigger = trig;
    gates_[master].efire_in = efire;
    return trig;
}

std::size_t pl_netlist::num_pl_gates() const {
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(), [](const pl_gate& g) {
            return g.kind == gate_kind::compute || g.kind == gate_kind::through;
        }));
}

std::size_t pl_netlist::num_trigger_gates() const {
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(),
                      [](const pl_gate& g) { return g.kind == gate_kind::trigger; }));
}

std::size_t pl_netlist::num_ack_edges() const {
    return static_cast<std::size_t>(
        std::count_if(edges_.begin(), edges_.end(),
                      [](const pl_edge& e) { return e.kind == edge_kind::ack; }));
}

marked_graph pl_netlist::to_marked_graph() const {
    marked_graph mg(gates_.size());
    for (const pl_edge& e : edges_) {
        mg.add_edge(e.from, e.to, e.init_token ? 1 : 0);
    }
    return mg;
}

mg_report pl_netlist::verify() const { return to_marked_graph().verify(); }

std::vector<int> pl_netlist::arrival_depth() const {
    // Longest path over token-free data edges.  depth[g] is the arrival
    // depth of g's *output* signal: 0 for token-providing gates (sources,
    // constant sources, through registers), 1 + max(producer depths) for
    // compute/trigger gates.  Non-compute producers contribute 0, so only
    // compute->consumer edges constrain the processing order.
    std::vector<int> in_depth(gates_.size(), 0);
    std::vector<int> depth(gates_.size(), 0);
    std::vector<int> indeg(gates_.size(), 0);
    auto is_gate = [this](gate_id g) {
        return gates_[g].kind == gate_kind::compute ||
               gates_[g].kind == gate_kind::trigger;
    };
    auto counts_for_depth = [this, &is_gate](const pl_edge& e) {
        return e.kind == edge_kind::data && !e.init_token && is_gate(e.from);
    };
    for (const pl_edge& e : edges_) {
        if (counts_for_depth(e)) ++indeg[e.to];
    }
    std::vector<gate_id> queue;
    for (gate_id g = 0; g < gates_.size(); ++g) {
        if (indeg[g] == 0) queue.push_back(g);
    }
    std::size_t processed = 0;
    while (!queue.empty()) {
        const gate_id g = queue.back();
        queue.pop_back();
        ++processed;
        if (is_gate(g)) {
            depth[g] = in_depth[g] + 1;
        } else if (gates_[g].kind == gate_kind::sink) {
            depth[g] = in_depth[g];  // observed output depth, for reporting
        } else {
            depth[g] = 0;  // token providers restart the wave at depth 0
        }
        for (edge_id idx : gates_[g].out_edges) {
            const pl_edge& e = edges_[idx];
            if (!counts_for_depth(e)) continue;
            in_depth[e.to] = std::max(in_depth[e.to], depth[g]);
            if (--indeg[e.to] == 0) queue.push_back(e.to);
        }
    }
    if (processed != gates_.size()) {
        throw std::logic_error("arrival_depth: combinational cycle in data edges");
    }
    return depth;
}

std::string pl_netlist::to_dot(const std::string& graph_name) const {
    std::ostringstream os;
    os << "digraph " << graph_name << " {\n  rankdir=LR;\n";
    for (gate_id g = 0; g < gates_.size(); ++g) {
        os << "  g" << g << " [label=\"" << to_string(gates_[g].kind);
        if (!gates_[g].name.empty()) os << "\\n" << gates_[g].name;
        os << "\", shape="
           << (gates_[g].kind == gate_kind::trigger ? "diamond" : "ellipse") << "];\n";
    }
    for (const pl_edge& e : edges_) {
        os << "  g" << e.from << " -> g" << e.to;
        os << " [style=" << (e.kind == edge_kind::ack ? "dashed" : "solid");
        if (e.init_token) os << ", label=\"*\"";
        os << "];\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace plee::pl
