#include "plogic/pl_mapper.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "plogic/bit_matrix.hpp"

namespace plee::pl {

namespace {

/// Token-free-data-subgraph reachability used by the feedback optimizer.
struct data_reach {
    bit_matrix reach0;    ///< reachable crossing only token-free data edges
    bit_matrix reach_le1; ///< reachable crossing at most one marked data edge
    std::vector<int> topo_pos;  ///< position in token-free topological order
};

data_reach analyze_data_reach(const pl_netlist& pl) {
    const std::size_t n = pl.num_gates();
    data_reach r{bit_matrix(n, n), bit_matrix(n, n), std::vector<int>(n, 0)};

    // Kahn order over token-free data edges.  The synchronous source was
    // combinationally acyclic, so this subgraph is a DAG.
    std::vector<int> indeg(n, 0);
    for (const pl_edge& e : pl.edges()) {
        if (e.kind == edge_kind::data && !e.init_token) ++indeg[e.to];
    }
    std::vector<gate_id> queue;
    std::vector<gate_id> topo;
    topo.reserve(n);
    for (gate_id g = 0; g < n; ++g) {
        if (indeg[g] == 0) queue.push_back(g);
    }
    while (!queue.empty()) {
        const gate_id g = queue.back();
        queue.pop_back();
        r.topo_pos[g] = static_cast<int>(topo.size());
        topo.push_back(g);
        for (edge_id idx : pl.gate(g).out_edges) {
            const pl_edge& e = pl.edge(idx);
            if (e.kind == edge_kind::data && !e.init_token && --indeg[e.to] == 0) {
                queue.push_back(e.to);
            }
        }
    }
    if (topo.size() != n) {
        throw std::logic_error("map_to_phased_logic: cyclic token-free data subgraph");
    }

    // Reverse-topological DP, two passes: reach0 first (marked edges may
    // point anywhere in the order, so reach_le1 needs reach0 complete).
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const gate_id v = *it;
        r.reach0.set(v, v);
        for (edge_id idx : pl.gate(v).out_edges) {
            const pl_edge& e = pl.edge(idx);
            if (e.kind == edge_kind::data && !e.init_token) r.reach0.or_row(v, e.to);
        }
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const gate_id v = *it;
        r.reach_le1.set(v, v);
        for (edge_id idx : pl.gate(v).out_edges) {
            const pl_edge& e = pl.edge(idx);
            if (e.kind != edge_kind::data) continue;
            if (!e.init_token) {
                r.reach_le1.or_row(v, e.to);
            } else {
                r.reach_le1.or_row_from(v, r.reach0, e.to);
            }
        }
    }
    return r;
}

/// Inserts identity-LUT slack buffers on register-to-register data edges
/// that lie on an all-register cycle.  Two adjacent "full" self-timed stages
/// cannot exchange tokens without an empty slot between them: the data edges
/// of such a cycle all carry initial tokens, so the corresponding acknowledge
/// edges are all empty and would form a token-free directed cycle (deadlock).
/// A buffer stage — functionally a wire — restores the needed slack.  Linear
/// register chains (shift registers) drain from the tail and need no buffers.
nl::netlist insert_register_slack(const nl::netlist& src, bool& changed) {
    // Strongly connected components of the DFF->DFF direct-connection graph.
    const std::vector<nl::cell_id>& dffs = src.dffs();
    std::map<nl::cell_id, std::size_t> dff_index;
    for (std::size_t i = 0; i < dffs.size(); ++i) dff_index.emplace(dffs[i], i);

    // Union-find over mutual reachability is overkill at this scale; a simple
    // DFS-based SCC (Tarjan) over at most |dffs| nodes suffices.
    const std::size_t n = dffs.size();
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t i = 0; i < n; ++i) {
        const nl::cell_id d = src.at(dffs[i]).fanins.front();
        if (auto it = dff_index.find(d); it != dff_index.end()) {
            adj[i].push_back(it->second);  // edge: this DFF's D comes from that DFF
        }
    }
    // Each node has out-degree <= 1 here (one D input), so SCCs are simple
    // cycles; find them by walking successor chains.
    std::vector<int> color(n, 0);  // 0 unvisited, 1 on-path, 2 done
    std::vector<char> on_cycle(n, 0);
    for (std::size_t start = 0; start < n; ++start) {
        if (color[start] != 0) continue;
        std::vector<std::size_t> path;
        std::size_t v = start;
        while (true) {
            if (color[v] == 1) {
                // Found a cycle: mark every node from v's first occurrence.
                bool in = false;
                for (std::size_t p : path) {
                    if (p == v) in = true;
                    if (in) on_cycle[p] = 1;
                }
                break;
            }
            if (color[v] == 2) break;
            color[v] = 1;
            path.push_back(v);
            if (adj[v].empty()) break;
            v = adj[v].front();
        }
        for (std::size_t p : path) color[p] = 2;
    }

    changed = false;
    for (std::size_t i = 0; i < n; ++i) changed = changed || on_cycle[i];
    if (!changed) return src;

    nl::netlist out = src;
    const bf::truth_table identity = bf::truth_table::variable(1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (!on_cycle[i]) continue;
        const nl::cell_id dff = dffs[i];
        const nl::cell_id d = out.at(dff).fanins.front();
        const nl::cell_id buffer = out.add_lut(identity, {d}, "slack");
        out.set_dff_input(dff, buffer);
    }
    return out;
}

}  // namespace

map_result map_to_phased_logic(const nl::netlist& input, const map_options& options) {
    input.validate();
    if (!input.respects_fanin_limit(bf::k_max_vars)) {
        throw std::invalid_argument(
            "map_to_phased_logic: netlist exceeds the PL gate fanin budget");
    }
    bool patched = false;
    const nl::netlist nl = insert_register_slack(input, patched);

    map_result result;
    result.stats.slack_buffers = nl.num_cells() - input.num_cells();
    pl_netlist& pl = result.pl;
    result.gate_of_cell.assign(nl.num_cells(), k_invalid_gate);

    // --- Gates ---------------------------------------------------------------
    for (nl::cell_id id = 0; id < nl.num_cells(); ++id) {
        const nl::cell& c = nl.at(id);
        gate_id g = k_invalid_gate;
        switch (c.kind) {
            case nl::cell_kind::input:
                g = pl.add_gate(gate_kind::source, c.name);
                break;
            case nl::cell_kind::constant:
                g = pl.add_gate(gate_kind::const_source,
                                c.const_value ? "const1" : "const0");
                pl.set_const_value(g, c.const_value);
                break;
            case nl::cell_kind::lut:
                g = pl.add_gate(gate_kind::compute, c.name);
                pl.set_function(g, c.function);
                break;
            case nl::cell_kind::dff:
                g = pl.add_gate(gate_kind::through, c.name);
                break;
            case nl::cell_kind::output:
                g = pl.add_gate(gate_kind::sink, c.name);
                break;
        }
        result.gate_of_cell[id] = g;
    }

    // --- Data edges ------------------------------------------------------------
    auto edge_marking = [&](nl::cell_id producer) {
        const nl::cell& p = nl.at(producer);
        return std::pair<bool, bool>{p.kind == nl::cell_kind::dff, p.init_value};
    };
    for (nl::cell_id id = 0; id < nl.num_cells(); ++id) {
        const nl::cell& c = nl.at(id);
        const gate_id g = result.gate_of_cell[id];
        for (std::size_t pin = 0; pin < c.fanins.size(); ++pin) {
            const nl::cell_id producer = c.fanins[pin];
            const auto [token, value] = edge_marking(producer);
            pl.add_data_edge(result.gate_of_cell[producer], g, static_cast<int>(pin),
                             token, value);
        }
    }

    // --- Acknowledge feedback insertion -----------------------------------------
    // Collect the distinct (producer, consumer, marking) fanout pairs.
    std::map<std::pair<gate_id, gate_id>, bool> fanout_pairs;  // -> data marking
    for (const pl_edge& e : pl.edges()) {
        if (e.kind == edge_kind::data) {
            fanout_pairs.emplace(std::make_pair(e.from, e.to), e.init_token);
        }
    }

    if (options.share_feedbacks) {
        const data_reach reach = analyze_data_reach(pl);

        // Pass 1: natural-cycle elimination.
        // Group the surviving pairs by producer for the sharing pass.
        std::map<gate_id, std::vector<std::pair<gate_id, bool>>> by_producer;
        for (const auto& [pair, marked] : fanout_pairs) {
            const auto [u, v] = pair;
            const bool covered = marked ? reach.reach0.test(v, u)
                                        : reach.reach_le1.test(v, u);
            if (covered) {
                ++result.stats.acks_saved_by_natural_cycles;
            } else {
                by_producer[u].emplace_back(v, marked);
            }
        }

        // Pass 2: sibling sharing.  Deeper consumers first: if a shallower
        // consumer reaches an acknowledged sibling token-free, the sibling's
        // ack closes its cycle too.
        for (auto& [u, consumers] : by_producer) {
            std::sort(consumers.begin(), consumers.end(),
                      [&](const auto& a, const auto& b) {
                          return reach.topo_pos[a.first] > reach.topo_pos[b.first];
                      });
            std::vector<gate_id> acked;
            for (const auto& [v, marked] : consumers) {
                const bool covered =
                    std::any_of(acked.begin(), acked.end(), [&](gate_id k) {
                        return v != k && reach.reach0.test(v, k);
                    });
                if (covered) {
                    ++result.stats.acks_saved_by_sharing;
                } else {
                    pl.add_ack_edge(v, u, !marked);
                    ++result.stats.acks_added;
                    acked.push_back(v);
                }
            }
        }
    } else {
        for (const auto& [pair, marked] : fanout_pairs) {
            // A self-loop data edge is its own single-token cycle; an ack
            // would add a token-free self-cycle (not live) when marked.
            if (pair.first == pair.second) continue;
            pl.add_ack_edge(pair.second, pair.first, !marked);
            ++result.stats.acks_added;
        }
    }

    if (options.verify) {
        const mg_report report = pl.verify();
        if (!report.ok()) {
            throw std::logic_error("map_to_phased_logic: marked graph invalid: " +
                                   report.violation);
        }
    }
    return result;
}

}  // namespace plee::pl
