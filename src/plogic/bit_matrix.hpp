// bit_matrix.hpp — flat V×V bit matrix used by the reachability analyses.
//
// Both the marked-graph safety checker and the PL mapper's feedback-sharing
// optimization need dense reachability over token-free subgraphs.  A packed
// row-major bit matrix keeps those O(V·E) dynamic programs fast at
// CPU-benchmark scale (thousands of gates).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plee::pl {

class bit_matrix {
public:
    bit_matrix(std::size_t rows, std::size_t cols)
        : words_per_row_((cols + 63) / 64), bits_(rows * words_per_row_, 0) {}

    void set(std::size_t r, std::size_t c) {
        bits_[r * words_per_row_ + c / 64] |= std::uint64_t{1} << (c % 64);
    }
    bool test(std::size_t r, std::size_t c) const {
        return (bits_[r * words_per_row_ + c / 64] >> (c % 64)) & 1u;
    }
    /// row[dst] |= row[src]
    void or_row(std::size_t dst, std::size_t src) {
        std::uint64_t* d = &bits_[dst * words_per_row_];
        const std::uint64_t* s = &bits_[src * words_per_row_];
        for (std::size_t w = 0; w < words_per_row_; ++w) d[w] |= s[w];
    }
    /// row[dst] |= other.row[src]
    void or_row_from(std::size_t dst, const bit_matrix& other, std::size_t src) {
        std::uint64_t* d = &bits_[dst * words_per_row_];
        const std::uint64_t* s = &other.bits_[src * words_per_row_];
        for (std::size_t w = 0; w < words_per_row_; ++w) d[w] |= s[w];
    }

private:
    std::size_t words_per_row_;
    std::vector<std::uint64_t> bits_;
};

}  // namespace plee::pl
