// ledr.hpp — Level-Encoded Dual-Rail (LEDR) signal encoding.
//
// "A data token is represented by a dual-rail signal that uses LEDR encoding"
// (Section 2).  A LEDR signal is a pair (v, t): v carries the logic value as
// in a single-rail system, and the phase of the token is p = v XOR t.
// Successive tokens on a wire alternate between even (p = 0) and odd (p = 1)
// phase; because exactly one of {v, t} toggles per new token, the encoding is
// glitch-free across value changes — the property that makes PL circuits
// delay-insensitive.
//
// The event simulator works at the token level; this module provides the
// physical-encoding view used by the gate-structure demos (Figure 1) and the
// equivalence tests between the two views.

#pragma once

#include <string>
#include <vector>

namespace plee::pl {

enum class phase : unsigned char { even = 0, odd = 1 };

inline phase opposite(phase p) { return p == phase::even ? phase::odd : phase::even; }

const char* to_string(phase p);

/// One LEDR-encoded wire state.
struct ledr_signal {
    bool v = false;  ///< logic value rail
    bool t = false;  ///< timing rail

    /// Token phase: p = v XOR t ("p = 1 denoting odd phase").
    phase signal_phase() const { return (v != t) ? phase::odd : phase::even; }

    /// Encodes the next token carrying `value`.  Exactly one rail toggles:
    /// the value rail if the value changes, otherwise the timing rail — so
    /// the phase always flips and the transition is single-rail.
    ledr_signal next_token(bool value) const;

    /// Number of rails that differ between two states (for the
    /// delay-insensitivity property tests).
    static int hamming(const ledr_signal& a, const ledr_signal& b);

    bool operator==(const ledr_signal&) const = default;

    std::string to_string() const;
};

/// Behavioural n-input Muller C-element: output switches to the common input
/// value when all inputs agree, otherwise holds state.  This is the
/// completion-detection primitive of the PL gate (Figure 1) and of the extra
/// control pair in an EE gate (Figure 2).
class muller_c {
public:
    explicit muller_c(bool initial = false) : state_(initial) {}

    /// Presents an input vector; returns the (possibly updated) output.
    bool update(const std::vector<bool>& inputs);

    bool output() const { return state_; }

private:
    bool state_;
};

}  // namespace plee::pl
