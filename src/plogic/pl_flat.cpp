#include "plogic/pl_flat.hpp"

namespace plee::pl {

flat_topology::flat_topology(const pl_netlist& pl) {
    const std::size_t num_gates = pl.num_gates();
    const std::size_t num_edges = pl.num_edges();

    edge_to.resize(num_edges);
    edge_is_ack.resize(num_edges);
    for (edge_id e = 0; e < num_edges; ++e) {
        const pl_edge& edge = pl.edge(e);
        edge_to[e] = edge.to;
        edge_is_ack[e] = edge.kind == edge_kind::ack ? 1 : 0;
        if (edge.kind == edge_kind::data) ++num_data_edges;
    }

    in_off.assign(num_gates + 1, 0);
    data_off.assign(num_gates + 1, 0);
    out_off.assign(num_gates + 1, 0);
    for (gate_id g = 0; g < num_gates; ++g) {
        const pl_gate& gate = pl.gate(g);
        in_off[g + 1] = in_off[g] + static_cast<std::uint32_t>(gate.in_edges.size());
        data_off[g + 1] =
            data_off[g] + static_cast<std::uint32_t>(gate.data_in.size());
        out_off[g + 1] =
            out_off[g] + static_cast<std::uint32_t>(gate.out_edges.size());
    }
    in_flat.reserve(in_off[num_gates]);
    data_flat.reserve(data_off[num_gates]);
    out_flat.reserve(out_off[num_gates]);
    for (gate_id g = 0; g < num_gates; ++g) {
        const pl_gate& gate = pl.gate(g);
        in_flat.insert(in_flat.end(), gate.in_edges.begin(), gate.in_edges.end());
        data_flat.insert(data_flat.end(), gate.data_in.begin(), gate.data_in.end());
        out_flat.insert(out_flat.end(), gate.out_edges.begin(), gate.out_edges.end());
    }
}

}  // namespace plee::pl
