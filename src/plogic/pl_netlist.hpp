// pl_netlist.hpp — Phased Logic netlists.
//
// A PL netlist is the self-timed image of a synchronous LUT4+DFF netlist:
//  * every LUT becomes a *compute* gate (fires when a token is present on
//    every input: completion detection by the Muller-C element of Figure 1);
//  * every DFF becomes a *through* gate whose output edges carry an initial
//    token holding the register's reset value;
//  * primary inputs/outputs become environment *source*/*sink* gates;
//  * acknowledge feedback edges close every signal into a directed circuit,
//    creating the unit-depth token queues of Section 2.1.
//
// Early Evaluation (Section 3) adds *trigger* gates: a trigger taps a subset
// of its master's input signals, computes the trigger function, and sends an
// "efire" token to the master.  A 1-valued efire token lets the master emit
// its output before the remaining inputs arrive; handshaking still consumes
// every input token, so the marked-graph marking invariants are preserved.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bool/truth_table.hpp"
#include "netlist/netlist.hpp"
#include "plogic/marked_graph.hpp"

namespace plee::pl {

using gate_id = std::uint32_t;
using edge_id = std::uint32_t;
inline constexpr gate_id k_invalid_gate = 0xffffffffu;
inline constexpr edge_id k_invalid_edge = 0xffffffffu;

enum class gate_kind : std::uint8_t {
    source,        ///< environment driver of a primary input (new token per wave)
    const_source,  ///< re-emits a constant-valued token every wave
    sink,          ///< environment consumer of a primary output
    compute,       ///< LUT4 gate (the paper's PL gate)
    through,       ///< register gate: identity function, initially marked outputs
    trigger,       ///< Early Evaluation trigger gate
};

const char* to_string(gate_kind kind);

enum class edge_kind : std::uint8_t {
    data,  ///< carries valued tokens producer -> consumer
    ack,   ///< acknowledge feedback consumer -> producer (pure control)
};

struct pl_edge {
    gate_id from = k_invalid_gate;
    gate_id to = k_invalid_gate;
    edge_kind kind = edge_kind::data;
    /// LUT pin index at the consumer for data edges into compute/trigger
    /// gates; -1 otherwise.
    int to_pin = -1;
    bool init_token = false;  ///< marking: one initial token present
    bool init_value = false;  ///< value of the initial token (data edges)
};

struct pl_gate {
    gate_kind kind = gate_kind::compute;
    std::string name;
    bf::truth_table function{0};  ///< compute/trigger; arity == data pin count
    bool const_value = false;     ///< const_source only

    std::vector<edge_id> in_edges;   ///< all incoming (data + ack + efire)
    std::vector<edge_id> out_edges;  ///< all outgoing
    std::vector<edge_id> data_in;    ///< pin-ordered data inputs (LUT operands)

    // Early Evaluation pairing.
    gate_id trigger = k_invalid_gate;   ///< master gate: its trigger, if any
    gate_id master = k_invalid_gate;    ///< trigger gate: its master
    edge_id efire_in = k_invalid_edge;  ///< master gate: edge carrying efire
    std::uint32_t trigger_support = 0;  ///< trigger gate: pin mask of master inputs
};

class pl_netlist {
public:
    // --- Construction ------------------------------------------------------
    gate_id add_gate(gate_kind kind, std::string name = "");
    void set_function(gate_id g, const bf::truth_table& fn);
    void set_const_value(gate_id g, bool value);
    /// Adds a data edge; for compute/trigger consumers, `to_pin` must be the
    /// LUT operand position and arrive in ascending pin order.
    edge_id add_data_edge(gate_id from, gate_id to, int to_pin, bool init_token,
                          bool init_value);
    edge_id add_ack_edge(gate_id from, gate_id to, bool init_token);

    /// Wires a trigger gate for `master` computing `fn` over the master pins
    /// selected by `support_mask` (taps the same producer signals, adds the
    /// efire data edge and all acknowledge feedback).  Returns the trigger id.
    gate_id attach_trigger(gate_id master, const bf::truth_table& fn,
                           std::uint32_t support_mask);

    // --- Access -------------------------------------------------------------
    std::size_t num_gates() const { return gates_.size(); }
    std::size_t num_edges() const { return edges_.size(); }
    const pl_gate& gate(gate_id g) const { return gates_[g]; }
    const pl_edge& edge(edge_id e) const { return edges_[e]; }
    const std::vector<pl_gate>& gates() const { return gates_; }
    const std::vector<pl_edge>& edges() const { return edges_; }

    const std::vector<gate_id>& sources() const { return sources_; }
    const std::vector<gate_id>& sinks() const { return sinks_; }

    /// The paper's "PL Gates" area unit: compute + through gates.
    std::size_t num_pl_gates() const;
    /// The paper's "EE Gates" column: trigger gates added by the EE pass.
    std::size_t num_trigger_gates() const;
    std::size_t num_ack_edges() const;

    // --- Analysis -----------------------------------------------------------
    /// Marked-graph image (tokens = initial markings) for verification.
    marked_graph to_marked_graph() const;
    /// Full well-formed / live / safe verification.
    mg_report verify() const;

    /// Arrival depth of each gate's output signal: "the maximum path length
    /// in terms of PL gates from the primary circuit inputs" (Section 3).
    /// Sources, constant sources and through gates provide tokens at wave
    /// start (depth 0); a compute/trigger gate adds one gate of depth.
    std::vector<int> arrival_depth() const;

    std::string to_dot(const std::string& graph_name = "pl") const;

private:
    std::vector<pl_gate> gates_;
    std::vector<pl_edge> edges_;
    std::vector<gate_id> sources_;
    std::vector<gate_id> sinks_;
};

}  // namespace plee::pl
