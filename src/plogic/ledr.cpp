#include "plogic/ledr.hpp"

#include <vector>

namespace plee::pl {

const char* to_string(phase p) { return p == phase::even ? "even" : "odd"; }

ledr_signal ledr_signal::next_token(bool value) const {
    ledr_signal n;
    n.v = value;
    // Phase must flip; t is chosen so that exactly one rail toggles.
    const phase target = opposite(signal_phase());
    n.t = (target == phase::odd) ? !n.v : n.v;
    return n;
}

int ledr_signal::hamming(const ledr_signal& a, const ledr_signal& b) {
    return static_cast<int>(a.v != b.v) + static_cast<int>(a.t != b.t);
}

std::string ledr_signal::to_string() const {
    std::string s = "(v=";
    s += v ? '1' : '0';
    s += ",t=";
    s += t ? '1' : '0';
    s += ",";
    s += plee::pl::to_string(signal_phase());
    s += ")";
    return s;
}

bool muller_c::update(const std::vector<bool>& inputs) {
    if (inputs.empty()) return state_;
    bool all_one = true;
    bool all_zero = true;
    for (bool b : inputs) {
        all_one = all_one && b;
        all_zero = all_zero && !b;
    }
    if (all_one) state_ = true;
    if (all_zero) state_ = false;
    return state_;
}

}  // namespace plee::pl
