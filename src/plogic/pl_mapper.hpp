// pl_mapper.hpp — direct mapping from synchronous netlists to Phased Logic.
//
// Implements the Linder/Harden direct-mapping rules the paper relies on
// ("direct mapping from synchronous digital circuitry to PL circuitry is
// possible"): LUT -> compute gate, DFF -> through gate with initially marked
// outputs, ports -> environment source/sink gates, and acknowledge feedback
// insertion so every signal joins a live and safe directed circuit.
//
// Feedback economy (Section 1: "multiple output signals can be covered by
// the same feedback signal, and some output signals need no feedback signal
// if they are already part of a loop") is implemented as two analyses over
// the token-free data subgraph:
//   1. natural-cycle elimination: a data edge already on a single-token
//      directed circuit of data edges (e.g. FSM state loops) needs no ack;
//   2. sibling sharing: among consumers of one producer, a consumer that
//      reaches an acknowledged sibling consumer token-free is covered by the
//      sibling's ack.
// The mapper re-verifies the final marked graph (live + safe + well-formed)
// and throws if the optimization ever produced an invalid network.

#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "plogic/pl_netlist.hpp"

namespace plee::pl {

struct map_options {
    /// Apply the feedback-sharing optimizations.  When false every data edge
    /// gets its own acknowledge edge (always correct, maximally conservative).
    bool share_feedbacks = true;
    /// Run full marked-graph verification after mapping (recommended; the
    /// mapper throws std::logic_error when verification fails).
    bool verify = true;
};

struct map_stats {
    std::size_t acks_added = 0;
    std::size_t acks_saved_by_natural_cycles = 0;
    std::size_t acks_saved_by_sharing = 0;
    /// Identity buffers inserted on register-only cycles (see
    /// insert_register_slack in the implementation): two adjacent initially
    /// full self-timed stages need an empty slot between them or their
    /// acknowledge edges form a token-free (dead) cycle.
    std::size_t slack_buffers = 0;
};

struct map_result {
    pl_netlist pl;
    /// Synchronous cell id -> PL gate id (k_invalid_gate for none).
    std::vector<gate_id> gate_of_cell;
    map_stats stats;
};

/// Maps a validated synchronous netlist to a Phased Logic netlist.
map_result map_to_phased_logic(const nl::netlist& nl, const map_options& options = {});

}  // namespace plee::pl
