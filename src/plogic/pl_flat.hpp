// pl_flat.hpp — CSR (compressed sparse row) flattening of a pl_netlist.
//
// The simulation hot path visits a gate's in_edges / data_in / out_edges on
// every firing.  In pl_netlist those live as one std::vector per gate, so a
// firing chases three heap-allocated vector headers scattered with the rest
// of the (string-carrying) pl_gate records.  flat_topology rebuilds the same
// adjacency once per netlist as offset + flat-id arrays: one contiguous
// edge-id pool per relation, indexed by [off[g], off[g+1]), plus per-edge
// consumer/kind arrays so `place` never touches pl_edge records either.
//
// The flattening is purely structural (no per-run state) and is shared by
// both event-queue engines of sim::pl_simulator; it is equally usable by any
// other pass that walks PL adjacency at scale.

#pragma once

#include <cstdint>
#include <vector>

#include "plogic/pl_netlist.hpp"

namespace plee::pl {

struct flat_topology {
    flat_topology() = default;
    explicit flat_topology(const pl_netlist& pl);

    // --- Per-edge arrays, indexed by edge_id -------------------------------
    std::vector<gate_id> edge_to;         ///< consumer gate of each edge
    std::vector<std::uint8_t> edge_is_ack;  ///< 1 iff edge_kind::ack

    // --- CSR adjacency, indexed by gate_id ---------------------------------
    // Gate g's incoming edges are in_flat[in_off[g] .. in_off[g+1]).
    std::vector<std::uint32_t> in_off;
    std::vector<edge_id> in_flat;
    // Pin-ordered LUT operand edges: data_flat[data_off[g] .. data_off[g+1]).
    std::vector<std::uint32_t> data_off;
    std::vector<edge_id> data_flat;
    // Outgoing edges: out_flat[out_off[g] .. out_off[g+1]).
    std::vector<std::uint32_t> out_off;
    std::vector<edge_id> out_flat;

    std::size_t num_data_edges = 0;  ///< edges with edge_kind::data
};

}  // namespace plee::pl
