// marked_graph.hpp — marked graphs and the live/safe verification theory.
//
// "A PL netlist can be thought of as a marked graph with data tokens flowing
// throughout the graph. ... for correct operation of a PL system, the marked
// graph equivalent had to be both live and safe" (Section 2).
//
//  * well-formed: every edge lies on a directed cycle ("every signal must be
//    part of a directed circuit");
//  * live:        no directed cycle is token-free (firing can always
//    continue; a liveness problem means "no token circulation");
//  * safe:        no edge can ever hold more than one token.  For a live
//    marked graph, the maximum occupancy of an edge equals the minimum token
//    count over directed cycles through it (Commoner et al. 1971 / Murata),
//    so safety reduces to: every edge lies on a cycle carrying exactly one
//    token.
//
// The checks run in O(V·E/64) using bitset reachability over the token-free
// subgraph, which keeps full verification practical even for the
// multi-thousand-gate CPU benchmarks.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace plee::pl {

using node_id = std::uint32_t;

struct mg_edge {
    node_id from = 0;
    node_id to = 0;
    int tokens = 0;
};

struct mg_report {
    bool well_formed = false;
    bool live = false;
    bool safe = false;
    /// Human-readable description of the first violation found, if any.
    std::string violation;

    bool ok() const { return well_formed && live && safe; }
};

/// A directed graph with a token marking on edges.
class marked_graph {
public:
    explicit marked_graph(std::size_t num_nodes = 0);

    node_id add_node();
    /// Adds an edge carrying `tokens` initial tokens; returns its index.
    std::size_t add_edge(node_id from, node_id to, int tokens);

    std::size_t num_nodes() const { return num_nodes_; }
    std::size_t num_edges() const { return edges_.size(); }
    const std::vector<mg_edge>& edges() const { return edges_; }

    /// Total tokens in the marking (invariant under firing on each cycle).
    int total_tokens() const;

    /// Fires `node`: requires one token on every in-edge; moves one token
    /// from each in-edge to each out-edge.  Returns false (no change) when
    /// the node is not enabled.  Used by the abstract token-flow tests.
    bool fire(node_id node);

    /// True when every in-edge of `node` carries at least one token.
    bool enabled(node_id node) const;

    /// Runs the full well-formed / live / safe analysis.
    mg_report verify() const;

private:
    std::size_t num_nodes_;
    std::vector<mg_edge> edges_;
    std::vector<std::vector<std::size_t>> out_edges_;  ///< per node
    std::vector<std::vector<std::size_t>> in_edges_;   ///< per node
};

}  // namespace plee::pl
