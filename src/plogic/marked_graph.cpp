#include "plogic/marked_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "plogic/bit_matrix.hpp"

namespace plee::pl {

marked_graph::marked_graph(std::size_t num_nodes)
    : num_nodes_(num_nodes), out_edges_(num_nodes), in_edges_(num_nodes) {}

node_id marked_graph::add_node() {
    out_edges_.emplace_back();
    in_edges_.emplace_back();
    return static_cast<node_id>(num_nodes_++);
}

std::size_t marked_graph::add_edge(node_id from, node_id to, int tokens) {
    if (from >= num_nodes_ || to >= num_nodes_) {
        throw std::invalid_argument("marked_graph::add_edge: node out of range");
    }
    if (tokens < 0) {
        throw std::invalid_argument("marked_graph::add_edge: negative marking");
    }
    const std::size_t idx = edges_.size();
    edges_.push_back({from, to, tokens});
    out_edges_[from].push_back(idx);
    in_edges_[to].push_back(idx);
    return idx;
}

int marked_graph::total_tokens() const {
    int total = 0;
    for (const mg_edge& e : edges_) total += e.tokens;
    return total;
}

bool marked_graph::enabled(node_id node) const {
    for (std::size_t idx : in_edges_[node]) {
        if (edges_[idx].tokens < 1) return false;
    }
    return true;
}

bool marked_graph::fire(node_id node) {
    if (!enabled(node)) return false;
    for (std::size_t idx : in_edges_[node]) --edges_[idx].tokens;
    for (std::size_t idx : out_edges_[node]) ++edges_[idx].tokens;
    return true;
}

mg_report marked_graph::verify() const {
    mg_report report;
    const std::size_t n = num_nodes_;

    // ---- Well-formedness: every edge inside one strongly connected
    // component (iterative Tarjan).
    {
        std::vector<int> index(n, -1), lowlink(n, 0), scc(n, -1);
        std::vector<char> on_stack(n, 0);
        std::vector<node_id> stack;
        int next_index = 0, next_scc = 0;

        struct frame {
            node_id v;
            std::size_t edge_pos;
        };
        for (node_id root = 0; root < n; ++root) {
            if (index[root] != -1) continue;
            std::vector<frame> call{{root, 0}};
            index[root] = lowlink[root] = next_index++;
            stack.push_back(root);
            on_stack[root] = 1;
            while (!call.empty()) {
                frame& f = call.back();
                if (f.edge_pos < out_edges_[f.v].size()) {
                    const node_id w = edges_[out_edges_[f.v][f.edge_pos++]].to;
                    if (index[w] == -1) {
                        index[w] = lowlink[w] = next_index++;
                        stack.push_back(w);
                        on_stack[w] = 1;
                        call.push_back({w, 0});
                    } else if (on_stack[w]) {
                        lowlink[f.v] = std::min(lowlink[f.v], index[w]);
                    }
                } else {
                    const node_id v = f.v;
                    call.pop_back();
                    if (!call.empty()) {
                        lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
                    }
                    if (lowlink[v] == index[v]) {
                        while (true) {
                            const node_id w = stack.back();
                            stack.pop_back();
                            on_stack[w] = 0;
                            scc[w] = next_scc;
                            if (w == v) break;
                        }
                        ++next_scc;
                    }
                }
            }
        }
        report.well_formed = true;
        for (std::size_t i = 0; i < edges_.size(); ++i) {
            const mg_edge& e = edges_[i];
            if (scc[e.from] != scc[e.to]) {
                report.well_formed = false;
                report.violation = "edge " + std::to_string(i) + " (" +
                                   std::to_string(e.from) + "->" + std::to_string(e.to) +
                                   ") lies on no directed cycle";
                break;
            }
        }
    }

    // ---- Liveness: the token-free subgraph must be acyclic (Kahn).
    std::vector<node_id> topo;  // token-free topological order
    {
        std::vector<int> indeg(n, 0);
        for (const mg_edge& e : edges_) {
            if (e.tokens == 0) ++indeg[e.to];
        }
        std::vector<node_id> queue;
        for (node_id v = 0; v < n; ++v) {
            if (indeg[v] == 0) queue.push_back(v);
        }
        while (!queue.empty()) {
            const node_id v = queue.back();
            queue.pop_back();
            topo.push_back(v);
            for (std::size_t idx : out_edges_[v]) {
                const mg_edge& e = edges_[idx];
                if (e.tokens == 0 && --indeg[e.to] == 0) queue.push_back(e.to);
            }
        }
        report.live = topo.size() == n;
        if (!report.live && report.violation.empty()) {
            report.violation = "token-free directed cycle (no token circulation possible)";
        }
    }

    // ---- Safety requires liveness for the occupancy theorem to apply.
    if (!report.live || !report.well_formed) {
        report.safe = false;
        return report;
    }

    // reach0[v]  = nodes reachable from v crossing only token-free edges.
    // reach_le1[v] = nodes reachable from v crossing at most one marked edge.
    // Both computed by DP in reverse token-free-topological order; marked
    // edges contribute reach0 of their head as "sinks" of the DP.
    // Pass 1: reach0 in reverse token-free-topological order (successors
    // along token-free edges are processed first).
    bit_matrix reach0(n, n);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const node_id v = *it;
        reach0.set(v, v);
        for (std::size_t idx : out_edges_[v]) {
            const mg_edge& e = edges_[idx];
            if (e.tokens == 0) reach0.or_row(v, e.to);
        }
    }
    // Pass 2: reach_le1, with reach0 fully available (a marked edge may jump
    // anywhere in the order, so this cannot be fused with pass 1).
    bit_matrix reach_le1(n, n);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const node_id v = *it;
        reach_le1.set(v, v);
        for (std::size_t idx : out_edges_[v]) {
            const mg_edge& e = edges_[idx];
            if (e.tokens == 0) {
                reach_le1.or_row(v, e.to);
            } else if (e.tokens == 1) {
                reach_le1.or_row_from(v, reach0, e.to);
            }
            // tokens >= 2 edges are unsafe on their own; handled below.
        }
    }

    report.safe = true;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        const mg_edge& e = edges_[i];
        bool edge_safe;
        if (e.tokens >= 2) {
            edge_safe = false;
        } else if (e.tokens == 1) {
            // Needs a token-free return path: the cycle then carries exactly
            // this edge's token.
            edge_safe = reach0.test(e.to, e.from);
        } else {
            // Needs a return path crossing exactly one marked edge.
            edge_safe = reach_le1.test(e.to, e.from);
        }
        if (!edge_safe) {
            report.safe = false;
            if (report.violation.empty()) {
                report.violation = "edge " + std::to_string(i) + " (" +
                                   std::to_string(e.from) + "->" + std::to_string(e.to) +
                                   ", m=" + std::to_string(e.tokens) +
                                   ") is on no single-token cycle";
            }
            break;
        }
    }
    return report;
}

}  // namespace plee::pl
