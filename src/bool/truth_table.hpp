// truth_table.hpp — dense complete Boolean functions over up to 6 variables.
//
// The Early Evaluation algorithm of Thornton et al. (DATE 2002) operates on
// LUT4 gate functions: every Phased Logic gate computes a Boolean function of
// at most four inputs.  A dense truth table in a single 64-bit word is the
// natural exact representation at that scale; it also covers the 5- and
// 6-input helper functions the synthesis front-end manipulates before
// technology mapping.
//
// Variable convention: bit v of a minterm index holds the value of variable v,
// i.e. minterm m assigns variable v the value (m >> v) & 1.  A 4-variable
// truth table's low 16 bits therefore coincide with the LUT4 configuration
// mask used throughout the netlist and phased-logic layers.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace plee::bf {

/// Maximum variable count representable by truth_table (64 = 2^6 rows).
inline constexpr int k_max_vars = 6;

/// A complete Boolean function of `num_vars()` variables stored as a bitmask
/// over all 2^n minterms.  Immutable-style value type: all algebraic
/// operations return new tables.
class truth_table {
public:
    /// Constructs the constant-0 function of `num_vars` variables.
    /// `num_vars` must be in [0, k_max_vars].
    explicit truth_table(int num_vars);

    /// Constructs from an explicit minterm bitmask; bits above 2^num_vars
    /// must be zero (checked).
    truth_table(int num_vars, std::uint64_t bits);

    /// The constant function of the given arity.
    static truth_table constant(int num_vars, bool value);

    /// The projection function x_var (0 <= var < num_vars).
    static truth_table variable(int num_vars, int var);

    /// Builds a table by evaluating `fn` on every minterm index.
    static truth_table from_function(int num_vars,
                                     const std::function<bool(std::uint32_t)>& fn);

    /// Parses a row string such as "0110" (minterm 0 first).  Length must be
    /// exactly 2^num_vars for some num_vars <= k_max_vars.
    static truth_table from_string(const std::string& rows);

    int num_vars() const { return num_vars_; }
    std::uint64_t bits() const { return bits_; }
    std::uint32_t num_minterms() const { return 1u << num_vars_; }

    bool eval(std::uint32_t minterm) const;
    void set(std::uint32_t minterm, bool value);

    /// Number of ON-set minterms.
    int count_ones() const;
    /// Number of OFF-set minterms.
    int count_zeros() const { return static_cast<int>(num_minterms()) - count_ones(); }

    bool is_constant_zero() const;
    bool is_constant_one() const;
    bool is_constant() const { return is_constant_zero() || is_constant_one(); }

    /// True when the function value changes with variable `var` for at least
    /// one assignment of the remaining variables.
    bool depends_on(int var) const;

    /// Bitmask of variables the function actually depends on.
    std::uint32_t support_mask() const;
    /// Number of variables in the support.
    int support_size() const;

    /// Shannon cofactor with respect to `var` = `value`.  The result has the
    /// same arity but no longer depends on `var`.
    truth_table cofactor(int var, bool value) const;

    /// Re-expresses the function over a wider variable set (new variables are
    /// vacuous).  new_num_vars must be >= num_vars().
    truth_table expand(int new_num_vars) const;

    /// Permutes variables: new variable `perm[v]` takes the role of old
    /// variable `v`.  `perm` must be a permutation of [0, num_vars).
    truth_table permute(const std::vector<int>& perm) const;

    truth_table operator~() const;
    truth_table operator&(const truth_table& other) const;
    truth_table operator|(const truth_table& other) const;
    truth_table operator^(const truth_table& other) const;

    bool operator==(const truth_table& other) const = default;

    /// Row string, minterm 0 first: full-adder carry (3 vars) -> "00010111".
    std::string to_string() const;

private:
    std::uint64_t full_mask() const;

    int num_vars_ = 0;
    std::uint64_t bits_ = 0;
};

}  // namespace plee::bf
