// truth_table.hpp — dense complete Boolean functions over up to 6 variables.
//
// The Early Evaluation algorithm of Thornton et al. (DATE 2002) operates on
// LUT4 gate functions: every Phased Logic gate computes a Boolean function of
// at most four inputs.  A dense truth table in a single 64-bit word is the
// natural exact representation at that scale; it also covers the 5- and
// 6-input helper functions the synthesis front-end manipulates before
// technology mapping.
//
// Variable convention: bit v of a minterm index holds the value of variable v,
// i.e. minterm m assigns variable v the value (m >> v) & 1.  A 4-variable
// truth table's low 16 bits therefore coincide with the LUT4 configuration
// mask used throughout the netlist and phased-logic layers.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace plee::bf {

/// Maximum variable count representable by truth_table (64 = 2^6 rows).
inline constexpr int k_max_vars = 6;

/// Dense projection tables over the full 6-variable space (ABC's s_Truths6):
/// bit m of k_var_mask[v] is (m >> v) & 1, i.e. the truth table of x_v.
/// Restricting to the low 2^n rows gives the same projection over n
/// variables, which is what turns every per-variable operation below into a
/// handful of shift/AND/popcount word instructions instead of a 2^n loop.
inline constexpr std::uint64_t k_var_mask[k_max_vars] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

/// A complete Boolean function of `num_vars()` variables stored as a bitmask
/// over all 2^n minterms.  Immutable-style value type: all algebraic
/// operations return new tables.
class truth_table {
public:
    /// Constructs the constant-0 function of `num_vars` variables.
    /// `num_vars` must be in [0, k_max_vars].
    explicit truth_table(int num_vars);

    /// Constructs from an explicit minterm bitmask; bits above 2^num_vars
    /// must be zero (checked).
    truth_table(int num_vars, std::uint64_t bits);

    /// The constant function of the given arity.
    static truth_table constant(int num_vars, bool value);

    /// The projection function x_var (0 <= var < num_vars).
    static truth_table variable(int num_vars, int var);

    /// Builds a table by evaluating `fn` on every minterm index.
    static truth_table from_function(int num_vars,
                                     const std::function<bool(std::uint32_t)>& fn);

    /// Parses a row string such as "0110" (minterm 0 first).  Length must be
    /// exactly 2^num_vars for some num_vars <= k_max_vars.
    static truth_table from_string(const std::string& rows);

    int num_vars() const { return num_vars_; }
    std::uint64_t bits() const { return bits_; }
    std::uint32_t num_minterms() const { return 1u << num_vars_; }

    bool eval(std::uint32_t minterm) const;
    void set(std::uint32_t minterm, bool value);

    /// Number of ON-set minterms.
    int count_ones() const;
    /// Number of OFF-set minterms.
    int count_zeros() const { return static_cast<int>(num_minterms()) - count_ones(); }

    bool is_constant_zero() const;
    bool is_constant_one() const;
    bool is_constant() const { return is_constant_zero() || is_constant_one(); }

    /// True when the function value changes with variable `var` for at least
    /// one assignment of the remaining variables.
    bool depends_on(int var) const;

    /// Bitmask of variables the function actually depends on.
    std::uint32_t support_mask() const;
    /// Number of variables in the support.
    int support_size() const;

    /// Shannon cofactor with respect to `var` = `value`.  The result has the
    /// same arity but no longer depends on `var`.
    truth_table cofactor(int var, bool value) const;

    /// Folds the variables outside `support` out of the function: the result
    /// is the AND (`conjunctive`) or OR of f over every assignment of the
    /// non-support variables, has the same arity, and no longer depends on
    /// the folded variables.  The conjunctive fold of f (resp. of ~f) marks
    /// the assignments whose cofactor is constant 1 (resp. constant 0) —
    /// the universally-determined region the trigger search needs.
    truth_table fold_free_vars(std::uint32_t support, bool conjunctive) const;

    /// Projects onto `support`: drops every non-support variable by taking
    /// its 0-cofactor and compacts the surviving variables downward in
    /// ascending order.  Result arity = |support|.  `support` must lie
    /// within the current variable range.
    truth_table shrink_to(std::uint32_t support) const;

    /// Inverse of shrink_to: re-expresses this k-variable function over
    /// `num_vars` variables with variable i taking the position of the i-th
    /// (ascending) member of `support`.  The result depends only on support
    /// variables; |support| must equal the current arity.
    truth_table expand_onto(std::uint32_t support, int num_vars) const;

    /// Re-expresses the function over a wider variable set (new variables are
    /// vacuous).  new_num_vars must be >= num_vars().
    truth_table expand(int new_num_vars) const;

    /// Permutes variables: new variable `perm[v]` takes the role of old
    /// variable `v`.  `perm` must be a permutation of [0, num_vars).
    truth_table permute(const std::vector<int>& perm) const;

    /// Negates the inputs selected by `mask`: the result g satisfies
    /// g(x) = f(x ^ mask).  One half-swap per set bit — this is the word
    /// kernel behind NPN canonicalization.  `mask` must lie within the
    /// variable range.
    truth_table negate_inputs(std::uint32_t mask) const;

    truth_table operator~() const;
    truth_table operator&(const truth_table& other) const;
    truth_table operator|(const truth_table& other) const;
    truth_table operator^(const truth_table& other) const;

    bool operator==(const truth_table& other) const = default;

    /// Row string, minterm 0 first: full-adder carry (3 vars) -> "00010111".
    std::string to_string() const;

private:
    std::uint64_t full_mask() const;

    int num_vars_ = 0;
    std::uint64_t bits_ = 0;
};

}  // namespace plee::bf
