// truth_table.hpp — dense complete Boolean functions over up to 8 variables.
//
// The Early Evaluation algorithm of Thornton et al. (DATE 2002) operates on
// LUT4 gate functions: every Phased Logic gate computes a Boolean function of
// at most four inputs.  A dense truth table is the natural exact
// representation at that scale, and the generalized-EE formulation the paper
// builds on is arity-independent — so the representation is a fixed word
// array: one 64-bit word covers every function of up to 6 variables (the
// LUT4 configuration mask lives in the low 16 bits of word 0, exactly as
// before), and 7- and 8-variable functions span 2 and 4 words.  Every kernel
// keeps a single-word fast path for the ≤6-variable case, so the word-
// parallel trigger search pays nothing for the generalization.
//
// Variable convention: bit v of a minterm index holds the value of variable
// v, i.e. minterm m assigns variable v the value (m >> v) & 1.  Minterm m
// lives in bit (m & 63) of word (m >> 6): variables 0..5 select a bit inside
// a word, variables 6..7 select the word.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace plee::bf {

/// Variables resolved inside one 64-bit word (64 = 2^6 rows).
inline constexpr int k_word_vars = 6;
/// Maximum variable count representable by truth_table (256 = 2^8 rows).
inline constexpr int k_max_vars = 8;
/// Words spanned by a full-width (k_max_vars) table.
inline constexpr int k_num_words = 1 << (k_max_vars - k_word_vars);

/// The raw storage of a truth table: minterm m is bit (m & 63) of word
/// (m >> 6).  Words beyond the active count and bits beyond 2^num_vars are
/// kept zero, so equality and hashing work on the plain array.
using tt_words = std::array<std::uint64_t, k_num_words>;

/// Words actually used by an `num_vars`-variable table (1 for <= 6 vars).
constexpr int words_for(int num_vars) {
    return num_vars <= k_word_vars ? 1 : 1 << (num_vars - k_word_vars);
}

/// Dense projection tables for the in-word variables over the full
/// 6-variable word (ABC's s_Truths6): bit m of k_var_mask[v] is (m >> v) & 1,
/// i.e. the truth table of x_v.  The same masks project variables 0..5 inside
/// every word of a multiword table; variables >= 6 are constant per word
/// (word w assigns variable 6+j the value (w >> j) & 1), which is what keeps
/// every per-variable operation below a handful of shift/AND/copy word
/// instructions instead of a 2^n loop.
inline constexpr std::uint64_t k_var_mask[k_word_vars] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

/// Masks for exchanging adjacent in-word variables j and j+1 in one
/// shift/mask step (the ABC PMasks): `keep` holds the rows where the two
/// variables agree, `up` the rows with (x_j, x_j+1) = (1, 0) — which move up
/// by 2^j — and `down` the rows with (0, 1), which move down by 2^j.
/// Exposed inline so single-word callers (the trigger-search fast path) can
/// run the swap entirely in registers.
struct adjacent_swap_masks {
    std::uint64_t keep, up, down;
};

inline constexpr adjacent_swap_masks k_swap_masks[k_word_vars - 1] = {
    {0x9999999999999999ull, 0x2222222222222222ull, 0x4444444444444444ull},
    {0xC3C3C3C3C3C3C3C3ull, 0x0C0C0C0C0C0C0C0Cull, 0x3030303030303030ull},
    {0xF00FF00FF00FF00Full, 0x00F000F000F000F0ull, 0x0F000F000F000F00ull},
    {0xFF0000FFFF0000FFull, 0x0000FF000000FF00ull, 0x00FF000000FF0000ull},
    {0xFFFF00000000FFFFull, 0x00000000FFFF0000ull, 0x0000FFFF00000000ull},
};

/// Exchanges adjacent variables j and j+1 (both < 6) within one word.
constexpr std::uint64_t swap_adjacent_word(std::uint64_t bits, int j) {
    const adjacent_swap_masks& m = k_swap_masks[j];
    const int s = 1 << j;
    return (bits & m.keep) | ((bits & m.up) << s) | ((bits & m.down) >> s);
}

/// A complete Boolean function of `num_vars()` variables stored as a bitmask
/// over all 2^n minterms.  Immutable-style value type: all algebraic
/// operations return new tables.
class truth_table {
public:
    /// Constructs the constant-0 function of `num_vars` variables.
    /// `num_vars` must be in [0, k_max_vars].
    explicit truth_table(int num_vars);

    /// Constructs from an explicit minterm bitmask over word 0; bits above
    /// 2^num_vars must be zero (checked).  For > 6 variables this fills the
    /// low 64 rows and leaves the remaining words zero.
    truth_table(int num_vars, std::uint64_t bits);

    /// Constructs from the full word array; bits beyond 2^num_vars rows must
    /// be zero (checked).
    truth_table(int num_vars, const tt_words& words);

    /// The constant function of the given arity.
    static truth_table constant(int num_vars, bool value);

    /// The projection function x_var (0 <= var < num_vars).
    static truth_table variable(int num_vars, int var);

    /// Builds a table by evaluating `fn` on every minterm index.
    static truth_table from_function(int num_vars,
                                     const std::function<bool(std::uint32_t)>& fn);

    /// Parses a row string such as "0110" (minterm 0 first).  Length must be
    /// exactly 2^num_vars for some num_vars <= k_max_vars.
    static truth_table from_string(const std::string& rows);

    int num_vars() const { return num_vars_; }
    /// Word 0 of the storage — the complete function for <= 6 variables (and
    /// the LUT4 mask in its low 16 bits), the low 64 rows otherwise.
    std::uint64_t bits() const { return words_[0]; }
    /// The full storage; words beyond num_words() are zero by invariant.
    const tt_words& words() const { return words_; }
    std::uint64_t word(int w) const { return words_[static_cast<std::size_t>(w)]; }
    int num_words() const { return words_for(num_vars_); }
    std::uint32_t num_minterms() const { return 1u << num_vars_; }

    bool eval(std::uint32_t minterm) const;
    void set(std::uint32_t minterm, bool value);

    /// Evaluates all 64 lanes of a bit-parallel assignment at once:
    /// `inputs[v]` carries variable v's value for 64 independent lanes (one
    /// bit per lane), and bit L of the result is f applied to lane L.  This
    /// is the batched entry point behind the lane-parallel simulators — one
    /// mux-tree reduction (~2^n word ops) replaces 64 scalar eval calls.
    std::uint64_t eval_lanes(const std::uint64_t* inputs) const {
        return eval_word_lanes(words_.data(), num_vars_, inputs);
    }

    /// The same kernel over raw storage, for callers that keep truth-table
    /// words outside a truth_table (the simulator's gate descriptors).
    /// `fn_words` must hold words_for(num_vars) valid words in the standard
    /// layout (minterm m = bit (m & 63) of word (m >> 6)).
    static std::uint64_t eval_word_lanes(const std::uint64_t* fn_words,
                                         int num_vars,
                                         const std::uint64_t* inputs);

    /// Number of ON-set minterms.
    int count_ones() const;
    /// Number of OFF-set minterms.
    int count_zeros() const { return static_cast<int>(num_minterms()) - count_ones(); }

    bool is_constant_zero() const;
    bool is_constant_one() const;
    bool is_constant() const { return is_constant_zero() || is_constant_one(); }

    /// True when the function value changes with variable `var` for at least
    /// one assignment of the remaining variables.
    bool depends_on(int var) const;

    /// Bitmask of variables the function actually depends on.
    std::uint32_t support_mask() const;
    /// Number of variables in the support.
    int support_size() const;

    /// Shannon cofactor with respect to `var` = `value`.  The result has the
    /// same arity but no longer depends on `var`.
    truth_table cofactor(int var, bool value) const;

    /// Folds the variables outside `support` out of the function: the result
    /// is the AND (`conjunctive`) or OR of f over every assignment of the
    /// non-support variables, has the same arity, and no longer depends on
    /// the folded variables.  The conjunctive fold of f (resp. of ~f) marks
    /// the assignments whose cofactor is constant 1 (resp. constant 0) —
    /// the universally-determined region the trigger search needs.
    truth_table fold_free_vars(std::uint32_t support, bool conjunctive) const;

    /// Projects onto `support`: drops every non-support variable by taking
    /// its 0-cofactor and compacts the surviving variables downward in
    /// ascending order.  Result arity = |support|.  `support` must lie
    /// within the current variable range.
    truth_table shrink_to(std::uint32_t support) const;

    /// Inverse of shrink_to: re-expresses this k-variable function over
    /// `num_vars` variables with variable i taking the position of the i-th
    /// (ascending) member of `support`.  The result depends only on support
    /// variables; |support| must equal the current arity.
    truth_table expand_onto(std::uint32_t support, int num_vars) const;

    /// Re-expresses the function over a wider variable set (new variables are
    /// vacuous).  new_num_vars must be >= num_vars().
    truth_table expand(int new_num_vars) const;

    /// Permutes variables: new variable `perm[v]` takes the role of old
    /// variable `v`.  `perm` must be a permutation of [0, num_vars).
    truth_table permute(const std::vector<int>& perm) const;

    /// Negates the inputs selected by `mask`: the result g satisfies
    /// g(x) = f(x ^ mask).  One half-swap (or word exchange) per set bit —
    /// this is the word kernel behind NPN canonicalization.  `mask` must lie
    /// within the variable range.
    truth_table negate_inputs(std::uint32_t mask) const;

    truth_table operator~() const;
    truth_table operator&(const truth_table& other) const;
    truth_table operator|(const truth_table& other) const;
    truth_table operator^(const truth_table& other) const;

    bool operator==(const truth_table& other) const = default;

    /// Row string, minterm 0 first: full-adder carry (3 vars) -> "00010111".
    std::string to_string() const;

private:
    std::uint64_t word0_mask() const;

    int num_vars_ = 0;
    tt_words words_{};
};

}  // namespace plee::bf
