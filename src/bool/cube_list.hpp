// cube_list.hpp — sum-of-products covers and Quine–McCluskey extraction.
//
// The paper's candidate-trigger construction (Section 3, Table 2) starts from
// cube lists for the master function's ON-set and OFF-set.  We reproduce that
// pipeline: a truth table is converted into an irredundant prime cover via
// Quine–McCluskey (exact prime generation + greedy covering — exact enough at
// LUT4 scale), and the Early Evaluation engine then scans the cover for cubes
// confined to each candidate support set.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bool/cube.hpp"
#include "bool/truth_table.hpp"

namespace plee::bf {

/// A disjunction of cubes over a fixed variable count.
class cube_list {
public:
    explicit cube_list(int num_vars);
    cube_list(int num_vars, std::vector<cube> cubes);

    int num_vars() const { return num_vars_; }
    const std::vector<cube>& cubes() const { return cubes_; }
    bool empty() const { return cubes_.empty(); }
    std::size_t size() const { return cubes_.size(); }

    void add(const cube& c);

    /// Disjunction evaluation: true when any cube contains the minterm.
    bool eval(std::uint32_t minterm) const;

    /// Dense form of the disjunction.
    truth_table to_truth_table() const;

    /// Number of distinct minterms covered by the union of all cubes.
    int count_covered_minterms() const;

    /// The sub-list of cubes whose bound variables all lie in `support`.
    cube_list restricted_to_support(std::uint32_t support) const;

    /// Human-readable list, e.g. "{00-, 11-}".
    std::string to_string() const;

private:
    int num_vars_;
    std::vector<cube> cubes_;
};

/// Quine–McCluskey prime-implicant generation for the ON-set of `f`.
/// Exact for the <= 8-variable functions used throughout this project.
std::vector<cube> prime_implicants(const truth_table& f);

/// Irredundant-ish SOP cover of `f`: all primes generated exactly, then a
/// deterministic greedy minterm cover (largest-coverage-first).  The result
/// is verified to be functionally equal to `f`.
cube_list isop_cover(const truth_table& f);

/// Convenience: SOP covers of the ON-set and OFF-set, as the paper's
/// trigger-derivation procedure consumes both ("both 0 and 1-valued"
/// minterms count toward coverage).
struct on_off_cover {
    cube_list on;
    cube_list off;
};
on_off_cover make_on_off_cover(const truth_table& f);

}  // namespace plee::bf
