#include "bool/cube.hpp"

#include <bit>
#include <stdexcept>

namespace plee::bf {

cube::cube(std::uint32_t care_mask, std::uint32_t value_mask)
    : care_mask_(care_mask), value_mask_(value_mask) {
    if ((value_mask & ~care_mask) != 0) {
        throw std::invalid_argument("cube: polarity bit set for unbound variable");
    }
}

cube cube::from_string(const std::string& s) {
    std::uint32_t care = 0;
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const std::uint32_t bit = 1u << i;  // variable 0 is the leftmost column
        switch (s[i]) {
            case '0': care |= bit; break;
            case '1': care |= bit; value |= bit; break;
            case '-': break;
            default:
                throw std::invalid_argument("cube::from_string: invalid character");
        }
    }
    return cube(care, value);
}

cube cube::minterm(int num_vars, std::uint32_t m) {
    const std::uint32_t care = (1u << num_vars) - 1;
    if ((m & ~care) != 0) {
        throw std::invalid_argument("cube::minterm: minterm out of range");
    }
    return cube(care, m);
}

int cube::num_literals() const { return std::popcount(care_mask_); }

bool cube::contains(std::uint32_t minterm) const {
    return (minterm & care_mask_) == value_mask_;
}

std::uint32_t cube::num_minterms(int num_vars) const {
    const int free_vars = num_vars - num_literals();
    if (free_vars < 0) {
        throw std::invalid_argument("cube::num_minterms: cube binds more vars than space");
    }
    return 1u << free_vars;
}

bool cube::within_support(std::uint32_t support) const {
    return (care_mask_ & ~support) == 0;
}

bool cube::covers(const cube& other) const {
    // Every constraint of this cube must be imposed (with equal polarity) by
    // `other`.
    return (care_mask_ & ~other.care_mask()) == 0 &&
           (other.value_mask() & care_mask_) == value_mask_;
}

bool cube::intersects(const cube& other) const {
    const std::uint32_t common = care_mask_ & other.care_mask();
    return (value_mask_ & common) == (other.value_mask() & common);
}

truth_table cube::to_truth_table(int num_vars) const {
    truth_table t(num_vars);
    for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        if (contains(m)) t.set(m, true);
    }
    return t;
}

std::string cube::to_string(int num_vars) const {
    std::string s(static_cast<std::size_t>(num_vars), '-');
    for (int v = 0; v < num_vars; ++v) {
        const std::uint32_t bit = 1u << v;
        if (care_mask_ & bit) s[static_cast<std::size_t>(v)] = (value_mask_ & bit) ? '1' : '0';
    }
    return s;
}

}  // namespace plee::bf
