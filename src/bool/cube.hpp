// cube.hpp — product terms in positional {0,1,-} notation.
//
// The paper derives candidate trigger functions "by processing the cube list
// representation of the f_ON and f_OFF functions for the master function"
// (Table 2).  A cube is a partial assignment of the master's input variables;
// a cube that mentions only variables inside a candidate support set
// contributes all of its minterms to that support set's coverage.

#pragma once

#include <cstdint>
#include <string>

#include "bool/truth_table.hpp"

namespace plee::bf {

/// A product term over `num_vars` variables, e.g. "00-" = a'b' over {a,b,c}.
/// Represented by two bitmasks: `care_mask` marks bound variables and
/// `value_mask` (a subset of `care_mask`) gives their polarities.
class cube {
public:
    /// The universal cube (all variables don't-care).
    cube() = default;

    cube(std::uint32_t care_mask, std::uint32_t value_mask);

    /// Parses positional notation with variable 0 leftmost, e.g. "1-0".
    /// This matches the paper's Table 2 layout where the column order is
    /// a b c and 'a' is variable 0.
    static cube from_string(const std::string& s);

    /// The cube containing exactly one minterm.
    static cube minterm(int num_vars, std::uint32_t m);

    std::uint32_t care_mask() const { return care_mask_; }
    std::uint32_t value_mask() const { return value_mask_; }

    /// Number of bound literals.
    int num_literals() const;

    /// True when the cube contains the given minterm.
    bool contains(std::uint32_t minterm) const;

    /// Number of minterms the cube covers in an `num_vars`-dimensional space.
    std::uint32_t num_minterms(int num_vars) const;

    /// True when every variable the cube binds lies inside `support` (a
    /// bitmask of allowed variables).  Such cubes survive restriction to the
    /// candidate trigger support set.
    bool within_support(std::uint32_t support) const;

    /// True when this cube's minterms are a superset of `other`'s.
    bool covers(const cube& other) const;

    /// True when the two cubes share at least one minterm.
    bool intersects(const cube& other) const;

    /// Dense truth table of the cube over `num_vars` variables.
    truth_table to_truth_table(int num_vars) const;

    /// Positional string with variable 0 leftmost, e.g. "00-".
    std::string to_string(int num_vars) const;

    bool operator==(const cube& other) const = default;

private:
    std::uint32_t care_mask_ = 0;
    std::uint32_t value_mask_ = 0;
};

}  // namespace plee::bf
