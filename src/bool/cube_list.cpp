#include "bool/cube_list.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

namespace plee::bf {

cube_list::cube_list(int num_vars) : num_vars_(num_vars) {
    if (num_vars < 0 || num_vars > k_max_vars) {
        throw std::invalid_argument("cube_list: arity must be in [0, 8]");
    }
}

cube_list::cube_list(int num_vars, std::vector<cube> cubes)
    : cube_list(num_vars) {
    cubes_ = std::move(cubes);
}

void cube_list::add(const cube& c) { cubes_.push_back(c); }

bool cube_list::eval(std::uint32_t minterm) const {
    return std::any_of(cubes_.begin(), cubes_.end(),
                       [minterm](const cube& c) { return c.contains(minterm); });
}

truth_table cube_list::to_truth_table() const {
    truth_table t(num_vars_);
    for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        if (eval(m)) t.set(m, true);
    }
    return t;
}

int cube_list::count_covered_minterms() const { return to_truth_table().count_ones(); }

cube_list cube_list::restricted_to_support(std::uint32_t support) const {
    cube_list out(num_vars_);
    for (const cube& c : cubes_) {
        if (c.within_support(support)) out.add(c);
    }
    return out;
}

std::string cube_list::to_string() const {
    std::string s = "{";
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        if (i > 0) s += ", ";
        s += cubes_[i].to_string(num_vars_);
    }
    s += "}";
    return s;
}

std::vector<cube> prime_implicants(const truth_table& f) {
    const int n = f.num_vars();

    // Classic tabular method.  Implicants are grouped by generation; two
    // implicants merge when they bind the same variables and differ in exactly
    // one polarity bit.  Unmerged implicants are prime.
    struct keyed {
        std::uint32_t care;
        std::uint32_t value;
        bool operator<(const keyed& o) const {
            return care != o.care ? care < o.care : value < o.value;
        }
    };

    std::set<keyed> current;
    for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
        if (f.eval(m)) current.insert({(1u << n) - 1, m});
    }

    std::vector<cube> primes;
    while (!current.empty()) {
        std::set<keyed> next;
        std::set<keyed> merged;
        const std::vector<keyed> items(current.begin(), current.end());
        for (std::size_t i = 0; i < items.size(); ++i) {
            for (std::size_t j = i + 1; j < items.size(); ++j) {
                if (items[i].care != items[j].care) continue;
                const std::uint32_t diff = items[i].value ^ items[j].value;
                if (std::popcount(diff) != 1) continue;
                next.insert({items[i].care & ~diff, items[i].value & ~diff});
                merged.insert(items[i]);
                merged.insert(items[j]);
            }
        }
        for (const keyed& k : items) {
            if (!merged.count(k)) primes.emplace_back(k.care, k.value);
        }
        current = std::move(next);
    }
    return primes;
}

cube_list isop_cover(const truth_table& f) {
    const int n = f.num_vars();
    cube_list cover(n);
    if (f.is_constant_zero()) return cover;
    if (f.is_constant_one()) {
        cover.add(cube(0, 0));
        return cover;
    }

    std::vector<cube> primes = prime_implicants(f);

    // Deterministic greedy covering: repeatedly take the prime covering the
    // most still-uncovered minterms; ties broken by fewest literals, then by
    // (care, value) ordering for reproducibility.  The uncovered set and the
    // per-prime minterm masks are word arrays; the <= 6-variable case runs
    // the same single-uint64 loop as pre-multiword (gain is one AND+popcount
    // on word 0 — words 1..3 of a narrow table are zero by invariant).
    const int active_words = words_for(n);
    tt_words uncovered = f.words();
    auto any_uncovered = [&] {
        for (int w = 0; w < active_words; ++w) {
            if (uncovered[w] != 0) return true;
        }
        return false;
    };
    std::vector<std::pair<cube, tt_words>> pool;
    pool.reserve(primes.size());
    for (const cube& p : primes) pool.emplace_back(p, p.to_truth_table(n).words());

    while (any_uncovered()) {
        int best = -1;
        int best_gain = -1;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            int gain = std::popcount(pool[i].second[0] & uncovered[0]);
            for (int w = 1; w < active_words; ++w) {
                gain += std::popcount(pool[i].second[w] & uncovered[w]);
            }
            if (gain > best_gain ||
                (gain == best_gain && best >= 0 &&
                 (pool[i].first.num_literals() < pool[static_cast<std::size_t>(best)].first.num_literals() ||
                  (pool[i].first.num_literals() == pool[static_cast<std::size_t>(best)].first.num_literals() &&
                   std::make_pair(pool[i].first.care_mask(), pool[i].first.value_mask()) <
                       std::make_pair(pool[static_cast<std::size_t>(best)].first.care_mask(),
                                      pool[static_cast<std::size_t>(best)].first.value_mask()))))) {
                best = static_cast<int>(i);
                best_gain = gain;
            }
        }
        if (best < 0 || best_gain <= 0) {
            throw std::logic_error("isop_cover: primes fail to cover the ON-set");
        }
        cover.add(pool[static_cast<std::size_t>(best)].first);
        for (int w = 0; w < active_words; ++w) {
            uncovered[w] &= ~pool[static_cast<std::size_t>(best)].second[w];
        }
    }

    if (cover.to_truth_table() != f) {
        throw std::logic_error("isop_cover: produced cover is not equal to input");
    }
    return cover;
}

on_off_cover make_on_off_cover(const truth_table& f) {
    return on_off_cover{isop_cover(f), isop_cover(~f)};
}

}  // namespace plee::bf
