// support.hpp — support-set enumeration for candidate trigger search.
//
// "We search over all 14 possible support sets of 3 or fewer variables"
// (Section 3): for a 4-input master the candidates are the C(4,1)+C(4,2)+
// C(4,3) = 4+6+4 = 14 proper subsets of the input set with 1..3 members.
// For masters with fewer live inputs the same rule applies to the actual
// support: every non-empty proper subset of size <= 3.

#pragma once

#include <cstdint>
#include <vector>

namespace plee::bf {

/// All non-empty proper subsets of `full_support` (a variable bitmask) with
/// at most `max_size` members, in deterministic order (by size, then value).
std::vector<std::uint32_t> enumerate_support_subsets(std::uint32_t full_support,
                                                     int max_size);

/// The same subset list served from a process-wide precomputed table — the
/// per-gate trigger sweep asks for one of at most 256 x 9 possible lists, so
/// the netlist-scale pass should not re-enumerate and re-sort per gate.
/// Requires `full_support` < 256 (the 8-variable space); `max_size` is
/// clamped to [0, 8].  The reference stays valid for the process lifetime.
const std::vector<std::uint32_t>& cached_support_subsets(
    std::uint32_t full_support, int max_size);

/// The variable indices present in a support mask, ascending.
std::vector<int> support_members(std::uint32_t support);

}  // namespace plee::bf
