#include "bool/support.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "bool/truth_table.hpp"

namespace plee::bf {

namespace {
/// The variable space the precomputed table spans — the truth_table arity
/// limit, so every master a trigger sweep can see has a cached list.
constexpr int truth_table_space = k_max_vars;
}  // namespace

std::vector<std::uint32_t> enumerate_support_subsets(std::uint32_t full_support,
                                                     int max_size) {
    std::vector<std::uint32_t> subsets;
    // Enumerate submasks of full_support via the standard decrement-and-mask
    // walk, then order deterministically.
    for (std::uint32_t sub = full_support; sub != 0; sub = (sub - 1) & full_support) {
        if (sub == full_support) continue;  // proper subsets only
        if (std::popcount(sub) > max_size) continue;
        subsets.push_back(sub);
    }
    std::sort(subsets.begin(), subsets.end(), [](std::uint32_t a, std::uint32_t b) {
        const int ca = std::popcount(a);
        const int cb = std::popcount(b);
        return ca != cb ? ca < cb : a < b;
    });
    return subsets;
}

const std::vector<std::uint32_t>& cached_support_subsets(
    std::uint32_t full_support, int max_size) {
    if (full_support >= (1u << truth_table_space)) {
        throw std::invalid_argument(
            "cached_support_subsets: mask outside the 8-variable space");
    }
    max_size = std::clamp(max_size, 0, truth_table_space);
    // 256 masks x 9 size limits; built once, thread-safe by magic statics.
    constexpr std::uint32_t k_masks = 1u << truth_table_space;
    constexpr std::uint32_t k_sizes = truth_table_space + 1;
    static const std::vector<std::vector<std::uint32_t>> table = [] {
        std::vector<std::vector<std::uint32_t>> t(k_masks * k_sizes);
        for (std::uint32_t fs = 0; fs < k_masks; ++fs) {
            for (std::uint32_t ms = 0; ms < k_sizes; ++ms) {
                t[fs * k_sizes + ms] =
                    enumerate_support_subsets(fs, static_cast<int>(ms));
            }
        }
        return t;
    }();
    return table[full_support * k_sizes + static_cast<std::uint32_t>(max_size)];
}

std::vector<int> support_members(std::uint32_t support) {
    std::vector<int> members;
    for (int v = 0; v < 32; ++v) {
        if (support & (1u << v)) members.push_back(v);
    }
    return members;
}

}  // namespace plee::bf
