#include "bool/support.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace plee::bf {

std::vector<std::uint32_t> enumerate_support_subsets(std::uint32_t full_support,
                                                     int max_size) {
    std::vector<std::uint32_t> subsets;
    // Enumerate submasks of full_support via the standard decrement-and-mask
    // walk, then order deterministically.
    for (std::uint32_t sub = full_support; sub != 0; sub = (sub - 1) & full_support) {
        if (sub == full_support) continue;  // proper subsets only
        if (std::popcount(sub) > max_size) continue;
        subsets.push_back(sub);
    }
    std::sort(subsets.begin(), subsets.end(), [](std::uint32_t a, std::uint32_t b) {
        const int ca = std::popcount(a);
        const int cb = std::popcount(b);
        return ca != cb ? ca < cb : a < b;
    });
    return subsets;
}

const std::vector<std::uint32_t>& cached_support_subsets(
    std::uint32_t full_support, int max_size) {
    if (full_support >= 64) {
        throw std::invalid_argument(
            "cached_support_subsets: mask outside the 6-variable space");
    }
    max_size = std::clamp(max_size, 0, 6);
    // 64 masks x 7 size limits; built once, thread-safe by magic statics.
    static const std::vector<std::vector<std::uint32_t>> table = [] {
        std::vector<std::vector<std::uint32_t>> t(64 * 7);
        for (std::uint32_t fs = 0; fs < 64; ++fs) {
            for (int ms = 0; ms <= 6; ++ms) {
                t[fs * 7 + static_cast<std::uint32_t>(ms)] =
                    enumerate_support_subsets(fs, ms);
            }
        }
        return t;
    }();
    return table[full_support * 7 + static_cast<std::uint32_t>(max_size)];
}

std::vector<int> support_members(std::uint32_t support) {
    std::vector<int> members;
    for (int v = 0; v < 32; ++v) {
        if (support & (1u << v)) members.push_back(v);
    }
    return members;
}

}  // namespace plee::bf
