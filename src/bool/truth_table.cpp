#include "bool/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace plee::bf {

namespace {

void check_arity(int num_vars) {
    if (num_vars < 0 || num_vars > k_max_vars) {
        throw std::invalid_argument("truth_table: arity must be in [0, 8], got " +
                                    std::to_string(num_vars));
    }
}

/// Multiword adjacent-variable exchange.  Three regimes:
///  * j <= 4 — both variables live inside each word: per-word PMask swap;
///  * j == 5 — variable 5 is the high half of a word, variable 6 is word-
///    index bit 0: exchange the high half of each even word with the low
///    half of its odd partner;
///  * j >= 6 — both variables are word-index bits: swap the words whose
///    index bits (j-6, j-5) read (1, 0) with their (0, 1) partners.
void swap_adjacent(tt_words& x, int j, int nw) {
    if (j < k_word_vars - 1) {
        for (int w = 0; w < nw; ++w) x[w] = swap_adjacent_word(x[w], j);
    } else if (j == k_word_vars - 1) {
        for (int w = 0; w + 1 < nw; w += 2) {
            const std::uint64_t lo = x[w];
            const std::uint64_t hi = x[w + 1];
            x[w] = (lo & 0x00000000FFFFFFFFull) | (hi << 32);
            x[w + 1] = (hi & 0xFFFFFFFF00000000ull) | (lo >> 32);
        }
    } else {
        const int lo_bit = 1 << (j - k_word_vars);
        const int hi_bit = lo_bit << 1;
        for (int w = 0; w < nw; ++w) {
            if ((w & lo_bit) != 0 && (w & hi_bit) == 0) {
                std::swap(x[w], x[w ^ lo_bit ^ hi_bit]);
            }
        }
    }
}

}  // namespace

truth_table::truth_table(int num_vars) : num_vars_(num_vars) {
    check_arity(num_vars);
}

truth_table::truth_table(int num_vars, std::uint64_t bits) : num_vars_(num_vars) {
    check_arity(num_vars);
    if ((bits & ~word0_mask()) != 0) {
        throw std::invalid_argument("truth_table: bits set beyond 2^num_vars rows");
    }
    words_[0] = bits;
}

truth_table::truth_table(int num_vars, const tt_words& words)
    : num_vars_(num_vars), words_(words) {
    check_arity(num_vars);
    if ((words_[0] & ~word0_mask()) != 0) {
        throw std::invalid_argument("truth_table: bits set beyond 2^num_vars rows");
    }
    for (int w = num_words(); w < k_num_words; ++w) {
        if (words_[w] != 0) {
            throw std::invalid_argument(
                "truth_table: bits set beyond 2^num_vars rows");
        }
    }
}

std::uint64_t truth_table::word0_mask() const {
    if (num_vars_ >= k_word_vars) return ~std::uint64_t{0};
    return (std::uint64_t{1} << num_minterms()) - 1;
}

truth_table truth_table::constant(int num_vars, bool value) {
    truth_table t(num_vars);
    if (value) {
        const int nw = t.num_words();
        t.words_[0] = t.word0_mask();
        for (int w = 1; w < nw; ++w) t.words_[w] = ~std::uint64_t{0};
    }
    return t;
}

truth_table truth_table::variable(int num_vars, int var) {
    check_arity(num_vars);
    if (var < 0 || var >= num_vars) {
        throw std::invalid_argument("truth_table::variable: index out of range");
    }
    truth_table t(num_vars);
    const int nw = t.num_words();
    if (var < k_word_vars) {
        const std::uint64_t m = k_var_mask[var] & t.word0_mask();
        for (int w = 0; w < nw; ++w) t.words_[w] = m;
    } else {
        const int wb = var - k_word_vars;
        for (int w = 0; w < nw; ++w) {
            t.words_[w] = ((w >> wb) & 1) != 0 ? ~std::uint64_t{0} : 0;
        }
    }
    return t;
}

truth_table truth_table::from_function(int num_vars,
                                       const std::function<bool(std::uint32_t)>& fn) {
    truth_table t(num_vars);
    for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        if (fn(m)) t.words_[m >> k_word_vars] |= std::uint64_t{1} << (m & 63);
    }
    return t;
}

truth_table truth_table::from_string(const std::string& rows) {
    int num_vars = -1;
    for (int n = 0; n <= k_max_vars; ++n) {
        if (rows.size() == (std::size_t{1} << n)) {
            num_vars = n;
            break;
        }
    }
    if (num_vars < 0) {
        throw std::invalid_argument("truth_table::from_string: length is not 2^n (n<=8)");
    }
    truth_table t(num_vars);
    for (std::size_t m = 0; m < rows.size(); ++m) {
        if (rows[m] == '1') {
            t.words_[m >> k_word_vars] |= std::uint64_t{1} << (m & 63);
        } else if (rows[m] != '0') {
            throw std::invalid_argument("truth_table::from_string: invalid character");
        }
    }
    return t;
}

bool truth_table::eval(std::uint32_t minterm) const {
    if (minterm >= num_minterms()) {
        throw std::out_of_range("truth_table::eval: minterm out of range");
    }
    return (words_[minterm >> k_word_vars] >> (minterm & 63)) & 1u;
}

std::uint64_t truth_table::eval_word_lanes(const std::uint64_t* fn_words,
                                           int num_vars,
                                           const std::uint64_t* inputs) {
    if (num_vars == 0) return std::uint64_t{0} - (fn_words[0] & 1u);
    // Bottom-up mux-tree (Shannon) reduction.  Level 1 folds variable 0
    // straight out of the truth-table bits — each adjacent minterm pair
    // (2j, 2j+1) becomes one lane word — and every further level muxes
    // neighbours on the next variable's lane word.  Total work is ~2^n word
    // operations for all 64 lanes, branch-free.
    std::uint64_t vals[std::size_t{1} << (k_max_vars - 1)];
    const std::uint64_t x0 = inputs[0];
    std::uint32_t n = 1u << (num_vars - 1);
    for (std::uint32_t j = 0; j < n; ++j) {
        const std::uint64_t pair = fn_words[j >> 5] >> ((2 * j) & 63);
        const std::uint64_t m0 = std::uint64_t{0} - (pair & 1u);
        const std::uint64_t m1 = std::uint64_t{0} - ((pair >> 1) & 1u);
        vals[j] = (m0 & ~x0) | (m1 & x0);
    }
    for (int v = 1; v < num_vars; ++v) {
        const std::uint64_t xv = inputs[v];
        n >>= 1;
        for (std::uint32_t j = 0; j < n; ++j) {
            vals[j] = (vals[2 * j] & ~xv) | (vals[2 * j + 1] & xv);
        }
    }
    return vals[0];
}

void truth_table::set(std::uint32_t minterm, bool value) {
    if (minterm >= num_minterms()) {
        throw std::out_of_range("truth_table::set: minterm out of range");
    }
    const std::uint64_t bit = std::uint64_t{1} << (minterm & 63);
    if (value) {
        words_[minterm >> k_word_vars] |= bit;
    } else {
        words_[minterm >> k_word_vars] &= ~bit;
    }
}

int truth_table::count_ones() const {
    int ones = std::popcount(words_[0]);
    for (int w = 1; w < num_words(); ++w) ones += std::popcount(words_[w]);
    return ones;
}

bool truth_table::is_constant_zero() const {
    for (int w = 0; w < num_words(); ++w) {
        if (words_[w] != 0) return false;
    }
    return true;
}

bool truth_table::is_constant_one() const {
    if (words_[0] != word0_mask()) return false;
    for (int w = 1; w < num_words(); ++w) {
        if (words_[w] != ~std::uint64_t{0}) return false;
    }
    return true;
}

bool truth_table::depends_on(int var) const {
    if (var < 0 || var >= num_vars_) return false;
    if (var < k_word_vars) {
        // Align each x_var=1 row onto its x_var=0 partner; any XOR
        // difference in the low half means the two cofactors disagree.
        const int s = 1 << var;
        const std::uint64_t half = ~k_var_mask[var];
        if (num_vars_ <= k_word_vars) {
            return ((words_[0] ^ (words_[0] >> s)) & half & word0_mask()) != 0;
        }
        const int nw = num_words();
        for (int w = 0; w < nw; ++w) {
            if (((words_[w] ^ (words_[w] >> s)) & half) != 0) return true;
        }
        return false;
    }
    const int ws = 1 << (var - k_word_vars);
    const int nw = num_words();
    for (int w = 0; w < nw; ++w) {
        if ((w & ws) == 0 && words_[w] != words_[w | ws]) return true;
    }
    return false;
}

std::uint32_t truth_table::support_mask() const {
    std::uint32_t mask = 0;
    for (int v = 0; v < num_vars_; ++v) {
        if (depends_on(v)) mask |= 1u << v;
    }
    return mask;
}

int truth_table::support_size() const { return std::popcount(support_mask()); }

truth_table truth_table::cofactor(int var, bool value) const {
    if (var < 0 || var >= num_vars_) {
        throw std::invalid_argument("truth_table::cofactor: index out of range");
    }
    truth_table t(num_vars_);
    if (var < k_word_vars) {
        const std::uint64_t m = k_var_mask[var];
        const int s = 1 << var;
        if (num_vars_ <= k_word_vars) {
            std::uint64_t x;
            if (value) {
                x = words_[0] & m;
                x |= x >> s;
            } else {
                x = words_[0] & ~m;
                x |= x << s;
            }
            t.words_[0] = x & word0_mask();
            return t;
        }
        const int nw = num_words();
        for (int w = 0; w < nw; ++w) {
            std::uint64_t x;
            if (value) {
                x = words_[w] & m;
                x |= x >> s;
            } else {
                x = words_[w] & ~m;
                x |= x << s;
            }
            t.words_[w] = x;
        }
        return t;
    }
    const int ws = 1 << (var - k_word_vars);
    const int nw = num_words();
    for (int w = 0; w < nw; ++w) {
        t.words_[w] = words_[value ? (w | ws) : (w & ~ws)];
    }
    return t;
}

truth_table truth_table::fold_free_vars(std::uint32_t support,
                                        bool conjunctive) const {
    if (num_vars_ <= k_word_vars) {
        std::uint64_t x = words_[0];
        for (int v = 0; v < num_vars_; ++v) {
            if ((support >> v) & 1u) continue;
            const std::uint64_t m = k_var_mask[v];
            const int s = 1 << v;
            std::uint64_t lo = x & ~m;
            lo |= lo << s;
            std::uint64_t hi = x & m;
            hi |= hi >> s;
            x = conjunctive ? (lo & hi) : (lo | hi);
        }
        truth_table t(num_vars_);
        t.words_[0] = x & word0_mask();
        return t;
    }
    tt_words x = words_;
    const int nw = num_words();
    for (int v = 0; v < num_vars_; ++v) {
        if ((support >> v) & 1u) continue;
        if (v < k_word_vars) {
            const std::uint64_t m = k_var_mask[v];
            const int s = 1 << v;
            for (int w = 0; w < nw; ++w) {
                std::uint64_t lo = x[w] & ~m;
                lo |= lo << s;
                std::uint64_t hi = x[w] & m;
                hi |= hi >> s;
                x[w] = conjunctive ? (lo & hi) : (lo | hi);
            }
        } else {
            const int ws = 1 << (v - k_word_vars);
            for (int w = 0; w < nw; ++w) {
                if ((w & ws) != 0) continue;
                const std::uint64_t r = conjunctive ? (x[w] & x[w | ws])
                                                    : (x[w] | x[w | ws]);
                x[w] = r;
                x[w | ws] = r;
            }
        }
    }
    truth_table t(num_vars_);
    t.words_ = x;
    return t;
}

truth_table truth_table::shrink_to(std::uint32_t support) const {
    if ((support & ~((1u << num_vars_) - 1)) != 0) {
        throw std::invalid_argument("truth_table::shrink_to: support outside arity");
    }
    // Sink each support variable to the bottom of the index space (stable,
    // ascending) with adjacent-variable swaps, then truncate to 2^k rows.
    if (num_vars_ <= k_word_vars) {
        // Single-word fast path: the whole compaction runs in one register.
        std::uint64_t x = words_[0];
        int target = 0;
        for (int v = 0; v < num_vars_; ++v) {
            if (!((support >> v) & 1u)) continue;
            for (int j = v - 1; j >= target; --j) x = swap_adjacent_word(x, j);
            ++target;
        }
        truth_table t(target);
        t.words_[0] = x & t.word0_mask();
        return t;
    }
    tt_words x = words_;
    const int nw = num_words();
    int target = 0;
    for (int v = 0; v < num_vars_; ++v) {
        if (!((support >> v) & 1u)) continue;
        for (int j = v - 1; j >= target; --j) swap_adjacent(x, j, nw);
        ++target;
    }
    truth_table t(target);
    const int tw = t.num_words();
    for (int w = 0; w < tw; ++w) t.words_[w] = x[w];
    t.words_[0] &= t.word0_mask();
    return t;
}

truth_table truth_table::expand_onto(std::uint32_t support, int num_vars) const {
    check_arity(num_vars);
    if (std::popcount(support) != num_vars_) {
        throw std::invalid_argument("truth_table::expand_onto: |support| != arity");
    }
    if ((support >> num_vars) != 0) {
        throw std::invalid_argument("truth_table::expand_onto: support outside arity");
    }
    // Vacuously widen, then float each variable up to its support position
    // (highest first so already-placed variables stay put).
    tt_words x = words_;
    const int nw = words_for(num_vars);
    for (int v = num_vars_; v < num_vars; ++v) {
        if (v < k_word_vars) {
            x[0] |= x[0] << (1 << v);
        } else {
            const int ws = 1 << (v - k_word_vars);
            for (int w = 0; w < ws; ++w) x[w + ws] = x[w];
        }
    }
    int member[k_max_vars] = {};
    int k = 0;
    for (int v = 0; v < num_vars; ++v) {
        if ((support >> v) & 1u) member[k++] = v;
    }
    for (int i = k - 1; i >= 0; --i) {
        for (int j = i; j < member[i]; ++j) swap_adjacent(x, j, nw);
    }
    truth_table t(num_vars);
    for (int w = 0; w < nw; ++w) t.words_[w] = x[w];
    t.words_[0] &= t.word0_mask();
    return t;
}

truth_table truth_table::expand(int new_num_vars) const {
    check_arity(new_num_vars);
    if (new_num_vars < num_vars_) {
        throw std::invalid_argument("truth_table::expand: cannot shrink arity");
    }
    tt_words x = words_;
    for (int v = num_vars_; v < new_num_vars; ++v) {
        if (v < k_word_vars) {
            x[0] |= x[0] << (1 << v);
        } else {
            const int ws = 1 << (v - k_word_vars);
            for (int w = 0; w < ws; ++w) x[w + ws] = x[w];
        }
    }
    truth_table t(new_num_vars);
    const int nw = t.num_words();
    for (int w = 0; w < nw; ++w) t.words_[w] = x[w];
    t.words_[0] &= t.word0_mask();
    return t;
}

truth_table truth_table::permute(const std::vector<int>& perm) const {
    if (perm.size() != static_cast<std::size_t>(num_vars_)) {
        throw std::invalid_argument("truth_table::permute: permutation size mismatch");
    }
    // Bubble the variables into place with adjacent swaps: position p
    // currently holds original variable cur[p], which must end up at
    // position perm[cur[p]].  O(n^2) word swaps, n <= 8.
    int cur[k_max_vars];
    for (int v = 0; v < num_vars_; ++v) cur[v] = v;
    truth_table t(num_vars_);
    if (num_vars_ <= k_word_vars) {
        std::uint64_t x = words_[0];
        for (int pass = 0; pass < num_vars_; ++pass) {
            for (int p = 0; p + 1 < num_vars_; ++p) {
                if (perm[static_cast<std::size_t>(cur[p])] >
                    perm[static_cast<std::size_t>(cur[p + 1])]) {
                    std::swap(cur[p], cur[p + 1]);
                    x = swap_adjacent_word(x, p);
                }
            }
        }
        t.words_[0] = x & word0_mask();
        return t;
    }
    tt_words x = words_;
    const int nw = num_words();
    for (int pass = 0; pass < num_vars_; ++pass) {
        for (int p = 0; p + 1 < num_vars_; ++p) {
            if (perm[static_cast<std::size_t>(cur[p])] >
                perm[static_cast<std::size_t>(cur[p + 1])]) {
                std::swap(cur[p], cur[p + 1]);
                swap_adjacent(x, p, nw);
            }
        }
    }
    t.words_ = x;
    return t;
}

truth_table truth_table::negate_inputs(std::uint32_t mask) const {
    if ((mask >> num_vars_) != 0) {
        throw std::invalid_argument("truth_table::negate_inputs: mask outside arity");
    }
    // g[i] = f[i ^ mask]: for each negated in-word variable, exchange the
    // x_v=0 and x_v=1 halves of every word; for each negated word-index
    // variable, exchange the word pairs it separates.
    if (num_vars_ <= k_word_vars) {
        std::uint64_t x = words_[0];
        for (std::uint32_t rest = mask; rest != 0; rest &= rest - 1) {
            const int v = std::countr_zero(rest);
            const std::uint64_t m = k_var_mask[v];
            const int s = 1 << v;
            x = ((x & m) >> s) | ((x << s) & m);
        }
        truth_table t(num_vars_);
        t.words_[0] = x & word0_mask();
        return t;
    }
    tt_words x = words_;
    const int nw = num_words();
    for (std::uint32_t rest = mask; rest != 0; rest &= rest - 1) {
        const int v = std::countr_zero(rest);
        if (v < k_word_vars) {
            const std::uint64_t m = k_var_mask[v];
            const int s = 1 << v;
            for (int w = 0; w < nw; ++w) {
                x[w] = ((x[w] & m) >> s) | ((x[w] << s) & m);
            }
        } else {
            const int ws = 1 << (v - k_word_vars);
            for (int w = 0; w < nw; ++w) {
                if ((w & ws) == 0) std::swap(x[w], x[w | ws]);
            }
        }
    }
    truth_table t(num_vars_);
    t.words_ = x;
    t.words_[0] &= t.word0_mask();
    return t;
}

truth_table truth_table::operator~() const {
    truth_table t(num_vars_);
    const int nw = num_words();
    for (int w = 0; w < nw; ++w) t.words_[w] = ~words_[w];
    t.words_[0] &= word0_mask();
    return t;
}

namespace {
void check_same_arity(const truth_table& a, const truth_table& b) {
    if (a.num_vars() != b.num_vars()) {
        throw std::invalid_argument("truth_table: arity mismatch in binary operation");
    }
}
}  // namespace

truth_table truth_table::operator&(const truth_table& other) const {
    check_same_arity(*this, other);
    truth_table t(num_vars_);
    for (int w = 0; w < k_num_words; ++w) t.words_[w] = words_[w] & other.words_[w];
    return t;
}

truth_table truth_table::operator|(const truth_table& other) const {
    check_same_arity(*this, other);
    truth_table t(num_vars_);
    for (int w = 0; w < k_num_words; ++w) t.words_[w] = words_[w] | other.words_[w];
    return t;
}

truth_table truth_table::operator^(const truth_table& other) const {
    check_same_arity(*this, other);
    truth_table t(num_vars_);
    for (int w = 0; w < k_num_words; ++w) t.words_[w] = words_[w] ^ other.words_[w];
    return t;
}

std::string truth_table::to_string() const {
    std::string s(num_minterms(), '0');
    for (std::uint32_t m = 0; m < num_minterms(); ++m) {
        if (eval(m)) s[m] = '1';
    }
    return s;
}

}  // namespace plee::bf
