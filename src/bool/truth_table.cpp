#include "bool/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace plee::bf {

namespace {

void check_arity(int num_vars) {
    if (num_vars < 0 || num_vars > k_max_vars) {
        throw std::invalid_argument("truth_table: arity must be in [0, 6], got " +
                                    std::to_string(num_vars));
    }
}

/// Masks for exchanging adjacent variables j and j+1 in one shift/mask step
/// (the ABC PMasks): `keep` holds the rows where the two variables agree,
/// `up` the rows with (x_j, x_j+1) = (1, 0) — which move up by 2^j — and
/// `down` the rows with (0, 1), which move down by 2^j.
struct adjacent_swap_masks {
    std::uint64_t keep, up, down;
};

constexpr adjacent_swap_masks k_swap_masks[k_max_vars - 1] = {
    {0x9999999999999999ull, 0x2222222222222222ull, 0x4444444444444444ull},
    {0xC3C3C3C3C3C3C3C3ull, 0x0C0C0C0C0C0C0C0Cull, 0x3030303030303030ull},
    {0xF00FF00FF00FF00Full, 0x00F000F000F000F0ull, 0x0F000F000F000F00ull},
    {0xFF0000FFFF0000FFull, 0x0000FF000000FF00ull, 0x00FF000000FF0000ull},
    {0xFFFF00000000FFFFull, 0x00000000FFFF0000ull, 0x0000FFFF00000000ull},
};

constexpr std::uint64_t swap_adjacent(std::uint64_t bits, int j) {
    const adjacent_swap_masks& m = k_swap_masks[j];
    const int s = 1 << j;
    return (bits & m.keep) | ((bits & m.up) << s) | ((bits & m.down) >> s);
}

}  // namespace

truth_table::truth_table(int num_vars) : num_vars_(num_vars) {
    check_arity(num_vars);
}

truth_table::truth_table(int num_vars, std::uint64_t bits)
    : num_vars_(num_vars), bits_(bits) {
    check_arity(num_vars);
    if ((bits & ~full_mask()) != 0) {
        throw std::invalid_argument("truth_table: bits set beyond 2^num_vars rows");
    }
}

std::uint64_t truth_table::full_mask() const {
    const std::uint32_t rows = num_minterms();
    return rows == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rows) - 1);
}

truth_table truth_table::constant(int num_vars, bool value) {
    truth_table t(num_vars);
    if (value) t.bits_ = t.full_mask();
    return t;
}

truth_table truth_table::variable(int num_vars, int var) {
    check_arity(num_vars);
    if (var < 0 || var >= num_vars) {
        throw std::invalid_argument("truth_table::variable: index out of range");
    }
    truth_table t(num_vars);
    t.bits_ = k_var_mask[var] & t.full_mask();
    return t;
}

truth_table truth_table::from_function(int num_vars,
                                       const std::function<bool(std::uint32_t)>& fn) {
    truth_table t(num_vars);
    for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        if (fn(m)) t.bits_ |= std::uint64_t{1} << m;
    }
    return t;
}

truth_table truth_table::from_string(const std::string& rows) {
    int num_vars = -1;
    for (int n = 0; n <= k_max_vars; ++n) {
        if (rows.size() == (std::size_t{1} << n)) {
            num_vars = n;
            break;
        }
    }
    if (num_vars < 0) {
        throw std::invalid_argument("truth_table::from_string: length is not 2^n (n<=6)");
    }
    truth_table t(num_vars);
    for (std::size_t m = 0; m < rows.size(); ++m) {
        if (rows[m] == '1') {
            t.bits_ |= std::uint64_t{1} << m;
        } else if (rows[m] != '0') {
            throw std::invalid_argument("truth_table::from_string: invalid character");
        }
    }
    return t;
}

bool truth_table::eval(std::uint32_t minterm) const {
    if (minterm >= num_minterms()) {
        throw std::out_of_range("truth_table::eval: minterm out of range");
    }
    return (bits_ >> minterm) & 1u;
}

void truth_table::set(std::uint32_t minterm, bool value) {
    if (minterm >= num_minterms()) {
        throw std::out_of_range("truth_table::set: minterm out of range");
    }
    if (value) {
        bits_ |= std::uint64_t{1} << minterm;
    } else {
        bits_ &= ~(std::uint64_t{1} << minterm);
    }
}

int truth_table::count_ones() const { return std::popcount(bits_); }

bool truth_table::is_constant_zero() const { return bits_ == 0; }

bool truth_table::is_constant_one() const { return bits_ == full_mask(); }

bool truth_table::depends_on(int var) const {
    if (var < 0 || var >= num_vars_) return false;
    // Align each x_var=1 row onto its x_var=0 partner; any XOR difference in
    // the low half means the two cofactors disagree somewhere.
    const int s = 1 << var;
    return ((bits_ ^ (bits_ >> s)) & ~k_var_mask[var] & full_mask()) != 0;
}

std::uint32_t truth_table::support_mask() const {
    std::uint32_t mask = 0;
    for (int v = 0; v < num_vars_; ++v) {
        if (depends_on(v)) mask |= 1u << v;
    }
    return mask;
}

int truth_table::support_size() const { return std::popcount(support_mask()); }

truth_table truth_table::cofactor(int var, bool value) const {
    if (var < 0 || var >= num_vars_) {
        throw std::invalid_argument("truth_table::cofactor: index out of range");
    }
    const std::uint64_t m = k_var_mask[var];
    const int s = 1 << var;
    std::uint64_t x;
    if (value) {
        x = bits_ & m;
        x |= x >> s;
    } else {
        x = bits_ & ~m;
        x |= x << s;
    }
    truth_table t(num_vars_);
    t.bits_ = x & full_mask();
    return t;
}

truth_table truth_table::fold_free_vars(std::uint32_t support,
                                        bool conjunctive) const {
    std::uint64_t x = bits_;
    for (int v = 0; v < num_vars_; ++v) {
        if ((support >> v) & 1u) continue;
        const std::uint64_t m = k_var_mask[v];
        const int s = 1 << v;
        std::uint64_t lo = x & ~m;
        lo |= lo << s;
        std::uint64_t hi = x & m;
        hi |= hi >> s;
        x = conjunctive ? (lo & hi) : (lo | hi);
    }
    truth_table t(num_vars_);
    t.bits_ = x & full_mask();
    return t;
}

truth_table truth_table::shrink_to(std::uint32_t support) const {
    if ((support & ~((1u << num_vars_) - 1)) != 0) {
        throw std::invalid_argument("truth_table::shrink_to: support outside arity");
    }
    // Sink each support variable to the bottom of the index space (stable,
    // ascending) with adjacent-variable swaps, then truncate to 2^k rows.
    std::uint64_t x = bits_;
    int target = 0;
    for (int v = 0; v < num_vars_; ++v) {
        if (!((support >> v) & 1u)) continue;
        for (int j = v - 1; j >= target; --j) x = swap_adjacent(x, j);
        ++target;
    }
    truth_table t(target);
    t.bits_ = x & t.full_mask();
    return t;
}

truth_table truth_table::expand_onto(std::uint32_t support, int num_vars) const {
    check_arity(num_vars);
    if (std::popcount(support) != num_vars_) {
        throw std::invalid_argument("truth_table::expand_onto: |support| != arity");
    }
    if ((support >> num_vars) != 0) {
        throw std::invalid_argument("truth_table::expand_onto: support outside arity");
    }
    // Vacuously widen, then float each variable up to its support position
    // (highest first so already-placed variables stay put).
    std::uint64_t x = bits_;
    for (int v = num_vars_; v < num_vars; ++v) x |= x << (1 << v);
    int member[k_max_vars] = {};
    int k = 0;
    for (int v = 0; v < num_vars; ++v) {
        if ((support >> v) & 1u) member[k++] = v;
    }
    for (int i = k - 1; i >= 0; --i) {
        for (int j = i; j < member[i]; ++j) x = swap_adjacent(x, j);
    }
    truth_table t(num_vars);
    t.bits_ = x & t.full_mask();
    return t;
}

truth_table truth_table::expand(int new_num_vars) const {
    check_arity(new_num_vars);
    if (new_num_vars < num_vars_) {
        throw std::invalid_argument("truth_table::expand: cannot shrink arity");
    }
    std::uint64_t x = bits_;
    for (int v = num_vars_; v < new_num_vars; ++v) x |= x << (1 << v);
    truth_table t(new_num_vars);
    t.bits_ = x & t.full_mask();
    return t;
}

truth_table truth_table::permute(const std::vector<int>& perm) const {
    if (perm.size() != static_cast<std::size_t>(num_vars_)) {
        throw std::invalid_argument("truth_table::permute: permutation size mismatch");
    }
    // Bubble the variables into place with adjacent swaps: position p
    // currently holds original variable cur[p], which must end up at
    // position perm[cur[p]].  O(n^2) word swaps, n <= 6.
    int cur[k_max_vars];
    for (int v = 0; v < num_vars_; ++v) cur[v] = v;
    std::uint64_t x = bits_;
    for (int pass = 0; pass < num_vars_; ++pass) {
        for (int p = 0; p + 1 < num_vars_; ++p) {
            if (perm[static_cast<std::size_t>(cur[p])] >
                perm[static_cast<std::size_t>(cur[p + 1])]) {
                std::swap(cur[p], cur[p + 1]);
                x = swap_adjacent(x, p);
            }
        }
    }
    truth_table t(num_vars_);
    t.bits_ = x & full_mask();
    return t;
}

truth_table truth_table::negate_inputs(std::uint32_t mask) const {
    if ((mask >> num_vars_) != 0) {
        throw std::invalid_argument("truth_table::negate_inputs: mask outside arity");
    }
    // g[i] = f[i ^ mask]: for each negated variable, exchange the x_v=0 and
    // x_v=1 halves of the table.
    std::uint64_t x = bits_;
    for (std::uint32_t rest = mask; rest != 0; rest &= rest - 1) {
        const int v = std::countr_zero(rest);
        const std::uint64_t m = k_var_mask[v];
        const int s = 1 << v;
        x = ((x & m) >> s) | ((x << s) & m);
    }
    truth_table t(num_vars_);
    t.bits_ = x & full_mask();
    return t;
}

truth_table truth_table::operator~() const {
    return truth_table(num_vars_, ~bits_ & full_mask());
}

namespace {
void check_same_arity(const truth_table& a, const truth_table& b) {
    if (a.num_vars() != b.num_vars()) {
        throw std::invalid_argument("truth_table: arity mismatch in binary operation");
    }
}
}  // namespace

truth_table truth_table::operator&(const truth_table& other) const {
    check_same_arity(*this, other);
    return truth_table(num_vars_, bits_ & other.bits_);
}

truth_table truth_table::operator|(const truth_table& other) const {
    check_same_arity(*this, other);
    return truth_table(num_vars_, bits_ | other.bits_);
}

truth_table truth_table::operator^(const truth_table& other) const {
    check_same_arity(*this, other);
    return truth_table(num_vars_, bits_ ^ other.bits_);
}

std::string truth_table::to_string() const {
    std::string s(num_minterms(), '0');
    for (std::uint32_t m = 0; m < num_minterms(); ++m) {
        if (eval(m)) s[m] = '1';
    }
    return s;
}

}  // namespace plee::bf
