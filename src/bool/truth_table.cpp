#include "bool/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace plee::bf {

namespace {

void check_arity(int num_vars) {
    if (num_vars < 0 || num_vars > k_max_vars) {
        throw std::invalid_argument("truth_table: arity must be in [0, 6], got " +
                                    std::to_string(num_vars));
    }
}

}  // namespace

truth_table::truth_table(int num_vars) : num_vars_(num_vars) {
    check_arity(num_vars);
}

truth_table::truth_table(int num_vars, std::uint64_t bits)
    : num_vars_(num_vars), bits_(bits) {
    check_arity(num_vars);
    if ((bits & ~full_mask()) != 0) {
        throw std::invalid_argument("truth_table: bits set beyond 2^num_vars rows");
    }
}

std::uint64_t truth_table::full_mask() const {
    const std::uint32_t rows = num_minterms();
    return rows == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rows) - 1);
}

truth_table truth_table::constant(int num_vars, bool value) {
    truth_table t(num_vars);
    if (value) t.bits_ = t.full_mask();
    return t;
}

truth_table truth_table::variable(int num_vars, int var) {
    check_arity(num_vars);
    if (var < 0 || var >= num_vars) {
        throw std::invalid_argument("truth_table::variable: index out of range");
    }
    truth_table t(num_vars);
    for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        if ((m >> var) & 1u) t.bits_ |= std::uint64_t{1} << m;
    }
    return t;
}

truth_table truth_table::from_function(int num_vars,
                                       const std::function<bool(std::uint32_t)>& fn) {
    truth_table t(num_vars);
    for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        if (fn(m)) t.bits_ |= std::uint64_t{1} << m;
    }
    return t;
}

truth_table truth_table::from_string(const std::string& rows) {
    int num_vars = -1;
    for (int n = 0; n <= k_max_vars; ++n) {
        if (rows.size() == (std::size_t{1} << n)) {
            num_vars = n;
            break;
        }
    }
    if (num_vars < 0) {
        throw std::invalid_argument("truth_table::from_string: length is not 2^n (n<=6)");
    }
    truth_table t(num_vars);
    for (std::size_t m = 0; m < rows.size(); ++m) {
        if (rows[m] == '1') {
            t.bits_ |= std::uint64_t{1} << m;
        } else if (rows[m] != '0') {
            throw std::invalid_argument("truth_table::from_string: invalid character");
        }
    }
    return t;
}

bool truth_table::eval(std::uint32_t minterm) const {
    if (minterm >= num_minterms()) {
        throw std::out_of_range("truth_table::eval: minterm out of range");
    }
    return (bits_ >> minterm) & 1u;
}

void truth_table::set(std::uint32_t minterm, bool value) {
    if (minterm >= num_minterms()) {
        throw std::out_of_range("truth_table::set: minterm out of range");
    }
    if (value) {
        bits_ |= std::uint64_t{1} << minterm;
    } else {
        bits_ &= ~(std::uint64_t{1} << minterm);
    }
}

int truth_table::count_ones() const { return std::popcount(bits_); }

bool truth_table::is_constant_zero() const { return bits_ == 0; }

bool truth_table::is_constant_one() const { return bits_ == full_mask(); }

bool truth_table::depends_on(int var) const {
    if (var < 0 || var >= num_vars_) return false;
    return cofactor(var, false).bits_ != cofactor(var, true).bits_;
}

std::uint32_t truth_table::support_mask() const {
    std::uint32_t mask = 0;
    for (int v = 0; v < num_vars_; ++v) {
        if (depends_on(v)) mask |= 1u << v;
    }
    return mask;
}

int truth_table::support_size() const { return std::popcount(support_mask()); }

truth_table truth_table::cofactor(int var, bool value) const {
    if (var < 0 || var >= num_vars_) {
        throw std::invalid_argument("truth_table::cofactor: index out of range");
    }
    truth_table t(num_vars_);
    for (std::uint32_t m = 0; m < num_minterms(); ++m) {
        std::uint32_t src = value ? (m | (1u << var)) : (m & ~(1u << var));
        if (eval(src)) t.bits_ |= std::uint64_t{1} << m;
    }
    return t;
}

truth_table truth_table::expand(int new_num_vars) const {
    check_arity(new_num_vars);
    if (new_num_vars < num_vars_) {
        throw std::invalid_argument("truth_table::expand: cannot shrink arity");
    }
    truth_table t(new_num_vars);
    const std::uint32_t low_mask = num_minterms() - 1;
    for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        if (eval(m & low_mask)) t.bits_ |= std::uint64_t{1} << m;
    }
    return t;
}

truth_table truth_table::permute(const std::vector<int>& perm) const {
    if (perm.size() != static_cast<std::size_t>(num_vars_)) {
        throw std::invalid_argument("truth_table::permute: permutation size mismatch");
    }
    truth_table t(num_vars_);
    for (std::uint32_t m = 0; m < num_minterms(); ++m) {
        std::uint32_t dst = 0;
        for (int v = 0; v < num_vars_; ++v) {
            if ((m >> v) & 1u) dst |= 1u << perm[static_cast<std::size_t>(v)];
        }
        if (eval(m)) t.bits_ |= std::uint64_t{1} << dst;
    }
    return t;
}

truth_table truth_table::operator~() const {
    return truth_table(num_vars_, ~bits_ & full_mask());
}

namespace {
void check_same_arity(const truth_table& a, const truth_table& b) {
    if (a.num_vars() != b.num_vars()) {
        throw std::invalid_argument("truth_table: arity mismatch in binary operation");
    }
}
}  // namespace

truth_table truth_table::operator&(const truth_table& other) const {
    check_same_arity(*this, other);
    return truth_table(num_vars_, bits_ & other.bits_);
}

truth_table truth_table::operator|(const truth_table& other) const {
    check_same_arity(*this, other);
    return truth_table(num_vars_, bits_ | other.bits_);
}

truth_table truth_table::operator^(const truth_table& other) const {
    check_same_arity(*this, other);
    return truth_table(num_vars_, bits_ ^ other.bits_);
}

std::string truth_table::to_string() const {
    std::string s(num_minterms(), '0');
    for (std::uint32_t m = 0; m < num_minterms(); ++m) {
        if (eval(m)) s[m] = '1';
    }
    return s;
}

}  // namespace plee::bf
