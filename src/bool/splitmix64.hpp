// splitmix64.hpp — the repository's one splitmix64 finalizer.
//
// Both the trigger-cache key mixer and the workload generator's random
// stream rely on this exact constant/shift sequence: cache keys for their
// collision distribution (asserted in tests/test_trigger_cache.cpp) and the
// generator for its byte-identical-per-seed determinism contract.  Keep the
// single definition here so the two can never drift apart.

#pragma once

#include <cstdint>

namespace plee::bf {

constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace plee::bf
