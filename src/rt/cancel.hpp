// cancel.hpp — cooperative cancellation/deadline token.
//
// A cancel_token is owned by whoever supervises a job (the fleet runner, a
// future plee_serve admission layer) and threaded by pointer through the
// pipeline stages (report::run_ee_experiment -> ee::apply_early_evaluation,
// sim::pl_simulator).  The stages poll it at bounded intervals — the
// simulator event loops every k_cancel_check_events events, the EE search at
// every work-queue chunk — and raise plee::job_timeout when it has tripped,
// so a pathological job stops within a bounded amount of extra work instead
// of hanging its worker thread forever.
//
// The flag is monotonic (set-once); the deadline is fixed before the job
// starts.  Polling costs one relaxed atomic load; steady_clock::now() is
// only consulted when a deadline is armed.
//
// Tokens chain: a per-job token may name a parent (the fleet-wide interrupt
// token a SIGINT handler trips), and expired() consults the parent too.
// Tripping one parent therefore stops every job in the fleet at its next
// poll without the supervisor having to track per-job token pointers from a
// signal handler — the handler performs one atomic store, which is
// async-signal-safe.

#pragma once

#include <atomic>
#include <chrono>

namespace plee {

/// Simulator/search loops poll the token once per this many work units —
/// frequent enough that a tripped deadline stops the job in well under the
/// deadline itself on any realistic netlist, rare enough that the poll is
/// invisible next to the work it gates (< 0.1% on the fleet mix).
inline constexpr std::uint64_t k_cancel_check_events = 1024;

class cancel_token {
public:
    using clock = std::chrono::steady_clock;

    cancel_token() = default;

    /// Arms a wall-clock deadline `ms` milliseconds from now.
    void set_deadline_after_ms(double ms) {
        deadline_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                                       std::chrono::duration<double, std::milli>(ms));
        has_deadline_ = true;
    }

    /// Requests cancellation (idempotent, thread-safe, async-signal-safe).
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

    /// Chains this token under `parent`: expired() reports true once either
    /// token trips.  Set before the job starts (not thread-safe against
    /// concurrent polls); the parent must outlive this token.
    void set_parent(const cancel_token* parent) { parent_ = parent; }

    /// True once cancelled (here or in a parent) or past the deadline — the
    /// poll the pipeline stages call.
    bool expired() const {
        if (cancelled()) return true;
        if (parent_ != nullptr && parent_->expired()) return true;
        return has_deadline_ && clock::now() >= deadline_;
    }

private:
    std::atomic<bool> cancelled_{false};
    bool has_deadline_ = false;
    clock::time_point deadline_{};
    const cancel_token* parent_ = nullptr;
};

}  // namespace plee
