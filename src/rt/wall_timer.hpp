// wall_timer.hpp — the one wall-clock helper for every timing path.
//
// Every wall-time figure this repository reports (job wall_ms, sim_wall_ms,
// obs span durations, flight-recorder timestamps, bench A/B passes) must come
// from std::chrono::steady_clock: it is monotonic, so an NTP step or a
// suspend/resume cannot produce negative or wildly inflated durations in the
// middle of a fleet.  system_clock is for calendar timestamps only and
// high_resolution_clock is an unspecified alias (on libstdc++ it *is*
// steady_clock, on other standard libraries it may not be) — neither belongs
// in a timing path.  Centralizing the boilerplate here keeps that audit a
// one-line grep: outside this header, timing code holds a wall_timer, not a
// clock.
//
// The timer is a trivially copyable value type; elapsed_ms() costs one
// clock_gettime(CLOCK_MONOTONIC) call (~20 ns), the same as the raw
// steady_clock::now() it wraps.

#pragma once

#include <chrono>

namespace plee {

class wall_timer {
public:
    using clock = std::chrono::steady_clock;

    /// Starts timing at construction.
    wall_timer() : start_(clock::now()) {}

    /// Re-arms the epoch to now.
    void restart() { start_ = clock::now(); }

    /// Milliseconds since construction / the last restart().
    double elapsed_ms() const { return ms_between(start_, clock::now()); }

    /// The epoch this timer measures from.
    clock::time_point start() const { return start_; }

    static double ms_between(clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
    }

private:
    clock::time_point start_;
};

}  // namespace plee
