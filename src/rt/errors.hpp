// errors.hpp — the typed failure taxonomy shared by the whole pipeline.
//
// The fleet runner turns a batch of netlists into a batch of results; for
// that to degrade gracefully one job's failure must be (a) catchable without
// discarding every other job and (b) distinguishable: an exhausted event
// budget, a simulator deadlock, a blown deadline and a malformed input call
// for different responses (report, report, cancel, reject).  Every
// deliberate throw in the pipeline therefore derives from plee::plee_error,
// which carries a transient/permanent classification:
//
//   * permanent — re-running the same job yields the same failure (the
//     pipeline is deterministic: deadlocks, budget exhaustion, bad inputs).
//   * transient — the failure is environmental (an injected fault, an
//     external resource); the runner may retry with backoff.
//
// Deadline expiry (job_timeout) is classified permanent: the pipeline is
// deterministic, so a job that blew its deadline once will blow it again,
// and retrying would multiply the very wall time the deadline bounds.
// Exceptions that do not derive from plee_error (std::bad_alloc, logic
// errors from third-party code) classify as permanent.

#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

namespace plee {

enum class failure_class : std::uint8_t {
    transient,  ///< environmental — a retry may succeed
    permanent,  ///< deterministic — a retry repeats the failure
};

inline const char* to_string(failure_class cls) {
    return cls == failure_class::transient ? "transient" : "permanent";
}

/// Base of every deliberate pipeline throw.
class plee_error : public std::runtime_error {
public:
    explicit plee_error(const std::string& what,
                        failure_class cls = failure_class::permanent)
        : std::runtime_error(what), cls_(cls) {}

    failure_class classify() const { return cls_; }

private:
    failure_class cls_;
};

/// Cooperative deadline/cancellation expiry: a cancel_token tripped while the
/// job was mid-pipeline.  `where` names the check site ("sim.events",
/// "ee.search"), `context` the job ("b05#2" = job id, attempt 2), and
/// `progress` how far the stage got (events processed, chunks searched) —
/// the partial-work snapshot a fleet log needs to tell a near-miss from a
/// hang.
class job_timeout : public plee_error {
public:
    job_timeout(const std::string& where, const std::string& context,
                std::uint64_t progress)
        : plee_error(where + "[" + context + "]: deadline exceeded after " +
                         std::to_string(progress) + " work units",
                     failure_class::permanent),
          progress_(progress) {}

    std::uint64_t progress() const { return progress_; }

private:
    std::uint64_t progress_;
};

/// Classification of an in-flight exception: plee_error reports its own
/// class, anything else is permanent.
inline failure_class classify_exception(std::exception_ptr e) {
    try {
        std::rethrow_exception(e);
    } catch (const plee_error& pe) {
        return pe.classify();
    } catch (...) {
        return failure_class::permanent;
    }
}

}  // namespace plee
