#include "persist/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "ee/trigger_search.hpp"
#include "fault/injector.hpp"
#include "obs/registry.hpp"
#include "rt/wall_timer.hpp"

namespace plee::persist {

namespace {

constexpr std::uint8_t k_rec_fn = 1;
constexpr std::uint8_t k_rec_trigger = 2;
constexpr std::uint8_t k_rec_footer = 255;
constexpr std::size_t k_footer_payload = 16;
/// Largest legitimate payload (an 8-variable canonicalization record is
/// 16 + 2*32 = 80 bytes); anything claiming more is a hostile length field.
constexpr std::size_t k_max_payload = 256;

// ---- little-endian primitives ------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
}

std::uint32_t get_u32(const unsigned char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t get_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

// ---- record encoding ----------------------------------------------------

void append_record(std::string& out, std::uint8_t type,
                   const std::string& payload) {
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    // The record checksum covers the type byte and payload; the length field
    // is protected only by its bounds (see the framing notes in the header).
    std::string body;
    body.push_back(static_cast<char>(type));
    body += payload;
    out += body;
    put_u64(out, checksum(body.data(), body.size()));
}

std::string encode_fn(const ee::cache_image::fn_entry& e) {
    const int wf = bf::words_for(e.num_vars);
    std::string p;
    p.push_back(static_cast<char>(e.num_vars));
    p.push_back(static_cast<char>(e.form.output_neg ? 1 : 0));
    p.push_back(0);
    p.push_back(0);
    put_u32(p, e.form.input_neg);
    for (int v = 0; v < bf::k_max_vars; ++v) {
        p.push_back(static_cast<char>(e.form.perm[static_cast<std::size_t>(v)]));
    }
    for (int w = 0; w < wf; ++w) put_u64(p, e.bits[static_cast<std::size_t>(w)]);
    for (int w = 0; w < wf; ++w) {
        put_u64(p, e.form.bits[static_cast<std::size_t>(w)]);
    }
    return p;
}

std::string encode_trigger(const ee::cache_image::trig_entry& e) {
    const int tv = e.trigger.num_vars();
    std::string p;
    p.push_back(static_cast<char>(e.num_vars));
    p.push_back(static_cast<char>(tv));
    p.push_back(0);
    p.push_back(0);
    put_u32(p, e.support);
    for (int w = 0; w < bf::words_for(e.num_vars); ++w) {
        put_u64(p, e.class_bits[static_cast<std::size_t>(w)]);
    }
    for (int w = 0; w < bf::words_for(tv); ++w) {
        put_u64(p, e.trigger.word(w));
    }
    return p;
}

// ---- field validation ---------------------------------------------------

/// True when `words` respects the storage invariant for an `nv`-variable
/// table: bits beyond the 2^nv rows are zero.  Checked *before* a
/// truth_table is constructed so hostile bits never reach a throwing ctor.
bool bits_in_range(const bf::tt_words& words, int nv) {
    const int wf = bf::words_for(nv);
    for (int w = wf; w < bf::k_num_words; ++w) {
        if (words[static_cast<std::size_t>(w)] != 0) return false;
    }
    if (nv < bf::k_word_vars) {
        const std::uint64_t mask = (1ull << (1u << nv)) - 1;
        if ((words[0] & ~mask) != 0) return false;
    }
    return true;
}

bool valid_perm(const std::uint8_t* perm, int nv) {
    std::uint32_t seen = 0;
    for (int v = 0; v < nv; ++v) {
        if (perm[v] >= nv) return false;
        seen |= 1u << perm[v];
    }
    // Slots beyond the arity are zero as exported; a nonzero one is damage.
    for (int v = nv; v < bf::k_max_vars; ++v) {
        if (perm[v] != 0) return false;
    }
    return seen == (1u << nv) - 1;
}

/// Decodes + validates one canonicalization record payload.  Returns false
/// (reject) on any bounds or self-consistency failure.
bool decode_fn(const unsigned char* p, std::size_t len,
               ee::cache_image::fn_entry& out) {
    if (len < 16) return false;
    const int nv = p[0];
    if (nv < 1 || nv > bf::k_max_vars) return false;
    const int wf = bf::words_for(nv);
    if (len != 16 + 2 * 8 * static_cast<std::size_t>(wf)) return false;
    if (p[1] > 1 || p[2] != 0 || p[3] != 0) return false;
    out.num_vars = nv;
    out.form.output_neg = p[1] != 0;
    out.form.input_neg = get_u32(p + 4);
    if (out.form.input_neg >= (1u << nv)) return false;
    for (int v = 0; v < bf::k_max_vars; ++v) {
        out.form.perm[static_cast<std::size_t>(v)] = p[8 + v];
    }
    if (!valid_perm(out.form.perm.data(), nv)) return false;
    out.bits = bf::tt_words{};
    out.form.bits = bf::tt_words{};
    for (int w = 0; w < wf; ++w) {
        out.bits[static_cast<std::size_t>(w)] = get_u64(p + 16 + 8 * w);
        out.form.bits[static_cast<std::size_t>(w)] =
            get_u64(p + 16 + 8 * (wf + w));
    }
    if (!bits_in_range(out.bits, nv) || !bits_in_range(out.form.bits, nv)) {
        return false;
    }
    // Self-consistency: applying the stored transform to the stored concrete
    // bits must land on the stored canonical bits.  A record that passes is
    // result-correct by construction — a wrong-but-consistent form could
    // only fragment class sharing, never change a trigger — so this is the
    // full correctness bar for canonicalization records.
    bf::truth_table g =
        bf::truth_table(nv, out.bits).negate_inputs(out.form.input_neg);
    if (out.form.output_neg) g = ~g;
    std::vector<int> perm(static_cast<std::size_t>(nv));
    for (int v = 0; v < nv; ++v) {
        perm[static_cast<std::size_t>(v)] =
            out.form.perm[static_cast<std::size_t>(v)];
    }
    return g.permute(perm).words() == out.form.bits;
}

bool decode_trigger(const unsigned char* p, std::size_t len,
                    ee::cache_image::trig_entry& out) {
    if (len < 8) return false;
    const int nv = p[0];
    const int tv = p[1];
    if (nv < 1 || nv > bf::k_max_vars) return false;
    if (tv < 1 || tv > nv) return false;
    if (p[2] != 0 || p[3] != 0) return false;
    const std::uint32_t support = get_u32(p + 4);
    if (support >= (1u << nv)) return false;
    if (std::popcount(support) != tv) return false;
    const int wn = bf::words_for(nv);
    const int wt = bf::words_for(tv);
    if (len != 8 + 8 * static_cast<std::size_t>(wn + wt)) return false;
    out.num_vars = nv;
    out.support = support;
    out.class_bits = bf::tt_words{};
    bf::tt_words trig_words{};
    for (int w = 0; w < wn; ++w) {
        out.class_bits[static_cast<std::size_t>(w)] = get_u64(p + 8 + 8 * w);
    }
    for (int w = 0; w < wt; ++w) {
        trig_words[static_cast<std::size_t>(w)] = get_u64(p + 8 + 8 * (wn + w));
    }
    if (!bits_in_range(out.class_bits, nv) || !bits_in_range(trig_words, tv)) {
        return false;
    }
    out.trigger = bf::truth_table(tv, trig_words);
    return true;
}

// ---- POSIX atomic write -------------------------------------------------

void throw_errno(const std::string& what, const std::string& path) {
    throw snapshot_error("persist: " + what + " '" + path +
                         "': " + std::strerror(errno));
}

std::string dirname_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

/// write + fsync + rename + directory fsync.  A crash at any point leaves
/// `path` either untouched or fully replaced.
void atomic_write_bytes(const std::string& path, const std::string& bytes) {
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw_errno("open failed for", tmp);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ::ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw_errno("write failed for", tmp);
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw_errno("fsync failed for", tmp);
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw_errno("rename failed onto", path);
    }
    // Persist the rename itself: fsync the containing directory.  Failure
    // here is not fatal — the data is durable, only the directory entry may
    // lag — so a directory that cannot be opened (exotic filesystems) is
    // tolerated.
    const int dfd = ::open(dirname_of(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

}  // namespace

const char* to_string(verify_mode v) {
    switch (v) {
        case verify_mode::off: return "off";
        case verify_mode::sampled: return "sampled";
        case verify_mode::full: return "full";
    }
    return "?";
}

verify_mode parse_verify_mode(const std::string& s) {
    if (s == "off") return verify_mode::off;
    if (s == "sampled") return verify_mode::sampled;
    if (s == "full") return verify_mode::full;
    throw std::invalid_argument("persist: unknown verify mode '" + s +
                                "' (off|sampled|full)");
}

const char* to_string(load_outcome o) {
    switch (o) {
        case load_outcome::clean: return "clean";
        case load_outcome::salvaged: return "salvaged";
        case load_outcome::cold: return "cold";
    }
    return "?";
}

std::uint64_t checksum(const char* data, std::size_t size) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string encode_image(const ee::cache_image& image) {
    std::string out;
    out.append(k_snapshot_magic, sizeof(k_snapshot_magic));
    put_u32(out, k_snapshot_schema_version);
    put_u32(out, k_endian_tag);
    out.push_back(static_cast<char>(image.mode));
    out.append(3, '\0');
    out.append(4, '\0');
    put_u64(out, checksum(out.data(), out.size()));

    for (const auto& e : image.fns) append_record(out, k_rec_fn, encode_fn(e));
    for (const auto& e : image.triggers) {
        append_record(out, k_rec_trigger, encode_trigger(e));
    }

    std::string footer;
    put_u64(footer, checksum(out.data(), out.size()));
    put_u64(footer, static_cast<std::uint64_t>(image.entries()));
    append_record(out, k_rec_footer, footer);
    return out;
}

load_result decode_image(const char* data, std::size_t size,
                         const load_options& opts) {
    load_result res;
    res.bytes = size;
    const unsigned char* u = reinterpret_cast<const unsigned char*>(data);

    // ---- header: any failure here is a cold start -----------------------
    if (size < k_header_size) {
        res.detail = "file too small for header (" + std::to_string(size) +
                     " bytes)";
        return res;
    }
    if (std::memcmp(data, k_snapshot_magic, sizeof(k_snapshot_magic)) != 0) {
        res.detail = "bad magic";
        return res;
    }
    if (checksum(data, 24) != get_u64(u + 24)) {
        res.detail = "header checksum mismatch";
        return res;
    }
    const std::uint32_t version = get_u32(u + 8);
    if (version > k_snapshot_schema_version) {
        // A snapshot from a future build is not corruption — cold-start
        // cleanly and let the save path replace it with this version.
        res.detail = "schema version " + std::to_string(version) + " > " +
                     std::to_string(k_snapshot_schema_version);
        return res;
    }
    if (get_u32(u + 12) != k_endian_tag) {
        res.detail = "endianness tag mismatch";
        return res;
    }
    const std::uint8_t mode_byte = u[16];
    if (mode_byte > 1) {
        res.detail = "bad canon_mode byte";
        return res;
    }
    res.image.mode = static_cast<ee::canon_mode>(mode_byte);
    if (res.image.mode != opts.expected_mode) {
        res.detail = "snapshot canon mode does not match the cache";
        return res;
    }

    // ---- records: salvage as far as framing holds -----------------------
    plee::wall_timer verify_timer;
    double verify_ms = 0.0;
    bool footer_ok = false;
    bool damaged = false;
    std::size_t off = k_header_size;
    while (off < size) {
        if (size - off < 5) {
            damaged = true;
            res.detail = "truncated record header at byte " + std::to_string(off);
            break;
        }
        const std::size_t payload_len = get_u32(u + off);
        const std::uint8_t type = u[off + 4];
        if (payload_len > k_max_payload || size - off - 5 < payload_len + 8) {
            // Hostile or torn length field: framing is gone, keep the prefix.
            damaged = true;
            res.detail = "unframeable record at byte " + std::to_string(off);
            break;
        }
        const std::size_t body = off + 4;           // type byte + payload
        const std::size_t cksum_at = body + 1 + payload_len;
        const std::size_t next = cksum_at + 8;
        ++res.records_seen;
        if (checksum(data + body, 1 + payload_len) != get_u64(u + cksum_at)) {
            // The record is corrupt but its claimed length was in bounds:
            // count it, re-sync at the claimed boundary and let the next
            // record's checksum arbitrate whether framing survived.
            ++res.rejected;
            damaged = true;
            off = next;
            continue;
        }
        if (type == k_rec_footer) {
            --res.records_seen;  // the footer is framing, not cargo
            if (payload_len != k_footer_payload) {
                ++res.rejected;
                damaged = true;
                res.detail = "bad footer payload";
            } else {
                const std::uint64_t file_ck = get_u64(u + body + 1);
                const std::uint64_t count = get_u64(u + body + 1 + 8);
                if (file_ck == checksum(data, off) &&
                    count == res.records_seen && next == size) {
                    footer_ok = true;
                } else {
                    damaged = true;
                    res.detail = next != size ? "trailing bytes after footer"
                                              : "footer mismatch";
                }
            }
            off = next;
            break;
        }
        if (type == k_rec_fn) {
            ee::cache_image::fn_entry e;
            if (decode_fn(u + body + 1, payload_len, e)) {
                res.image.fns.push_back(std::move(e));
                ++res.loaded_fns;
            } else {
                ++res.rejected;
                damaged = true;
            }
        } else if (type == k_rec_trigger) {
            ee::cache_image::trig_entry e;
            if (decode_trigger(u + body + 1, payload_len, e)) {
                bool admit = true;
                const bool check =
                    opts.verify == verify_mode::full ||
                    (opts.verify == verify_mode::sampled &&
                     (ee::trigger_cache::mix_key(e.class_bits, e.support,
                                                 e.num_vars) &
                      0xF) == 0);
                if (check) {
                    // The oracle re-derives the exact trigger from the class
                    // bits; a trigger that survives its checksum by chance
                    // still cannot be admitted wrong.
                    const double t0 = verify_timer.elapsed_ms();
                    const bf::truth_table master(e.num_vars, e.class_bits);
                    const bf::truth_table expect =
                        opts.use_scalar_oracle
                            ? ee::scalar::exact_trigger_function(master,
                                                                 e.support)
                            : ee::exact_trigger_function(master, e.support);
                    verify_ms += verify_timer.elapsed_ms() - t0;
                    ++res.verified;
                    admit = expect == e.trigger;
                }
                if (admit) {
                    res.image.triggers.push_back(std::move(e));
                    ++res.loaded_triggers;
                } else {
                    ++res.rejected;
                    damaged = true;
                }
            } else {
                ++res.rejected;
                damaged = true;
            }
        } else {
            // Version gating happens in the header and this schema version
            // writes no other record types, so an unknown type — even with a
            // valid checksum — is corruption, not forward compatibility.
            ++res.rejected;
            damaged = true;
        }
        off = next;
    }
    if (off >= size && !footer_ok && res.detail.empty()) {
        damaged = true;
        res.detail = "missing footer";
    }

    res.verify_ms = verify_ms;
    if (footer_ok && !damaged) {
        res.outcome = load_outcome::clean;
    } else if (res.loaded() > 0) {
        res.outcome = load_outcome::salvaged;
    } else {
        res.outcome = load_outcome::cold;
        if (res.detail.empty()) res.detail = "no records admitted";
    }
    return res;
}

void save_snapshot(const std::string& path, const ee::cache_image& image) {
    plee::wall_timer timer;
    // Throwing fates on cache.save fire before any byte is written — a
    // failed save must leave the previous snapshot intact.
    fault::injector::instance().check("cache.save", image.entries());
    std::string bytes = encode_image(image);
    const std::size_t keep = fault::injector::instance().torn_offset(
        "cache.save", image.entries(), bytes.size());
    if (keep < bytes.size()) bytes.resize(keep);
    atomic_write_bytes(path, bytes);
    obs::registry::global().get_counter("persist.saves").add();
    obs::registry::global()
        .get_histogram("persist.save_us")
        .record(static_cast<std::uint64_t>(timer.elapsed_ms() * 1000.0));
}

load_result load_snapshot(const std::string& path, const load_options& opts) {
    plee::wall_timer timer;
    load_result res;
    try {
        fault::injector::instance().check("cache.load",
                                          fault::injector::hash(path));
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            res.detail = "cannot open '" + path + "'";
        } else {
            std::string bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
            const std::size_t keep = fault::injector::instance().torn_offset(
                "cache.load", fault::injector::hash(path), bytes.size());
            if (keep < bytes.size()) bytes.resize(keep);
            res = decode_image(bytes.data(), bytes.size(), opts);
        }
    } catch (const std::exception& e) {
        // The loader's contract: file trouble (including injected faults)
        // degrades to a cold start, never propagates.
        res = load_result{};
        res.outcome = load_outcome::cold;
        res.detail = e.what();
    }

    obs::registry& reg = obs::registry::global();
    reg.get_counter("persist.records_loaded").add(res.loaded());
    reg.get_counter("persist.records_rejected").add(res.rejected);
    switch (res.outcome) {
        case load_outcome::clean: reg.get_counter("persist.loads_clean").add(); break;
        case load_outcome::salvaged:
            reg.get_counter("persist.loads_salvaged").add();
            break;
        case load_outcome::cold: reg.get_counter("persist.loads_cold").add(); break;
    }
    reg.get_histogram("persist.verify_us")
        .record(static_cast<std::uint64_t>(res.verify_ms * 1000.0));
    reg.get_histogram("persist.load_us")
        .record(static_cast<std::uint64_t>(timer.elapsed_ms() * 1000.0));
    return res;
}

void atomic_write_text(const std::string& path, const std::string& text) {
    atomic_write_bytes(path, text);
}

}  // namespace plee::persist
