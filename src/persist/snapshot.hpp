// snapshot.hpp — durable, crash-safe trigger-cache snapshots.
//
// The NPN-canonical trigger memo is the fleet's expensive artifact: every
// cold process start re-pays the 768-variant LUT4 orbit sweeps and the
// LUT7/LUT8 identity-form walls.  This layer serializes a cache image
// (see ee/cache_image.hpp) to disk and back so restarts — and other hosts,
// via merge — start warm.
//
// Two design rules dominate everything here:
//
//   1. **The file is untrusted input.**  A snapshot may have been torn by a
//      crash mid-write, bit-flipped by a bad disk, truncated by a full
//      filesystem, or written by a future version of this code.  The loader
//      therefore never throws on file content: every failure mode degrades
//      to "salvage the valid prefix" or "start cold", reported through
//      load_result with typed error text and obs counters.  A record is
//      admitted only after its checksum, its field-level bounds, and (for
//      canonicalization records) an algebraic self-consistency check pass.
//   2. **A flipped bit may cost hit rate, never correctness.**  Trigger
//      records are re-verified against the exact trigger oracle
//      (ee::exact_trigger_function, optionally the scalar reference) before
//      admission — by default every record (`verify_mode::full`; the oracle
//      is tens of ns per trigger, far cheaper than the canonicalization the
//      cache exists to avoid).  A corrupt record that survives its checksum
//      by chance is still rejected here, so the memo can never serve a
//      wrong trigger.  Canonicalization records are always checked for
//      self-consistency (applying the stored transform to the stored
//      concrete bits must reproduce the stored canonical bits), which makes
//      them result-correct by construction: a consistent-but-wrong form
//      would only fragment class sharing, not change any trigger.
//
// Writes are atomic: encode to memory, write a same-directory temp file,
// fsync it, rename over the target, fsync the directory.  A crash at any
// point leaves either the old snapshot or the new one, never a hybrid.
//
// Binary format (all integers little-endian; FNV-1a 64 checksums):
//
//   header (32 bytes):
//     0   magic            "PLEESNAP" (8 bytes)
//     8   schema_version   u32 (currently 1; newer => clean cold start)
//     12  endian_tag       u32 0x01020304 as written by a little-endian host
//     16  canon_mode       u8  (0 = P, 1 = NPN)
//     17  reserved         3 bytes, zero
//     20  pad              4 bytes, zero
//     24  header_checksum  u64 FNV-1a over bytes [0, 24)
//
//   records, back to back:
//     u32 payload_len; u8 type; payload[payload_len];
//     u64 record_checksum   — FNV-1a over the type byte + payload
//
//   record types:
//     1 = canonicalization (function -> canonical_form):
//         u8 num_vars; u8 output_neg; u8 pad[2]; u32 input_neg;
//         u8 perm[8]; u64 concrete_bits[words_for(nv)];
//         u64 canon_bits[words_for(nv)]
//     2 = trigger ((class bits, support) -> exact trigger):
//         u8 num_vars; u8 trig_vars; u8 pad[2]; u32 support;
//         u64 class_bits[words_for(nv)]; u64 trig_bits[words_for(tv)]
//     255 = footer (must be last):
//         u64 file_checksum   — FNV-1a over every byte before this record
//         u64 record_count    — non-footer records written
//
// The payload length field is *not* covered by the record checksum, so a
// flipped length bit can break framing; the loader bounds every length,
// re-syncs through the claimed length once, and otherwise stops at the last
// good record — the salvage-the-prefix guarantee.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "ee/cache_image.hpp"
#include "rt/errors.hpp"

namespace plee::persist {

inline constexpr char k_snapshot_magic[8] = {'P', 'L', 'E', 'E',
                                             'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t k_snapshot_schema_version = 1;
inline constexpr std::uint32_t k_endian_tag = 0x01020304u;
inline constexpr std::size_t k_header_size = 32;

/// Snapshot I/O failure (save path only — the loader never throws on file
/// content).  Classified transient: disk-full / permission races are
/// environmental, and a fleet that fails to persist its cache still
/// completed its work.
class snapshot_error : public plee_error {
public:
    explicit snapshot_error(const std::string& what)
        : plee_error(what, failure_class::transient) {}
};

/// How hard load verifies trigger records against the exact oracle.
enum class verify_mode : std::uint8_t {
    off,      ///< checksums + bounds + self-consistency only
    sampled,  ///< oracle-check 1 in 16 trigger records (keyed, deterministic)
    full,     ///< oracle-check every trigger record (default)
};

const char* to_string(verify_mode v);
/// Parses "off" / "sampled" / "full"; throws std::invalid_argument else.
verify_mode parse_verify_mode(const std::string& s);

struct load_options {
    verify_mode verify = verify_mode::full;
    /// Verify against the scalar reference oracle instead of the
    /// word-parallel one (slower; for torture tests and paranoia).
    bool use_scalar_oracle = false;
    /// Canonicalization mode the receiving cache uses; a snapshot written
    /// under the other mode cold-starts (its entries would never be hit).
    ee::canon_mode expected_mode = ee::canon_mode::npn;
};

enum class load_outcome : std::uint8_t {
    clean,     ///< footer verified, every record admitted
    salvaged,  ///< damage encountered, a valid prefix was admitted
    cold,      ///< nothing usable (missing/bad header/newer version/empty)
};

const char* to_string(load_outcome o);

struct load_result {
    load_outcome outcome = load_outcome::cold;
    ee::cache_image image;           ///< admitted entries only
    std::uint64_t records_seen = 0;  ///< records the framing loop visited
    std::uint64_t loaded_fns = 0;
    std::uint64_t loaded_triggers = 0;
    std::uint64_t rejected = 0;  ///< records dropped (checksum/bounds/oracle)
    std::uint64_t verified = 0;  ///< triggers oracle-checked
    std::uint64_t bytes = 0;     ///< file size observed
    double verify_ms = 0.0;      ///< wall time spent in the oracle checks
    /// Human-readable reason when outcome != clean ("truncated at byte
    /// 1412", "schema version 3 > 1"); empty on clean loads.
    std::string detail;

    std::uint64_t loaded() const { return loaded_fns + loaded_triggers; }
};

/// Serializes an image to the snapshot wire format (header + records +
/// footer).  Deterministic given the image's entry order.
std::string encode_image(const ee::cache_image& image);

/// Decodes snapshot bytes into validated entries — the pure core of
/// load_snapshot, exposed so tests can torture it byte-by-byte without
/// touching a filesystem.  Never throws on content.
load_result decode_image(const char* data, std::size_t size,
                         const load_options& opts = {});

/// Atomically writes `image` to `path`: encode, temp file in the same
/// directory, fsync, rename, fsync directory.  An existing good snapshot is
/// never clobbered by a partial write.  Throws snapshot_error on I/O
/// failure (and consults the "cache.save" fault point: throwing fates raise
/// before any write, the ':torn' fate truncates the encoded buffer at a
/// seeded offset and then commits the rename normally — a silently torn
/// file, which is exactly what the loader must survive).
void save_snapshot(const std::string& path, const ee::cache_image& image);

/// Loads and validates a snapshot.  Never throws: a missing file, a bad
/// header, a newer schema version or any corruption degrade to cold or
/// salvaged per the rules above.  Consults the "cache.load" fault point
/// (throwing fates are caught and reported as a cold start; ':torn'
/// truncates the bytes read at a seeded offset before decoding).
load_result load_snapshot(const std::string& path,
                          const load_options& opts = {});

/// FNV-1a 64 over a byte range — the snapshot checksum, exposed so tests
/// can forge valid checksums around deliberately corrupt payloads.
std::uint64_t checksum(const char* data, std::size_t size);

/// Atomically replaces `path` with `text` via the same temp + fsync +
/// rename discipline as save_snapshot.  The tools route every artifact sink
/// (--metrics-out, --trace-out, fleet JSON) through this so an interrupt
/// never leaves a half-written file.  Throws snapshot_error on I/O failure.
void atomic_write_text(const std::string& path, const std::string& text);

}  // namespace plee::persist
