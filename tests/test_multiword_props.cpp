// Randomized property suite for the multiword (7- and 8-variable) truth
// tables: every widened word kernel is cross-checked against a naive
// per-minterm oracle, all randomness from fixed splitmix64 seeds so a
// failure reproduces bit-for-bit anywhere.  This is the > 6-variable
// counterpart of the exhaustive single-word sweeps in test_truth_table.cpp
// and test_word_parallel.cpp: the spaces are too large to enumerate
// functions, so sampled functions are checked exhaustively per minterm.

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "bool/cube_list.hpp"
#include "bool/splitmix64.hpp"
#include "bool/support.hpp"
#include "bool/truth_table.hpp"
#include "ee/concurrent_cache.hpp"
#include "ee/trigger_cache.hpp"
#include "ee/trigger_search.hpp"

namespace plee::bf {
namespace {

class sm_stream {
public:
    explicit sm_stream(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next() { return splitmix64(state_++); }

private:
    std::uint64_t state_;
};

truth_table random_table(int n, sm_stream& rng) {
    tt_words words{};
    for (int w = 0; w < words_for(n); ++w) words[w] = rng.next();
    if (n < k_word_vars) words[0] &= (std::uint64_t{1} << (1u << n)) - 1;
    return truth_table(n, words);
}

std::vector<int> random_perm(int n, sm_stream& rng) {
    std::vector<int> p(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) p[static_cast<std::size_t>(v)] = v;
    for (int v = n - 1; v > 0; --v) {
        std::swap(p[static_cast<std::size_t>(v)],
                  p[rng.next() % static_cast<std::uint64_t>(v + 1)]);
    }
    return p;
}

TEST(MultiwordProps, EvalSetAndStringRoundTripPerMinterm) {
    sm_stream rng(0x9e3779b97f4a7c15ull);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 20; ++trial) {
            const truth_table f = random_table(n, rng);
            ASSERT_EQ(truth_table::from_string(f.to_string()), f);
            truth_table rebuilt(n);
            int ones = 0;
            for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
                const bool v = f.eval(m);
                rebuilt.set(m, v);
                ones += v ? 1 : 0;
                ASSERT_EQ(v, ((f.words()[m >> 6] >> (m & 63)) & 1u) != 0);
            }
            ASSERT_EQ(rebuilt, f);
            ASSERT_EQ(f.count_ones(), ones);
        }
    }
}

TEST(MultiwordProps, VariableProjectionsMatchDefinition) {
    for (int n : {7, 8}) {
        for (int v = 0; v < n; ++v) {
            const truth_table x = truth_table::variable(n, v);
            for (std::uint32_t m = 0; m < x.num_minterms(); ++m) {
                ASSERT_EQ(x.eval(m), ((m >> v) & 1u) != 0) << "n=" << n << " v=" << v;
            }
        }
    }
}

TEST(MultiwordProps, CofactorMatchesPerMintermOracle) {
    sm_stream rng(1);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 40; ++trial) {
            const truth_table f = random_table(n, rng);
            for (int v = 0; v < n; ++v) {
                for (bool value : {false, true}) {
                    const truth_table c = f.cofactor(v, value);
                    ASSERT_FALSE(c.depends_on(v));
                    for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
                        const std::uint32_t src =
                            value ? (m | (1u << v)) : (m & ~(1u << v));
                        ASSERT_EQ(c.eval(m), f.eval(src))
                            << "n=" << n << " v=" << v << " value=" << value
                            << " m=" << m;
                    }
                }
            }
        }
    }
}

TEST(MultiwordProps, SupportMaskIsSoundAndComplete) {
    sm_stream rng(2);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 60; ++trial) {
            const truth_table f = random_table(n, rng);
            const std::uint32_t mask = f.support_mask();
            for (int v = 0; v < n; ++v) {
                // Oracle: v is in the support iff some minterm pair differing
                // only in v disagrees.
                bool oracle = false;
                for (std::uint32_t m = 0; m < f.num_minterms() && !oracle; ++m) {
                    if ((m >> v) & 1u) continue;
                    oracle = f.eval(m) != f.eval(m | (1u << v));
                }
                ASSERT_EQ(((mask >> v) & 1u) != 0, oracle) << "n=" << n << " v=" << v;
                ASSERT_EQ(f.depends_on(v), oracle);
            }
        }
    }
}

TEST(MultiwordProps, PermuteMatchesOracleAndRoundTrips) {
    sm_stream rng(3);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 40; ++trial) {
            const truth_table f = random_table(n, rng);
            const std::vector<int> perm = random_perm(n, rng);
            const truth_table g = f.permute(perm);
            for (std::uint32_t dst = 0; dst < f.num_minterms(); ++dst) {
                std::uint32_t src = 0;
                for (int v = 0; v < n; ++v) {
                    if ((dst >> perm[static_cast<std::size_t>(v)]) & 1u) src |= 1u << v;
                }
                ASSERT_EQ(g.eval(dst), f.eval(src)) << "n=" << n << " dst=" << dst;
            }
            // Round trip through the inverse permutation.
            std::vector<int> inv(static_cast<std::size_t>(n));
            for (int v = 0; v < n; ++v) {
                inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] = v;
            }
            ASSERT_EQ(g.permute(inv), f);
        }
    }
}

TEST(MultiwordProps, NegateInputsIsAnInvolutionAndMatchesOracle) {
    sm_stream rng(4);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 40; ++trial) {
            const truth_table f = random_table(n, rng);
            const std::uint32_t mask =
                static_cast<std::uint32_t>(rng.next()) & ((1u << n) - 1);
            const truth_table g = f.negate_inputs(mask);
            for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
                ASSERT_EQ(g.eval(m), f.eval(m ^ mask)) << "n=" << n << " m=" << m;
            }
            ASSERT_EQ(g.negate_inputs(mask), f);
        }
    }
}

TEST(MultiwordProps, FoldFreeVarsMatchesQuantifierOracle) {
    // Budgeted version of the exhaustive single-word quantifier test: a
    // handful of random supports per function instead of all 2^n.
    sm_stream rng(5);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 10; ++trial) {
            const truth_table f = random_table(n, rng);
            const std::uint32_t all = (1u << n) - 1;
            for (int pick = 0; pick < 6; ++pick) {
                const std::uint32_t support =
                    static_cast<std::uint32_t>(rng.next()) & all;
                const std::uint32_t free_mask = all & ~support;
                const truth_table conj = f.fold_free_vars(support, true);
                const truth_table disj = f.fold_free_vars(support, false);
                for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
                    bool every = true;
                    bool any = false;
                    for (std::uint32_t sub = free_mask;;
                         sub = (sub - 1) & free_mask) {
                        const bool v = f.eval((m & ~free_mask) | sub);
                        every = every && v;
                        any = any || v;
                        if (sub == 0) break;
                    }
                    ASSERT_EQ(conj.eval(m), every)
                        << "n=" << n << " support=" << support << " m=" << m;
                    ASSERT_EQ(disj.eval(m), any)
                        << "n=" << n << " support=" << support << " m=" << m;
                }
            }
        }
    }
}

TEST(MultiwordProps, ShrinkExpandAreInverses) {
    sm_stream rng(6);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 20; ++trial) {
            const truth_table f = random_table(n, rng);
            const std::uint32_t all = (1u << n) - 1;
            for (int pick = 0; pick < 8; ++pick) {
                std::uint32_t support =
                    static_cast<std::uint32_t>(rng.next()) & all;
                if (support == 0) support = 1;
                const std::vector<int> members = support_members(support);
                const truth_table shrunk = f.shrink_to(support);
                ASSERT_EQ(shrunk.num_vars(), static_cast<int>(members.size()));
                // Oracle: the shrunk table is f restricted to free vars = 0.
                for (std::uint32_t a = 0; a < shrunk.num_minterms(); ++a) {
                    std::uint32_t m = 0;
                    for (std::size_t i = 0; i < members.size(); ++i) {
                        if ((a >> i) & 1u) m |= 1u << members[i];
                    }
                    ASSERT_EQ(shrunk.eval(a), f.eval(m))
                        << "n=" << n << " support=" << support << " a=" << a;
                }
                // expand_onto inverts shrink_to and is vacuous off-support.
                const truth_table back = shrunk.expand_onto(support, n);
                ASSERT_EQ(back.num_vars(), n);
                ASSERT_EQ(back.shrink_to(support), shrunk);
                ASSERT_EQ(back.support_mask() & ~support, 0u);
                ASSERT_EQ(back.count_ones(),
                          shrunk.count_ones()
                              << std::popcount(all & ~support));
            }
            // Plain vacuous widening from every smaller arity.
            const truth_table narrow = random_table(5, rng);
            const truth_table wide = narrow.expand(n);
            for (std::uint32_t m = 0; m < wide.num_minterms(); ++m) {
                ASSERT_EQ(wide.eval(m), narrow.eval(m & 31u));
            }
        }
    }
}

TEST(MultiwordProps, IsopCoverRoundTripsWideFunctions) {
    sm_stream rng(7);
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 4; ++trial) {
            // Sparse ON-sets keep Quine–McCluskey fast at 8 variables while
            // still spanning several words.
            truth_table f(n);
            for (int i = 0; i < 24; ++i) {
                f.set(static_cast<std::uint32_t>(rng.next()) & ((1u << n) - 1),
                      true);
            }
            const cube_list cover = isop_cover(f);  // self-verifies
            ASSERT_EQ(cover.to_truth_table(), f);
        }
    }
}

}  // namespace
}  // namespace plee::bf

namespace plee::ee {
namespace {

using bf::splitmix64;
using bf::truth_table;
using bf::tt_words;

class sm_stream {
public:
    explicit sm_stream(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next() { return splitmix64(state_++); }

private:
    std::uint64_t state_;
};

truth_table random_table(int n, sm_stream& rng) {
    tt_words words{};
    for (int w = 0; w < bf::words_for(n); ++w) words[w] = rng.next();
    return truth_table(n, words);
}

TEST(MultiwordTrigger, ExactTriggerMatchesScalarOracleOnWideMasters) {
    sm_stream rng(11);
    for (int n : {7, 8}) {
        const std::uint32_t pins = (1u << n) - 1;
        for (int trial = 0; trial < 30; ++trial) {
            const truth_table master = random_table(n, rng);
            for (std::uint32_t s : bf::cached_support_subsets(pins, 3)) {
                const truth_table word = exact_trigger_function(master, s);
                ASSERT_EQ(word, scalar::exact_trigger_function(master, s))
                    << "n=" << n << " support=" << s;
                ASSERT_EQ(covered_minterms(master, s, word),
                          scalar::covered_minterms(master, s, word));
            }
        }
    }
}

TEST(MultiwordTrigger, ExactTriggerHandlesWideSupports) {
    // Supports with > 6 members: the trigger itself is a multiword table.
    sm_stream rng(12);
    for (int trial = 0; trial < 10; ++trial) {
        const truth_table master = random_table(8, rng);
        for (std::uint32_t s : {0x7fu, 0xbfu, 0xfeu}) {  // 7-member supports
            const truth_table word = exact_trigger_function(master, s);
            ASSERT_EQ(word.num_vars(), 7);
            ASSERT_EQ(word, scalar::exact_trigger_function(master, s));
        }
    }
}

TEST(MultiwordTrigger, CubeListTriggerMatchesScalarOracleOnWideMasters) {
    sm_stream rng(13);
    for (int n : {7, 8}) {
        const std::uint32_t pins = (1u << n) - 1;
        for (int trial = 0; trial < 4; ++trial) {
            // Structured masters keep the QM cover compact at 8 variables: a
            // threshold function plus random input negations.
            truth_table base = truth_table::from_function(n, [n](std::uint32_t m) {
                return std::popcount(m) * 2 > n;
            });
            base = base.negate_inputs(static_cast<std::uint32_t>(rng.next()) &
                                      ((1u << n) - 1));
            const bf::on_off_cover cover = bf::make_on_off_cover(base);
            for (std::uint32_t s : bf::cached_support_subsets(pins, 3)) {
                ASSERT_EQ(cube_list_trigger_function(base, cover, s),
                          scalar::cube_list_trigger_function(base, cover, s))
                    << "n=" << n << " support=" << s;
            }
        }
    }
}

TEST(MultiwordTrigger, FullSearchMatchesScalarKernelsOnWideMasters) {
    sm_stream rng(14);
    search_options word_opts;
    search_options scalar_opts;
    scalar_opts.use_scalar_kernels = true;
    for (int n : {7, 8}) {
        for (int trial = 0; trial < 12; ++trial) {
            const truth_table master = random_table(n, rng);
            std::vector<int> arrivals;
            for (int v = 0; v < n; ++v) {
                arrivals.push_back(static_cast<int>(rng.next() % 5));
            }
            const search_result w = find_best_trigger(master, arrivals, word_opts);
            const search_result s = find_best_trigger(master, arrivals, scalar_opts);
            ASSERT_EQ(w.all.size(), s.all.size()) << "n=" << n;
            for (std::size_t i = 0; i < w.all.size(); ++i) {
                ASSERT_EQ(w.all[i].support, s.all[i].support);
                ASSERT_EQ(w.all[i].function, s.all[i].function);
                ASSERT_EQ(w.all[i].covered_minterms, s.all[i].covered_minterms);
                ASSERT_EQ(w.all[i].cost, s.all[i].cost);
            }
            ASSERT_EQ(w.best.has_value(), s.best.has_value());
            if (w.best) {
                ASSERT_EQ(w.best->support, s.best->support);
                ASSERT_EQ(w.best->function, s.best->function);
            }
        }
    }
}

TEST(MultiwordTrigger, CachesAreTransparentOnWideMasters) {
    // Wide masters memoize on concrete bits (identity canonical form); the
    // cached result must still equal the direct kernel, repeats must hit,
    // and the private and fleet-shared caches must agree.
    sm_stream rng(15);
    trigger_cache cache;
    concurrent_trigger_cache shared;
    std::vector<truth_table> masters;
    for (int trial = 0; trial < 10; ++trial) masters.push_back(random_table(7, rng));
    const std::vector<std::uint32_t>& supports =
        bf::cached_support_subsets(0x7f, 3);
    for (const truth_table& m : masters) {
        for (std::uint32_t s : supports) {
            const truth_table direct = exact_trigger_function(m, s);
            ASSERT_EQ(cache.exact(m, s), direct);
            ASSERT_EQ(shared.exact(m, s), direct);
        }
    }
    const std::uint64_t misses = cache.misses();
    for (const truth_table& m : masters) {
        for (std::uint32_t s : supports) cache.exact(m, s);
    }
    EXPECT_EQ(cache.misses(), misses);  // second sweep is all hits
    EXPECT_EQ(cache.hits() + cache.misses(),
              2 * masters.size() * supports.size());
}

TEST(MultiwordTrigger, PCanonicalizationIsPermutationInvariantAtSevenVars) {
    // The exhaustive orbit sweep stays exact above the single-word limit
    // even though the caches choose not to pay for it (identity form): any
    // permutation of a 7-var function canonicalizes to the same words.
    sm_stream rng(16);
    for (int trial = 0; trial < 3; ++trial) {
        const truth_table f = random_table(7, rng);
        const trigger_cache::canonical_form canon = trigger_cache::canonicalize(f);
        for (int variant = 0; variant < 3; ++variant) {
            std::vector<int> perm(7);
            for (int v = 0; v < 7; ++v) perm[static_cast<std::size_t>(v)] = v;
            for (int v = 6; v > 0; --v) {
                std::swap(perm[static_cast<std::size_t>(v)],
                          perm[rng.next() % static_cast<std::uint64_t>(v + 1)]);
            }
            const truth_table g = f.permute(perm);
            ASSERT_EQ(trigger_cache::canonicalize(g).bits, canon.bits);
            // The recorded witness reproduces the canonical words.
            const trigger_cache::canonical_form cg = trigger_cache::canonicalize(g);
            std::vector<int> witness(7);
            for (int v = 0; v < 7; ++v) witness[v] = cg.perm[v];
            ASSERT_EQ(g.permute(witness).words(), canon.bits);
        }
    }
}

}  // namespace
}  // namespace plee::ee
