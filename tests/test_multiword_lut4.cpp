// Exhaustive LUT4 regression for the multiword truth-table refactor: the
// ≤ 6-variable path must be byte-identical to the pre-refactor single-word
// engine.  Over all 2^16 LUT4 masters and all 14 candidate support sets this
// locks down (1) the trigger functions against the retained per-minterm
// scalar oracle — including that their storage stays entirely in word 0,
// (2) the canonical (P and NPN) forms — word 0 only, class counts unchanged
// — and (3) the cache keys, which must reproduce the pre-refactor
// single-word splitmix64 mix bit-for-bit so a warm cache layout carries
// across the refactor.

#include <gtest/gtest.h>

#include <set>

#include "bool/splitmix64.hpp"
#include "bool/support.hpp"
#include "bool/truth_table.hpp"
#include "ee/trigger_cache.hpp"
#include "ee/trigger_search.hpp"

namespace plee::ee {
namespace {

bool single_word(const bf::tt_words& words) {
    return words[1] == 0 && words[2] == 0 && words[3] == 0;
}

/// The pre-refactor key mixer, verbatim: one word, no chaining.
std::uint64_t legacy_mix_key(std::uint64_t bits, std::uint32_t support,
                             int num_vars) {
    return bf::splitmix64(
        bits ^ bf::splitmix64((static_cast<std::uint64_t>(support) << 8) |
                              static_cast<std::uint64_t>(num_vars)));
}

TEST(MultiwordLut4, TriggersMatchScalarOracleAndStaySingleWord) {
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table master(4, f);
        ASSERT_TRUE(single_word(master.words()));
        for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
            const bf::truth_table word = exact_trigger_function(master, s);
            const bf::truth_table ref = scalar::exact_trigger_function(master, s);
            ASSERT_EQ(word, ref) << "master=" << f << " support=" << s;
            // Byte-identity of the representation, not just value equality:
            // the trigger lives in word 0 exactly as it did pre-refactor.
            ASSERT_TRUE(single_word(word.words()));
            ASSERT_EQ(word.bits(), ref.bits());
        }
    }
}

TEST(MultiwordLut4, CacheKeysReproduceTheSingleWordMix) {
    // The multiword mixer chains splitmix64 through every active word; with
    // one active word the chain must collapse to the legacy formula, for
    // every function and support of the LUT4 space (and for the function-
    // level keys with support 0).
    const std::vector<std::uint32_t>& supports = bf::cached_support_subsets(0xf, 3);
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::tt_words words{f, 0, 0, 0};
        ASSERT_EQ(trigger_cache::mix_key(words, 0, 4), legacy_mix_key(f, 0, 4));
        for (std::uint32_t s : supports) {
            ASSERT_EQ(trigger_cache::mix_key(words, s, 4), legacy_mix_key(f, s, 4))
                << "master=" << f << " support=" << s;
            // The single-word convenience overload is the same key.
            ASSERT_EQ(trigger_cache::mix_key(static_cast<std::uint64_t>(f), s, 4),
                      legacy_mix_key(f, s, 4));
        }
    }
}

TEST(MultiwordLut4, CanonicalClassesStaySingleWordWithUnchangedCounts) {
    // P-canonicalization over the full space: canonical words stay in word
    // 0 and the class count is still 3984.  (The NPN count of 222 over the
    // full space is asserted by test_trigger_cache_npn; here a fixed sample
    // pins the NPN forms to word 0 as well.)
    std::set<std::uint64_t> p_classes;
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const trigger_cache::canonical_form canon =
            trigger_cache::canonicalize(bf::truth_table(4, f));
        ASSERT_TRUE(single_word(canon.bits)) << "master=" << f;
        p_classes.insert(canon.bits[0]);
    }
    EXPECT_EQ(p_classes.size(), 3984u);

    std::uint64_t state = 0x1ee7;
    for (int trial = 0; trial < 512; ++trial) {
        state = bf::splitmix64(state + trial);
        const trigger_cache::canonical_form canon =
            trigger_cache::npn_canonicalize(bf::truth_table(4, state & 0xffff));
        ASSERT_TRUE(single_word(canon.bits));
    }
}

TEST(MultiwordLut4, CachedTriggersByteIdenticalThroughBothCanonModes) {
    // End-to-end through the memo: for every LUT4 function and support, the
    // P-mode and NPN-mode caches must both return the scalar oracle's exact
    // bits through the multiword path.
    trigger_cache p_cache(canon_mode::p);
    trigger_cache npn_cache(canon_mode::npn);
    for (std::uint32_t f = 0; f <= 0xffffu; ++f) {
        const bf::truth_table master(4, f);
        for (std::uint32_t s : bf::cached_support_subsets(0xf, 3)) {
            const bf::truth_table ref = scalar::exact_trigger_function(master, s);
            ASSERT_EQ(p_cache.exact(master, s).bits(), ref.bits())
                << "master=" << f << " support=" << s;
            ASSERT_EQ(npn_cache.exact(master, s).bits(), ref.bits())
                << "master=" << f << " support=" << s;
        }
    }
    // The class collapse the scheme rests on, unchanged by the refactor.
    EXPECT_EQ(p_cache.size(), 3984u * 14u);
    EXPECT_LT(npn_cache.size(), p_cache.size());
}

}  // namespace
}  // namespace plee::ee
