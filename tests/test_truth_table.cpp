// Unit tests for bf::truth_table — the dense Boolean function substrate of
// the trigger search.

#include "bool/truth_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace plee::bf {
namespace {

TEST(TruthTable, ConstantsHaveExpectedBits) {
    EXPECT_EQ(truth_table::constant(3, false).bits(), 0u);
    EXPECT_EQ(truth_table::constant(3, true).bits(), 0xffu);
    EXPECT_TRUE(truth_table::constant(2, true).is_constant_one());
    EXPECT_TRUE(truth_table::constant(2, false).is_constant_zero());
    EXPECT_TRUE(truth_table::constant(0, true).is_constant_one());
}

TEST(TruthTable, VariableProjection) {
    const truth_table x0 = truth_table::variable(2, 0);
    const truth_table x1 = truth_table::variable(2, 1);
    EXPECT_EQ(x0.to_string(), "0101");
    EXPECT_EQ(x1.to_string(), "0011");
}

TEST(TruthTable, RejectsBadArity) {
    EXPECT_THROW(truth_table(9), std::invalid_argument);
    EXPECT_THROW(truth_table(-1), std::invalid_argument);
    EXPECT_THROW(truth_table(2, 0x10), std::invalid_argument);  // bit 4 of a 2-var table
    // Word-array construction enforces the same row bound: a 7-var table
    // spans 2 words, so words 2..3 must be zero.
    EXPECT_THROW(truth_table(7, tt_words{0, 0, 1, 0}), std::invalid_argument);
    EXPECT_NO_THROW(truth_table(7, tt_words{~0ull, 42, 0, 0}));
}

TEST(TruthTable, FullAdderCarryMatchesPaperTable1) {
    // Table 1 master: carry-out c(a+b) + ab with a=var0, b=var1, c=var2.
    const truth_table a = truth_table::variable(3, 0);
    const truth_table b = truth_table::variable(3, 1);
    const truth_table c = truth_table::variable(3, 2);
    const truth_table carry = (c & (a | b)) | (a & b);
    // Paper rows (abc ascending as 000,001,...): 0,0,0,1,0,1,1,1 — note the
    // paper lists minterms with a as the MSB column; our index packs a in
    // bit 0, so compare against the function directly.
    for (std::uint32_t m = 0; m < 8; ++m) {
        const bool av = m & 1, bv = m & 2, cv = m & 4;
        EXPECT_EQ(carry.eval(m), (cv && (av || bv)) || (av && bv));
    }
    EXPECT_EQ(carry.count_ones(), 4);
}

TEST(TruthTable, EvalAndSetRoundTrip) {
    truth_table t(4);
    t.set(5, true);
    t.set(11, true);
    EXPECT_TRUE(t.eval(5));
    EXPECT_TRUE(t.eval(11));
    EXPECT_FALSE(t.eval(6));
    t.set(5, false);
    EXPECT_FALSE(t.eval(5));
    EXPECT_THROW(t.eval(16), std::out_of_range);
    EXPECT_THROW(t.set(16, true), std::out_of_range);
}

TEST(TruthTable, CofactorShannonExpansion) {
    const truth_table f = truth_table::from_string("0110100110010110");  // 4-var
    for (int v = 0; v < 4; ++v) {
        const truth_table f0 = f.cofactor(v, false);
        const truth_table f1 = f.cofactor(v, true);
        EXPECT_FALSE(f0.depends_on(v));
        EXPECT_FALSE(f1.depends_on(v));
        const truth_table x = truth_table::variable(4, v);
        EXPECT_EQ((~x & f0) | (x & f1), f);  // Shannon expansion
    }
}

TEST(TruthTable, SupportDetection) {
    // f = x0 XOR x2 over 4 vars: support {0, 2}.
    const truth_table f =
        truth_table::variable(4, 0) ^ truth_table::variable(4, 2);
    EXPECT_TRUE(f.depends_on(0));
    EXPECT_FALSE(f.depends_on(1));
    EXPECT_TRUE(f.depends_on(2));
    EXPECT_FALSE(f.depends_on(3));
    EXPECT_EQ(f.support_mask(), 0b0101u);
    EXPECT_EQ(f.support_size(), 2);
}

TEST(TruthTable, ExpandKeepsFunction) {
    const truth_table f = truth_table::variable(2, 1);  // x1 over 2 vars
    const truth_table g = f.expand(4);
    EXPECT_EQ(g.num_vars(), 4);
    for (std::uint32_t m = 0; m < 16; ++m) {
        EXPECT_EQ(g.eval(m), (m & 2u) != 0);
    }
    EXPECT_EQ(g.support_mask(), 0b0010u);
    EXPECT_THROW(g.expand(2), std::invalid_argument);
}

TEST(TruthTable, PermuteRelabelsVariables) {
    // f(x0,x1) = x0 & ~x1; permute 0->1, 1->0 gives x1 & ~x0.
    const truth_table f = truth_table::variable(2, 0) & ~truth_table::variable(2, 1);
    const truth_table g = f.permute({1, 0});
    EXPECT_EQ(g, truth_table::variable(2, 1) & ~truth_table::variable(2, 0));
}

TEST(TruthTable, OperatorsAreBitwise) {
    const truth_table a = truth_table::from_string("0011");
    const truth_table b = truth_table::from_string("0101");
    EXPECT_EQ((a & b).to_string(), "0001");
    EXPECT_EQ((a | b).to_string(), "0111");
    EXPECT_EQ((a ^ b).to_string(), "0110");
    EXPECT_EQ((~a).to_string(), "1100");
}

TEST(TruthTable, BinaryOperatorsRejectArityMismatch) {
    EXPECT_THROW(truth_table(2) & truth_table(3), std::invalid_argument);
    EXPECT_THROW(truth_table(2) | truth_table(3), std::invalid_argument);
    EXPECT_THROW(truth_table(2) ^ truth_table(3), std::invalid_argument);
}

TEST(TruthTable, FromStringRoundTrip) {
    const std::string rows = "01101001";
    EXPECT_EQ(truth_table::from_string(rows).to_string(), rows);
    EXPECT_THROW(truth_table::from_string("011"), std::invalid_argument);
    EXPECT_THROW(truth_table::from_string("01x1"), std::invalid_argument);
}

TEST(TruthTable, SixVariableLimit) {
    const truth_table t = truth_table::variable(6, 5);
    EXPECT_EQ(t.num_minterms(), 64u);
    EXPECT_EQ(t.count_ones(), 32);
    EXPECT_TRUE(truth_table::constant(6, true).is_constant_one());
}

// Property sweep: cofactor and support agree for a spread of 4-var functions.
class TruthTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruthTableProperty, SupportMatchesCofactorEquality) {
    const truth_table f(4, GetParam() & 0xffff);
    for (int v = 0; v < 4; ++v) {
        EXPECT_EQ(f.depends_on(v), f.cofactor(v, false) != f.cofactor(v, true));
    }
}

TEST_P(TruthTableProperty, DeMorgan) {
    const truth_table f(4, GetParam() & 0xffff);
    const truth_table g(4, (GetParam() * 0x9e3779b9u) & 0xffff);
    EXPECT_EQ(~(f & g), ~f | ~g);
    EXPECT_EQ(~(f | g), ~f & ~g);
}

INSTANTIATE_TEST_SUITE_P(Spread, TruthTableProperty,
                         ::testing::Values(0x0000u, 0xffffu, 0x8000u, 0x0001u,
                                           0x6996u, 0x1ee1u, 0xcafeu, 0x1234u,
                                           0xf0f0u, 0xaaaa, 0x5a5au, 0x7777u));

// ---------------------------------------------------------------------------
// Word-parallel kernels: every branch-free shift/AND implementation is
// cross-checked against a per-minterm model built with from_function, over
// random tables of every arity up to 6.
// ---------------------------------------------------------------------------

std::uint64_t next_state(std::uint64_t& s) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s;
}

truth_table random_table(int n, std::uint64_t& s) {
    tt_words words{};
    for (int w = 0; w < words_for(n); ++w) words[w] = next_state(s);
    if (n < k_word_vars) words[0] &= (std::uint64_t{1} << (1u << n)) - 1;
    return truth_table(n, words);
}

TEST(TruthTableKernels, VarMasksAreTheProjectionTables) {
    for (int n = 1; n <= k_max_vars; ++n) {
        for (int v = 0; v < n; ++v) {
            const truth_table expected = truth_table::from_function(
                n, [v](std::uint32_t m) { return ((m >> v) & 1u) != 0; });
            EXPECT_EQ(truth_table::variable(n, v), expected);
        }
    }
}

TEST(TruthTableKernels, CofactorMatchesPerMintermModel) {
    std::uint64_t s = 1;
    for (int trial = 0; trial < 200; ++trial) {
        for (int n = 1; n <= k_max_vars; ++n) {
            const truth_table f = random_table(n, s);
            for (int v = 0; v < n; ++v) {
                for (bool value : {false, true}) {
                    const truth_table expected = truth_table::from_function(
                        n, [&](std::uint32_t m) {
                            const std::uint32_t src =
                                value ? (m | (1u << v)) : (m & ~(1u << v));
                            return f.eval(src);
                        });
                    ASSERT_EQ(f.cofactor(v, value), expected)
                        << "n=" << n << " v=" << v << " value=" << value;
                }
            }
        }
    }
}

TEST(TruthTableKernels, DependsOnAndSupportMatchCofactors) {
    std::uint64_t s = 2;
    for (int trial = 0; trial < 500; ++trial) {
        for (int n = 1; n <= k_max_vars; ++n) {
            const truth_table f = random_table(n, s);
            std::uint32_t expected_mask = 0;
            for (int v = 0; v < n; ++v) {
                const bool dep = f.cofactor(v, false) != f.cofactor(v, true);
                ASSERT_EQ(f.depends_on(v), dep);
                if (dep) expected_mask |= 1u << v;
            }
            ASSERT_EQ(f.support_mask(), expected_mask);
        }
    }
}

TEST(TruthTableKernels, FoldFreeVarsIsTheQuantifierPair) {
    // Conjunctive fold = universal quantification over the free variables,
    // disjunctive fold = existential, evaluated per support assignment.
    // Exhaustive over every support up to the single-word limit here; the
    // multiword (7-8 var) folds are oracle-checked with a sampled-support
    // budget in test_multiword_props.cpp.
    std::uint64_t s = 3;
    for (int trial = 0; trial < 100; ++trial) {
        for (int n = 2; n <= k_word_vars; ++n) {
            const truth_table f = random_table(n, s);
            const std::uint32_t all = (1u << n) - 1;
            for (std::uint32_t support = 0; support <= all; ++support) {
                const std::uint32_t free_mask = all & ~support;
                const truth_table expected_all = truth_table::from_function(
                    n, [&](std::uint32_t m) {
                        for (std::uint32_t sub = free_mask;;
                             sub = (sub - 1) & free_mask) {
                            if (!f.eval((m & ~free_mask) | sub)) return false;
                            if (sub == 0) break;
                        }
                        return true;
                    });
                const truth_table expected_any = truth_table::from_function(
                    n, [&](std::uint32_t m) {
                        for (std::uint32_t sub = free_mask;;
                             sub = (sub - 1) & free_mask) {
                            if (f.eval((m & ~free_mask) | sub)) return true;
                            if (sub == 0) break;
                        }
                        return false;
                    });
                ASSERT_EQ(f.fold_free_vars(support, true), expected_all)
                    << "n=" << n << " support=" << support;
                ASSERT_EQ(f.fold_free_vars(support, false), expected_any)
                    << "n=" << n << " support=" << support;
            }
        }
    }
}

TEST(TruthTableKernels, ShrinkToExtractsTheZeroSlice) {
    std::uint64_t s = 4;
    for (int trial = 0; trial < 200; ++trial) {
        for (int n = 1; n <= k_max_vars; ++n) {
            const truth_table f = random_table(n, s);
            const std::uint32_t all = (1u << n) - 1;
            for (std::uint32_t support = 0; support <= all; ++support) {
                std::vector<int> members;
                for (int v = 0; v < n; ++v) {
                    if ((support >> v) & 1u) members.push_back(v);
                }
                const truth_table shrunk = f.shrink_to(support);
                ASSERT_EQ(shrunk.num_vars(), static_cast<int>(members.size()));
                for (std::uint32_t a = 0; a < shrunk.num_minterms(); ++a) {
                    std::uint32_t m = 0;
                    for (std::size_t i = 0; i < members.size(); ++i) {
                        if ((a >> i) & 1u) m |= 1u << members[i];
                    }
                    ASSERT_EQ(shrunk.eval(a), f.eval(m))
                        << "n=" << n << " support=" << support << " a=" << a;
                }
            }
        }
    }
}

TEST(TruthTableKernels, ExpandOntoInvertsShrinkTo) {
    std::uint64_t s = 5;
    for (int trial = 0; trial < 200; ++trial) {
        for (int n = 2; n <= k_max_vars; ++n) {
            const truth_table f = random_table(n, s);
            const std::uint32_t all = (1u << n) - 1;
            for (std::uint32_t support = 1; support <= all; ++support) {
                const truth_table shrunk = f.shrink_to(support);
                const truth_table back = shrunk.expand_onto(support, n);
                ASSERT_EQ(back.num_vars(), n);
                // back must agree with f wherever the free vars are 0, and
                // must not depend on the free vars at all.
                ASSERT_EQ(back.shrink_to(support), shrunk);
                ASSERT_EQ(back.support_mask() & ~support, 0u);
                // Coverage arithmetic the trigger search relies on: each
                // support assignment is replicated 2^(free vars) times.
                ASSERT_EQ(back.count_ones(),
                          shrunk.count_ones() << std::popcount(all & ~support));
            }
        }
    }
}

TEST(TruthTableKernels, PermuteMatchesPerMintermModel) {
    std::uint64_t s = 6;
    for (int trial = 0; trial < 100; ++trial) {
        for (int n = 1; n <= k_max_vars; ++n) {
            const truth_table f = random_table(n, s);
            std::vector<int> perm(static_cast<std::size_t>(n));
            for (int v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
            // Fisher-Yates with the test PRNG.
            for (int v = n - 1; v > 0; --v) {
                std::swap(perm[static_cast<std::size_t>(v)],
                          perm[next_state(s) % static_cast<std::uint64_t>(v + 1)]);
            }
            const truth_table expected = truth_table::from_function(
                n, [&](std::uint32_t dst) {
                    // dst bit perm[v] carries source bit v.
                    std::uint32_t src = 0;
                    for (int v = 0; v < n; ++v) {
                        if ((dst >> perm[static_cast<std::size_t>(v)]) & 1u) {
                            src |= 1u << v;
                        }
                    }
                    return f.eval(src);
                });
            ASSERT_EQ(f.permute(perm), expected) << "n=" << n;
        }
    }
}

TEST(TruthTableKernels, ExpandIsVacuous) {
    std::uint64_t s = 7;
    for (int trial = 0; trial < 100; ++trial) {
        for (int n = 0; n <= k_max_vars; ++n) {
            const truth_table f = random_table(std::max(n, 1), s);
            for (int m = f.num_vars(); m <= k_max_vars; ++m) {
                const truth_table wide = f.expand(m);
                ASSERT_EQ(wide.num_vars(), m);
                const std::uint32_t low = f.num_minterms() - 1;
                for (std::uint32_t i = 0; i < wide.num_minterms(); ++i) {
                    ASSERT_EQ(wide.eval(i), f.eval(i & low));
                }
            }
        }
    }
}

}  // namespace
}  // namespace plee::bf
