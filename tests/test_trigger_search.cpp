// Tests for the trigger-function search — the paper's core algorithm.
// Includes an exact reproduction of the running example of Section 3
// (Tables 1 and 2): the full-adder carry-out master with trigger ab + a'b'
// at 50% coverage over support {a, b}.

#include "ee/trigger_search.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "bool/support.hpp"
#include "ee/trigger_cache.hpp"

namespace plee::ee {
namespace {

/// The paper's master: carry-out c(a+b) + ab with a=var0, b=var1, c=var2.
bf::truth_table carry_master() {
    const bf::truth_table a = bf::truth_table::variable(3, 0);
    const bf::truth_table b = bf::truth_table::variable(3, 1);
    const bf::truth_table c = bf::truth_table::variable(3, 2);
    return (c & (a | b)) | (a & b);
}

TEST(TriggerSearch, PaperTable1TriggerForSupportAB) {
    // Exact derivation over S = {a, b}: trigger = ab + a'b' (XNOR), exactly
    // the paper's Table 1 "Trigger" column.
    const bf::truth_table trig = exact_trigger_function(carry_master(), 0b011);
    const bf::truth_table xnor2 =
        ~(bf::truth_table::variable(2, 0) ^ bf::truth_table::variable(2, 1));
    EXPECT_EQ(trig, xnor2);
}

TEST(TriggerSearch, PaperTable1CoverageIs50Percent) {
    // "an overall coverage of 4/8 = 50% is computed".
    const bf::truth_table master = carry_master();
    const bf::truth_table trig = exact_trigger_function(master, 0b011);
    EXPECT_EQ(covered_minterms(master, 0b011, trig), 4);
}

TEST(TriggerSearch, PaperTable2CubeListDerivationAgrees) {
    // The cube-list procedure of Table 2 finds f_trig = {00-, 11-} projected
    // to {a,b}: identical to the exact trigger for this master.
    const bf::truth_table master = carry_master();
    const bf::on_off_cover cover = bf::make_on_off_cover(master);
    const bf::truth_table trig = cube_list_trigger_function(master, cover, 0b011);
    EXPECT_EQ(trig, exact_trigger_function(master, 0b011));
    EXPECT_EQ(covered_minterms(master, 0b011, trig), 4);
}

TEST(TriggerSearch, CarryInOnlySupportsGiveNoEarlyWin) {
    // S = {c}: neither c=0 nor c=1 determines the carry (propagate cases
    // always exist), so the trigger is constant 0.
    const bf::truth_table trig = exact_trigger_function(carry_master(), 0b100);
    EXPECT_TRUE(trig.is_constant_zero());
}

TEST(TriggerSearch, SingleVariableSupportsOfCarry) {
    // S = {a}: a alone never fixes carry (b and c can push it either way);
    // same for {b}.
    EXPECT_TRUE(exact_trigger_function(carry_master(), 0b001).is_constant_zero());
    EXPECT_TRUE(exact_trigger_function(carry_master(), 0b010).is_constant_zero());
}

TEST(TriggerSearch, MixedSupportsOfCarry) {
    // S = {a, c}: a=1,c=1 forces carry=1; a=0,c=0 forces 0 — coverage 4/8.
    const bf::truth_table trig = exact_trigger_function(carry_master(), 0b101);
    EXPECT_EQ(covered_minterms(carry_master(), 0b101, trig), 4);
}

TEST(TriggerSearch, AndGateKillSignals) {
    // master = a AND b AND c: any 0 input kills the output; a single-var
    // support {a} triggers on a=0 (coverage 4/8).
    const bf::truth_table master = bf::truth_table::variable(3, 0) &
                                   bf::truth_table::variable(3, 1) &
                                   bf::truth_table::variable(3, 2);
    const bf::truth_table trig = exact_trigger_function(master, 0b001);
    EXPECT_EQ(trig, ~bf::truth_table::variable(1, 0));  // fires on a = 0
    EXPECT_EQ(covered_minterms(master, 0b001, trig), 4);
}

TEST(TriggerSearch, XorHasNoTrigger) {
    // Parity is never determined by a proper subset: all candidates dead.
    const bf::truth_table master = bf::truth_table::variable(3, 0) ^
                                   bf::truth_table::variable(3, 1) ^
                                   bf::truth_table::variable(3, 2);
    const search_result r = find_best_trigger(master, {0, 0, 0});
    EXPECT_FALSE(r.best.has_value());
    for (const trigger_candidate& c : r.all) {
        EXPECT_EQ(c.covered_minterms, 0);
    }
}

TEST(TriggerSearch, FourteenSupportSetsEvaluatedForLut4) {
    // A 4-input master with non-trivial triggers everywhere: OR4.  All 14
    // support sets yield a candidate (any 1 in the subset forces output 1).
    const bf::truth_table master = bf::truth_table::from_function(
        4, [](std::uint32_t m) { return m != 0; });
    const search_result r = find_best_trigger(master, {3, 2, 1, 0});
    EXPECT_EQ(r.all.size(), 14u);
    ASSERT_TRUE(r.best.has_value());
}

TEST(TriggerSearch, EquationOneArrivalWeighting) {
    // Two supports with equal coverage: the one fed by faster-arriving
    // signals must win — "a large coverage ... may depend on slowly arriving
    // signals and thus not be as effective".
    const bf::truth_table master = carry_master();
    // Arrivals: a fast (depth 0), b fast (0), c slow (5).
    const search_result r = find_best_trigger(master, {0, 0, 5});
    ASSERT_TRUE(r.best.has_value());
    EXPECT_EQ(r.best->support, 0b011u);  // {a, b}: avoids the slow carry-in
    EXPECT_EQ(r.best->master_max_arrival, 5);
    EXPECT_EQ(r.best->trigger_max_arrival, 0);
}

TEST(TriggerSearch, RequireArrivalGainFiltersSlowTriggers) {
    // All inputs arrive simultaneously: no support subset can be faster, so
    // nothing is implementable under the default policy.
    const search_result r = find_best_trigger(carry_master(), {2, 2, 2});
    EXPECT_FALSE(r.best.has_value());

    search_options relaxed;
    relaxed.require_arrival_gain = false;
    const search_result r2 = find_best_trigger(carry_master(), {2, 2, 2}, relaxed);
    EXPECT_TRUE(r2.best.has_value());
}

TEST(TriggerSearch, CostThresholdFilters) {
    search_options opts;
    opts.cost_threshold = 1e9;  // nothing can clear this bar
    const search_result r = find_best_trigger(carry_master(), {0, 0, 5}, opts);
    EXPECT_FALSE(r.best.has_value());
}

TEST(TriggerSearch, Equation1CostFormula) {
    // cost = coverage% * (Mmax+1)/(Tmax+1) — the +1 smoothing documented in
    // the header (depths start at 0 for environment/register signals).
    EXPECT_DOUBLE_EQ(equation1_cost(50.0, 5, 0), 50.0 * 6.0 / 1.0);
    EXPECT_DOUBLE_EQ(equation1_cost(25.0, 3, 1), 25.0 * 4.0 / 2.0);
    EXPECT_DOUBLE_EQ(equation1_cost(100.0, 0, 0), 100.0);
}

TEST(TriggerSearch, FullCoverageCandidatesAreRejected) {
    // master = x0 (expressed over 2 vars): support {x0} determines the
    // output for every assignment — a vacuous-input artifact, not EE.
    const bf::truth_table master = bf::truth_table::variable(2, 0);
    const search_result r = find_best_trigger(master, {0, 5});
    EXPECT_FALSE(r.best.has_value());
}

TEST(TriggerSearch, CubeListCoverageNeverExceedsExact) {
    // The exact (cofactor) trigger is maximal for each support set; the
    // paper's cube-list derivation can only tie or lose (SOP-dependent).
    std::uint64_t state = 99;
    for (int trial = 0; trial < 40; ++trial) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bf::truth_table master(4, state & 0xffff);
        if (master.support_size() < 2) continue;
        const bf::on_off_cover cover = bf::make_on_off_cover(master);
        for (std::uint32_t s :
             bf::enumerate_support_subsets(master.support_mask(), 3)) {
            const bf::truth_table exact = exact_trigger_function(master, s);
            const bf::truth_table cubes = cube_list_trigger_function(master, cover, s);
            EXPECT_LE(covered_minterms(master, s, cubes),
                      covered_minterms(master, s, exact));
            // And cube triggers are sound: implied by the exact trigger.
            EXPECT_TRUE((cubes & ~exact).is_constant_zero());
        }
    }
}


TEST(TriggerSearch, CacheIsTransparentAndHits) {
    // Cached and uncached searches must agree bit-for-bit; repeated masters
    // must hit the memo.
    ee::trigger_cache cache;
    std::uint64_t state = 321;
    for (int trial = 0; trial < 30; ++trial) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bf::truth_table master(4, state & 0xffff);
        if (master.support_size() < 2) continue;
        const std::vector<int> arrivals = {3, 2, 1, 0};
        const search_result plain = find_best_trigger(master, arrivals);
        const search_result cached = find_best_trigger(master, arrivals, {}, &cache);
        ASSERT_EQ(plain.all.size(), cached.all.size());
        for (std::size_t i = 0; i < plain.all.size(); ++i) {
            EXPECT_EQ(plain.all[i].function, cached.all[i].function);
            EXPECT_EQ(plain.all[i].cost, cached.all[i].cost);
        }
        EXPECT_EQ(plain.best.has_value(), cached.best.has_value());
        // Second pass over the same master: every support set must hit.
        const std::uint64_t hits_before = cache.hits();
        find_best_trigger(master, arrivals, {}, &cache);
        EXPECT_GT(cache.hits(), hits_before);
    }
    EXPECT_GT(cache.size(), 0u);
    EXPECT_GT(cache.misses(), 0u);
}

// Property: a trigger firing on an assignment really determines the master.
class TriggerSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriggerSoundness, TriggerImpliesConstantCofactor) {
    std::uint64_t state = GetParam();
    for (int trial = 0; trial < 20; ++trial) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bf::truth_table master(4, state & 0xffff);
        if (master.support_size() < 2) continue;
        for (std::uint32_t s :
             bf::enumerate_support_subsets(master.support_mask(), 3)) {
            const bf::truth_table trig = exact_trigger_function(master, s);
            const std::vector<int> members = bf::support_members(s);
            for (std::uint32_t m = 0; m < master.num_minterms(); ++m) {
                std::uint32_t packed = 0;
                for (std::size_t i = 0; i < members.size(); ++i) {
                    if ((m >> members[i]) & 1u) packed |= 1u << i;
                }
                if (!trig.eval(packed)) continue;
                // All completions of this S-assignment agree with m's value.
                const std::uint32_t keep = s;
                for (std::uint32_t m2 = 0; m2 < master.num_minterms(); ++m2) {
                    if ((m2 & keep) == (m & keep)) {
                        EXPECT_EQ(master.eval(m2), master.eval(m));
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriggerSoundness,
                         ::testing::Values(7u, 19u, 43u, 67u, 101u, 151u));

}  // namespace
}  // namespace plee::ee
