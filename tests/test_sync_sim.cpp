// Tests for the cycle-accurate synchronous reference simulator — the golden
// semantics every PL simulation is compared against.

#include "netlist/sync_sim.hpp"

#include <gtest/gtest.h>

namespace plee::nl {
namespace {

bf::truth_table xor2() {
    return bf::truth_table::variable(2, 0) ^ bf::truth_table::variable(2, 1);
}

TEST(SyncSim, CombinationalEval) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const cell_id g = n.add_lut(xor2(), {a, b});
    n.add_output("y", g);

    sync_simulator sim(n);
    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            sim.set_input(a, av);
            sim.set_input(b, bv);
            sim.eval();
            EXPECT_EQ(sim.value_of(g), av != bv);
        }
    }
}

TEST(SyncSim, NamedInputAssignment) {
    netlist n;
    n.add_input("enable");
    const cell_id a = n.inputs().front();
    n.add_output("y", a);
    sync_simulator sim(n);
    sim.set_input("enable", true);
    sim.eval();
    EXPECT_TRUE(sim.output_values().front());
    EXPECT_THROW(sim.set_input("nope", true), std::invalid_argument);
}

TEST(SyncSim, ToggleRegister) {
    // q <= q xor 1 : divides by two.
    netlist n;
    const cell_id one = n.add_constant(true);
    const cell_id q = n.add_dff(k_invalid_cell, false, "q");
    const cell_id x = n.add_lut(xor2(), {q, one});
    n.set_dff_input(q, x);
    n.add_output("y", q);

    sync_simulator sim(n);
    std::vector<bool> seen;
    for (int i = 0; i < 6; ++i) {
        sim.step();
        seen.push_back(sim.output_values().front());
    }
    EXPECT_EQ(seen, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST(SyncSim, DffInitialValueRespected) {
    netlist n;
    const cell_id q = n.add_dff(k_invalid_cell, true, "q");
    n.set_dff_input(q, q);  // hold forever
    n.add_output("y", q);
    sync_simulator sim(n);
    sim.eval();
    EXPECT_TRUE(sim.value_of(q));
    sim.step();
    sim.eval();
    EXPECT_TRUE(sim.value_of(q));
}

TEST(SyncSim, ResetRestoresInitialState) {
    netlist n;
    const cell_id one = n.add_constant(true);
    const cell_id q = n.add_dff(k_invalid_cell, false, "q");
    const cell_id x = n.add_lut(xor2(), {q, one});
    n.set_dff_input(q, x);
    n.add_output("y", q);

    sync_simulator sim(n);
    sim.step();
    sim.eval();
    EXPECT_TRUE(sim.value_of(q));
    sim.reset();
    sim.eval();
    EXPECT_FALSE(sim.value_of(q));
}

TEST(SyncSim, CycleHelperReturnsPreEdgeOutputs) {
    // y = a xor q, q <= a.  In cycle k, y must use the *old* q.
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id q = n.add_dff(k_invalid_cell, false, "q");
    const cell_id y = n.add_lut(xor2(), {a, q});
    n.set_dff_input(q, a);
    n.add_output("y", y);

    sync_simulator sim(n);
    EXPECT_EQ(sim.cycle({true}), std::vector<bool>{true});    // q was 0
    EXPECT_EQ(sim.cycle({true}), std::vector<bool>{false});   // q is now 1
    EXPECT_EQ(sim.cycle({false}), std::vector<bool>{true});   // q still 1
    EXPECT_EQ(sim.cycle({false}), std::vector<bool>{false});  // q dropped to 0
}

TEST(SyncSim, SetInputsChecksWidth) {
    netlist n;
    n.add_input("a");
    n.add_input("b");
    const cell_id g = n.add_lut(xor2(), {n.inputs()[0], n.inputs()[1]});
    n.add_output("y", g);
    sync_simulator sim(n);
    EXPECT_THROW(sim.set_inputs({true}), std::invalid_argument);
    EXPECT_NO_THROW(sim.set_inputs({true, false}));
}

TEST(SyncSim, RejectsNonInputCell) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id g = n.add_lut(~bf::truth_table::variable(1, 0), {a});
    n.add_output("y", g);
    sync_simulator sim(n);
    EXPECT_THROW(sim.set_input(g, true), std::invalid_argument);
}

}  // namespace
}  // namespace plee::nl
