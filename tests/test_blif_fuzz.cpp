// Deterministic mutation-fuzz of the BLIF importer.  The importer's contract
// (blif.hpp) is that arbitrary bytes either parse into a netlist that
// validates or raise blif_error — never an unclassified exception, never a
// crash.  We exercise that contract with seeded byte flips and truncations
// over real decks (ITC99 benchmarks serialized by to_blif), plus a row of
// targeted hand-written malformations.  Everything is seeded splitmix64, so
// a failure reproduces from the test log alone.

#include "netlist/blif.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_circuits/itc99.hpp"

namespace plee::nl {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Parses `text` and asserts the untrusted-input contract: success (with a
/// validating netlist) or blif_error.  Anything else fails the test with the
/// mutation context so the case reproduces.
void expect_parse_or_typed_error(const std::string& text,
                                 const std::string& context) {
    try {
        const netlist n = from_blif_string(text);
        n.validate();  // throws if the parser accepted an invalid structure
    } catch (const blif_error&) {
        // The contract: malformed input surfaces as the typed error.
    } catch (const std::exception& e) {
        FAIL() << context << ": escaped non-blif_error exception: " << e.what();
    }
}

std::vector<std::string> fuzz_decks() {
    std::vector<std::string> decks;
    for (const char* name : {"b01", "b02", "b06"}) {
        decks.push_back(to_blif(bench::build_benchmark(name), name));
    }
    return decks;
}

TEST(BlifFuzz, SeededByteMutationsNeverEscapeTypedErrors) {
    for (const std::string& deck : fuzz_decks()) {
        for (std::uint64_t trial = 0; trial < 256; ++trial) {
            std::string mutated = deck;
            // 1-4 byte mutations per trial, drawn from printable-ish bytes so
            // most trials survive tokenization deep into the parser.
            const std::uint64_t h0 = splitmix64(trial * 0x51ull + deck.size());
            const int edits = 1 + static_cast<int>(h0 % 4);
            for (int e = 0; e < edits; ++e) {
                const std::uint64_t h = splitmix64(h0 ^ (0xabcdull * (e + 1)));
                const std::size_t pos = h % mutated.size();
                static const char alphabet[] = "01-. \n\\xyz#";
                mutated[pos] = alphabet[(h >> 32) % (sizeof(alphabet) - 1)];
            }
            expect_parse_or_typed_error(
                mutated, "byte-mutation trial " + std::to_string(trial));
        }
    }
}

TEST(BlifFuzz, TruncationAtEveryLineBoundaryIsTypedOrClean) {
    for (const std::string& deck : fuzz_decks()) {
        for (std::size_t pos = 0; pos < deck.size(); ++pos) {
            if (deck[pos] != '\n') continue;
            expect_parse_or_typed_error(
                deck.substr(0, pos + 1),
                "line truncation at byte " + std::to_string(pos));
            // Also cut mid-line, one byte before the newline.
            if (pos > 0) {
                expect_parse_or_typed_error(
                    deck.substr(0, pos),
                    "mid-line truncation at byte " + std::to_string(pos));
            }
        }
    }
}

TEST(BlifFuzz, SeededByteTruncationsNeverEscapeTypedErrors) {
    for (const std::string& deck : fuzz_decks()) {
        for (std::uint64_t trial = 0; trial < 128; ++trial) {
            const std::size_t cut =
                splitmix64(0xfeedull ^ trial ^ deck.size()) % deck.size();
            expect_parse_or_typed_error(
                deck.substr(0, cut),
                "byte truncation trial " + std::to_string(trial));
        }
    }
}

TEST(BlifFuzz, MissingEndIsTruncationError) {
    std::string deck = fuzz_decks().front();
    const std::size_t end_pos = deck.rfind(".end");
    ASSERT_NE(end_pos, std::string::npos);
    deck.erase(end_pos);
    try {
        from_blif_string(deck);
        FAIL() << "deck without .end parsed";
    } catch (const blif_error& e) {
        EXPECT_NE(std::string(e.what()).find("missing .end"), std::string::npos);
        EXPECT_EQ(e.classify(), failure_class::permanent);
    }
}

TEST(BlifFuzz, TrailingContinuationIsTypedError) {
    EXPECT_THROW(from_blif_string(".model m\n.inputs a\n.outputs y\n"
                                  ".names a \\"),
                 blif_error);
    // The final .end line itself carries a continuation marker: the deck
    // ends mid-continuation and the ".end" never takes effect.
    EXPECT_THROW(from_blif_string(".model m\n.inputs a\n.outputs y\n"
                                  ".names a y\n1 1\n.end \\"),
                 blif_error);
}

TEST(BlifFuzz, TargetedMalformationsRaiseBlifError) {
    const struct {
        const char* text;
        const char* why;
    } cases[] = {
        {".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
         "cover char outside 0/1/-"},
        {".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n",
         "alphabetic cover char"},
        {".model m\n.inputs a\n.outputs y\n.names a y\n1 5\n.end\n",
         "bad output value"},
        {".model m\n.inputs a\n.outputs y\n.names a y\n1 1 1\n.end\n",
         "three-token cover row"},
        {".model m\n.inputs a\n.outputs y\n1 1\n.end\n",
         "cover row outside .names"},
        {".model m\n.model m2\n.end\n", "nested .model"},
        {".model m\n.inputs a\n.outputs y\n.names\n.end\n",
         ".names without output"},
        {".model m\n.inputs a\n.outputs y\n.latch a\n.end\n",
         ".latch without output"},
        {".model m\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end\n",
         "duplicate input port"},
        {".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"
         ".names a y\n0 1\n.end\n",
         "net driven twice"},
        {".model m\n.inputs a\n.outputs y\n.latch q y re clk 0\n.end\n",
         "latch input undriven"},
        {".model m\n.inputs a b c d e f g h i\n.outputs y\n"
         ".names a b c d e f g h i y\n111111111 1\n.end\n",
         "LUT wider than k_max_vars"},
    };
    for (const auto& c : cases) {
        try {
            from_blif_string(c.text);
            FAIL() << c.why << ": parsed without error";
        } catch (const blif_error& e) {
            EXPECT_EQ(e.classify(), failure_class::permanent) << c.why;
        } catch (const std::exception& e) {
            FAIL() << c.why << ": wrong exception type: " << e.what();
        }
    }
}

TEST(BlifFuzz, WideLutsUpToKMaxVarsStillParse) {
    // The old diagnostic claimed a 6-input ceiling; the real one is
    // bf::k_max_vars (8).  Pin the boundary from both sides.
    const netlist n = from_blif_string(
        ".model w\n.inputs a b c d e f g h\n.outputs y\n"
        ".names a b c d e f g h y\n11111111 1\n.end\n");
    EXPECT_EQ(n.inputs().size(), 8u);
}

}  // namespace
}  // namespace plee::nl
