// Tests for the netlist cleanup passes (constant folding, vacuous-fanin
// trimming, dead-cell sweep) that normalize netlists before PL mapping.

#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include "netlist/sync_sim.hpp"

namespace plee::nl {
namespace {

bf::truth_table and2() {
    return bf::truth_table::variable(2, 0) & bf::truth_table::variable(2, 1);
}
bf::truth_table or2() {
    return bf::truth_table::variable(2, 0) | bf::truth_table::variable(2, 1);
}

TEST(Cleanup, FoldsConstantThroughLut) {
    // y = a AND 1  ==>  y = a (the LUT disappears entirely).
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id one = n.add_constant(true);
    const cell_id g = n.add_lut(and2(), {a, one});
    n.add_output("y", g);

    const cleanup_result r = cleanup(n);
    EXPECT_EQ(r.nl.num_luts(), 0u);
    EXPECT_GE(r.stats.trimmed_fanins, 1u);

    sync_simulator sim(r.nl);
    EXPECT_EQ(sim.cycle({false}), std::vector<bool>{false});
    EXPECT_EQ(sim.cycle({true}), std::vector<bool>{true});
}

TEST(Cleanup, ConstantZeroKillsAndGate) {
    // y = a AND 0  ==>  y = 0 (constant reaches the output port).
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id zero = n.add_constant(false);
    const cell_id g = n.add_lut(and2(), {a, zero});
    n.add_output("y", g);

    const cleanup_result r = cleanup(n);
    EXPECT_EQ(r.nl.num_luts(), 0u);
    sync_simulator sim(r.nl);
    EXPECT_EQ(sim.cycle({true}), std::vector<bool>{false});
}

TEST(Cleanup, SweepsDeadLogic) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const cell_id used = n.add_lut(and2(), {a, b});
    n.add_lut(or2(), {a, b});  // dead: feeds nothing
    n.add_output("y", used);

    const cleanup_result r = cleanup(n);
    EXPECT_EQ(r.nl.num_luts(), 1u);
    EXPECT_GE(r.stats.swept_cells, 1u);
}

TEST(Cleanup, KeepsUnusedPrimaryInputs) {
    netlist n;
    const cell_id a = n.add_input("a");
    n.add_input("unused");
    n.add_output("y", a);
    const cleanup_result r = cleanup(n);
    EXPECT_EQ(r.nl.inputs().size(), 2u);  // interface preserved
}

TEST(Cleanup, TrimsVacuousFanin) {
    // A 2-input LUT that ignores its second input.
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const bf::truth_table only_x0 = bf::truth_table::variable(2, 0);
    const cell_id g = n.add_lut(only_x0, {a, b});
    n.add_output("y", g);

    const cleanup_result r = cleanup(n);
    EXPECT_EQ(r.stats.trimmed_fanins, 1u);
    // The LUT degenerated to a wire: output connects straight to the input.
    EXPECT_EQ(r.nl.num_luts(), 0u);
}

TEST(Cleanup, PreservesSequentialBehaviour) {
    // Two-bit counter with an enable; cleanup must not change its I/O
    // behaviour cycle by cycle.
    netlist n;
    const cell_id en = n.add_input("en");
    const cell_id q0 = n.add_dff(k_invalid_cell, false, "q0");
    const cell_id q1 = n.add_dff(k_invalid_cell, false, "q1");
    const bf::truth_table x0_xor_x1 =
        bf::truth_table::variable(2, 0) ^ bf::truth_table::variable(2, 1);
    const cell_id d0 = n.add_lut(x0_xor_x1, {q0, en});
    const bf::truth_table carry_fn = bf::truth_table::from_function(
        3, [](std::uint32_t m) {
            const bool q1v = m & 1, q0v = m & 2, env = m & 4;
            return q1v != (q0v && env);
        });
    const cell_id d1 = n.add_lut(carry_fn, {q1, q0, en});
    n.set_dff_input(q0, d0);
    n.set_dff_input(q1, d1);
    n.add_output("c0", q0);
    n.add_output("c1", q1);

    const cleanup_result r = cleanup(n);

    sync_simulator ref(n);
    sync_simulator cln(r.nl);
    const std::vector<bool> stim = {true, true, false, true, true, true, false, true};
    for (bool e : stim) {
        EXPECT_EQ(ref.cycle({e}), cln.cycle({e}));
    }
}

TEST(Cleanup, ConstantDInputDffSurvives) {
    netlist n;
    const cell_id one = n.add_constant(true);
    const cell_id q = n.add_dff(k_invalid_cell, false, "q");
    n.set_dff_input(q, one);
    n.add_output("y", q);

    const cleanup_result r = cleanup(n);
    ASSERT_EQ(r.nl.dffs().size(), 1u);
    sync_simulator sim(r.nl);
    EXPECT_EQ(sim.cycle({}), std::vector<bool>{false});  // init value first
    EXPECT_EQ(sim.cycle({}), std::vector<bool>{true});
}

TEST(Cleanup, IdempotentOnCleanNetlist) {
    netlist n;
    const cell_id a = n.add_input("a");
    const cell_id b = n.add_input("b");
    const cell_id g = n.add_lut(and2(), {a, b});
    n.add_output("y", g);

    const cleanup_result once = cleanup(n);
    const cleanup_result twice = cleanup(once.nl);
    EXPECT_EQ(once.nl.num_cells(), twice.nl.num_cells());
    EXPECT_EQ(twice.stats.folded_constants, 0u);
    EXPECT_EQ(twice.stats.trimmed_fanins, 0u);
    EXPECT_EQ(twice.stats.swept_cells, 0u);
}

}  // namespace
}  // namespace plee::nl
