// Tests for the telemetry subsystem (src/obs/): histogram bucket math and
// exact-rank percentiles, snapshot merge algebra, the sharded registry,
// trace span nesting (including exception unwind), flight-recorder ring
// semantics, the JSON / Prometheus sinks, and the end-to-end contracts the
// runner exposes — registry counters reconciling with per-row simulator
// stats at 1 and 4 threads, and a budget-exhausted job's report carrying a
// non-empty flight dump plus a well-formed span breakdown.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "report/json.hpp"
#include "runner/runner.hpp"
#include "workload/workload.hpp"

namespace plee::obs {
namespace {

// --- Histogram bucket math ------------------------------------------------

TEST(ObsHistogram, BucketIndexRoundTripsAndBoundsError) {
    // The exact region: one bucket per value.
    for (std::uint64_t v = 0; v < k_hist_sub_count; ++v) {
        EXPECT_EQ(hist_bucket_index(v), v);
        EXPECT_EQ(hist_bucket_upper(hist_bucket_index(v)), v);
    }
    // Beyond it: v <= upper(index(v)) and the bucket is < 1/128 of v wide.
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 20000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t v = x;
        const std::uint32_t idx = hist_bucket_index(v);
        ASSERT_LT(idx, k_hist_num_buckets);
        const std::uint64_t upper = hist_bucket_upper(idx);
        ASSERT_GE(upper, v);
        ASSERT_LE(static_cast<double>(upper - v),
                  static_cast<double>(v) / 128.0 + 1.0);
        // upper is the last value in its bucket.
        EXPECT_EQ(hist_bucket_index(upper), idx);
        if (upper + 1 != 0) EXPECT_EQ(hist_bucket_index(upper + 1), idx + 1);
    }
}

TEST(ObsHistogram, ExactPercentilesInTheOnePerBucketRegion) {
    hist_snapshot h;
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    EXPECT_EQ(h.count, 100u);
    EXPECT_EQ(h.sum, 5050u);
    EXPECT_EQ(h.min, 1u);
    EXPECT_EQ(h.max, 100u);
    // Rank ceil(p/100 * 100) over 1..100 reads exactly p.
    EXPECT_EQ(h.value_at_percentile(50.0), 50u);
    EXPECT_EQ(h.value_at_percentile(90.0), 90u);
    EXPECT_EQ(h.value_at_percentile(99.0), 99u);
    EXPECT_EQ(h.value_at_percentile(100.0), 100u);
    EXPECT_EQ(h.value_at_percentile(0.0), 1u);
    EXPECT_EQ(h.value_at_percentile(1.0), 1u);
    EXPECT_EQ(h.value_at_percentile(-5.0), 1u);
    EXPECT_EQ(h.value_at_percentile(250.0), 100u);
    EXPECT_EQ(hist_snapshot{}.value_at_percentile(50.0), 0u);
}

TEST(ObsHistogram, PercentilesWithinBucketErrorOnLargeValues) {
    hist_snapshot h;
    std::vector<std::uint64_t> vals;
    std::uint64_t x = 0x2545f4914f6cdd1dull;
    for (int i = 0; i < 10000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t v = 1000000 + x % 1000000000ull;  // ~ps-scale range
        vals.push_back(v);
        h.record(v);
    }
    std::sort(vals.begin(), vals.end());
    for (const double p : {50.0, 90.0, 99.0}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(vals.size())));
        const double exact = static_cast<double>(vals[rank - 1]);
        const double approx = static_cast<double>(h.value_at_percentile(p));
        EXPECT_GE(approx, exact);  // reads the bucket upper bound
        EXPECT_LE((approx - exact) / exact, 1.0 / 100.0) << "p" << p;
    }
    EXPECT_EQ(h.value_at_percentile(100.0), vals.back());
}

TEST(ObsHistogram, MergeIsAssociativeCommutativeAndExact) {
    const auto fill = [](std::uint64_t seed, int n) {
        hist_snapshot h;
        std::uint64_t x = seed;
        for (int i = 0; i < n; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 100000);
        }
        return h;
    };
    const hist_snapshot a = fill(1, 500);
    const hist_snapshot b = fill(2, 300);
    const hist_snapshot c = fill(3, 700);

    hist_snapshot ab = a;
    ab.merge(b);
    hist_snapshot ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);

    hist_snapshot ab_c = ab;
    ab_c.merge(c);
    hist_snapshot bc = b;
    bc.merge(c);
    hist_snapshot a_bc = a;
    a_bc.merge(bc);
    EXPECT_EQ(ab_c, a_bc);
    EXPECT_EQ(ab_c.count, 1500u);
    EXPECT_EQ(ab_c.sum, a.sum + b.sum + c.sum);

    // Merging an empty snapshot is the identity, both ways.
    hist_snapshot a_empty = a;
    a_empty.merge(hist_snapshot{});
    EXPECT_EQ(a_empty, a);
    hist_snapshot empty_a;
    empty_a.merge(a);
    EXPECT_EQ(empty_a, a);
}

TEST(ObsHistogram, AtomicFormMatchesSparseFormAndIsThreadSafe) {
    histogram atomic_h;
    hist_snapshot sparse;
    for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 4096ull, 999999ull}) {
        atomic_h.record(v);
        sparse.record(v);
    }
    EXPECT_EQ(atomic_h.snapshot(), sparse);

    atomic_h.reset();
    EXPECT_TRUE(atomic_h.snapshot().empty());

    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&atomic_h, t] {
            for (int i = 0; i < 1000; ++i) {
                atomic_h.record(static_cast<std::uint64_t>(t * 1000 + i));
            }
        });
    }
    for (std::thread& t : pool) t.join();
    const hist_snapshot snap = atomic_h.snapshot();
    EXPECT_EQ(snap.count, 4000u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 3999u);
    EXPECT_EQ(snap.sum, 4000u * 3999u / 2);
}

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, ShardedCounterSumsAcrossThreads) {
    counter c;
    std::vector<std::thread> pool;
    for (int t = 0; t < 8; ++t) {
        pool.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i) c.add();
        });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(c.value(), 80000u);
}

TEST(ObsRegistry, ReferencesSurviveResetAndSnapshotIsSorted) {
    registry& reg = registry::global();
    counter& c = reg.get_counter("test.obs.zz");
    counter& c2 = reg.get_counter("test.obs.aa");
    gauge& g = reg.get_gauge("test.obs.depth");
    c.add(7);
    c2.add(1);
    g.set(-3);
    EXPECT_EQ(&reg.get_counter("test.obs.zz"), &c);  // stable reference

    reg.reset();
    EXPECT_EQ(c.value(), 0u);  // zeroed, not destroyed
    EXPECT_EQ(g.value(), 0);
    c.add(2);
    EXPECT_EQ(reg.get_counter("test.obs.zz").value(), 2u);

    const metrics_snapshot snap = reg.snapshot();
    EXPECT_TRUE(std::is_sorted(
        snap.counters.begin(), snap.counters.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
}

// --- Trace spans ----------------------------------------------------------

TEST(ObsSpan, NestingAttributesParentsByOpenOrder) {
    trace t;
    {
        const scoped_span a(&t, "a");
        { const scoped_span b(&t, "a.b"); }
        { const scoped_span c(&t, "a.c"); }
    }
    { const scoped_span d(&t, "d"); }
    ASSERT_EQ(t.spans().size(), 4u);
    EXPECT_EQ(t.spans()[0].name, "a");
    EXPECT_EQ(t.spans()[0].parent, -1);
    EXPECT_EQ(t.spans()[1].name, "a.b");
    EXPECT_EQ(t.spans()[1].parent, 0);
    EXPECT_EQ(t.spans()[2].name, "a.c");
    EXPECT_EQ(t.spans()[2].parent, 0);
    EXPECT_EQ(t.spans()[3].name, "d");
    EXPECT_EQ(t.spans()[3].parent, -1);
    for (const span_record& s : t.spans()) {
        EXPECT_GE(s.dur_ms, 0.0);
        EXPECT_GE(s.start_ms, 0.0);
    }
    // Children start no earlier than their parent.
    EXPECT_GE(t.spans()[1].start_ms, t.spans()[0].start_ms);
}

TEST(ObsSpan, ExceptionUnwindClosesSpansAndKeepsTraceWellFormed) {
    trace t;
    try {
        const scoped_span outer(&t, "outer");
        const scoped_span inner(&t, "inner");
        throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
    }
    ASSERT_EQ(t.spans().size(), 2u);
    EXPECT_EQ(t.spans()[1].parent, 0);
    // The cursor unwound with the spans: a new span is a root again.
    { const scoped_span after(&t, "after"); }
    EXPECT_EQ(t.spans()[2].parent, -1);

    t.clear();
    EXPECT_TRUE(t.spans().empty());

    // Null trace is a no-op everywhere.
    { const scoped_span nop(nullptr, "x"); }
}

// --- Flight recorder ------------------------------------------------------

TEST(ObsFlightRecorder, RingWrapsKeepingNewestOldestFirst) {
    flight_recorder r(4);
    EXPECT_EQ(r.capacity(), 4u);
    EXPECT_TRUE(r.dump().empty());
    for (std::uint64_t i = 0; i < 10; ++i) r.record("tick", i, 100 + i);
    EXPECT_EQ(r.total_recorded(), 10u);
    const std::vector<fr_event> events = r.dump();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_STREQ(events[i].tag, "tick");
        EXPECT_EQ(events[i].a, 6 + i);  // the last four, oldest first
        EXPECT_EQ(events[i].b, 106 + i);
    }
    EXPECT_TRUE(std::is_sorted(
        events.begin(), events.end(),
        [](const fr_event& x, const fr_event& y) { return x.t_ms < y.t_ms; }));

    r.clear();
    EXPECT_TRUE(r.dump().empty());
    r.record_note("err", "context", 5);
    ASSERT_EQ(r.dump().size(), 1u);
    EXPECT_EQ(r.dump()[0].note, "context");

    // Degenerate capacity coerces to something usable.
    flight_recorder tiny(0);
    tiny.record("x");
    EXPECT_EQ(tiny.dump().size(), 1u);
}

TEST(ObsFlightRecorder, AmbientRecorderScopesNest) {
    EXPECT_EQ(current_recorder(), nullptr);
    flight_recorder outer_r;
    flight_recorder inner_r;
    {
        const recorder_scope outer(&outer_r);
        EXPECT_EQ(current_recorder(), &outer_r);
        {
            const recorder_scope inner(&inner_r);
            EXPECT_EQ(current_recorder(), &inner_r);
        }
        EXPECT_EQ(current_recorder(), &outer_r);
    }
    EXPECT_EQ(current_recorder(), nullptr);
}

// --- Sinks ----------------------------------------------------------------

TEST(ObsSink, JsonDumpCompactIsOneLine) {
    report::json j = report::json::object();
    j.set("a", report::json::number(1));
    report::json arr = report::json::array();
    arr.push(report::json::str("x\"y"));
    arr.push(report::json::boolean(true));
    j.set("b", std::move(arr));
    EXPECT_EQ(j.dump_compact(), "{\"a\":1,\"b\":[\"x\\\"y\",true]}");
}

TEST(ObsSink, HistToJsonCarriesSummaryAndOptionalBuckets) {
    hist_snapshot h;
    h.record(10);
    h.record(20);
    h.record(30);
    const std::string summary = hist_to_json(h).dump_compact();
    EXPECT_NE(summary.find("\"count\":3"), std::string::npos);
    EXPECT_NE(summary.find("\"min\":10"), std::string::npos);
    EXPECT_NE(summary.find("\"max\":30"), std::string::npos);
    EXPECT_EQ(summary.find("\"buckets\""), std::string::npos);
    const std::string full = hist_to_json(h, 1.0, true).dump_compact();
    EXPECT_NE(full.find("\"buckets\":[[10,1],[20,1],[30,1]]"),
              std::string::npos);
    EXPECT_NE(hist_to_json(hist_snapshot{}).dump_compact().find("\"count\":0"),
              std::string::npos);
}

TEST(ObsSink, PrometheusExpositionIsWellFormed) {
    metrics_snapshot snap;
    snap.counters.emplace_back("test.hits", 3);
    snap.gauges.emplace_back("test.depth", -2);
    hist_snapshot h;
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    snap.histograms.emplace_back("test.lat_us", h);

    const std::string text = to_prometheus(snap);
    EXPECT_NE(text.find("# TYPE plee_test_hits_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("plee_test_hits_total 3\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE plee_test_depth gauge"), std::string::npos);
    EXPECT_NE(text.find("plee_test_depth -2\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE plee_test_lat_us summary"), std::string::npos);
    EXPECT_NE(text.find("plee_test_lat_us{quantile=\"0.5\"} 50\n"),
              std::string::npos);
    EXPECT_NE(text.find("plee_test_lat_us_count 100\n"), std::string::npos);
    EXPECT_NE(text.find("plee_test_lat_us_sum 5050\n"), std::string::npos);

    // Line lint (the same check CI runs): every line is a comment or a
    // `plee_`-prefixed sample with a numeric value.
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("# ", 0) == 0) continue;
        EXPECT_EQ(line.rfind("plee_", 0), 0u) << line;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_FALSE(line.substr(space + 1).empty()) << line;
    }
}

// --- End-to-end contracts through the runner ------------------------------

std::vector<runner::fleet_job> small_fleet(std::size_t n) {
    std::vector<runner::fleet_job> jobs;
    for (std::size_t i = 0; i < n; ++i) {
        const wl::scenario kind =
            wl::all_scenarios()[i % wl::all_scenarios().size()];
        runner::fleet_job job;
        job.id = std::string(wl::to_string(kind)) + "/" + std::to_string(i);
        job.description = job.id;
        job.netlist = wl::generate(wl::scenario_params(kind, 60, 11 + i));
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(ObsEndToEnd, RegistryCountersMatchRowStatsAtOneAndFourThreads) {
    const std::vector<runner::fleet_job> jobs = small_fleet(4);
    for (const unsigned threads : {1u, 4u}) {
        registry::global().reset();
        runner::fleet_options opts;
        opts.num_threads = threads;
        opts.experiment.measure.num_vectors = 15;
        const runner::fleet_result fleet = runner::run_fleet(jobs, opts);
        ASSERT_TRUE(fleet.all_ok());

        std::uint64_t events = 0, hits = 0, misses = 0, wins = 0;
        for (const runner::job_result& r : fleet.results) {
            events += r.row.stats_no_ee.events + r.row.stats_ee.events;
            hits += r.row.stats_no_ee.ee_hits + r.row.stats_ee.ee_hits;
            misses += r.row.stats_no_ee.ee_misses + r.row.stats_ee.ee_misses;
            wins += r.row.stats_no_ee.ee_wins + r.row.stats_ee.ee_wins;
        }
        registry& reg = registry::global();
        EXPECT_EQ(reg.get_counter("sim.events").value(), events) << threads;
        EXPECT_EQ(reg.get_counter("sim.ee.hits").value(), hits) << threads;
        EXPECT_EQ(reg.get_counter("sim.ee.misses").value(), misses) << threads;
        EXPECT_EQ(reg.get_counter("sim.ee.wins").value(), wins) << threads;
        EXPECT_EQ(reg.get_counter("fleet.jobs_ok").value(), fleet.jobs_ok)
            << threads;

        // The registry-side delay histogram saw every measured vector, and
        // the fleet-side aggregates are its per-row split.
        const hist_snapshot delays =
            reg.get_histogram("sim.vector_delay_ps").snapshot();
        EXPECT_EQ(delays.count, fleet.total_vectors) << threads;
        EXPECT_EQ(fleet.delay_hist_no_ee.count + fleet.delay_hist_ee.count,
                  fleet.total_vectors)
            << threads;
        hist_snapshot merged = fleet.delay_hist_no_ee;
        merged.merge(fleet.delay_hist_ee);
        EXPECT_EQ(merged, delays) << threads;
        EXPECT_EQ(fleet.job_wall_hist_us.count, fleet.results.size());
    }
}

TEST(ObsEndToEnd, BudgetExhaustedJobReportsFlightDumpAndSpanBreakdown) {
    std::vector<runner::fleet_job> jobs = small_fleet(1);
    jobs[0].max_events = 64;  // trips inside the first measurement
    runner::fleet_options opts;
    opts.experiment.measure.num_vectors = 10;
    const runner::fleet_result fleet = runner::run_fleet(jobs, opts);
    ASSERT_EQ(fleet.results.size(), 1u);
    const runner::job_result& r = fleet.results[0];
    ASSERT_EQ(r.status, runner::job_status::budget_exhausted);

    // The acceptance criterion: a failed job's report carries a non-empty
    // flight-recorder dump plus its (partial but well-formed) span breakdown.
    EXPECT_FALSE(r.flight.empty());
    EXPECT_FALSE(r.spans.empty());
    bool saw_attempt = false;
    bool saw_budget = false;
    for (const fr_event& e : r.flight) {
        if (std::string(e.tag) == "job.attempt") saw_attempt = true;
        if (std::string(e.tag) == "job.budget_exhausted") saw_budget = true;
    }
    EXPECT_TRUE(saw_attempt);
    EXPECT_TRUE(saw_budget);
    for (const span_record& s : r.spans) EXPECT_GE(s.dur_ms, 0.0);

    const std::string dump = runner::to_json(fleet).dump();
    EXPECT_NE(dump.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(dump.find("\"flight_recorder\""), std::string::npos);
    EXPECT_NE(dump.find("\"spans\""), std::string::npos);
    EXPECT_NE(dump.find("\"job.budget_exhausted\""), std::string::npos);
}

TEST(ObsEndToEnd, TelemetryOffRunsCleanWithEmptyInstrumentation) {
    const std::vector<runner::fleet_job> jobs = small_fleet(2);
    runner::fleet_options opts;
    opts.experiment.measure.num_vectors = 15;
    opts.telemetry = false;
    const runner::fleet_result off = runner::run_fleet(jobs, opts);
    ASSERT_TRUE(off.all_ok());
    for (const runner::job_result& r : off.results) {
        EXPECT_TRUE(r.spans.empty());
        EXPECT_TRUE(r.flight.empty());
        EXPECT_TRUE(r.row.delay_hist_no_ee.empty());
    }
    EXPECT_TRUE(off.delay_hist_no_ee.empty());
    EXPECT_TRUE(off.delay_hist_ee.empty());
    EXPECT_TRUE(off.job_wall_hist_us.empty());

    // The measured results themselves are bit-identical either way:
    // telemetry observes the pipeline, it must not steer it.
    opts.telemetry = true;
    const runner::fleet_result on = runner::run_fleet(jobs, opts);
    ASSERT_TRUE(on.all_ok());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(off.results[i].row.delay_no_ee, on.results[i].row.delay_no_ee);
        EXPECT_EQ(off.results[i].row.delay_ee, on.results[i].row.delay_ee);
        EXPECT_EQ(off.results[i].row.stats_ee.events,
                  on.results[i].row.stats_ee.events);
    }
}

}  // namespace
}  // namespace plee::obs
