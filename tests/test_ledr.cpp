// Tests for LEDR encoding and the Muller-C element (Section 2.1 / Figure 1).

#include "plogic/ledr.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace plee::pl {
namespace {

TEST(Ledr, PhaseIsVXorT) {
    EXPECT_EQ((ledr_signal{false, false}).signal_phase(), phase::even);
    EXPECT_EQ((ledr_signal{true, true}).signal_phase(), phase::even);
    EXPECT_EQ((ledr_signal{true, false}).signal_phase(), phase::odd);
    EXPECT_EQ((ledr_signal{false, true}).signal_phase(), phase::odd);
}

TEST(Ledr, NextTokenAlternatesPhase) {
    ledr_signal s{false, false};
    for (int i = 0; i < 16; ++i) {
        const bool value = (i * 7 % 3) == 1;
        const ledr_signal n = s.next_token(value);
        EXPECT_EQ(n.v, value);
        EXPECT_EQ(n.signal_phase(), opposite(s.signal_phase()));
        s = n;
    }
}

TEST(Ledr, ExactlyOneRailTogglesPerToken) {
    // The delay-insensitivity property: successive LEDR codewords are at
    // Hamming distance 1, so no transient multi-rail transitions exist.
    ledr_signal s{false, false};
    for (int i = 0; i < 32; ++i) {
        const bool value = (i & 5) == 4 || (i % 3) == 0;
        const ledr_signal n = s.next_token(value);
        EXPECT_EQ(ledr_signal::hamming(s, n), 1) << "step " << i;
        s = n;
    }
}

TEST(Ledr, SameValueTogglesTimingRail) {
    const ledr_signal s{true, false};  // value 1, odd
    const ledr_signal n = s.next_token(true);
    EXPECT_EQ(n.v, true);
    EXPECT_NE(n.t, s.t);  // value unchanged -> timing rail moved
}

TEST(Ledr, ValueChangeTogglesValueRail) {
    const ledr_signal s{true, false};
    const ledr_signal n = s.next_token(false);
    EXPECT_EQ(n.v, false);
    EXPECT_EQ(n.t, s.t);  // value rail moved, timing rail held
}

TEST(Ledr, ToStringMentionsPhase) {
    EXPECT_EQ((ledr_signal{true, false}).to_string(), "(v=1,t=0,odd)");
    EXPECT_EQ(std::string(to_string(phase::even)), "even");
}

TEST(MullerC, HoldsUntilConsensus) {
    muller_c c(false);
    EXPECT_FALSE(c.update({true, false}));   // disagree: hold 0
    EXPECT_TRUE(c.update({true, true}));     // consensus 1: switch
    EXPECT_TRUE(c.update({false, true}));    // disagree: hold 1
    EXPECT_FALSE(c.update({false, false}));  // consensus 0: switch
}

TEST(MullerC, MultiInputConsensus) {
    muller_c c(false);
    EXPECT_FALSE(c.update({true, true, false, true}));
    EXPECT_TRUE(c.update({true, true, true, true}));
    EXPECT_TRUE(c.update({false, false, false, true}));
    EXPECT_FALSE(c.update({false, false, false, false}));
}

TEST(MullerC, GatePhaseCompletionDetection) {
    // The PL gate fires when all input phases agree with each other and
    // differ from the gate phase: emulate with phase bits into a C-element.
    muller_c gate_phase(false);
    std::vector<ledr_signal> inputs(4);
    // All inputs emit odd-phase tokens -> the C-element output toggles to 1.
    std::vector<bool> phases;
    for (auto& s : inputs) {
        s = s.next_token(true);
        phases.push_back(s.signal_phase() == phase::odd);
    }
    EXPECT_TRUE(gate_phase.update(phases));
    // Next wave: all even again -> toggles back.
    phases.clear();
    for (auto& s : inputs) {
        s = s.next_token(false);
        phases.push_back(s.signal_phase() == phase::odd);
    }
    EXPECT_FALSE(gate_phase.update(phases));
}

}  // namespace
}  // namespace plee::pl
